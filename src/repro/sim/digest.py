"""Canonical state digests over the simulated machine.

One deterministic `sha256` over everything that defines a simulation
state: register files, LDS, :class:`DeviceMemory`, the per-warp
preemption bookkeeping and the controller's in-flight protocol state.
Two state trees digest equal iff a byte-for-byte comparison of those
components would find them equal — insertion order of dicts, NumPy
layout details and other representation noise never leak into the hash.

Two views exist:

* ``timing=True`` (default): the full machine state, including cycles,
  scoreboards and the memory-port watermark.  This is what the chaos
  oracle compares (two runs that digest equal are bit-identical) and
  what the cross-core regression tests pin.
* ``timing=False``: the *architectural* projection used by the model
  checker (:mod:`repro.mc`).  Interleaving two independent warp steps in
  either order reaches the same architectural state but different cycle
  counts; excluding timing lets the DFS recognise the convergence and
  prune the second branch.

Within one exploration a routine program is uniquely determined by
``(mechanism, kernel, signal_pc)``; the digest therefore encodes the
current program as its length plus the controller's recorded
``signal_pc`` instead of hashing instruction text on every state.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .preemption import PreemptionController
    from .sm import SM
    from .warp import SimWarp


def _feed(h, tag: str, value) -> None:
    """Hash one tagged scalar/array with unambiguous framing."""
    h.update(tag.encode())
    h.update(b"=")
    if value is None:
        h.update(b"~")
    elif isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(repr(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, bytes):
        h.update(value)
    elif isinstance(value, (bool, np.bool_)):
        h.update(b"1" if value else b"0")
    elif isinstance(value, (int, np.integer)):
        h.update(str(int(value)).encode())
    elif isinstance(value, float):
        h.update(repr(value).encode())
    else:  # str and enum values
        h.update(str(value).encode())
    h.update(b";")


def _feed_ctx_buffer(h, buffer: dict) -> None:
    # slots are ints plus the "lds" snapshot; sort on a type-stable key
    for slot in sorted(buffer, key=lambda k: (isinstance(k, str), k)):
        _feed(h, f"ctx[{slot}]", buffer[slot])


def _feed_snapshot(h, tag: str, snapshot) -> None:
    """Hash a :class:`CkptSnapshot` (or the fault shadow image)."""
    if snapshot is None:
        _feed(h, tag, None)
        return
    vregs, sregs, exec_mask, scc, pc = snapshot.regs
    _feed(h, f"{tag}.vregs", vregs)
    _feed(h, f"{tag}.sregs", sregs)
    _feed(h, f"{tag}.exec", exec_mask)
    _feed(h, f"{tag}.scc", scc)
    _feed(h, f"{tag}.pc", pc)
    _feed(h, f"{tag}.lds", snapshot.lds)
    _feed(h, f"{tag}.dyn", snapshot.dyn_count)
    for probe in sorted(snapshot.probe_counts):
        _feed(h, f"{tag}.probe[{probe}]", snapshot.probe_counts[probe])
    _feed(h, f"{tag}.nbytes", snapshot.nbytes)
    _feed(h, f"{tag}.pc_after", snapshot.pc_after_probe)


def _feed_warp(h, warp: "SimWarp", *, timing: bool) -> None:
    state = warp.state
    _feed(h, "warp", warp.warp_id)
    _feed(h, "mode", warp.mode.value)
    _feed(h, "prog_len", len(warp.program.instructions))
    _feed(h, "main", warp.program is warp.main_program)
    _feed(h, "pc", state.pc)
    _feed(h, "dyn", warp.dyn_count)
    _feed(h, "flag", warp.preempt_flag)
    _feed(h, "strategy", warp.active_strategy)
    _feed(h, "vregs", state.vregs)
    _feed(h, "sregs", state.sregs)
    _feed(h, "exec", state.exec_mask)
    _feed(h, "exec_all", state.exec_all)
    _feed(h, "scc", state.scc)
    _feed_ctx_buffer(h, state.ctx_buffer)
    if warp.lds is not None:
        _feed(h, "lds", warp.lds.words)
    for probe in sorted(warp.probe_counts):
        _feed(h, f"probe[{probe}]", warp.probe_counts[probe])
    _feed_snapshot(h, "ckpt", warp.last_checkpoint)
    _feed_snapshot(h, "image", warp.arch_image)
    _feed(h, "watch", warp.resume_watch_dyn)
    _feed(h, "degraded", warp.degraded_save)
    _feed(h, "crc", warp.ctx_checksum)
    if timing:
        _feed(h, "next_free", warp.next_free)
        for rid in sorted(warp.pending):
            _feed(h, f"pend[{rid}]", warp.pending[rid])
        _feed(h, "pending_max", warp.pending_max)
        _feed(h, "mem_done", warp.routine_last_mem_completion)
        _feed(h, "sig_cycle", warp.signal_cycle)
        _feed(h, "pre_done", warp.preempt_done_cycle)
        _feed(h, "res_start", warp.resume_start_cycle)
        _feed(h, "res_done", warp.resume_done_cycle)


def memory_digest(memory) -> bytes:
    """Digest of the functional memory contents.

    Memories that track their own dirty set (``TrackedMemory``) hash only
    the touched words — the model checker digests per choice point, and
    hashing the full 32 MB address space there would dominate exploration.
    """
    digest = getattr(memory, "content_digest", None)
    if digest is not None:
        return digest()
    h = hashlib.sha256()
    _feed(h, "mem", memory._words)
    return h.digest()


def state_digest(
    sm: "SM",
    controller: "PreemptionController | None" = None,
    *,
    timing: bool = True,
    extra: bytes = b"",
) -> str:
    """Deterministic digest of one SM (plus optional controller) state."""
    h = hashlib.sha256()
    _feed(h, "warps", len(sm.warps))
    for warp in sm.warps:
        _feed_warp(h, warp, timing=timing)
    h.update(memory_digest(sm.memory))
    if timing:
        _feed(h, "cycle", sm.cycle)
        _feed(h, "port", sm.pipeline._port_free)
        _feed(h, "mem_bytes", sm.pipeline.total_bytes)
        _feed(h, "mem_reqs", sm.pipeline.total_requests)
    if controller is not None:
        _feed(h, "armed", controller.armed)
        _feed(h, "delivered", ",".join(map(str, sorted(controller.delivered))))
        _feed(h, "draining", ",".join(map(str, sorted(controller._draining))))
        _feed(h, "history", len(getattr(controller, "history", ())))
        for wid in sorted(controller.measurements):
            m = controller.measurements[wid]
            _feed(h, f"m[{wid}].pc", m.signal_pc)
            _feed(h, f"m[{wid}].bytes", m.context_bytes)
            _feed(h, f"m[{wid}].fb", m.flashback_pos)
            _feed(h, f"m[{wid}].deg", m.degraded)
            if timing:
                _feed(h, f"m[{wid}].sig", m.signal_cycle)
                _feed(h, f"m[{wid}].lat", m.latency_cycles)
                _feed(h, f"m[{wid}].res", m.resume_cycles)
                _feed(h, f"m[{wid}].rec", m.recovery_cycles)
    if extra:
        _feed(h, "extra", extra)
    return h.hexdigest()


def arch_digest(
    sm: "SM",
    warp_ids: Iterable[int],
    *,
    lds_only: Iterable[int] = (),
) -> str:
    """Digest of the per-warp *architectural* end state the chaos oracle
    compares: register files, exec mask, SCC and LDS.

    Warps in *lds_only* contribute only their LDS contents — a warp that
    recovered through the full-image path restored registers that were
    dead at the signal point, so its register file legitimately differs
    from the clean run's while every observable output still matches.
    """
    skip_regs = frozenset(lds_only)
    by_id = {warp.warp_id: warp for warp in sm.warps}
    h = hashlib.sha256()
    for wid in sorted(warp_ids):
        warp = by_id[wid]
        _feed(h, "warp", wid)
        if wid not in skip_regs:
            state = warp.state
            _feed(h, "vregs", state.vregs)
            _feed(h, "sregs", state.sregs)
            _feed(h, "exec", state.exec_mask)
            _feed(h, "scc", state.scc)
        if warp.lds is not None:
            _feed(h, "lds", warp.lds.words)
    return h.hexdigest()
