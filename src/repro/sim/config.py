"""Simulator configuration: Radeon-VII-like SM geometry and timing.

The paper evaluates on an AMD Radeon VII (Vega 20): 60 CUs, 256 KB vector
registers / 12.5 KB scalar registers / 64 KB LDS per CU, ~1 TB/s HBM2.  The
simulator models a single SM (CU) with its proportional share of device
bandwidth.  Two memory-service rates exist:

* ``mem_bytes_per_cycle`` — streaming kernel traffic (coalesced loads and
  stores at the SM's bandwidth share);
* ``ctx_request_overhead`` — the per-request cost of the context-switch
  routines.  The paper measures the Linux-driver routine at 75–330 µs per
  preemption, far below raw bandwidth, because the routine is issued
  register-by-register under driver control; the overhead constant is
  calibrated so BASELINE lands in the paper's Table I band (EXPERIMENTS.md
  records the calibration).

All figure-level comparisons are normalized to BASELINE, so shape
conclusions do not depend on the absolute calibration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..isa.registers import RegisterFileSpec

#: environment override for :attr:`GPUConfig.core`
CORE_ENV = "REPRO_CORE"

#: valid execution cores: ``fast`` is the batched/compiled core
#: (:mod:`repro.sim.fastcore`); ``reference`` is the single-step
#: interpreter the fast core is differentially tested against.
VALID_CORES = ("fast", "reference")


@dataclass(frozen=True)
class GPUConfig:
    """One SM's geometry and timing parameters."""

    rf_spec: RegisterFileSpec = field(default_factory=RegisterFileSpec)
    clock_ghz: float = 1.8
    #: instructions issued per cycle across the SM's warps
    issue_width: int = 1
    #: result latencies (cycles) by pipeline class
    valu_latency: int = 4
    salu_latency: int = 1
    lds_latency: int = 24
    smem_latency: int = 100
    mem_latency: int = 300
    #: streaming device-memory bandwidth share of this SM, bytes/cycle
    mem_bytes_per_cycle: float = 8.0
    #: effective context-swap throughput, bytes/cycle.  The driver-managed
    #: swap routine moves context far below raw bandwidth: Table I implies
    #: ~0.08-0.2 B/cycle per SM (e.g. KM: 54 KB per 4-warp block in 327 µs
    #: at 1.8 GHz).  Calibrated so BASELINE lands in the paper's band.
    ctx_bytes_per_cycle: float = 0.093
    #: restore traffic pipelines better than the store path ("the resuming
    #: time is usually shorter than the preemption time because of better
    #: memory latency hiding", Table I discussion)
    ctx_load_speedup: float = 1.9
    #: fixed per-request service cycles for context-buffer accesses
    ctx_request_overhead: float = 16.0
    #: CKPT: checkpoint every Nth execution of the instrumented basic block
    ckpt_interval: int = 16
    #: scoreboard entries kept before completed writes are pruned.  The
    #: per-warp scoreboard (register -> completion cycle) only grows while
    #: long-latency results are outstanding; pruning on every issue would
    #: cost a dict rebuild per instruction, while never pruning makes the
    #: ready-cycle lookups walk stale entries.  The threshold trades the
    #: (amortized) rebuild cost against lookup-table size; 64 comfortably
    #: exceeds the register count a warp can have in flight under the
    #: default latencies, so rebuilds are rare in practice.
    scoreboard_prune_threshold: int = 64
    #: safety valve for run-away simulations
    max_cycles: int = 30_000_000
    #: record structured trace events (:mod:`repro.obs`).  Off by default:
    #: the disabled tracer costs one attribute check per issue and cannot
    #: change simulated cycles (``REPRO_TRACE=1`` enables it too)
    trace_events: bool = False
    #: ``"routine"`` records the preemption life-cycle events only;
    #: ``"issue"`` additionally records one event per issued instruction
    #: (``REPRO_TRACE=issue`` raises this from the environment)
    trace_detail: str = "routine"
    #: execution core: ``"fast"`` (batched warp stepping + compiled basic
    #: blocks, bit-identical timing) or ``"reference"`` (the single-step
    #: interpreter).  ``REPRO_CORE`` overrides this at SM construction.
    #: Part of the frozen config, so every artifact-cache key (prepared
    #: kernels, experiment profiles, compiled blocks) separates by core.
    core: str = "fast"

    def __post_init__(self) -> None:
        # reject degenerate rates up front: a zero bandwidth divides by
        # zero at the first memory request, and a falsy-zero context rate
        # used to silently alias the streaming rate (see MemoryPipeline)
        for name in ("mem_bytes_per_cycle", "ctx_bytes_per_cycle",
                     "ctx_load_speedup", "clock_ghz"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"GPUConfig.{name} must be > 0, got {value!r}")
        for name in ("ckpt_interval", "max_cycles", "issue_width"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"GPUConfig.{name} must be >= 1, got {value!r}")
        if self.core not in VALID_CORES:
            raise ValueError(
                f"GPUConfig.core must be one of {VALID_CORES}, got {self.core!r}"
            )

    @property
    def warp_size(self) -> int:
        return self.rf_spec.warp_size

    @property
    def resolved_core(self) -> str:
        """Effective core: ``REPRO_CORE`` wins over :attr:`core`."""
        env = os.environ.get(CORE_ENV, "").strip().lower()
        if env in VALID_CORES:
            return env
        return self.core

    def cycles_to_us(self, cycles: float) -> float:
        """Convert simulated cycles to microseconds at the configured clock."""
        return cycles / (self.clock_ghz * 1e3)

    @staticmethod
    def radeon_vii() -> "GPUConfig":
        """The evaluation configuration (paper §V)."""
        return GPUConfig(rf_spec=RegisterFileSpec(warp_size=64))

    @staticmethod
    def radeon_vii_contended() -> "GPUConfig":
        """Fully-occupied-SM emulation for the Fig. 8-10 experiments.

        The paper runs batch-job kernels at full occupancy (~40 resident
        warps per SM); simulating a handful of warps, the equivalent
        per-warp-group share of streaming bandwidth is much smaller.  This
        preset scales streaming bandwidth down accordingly so that the
        *relative* costs the figures depend on — executing deferred
        instructions (CS-Defer), re-executing checkpoint rollback windows
        (CKPT) — stand in the paper's proportion to context-transfer time.
        """
        return GPUConfig(
            rf_spec=RegisterFileSpec(warp_size=64),
            mem_bytes_per_cycle=0.35,
            mem_latency=500,
        )

    @staticmethod
    def small(warp_size: int = 4) -> "GPUConfig":
        """A small, fast configuration for unit and property tests."""
        return GPUConfig(
            rf_spec=RegisterFileSpec(warp_size=warp_size),
            mem_latency=40,
            smem_latency=16,
            lds_latency=8,
            ctx_bytes_per_cycle=2.0,
            ctx_request_overhead=4.0,
            max_cycles=2_000_000,
        )
