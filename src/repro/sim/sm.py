"""Cycle-level SM model: warp scheduler, pipelines, preemption hooks.

One instruction issues per cycle (round-robin over ready warps, as on GCN's
per-SIMD schedulers).  ALU results complete after a fixed latency; memory
traffic flows through a bandwidth-limited pipeline shared by all warps on
the SM — which is how a preemption routine's stores contend with the
streaming traffic of non-preempted warps (paper §V, Table I discussion).

The SM knows nothing about *why* a warp is running a routine; the
:class:`~repro.sim.preemption.PreemptionController` flips warp modes and
interprets the measurements.

Hot-loop structure (the experiment engine fans thousands of these runs
out, so per-issue constants matter):

* the scheduler keeps an **issuable-warp list** — warps that leave the
  issuable modes (``EVICTED``/``DONE``) drop out instead of being rescanned
  every step; external code that revives a warp (the preemption controller
  on resume) calls :meth:`SM.refresh_issuable`;
* issue consults the per-program tables of :mod:`repro.sim.tables`
  (pre-resolved dispatch kinds, register-id def tuples, per-config latency
  arrays) instead of chasing ``Instruction`` attributes;
* the RUNNING-mode pc histogram is a flat list indexed by pc, exposed as a
  dict via :attr:`SMStats.pc_hist` for the Fig. 7 weighting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..faults.errors import SimulationHangError
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import OpClass
from ..obs.events import SM_WIDE, EventKind, Tracer
from .config import GPUConfig
from .executor import Executor, MemTraffic
from .memory import DeviceMemory, MemoryPipeline
from .regfile import LDSBlock
from .warp import SimWarp, WarpMode


@dataclass
class SMStats:
    cycles: int = 0
    issued: int = 0
    issued_by_mode: dict[str, int] = field(default_factory=dict)
    #: dynamic execution count per main-program pc (RUNNING mode only),
    #: stored as a flat list indexed by pc; weights the Fig. 7 context
    #: statistics by what actually executes
    pc_counts: list[int] = field(default_factory=list)

    @property
    def pc_hist(self) -> dict[int, int]:
        """Dict view of :attr:`pc_counts` (non-zero entries only)."""
        return {pc: n for pc, n in enumerate(self.pc_counts) if n}


class SM:
    """One streaming multiprocessor executing a set of warps."""

    def __init__(self, config: GPUConfig, memory: DeviceMemory) -> None:
        self.config = config
        self.memory = memory
        self.pipeline = MemoryPipeline(
            bytes_per_cycle=config.mem_bytes_per_cycle,
            latency=config.mem_latency,
            ctx_bytes_per_cycle=config.ctx_bytes_per_cycle,
            ctx_load_speedup=config.ctx_load_speedup,
            ctx_request_overhead=config.ctx_request_overhead,
        )
        self.warps: list[SimWarp] = []
        self.cycle = 0
        self.stats = SMStats()
        self._rr = 0
        self._issuable: list[SimWarp] = []
        self._latency_key = (
            config.valu_latency,
            config.lds_latency,
            config.salu_latency,
        )
        #: structured event recorder (:mod:`repro.obs`); ``None`` — the
        #: default — keeps every emission site to one branch per issue
        self.tracer: Tracer | None = None
        #: called before a RUNNING warp issues; may flip it into a routine
        self.pre_issue_hook: Callable[[SimWarp, int], None] | None = None
        #: called when a warp finishes its current program
        self.program_end_hook: Callable[[SimWarp, int], None] | None = None
        #: called when a ckpt_probe issues
        self.ckpt_hook: Callable[[SimWarp, Instruction, int], None] | None = None
        #: fault injector (:class:`repro.faults.injector.FaultInjector`);
        #: ``None`` — the default — costs one branch per issue
        self.faults = None
        #: execution core for :meth:`advance`/:meth:`run` ("fast" or
        #: "reference"); :meth:`step` is always the reference interpreter
        self.core = config.resolved_core
        #: lazily-created :class:`repro.sim.fastcore.FastCore`
        self._fast = None
        # reused scheduler-scan buffers (step() runs once per issue; fresh
        # lists per step dominated the reference core's scan cost)
        self._cand_w: list[SimWarp] = []
        self._cand_r: list[int] = []
        self._ready_buf: list[SimWarp] = []

    # -- setup ------------------------------------------------------------------

    def add_warp(self, warp: SimWarp, lds: LDSBlock | None = None) -> None:
        if lds is not None and warp.lds is None:
            warp.lds = lds
        self.warps.append(warp)
        if warp.issuable:
            self._issuable.append(warp)

    def executor_for(self, warp: SimWarp) -> Executor:
        executor = warp._executor
        if executor is None:
            executor = warp._executor = Executor(self.memory, warp.lds)
        return executor

    def refresh_issuable(self) -> None:
        """Rebuild the issuable-warp list after an external mode change.

        The scheduler drops warps from its scan list when they leave the
        issuable modes; anything that flips a warp *back* (resuming an
        EVICTED warp) must call this so the warp is scheduled again.  The
        list is rebuilt in ``self.warps`` order so the scan order (and
        therefore pipeline-request order) is identical to a full rescan.
        """
        self._issuable = [w for w in self.warps if w.issuable]

    # -- latency model -------------------------------------------------------------

    def _alu_latency(self, opclass: OpClass) -> int:
        config = self.config
        if opclass is OpClass.VALU:
            return config.valu_latency
        if opclass is OpClass.LDS:
            return config.lds_latency
        return config.salu_latency

    # -- main loop --------------------------------------------------------------------

    def _handle_program_end(self, warp: SimWarp) -> None:
        if self.program_end_hook is not None:
            self.program_end_hook(warp, self.cycle)
            if not warp.at_program_end() or not warp.issuable:
                return
        if warp.mode is WarpMode.RUNNING:
            warp.mode = WarpMode.DONE

    def _scan_slow(self, warp: SimWarp) -> bool:
        """Handle program ends and pending preemption flags for one warp;
        returns True when the warp still has an instruction to issue."""
        while warp.issuable and warp.at_program_end():
            self._handle_program_end(warp)
        if not warp.issuable or warp.at_program_end():
            return False
        if (
            warp.preempt_flag
            and warp.mode is WarpMode.RUNNING
            and self.pre_issue_hook is not None
        ):
            self.pre_issue_hook(warp, self.cycle)
            # the hook may have swapped in an *empty* routine (nothing
            # live at the signal point): finish it immediately
            while warp.issuable and warp.at_program_end():
                self._handle_program_end(warp)
            if not warp.issuable or warp.at_program_end():
                return False
        return True

    def step(self) -> bool:
        """Advance to the next issue; returns False when nothing can run.

        Always the reference single-issue interpreter — the batching fast
        core lives behind :meth:`advance`.  Mixing the two is safe: any
        vector work the fast core still has deferred is materialized here
        first.
        """
        fast = self._fast
        if fast is not None and fast.queue:
            fast.flush()
        cand_w = self._cand_w
        cand_r = self._cand_r
        cand_w.clear()
        cand_r.clear()
        dropped = False
        running = WarpMode.RUNNING
        preempt = WarpMode.PREEMPT_ROUTINE
        resume = WarpMode.RESUME_ROUTINE
        for warp in self._issuable:
            mode = warp.mode
            if mode is not running and mode is not preempt and mode is not resume:
                dropped = True
                continue
            if warp.state.pc >= warp.tables().n or warp.preempt_flag:
                if not self._scan_slow(warp):
                    dropped = dropped or not warp.issuable
                    continue
            cand_w.append(warp)
            cand_r.append(warp.ready_cycle())
        if dropped:
            self.refresh_issuable()
        if not cand_w:
            return False

        earliest = min(cand_r)
        tracer = self.tracer
        if tracer is not None and earliest > self.cycle:
            tracer.emit(
                self.cycle, EventKind.ISSUE_STALL, SM_WIDE,
                dur=earliest - self.cycle,
            )
        self.cycle = max(self.cycle, earliest)
        ready_now = self._ready_buf
        ready_now.clear()
        cycle = self.cycle
        for ready, warp in zip(cand_r, cand_w):
            if ready <= cycle:
                ready_now.append(warp)
        # round-robin among warps ready this cycle.  Pinned tie-break: at
        # equal readiness the order is (warp_id >= rr first, then warp_id),
        # which together with the controller's warp_id-ordered poll makes
        # same-cycle signal delivery deterministic as (signal_cycle,
        # warp_id) on both cores — the fast core replicates this exact
        # sort (see fastcore's scheduler pick), and tests/test_signal_order.py
        # twins the two.
        ready_now.sort(key=lambda w: (w.warp_id < self._rr, w.warp_id))
        warp = ready_now[0]
        self._rr = (warp.warp_id + 1) % max(1, len(self.warps))
        self._issue(warp)
        self.cycle += 1
        self.stats.cycles = self.cycle
        return True

    def step_warp(self, warp: SimWarp) -> bool:
        """Advance exactly one chosen warp — the model checker's
        choice-point hook (:mod:`repro.mc`).

        Semantically one scheduler visit to *warp*: program ends and
        pending preemption flags are handled first, then one instruction
        issues.  Unlike :meth:`step`, a mode/program transition performed
        by a hook (divert into a routine, eviction, resume completion,
        retirement) returns *without* issuing, so every protocol boundary
        is its own observable state for the checker's invariants.

        Timing is kept sane but is not the point: the clock jumps to the
        chosen warp's ready cycle (never backwards), so cycle counts stay
        monotonic while the exploration ranges over schedules the
        round-robin scheduler would not produce.  Any vector work the fast
        core still has deferred is materialized first, exactly as in
        :meth:`step` — both cores reach identical states through here.

        Returns True when the warp made progress (issued or transitioned).
        """
        fast = self._fast
        if fast is not None and fast.queue:
            fast.flush()
        if not warp.issuable:
            return False
        mode = warp.mode
        program = warp.program
        pc = warp.state.pc
        has_instruction = self._scan_slow(warp)
        if (
            warp.mode is not mode
            or warp.program is not program
            or warp.state.pc != pc
        ):
            # a hook transitioned the warp: stop at the boundary
            self.refresh_issuable()
            return True
        if not has_instruction:
            self.refresh_issuable()
            return False
        self.cycle = max(self.cycle, warp.ready_cycle())
        self._issue(warp)
        self.cycle += 1
        self.stats.cycles = self.cycle
        return True

    def next_issue_cycle(self) -> int | None:
        """Earliest cycle at which any warp could issue — without advancing.

        Side-effect-free scheduler probe used by the experiment loop to
        honour a resume deadline exactly: warps in issuable modes with an
        instruction left contribute their ready cycle; warps parked at a
        program end are skipped (a real scan would retire them without
        issuing).  Returns ``None`` when nothing is left to issue.
        """
        best: int | None = None
        running = WarpMode.RUNNING
        preempt = WarpMode.PREEMPT_ROUTINE
        resume = WarpMode.RESUME_ROUTINE
        for warp in self._issuable:
            mode = warp.mode
            if mode is not running and mode is not preempt and mode is not resume:
                continue
            if warp.state.pc >= warp.tables().n:
                continue
            ready = warp.ready_cycle()
            if best is None or ready < best:
                best = ready
        return best

    def _issue(self, warp: SimWarp) -> None:
        tables = warp.tables()
        pc = warp.state.pc
        cycle = self.cycle
        if tables.is_ckpt_probe[pc] and self.ckpt_hook is not None:
            self.ckpt_hook(warp, tables.program.instructions[pc], cycle)
            pc = warp.state.pc  # the hook may rewind/redirect the warp
        executor = self.executor_for(warp)
        running = warp.mode is WarpMode.RUNNING
        if running:
            # CKPT resume measurement: done once execution re-reaches the
            # dynamic instruction the signal originally hit.
            if (
                warp.resume_watch_dyn is not None
                and warp.resume_start_cycle is not None
                and warp.resume_done_cycle is None
                and warp.dyn_count >= warp.resume_watch_dyn
            ):
                warp.resume_done_cycle = cycle
                if self.tracer is not None:
                    self.tracer.emit(
                        cycle, EventKind.RESUME_END, warp.warp_id,
                        strategy="drop",
                    )
            counts = self.stats.pc_counts
            if pc >= len(counts):
                counts.extend([0] * (pc + 1 - len(counts)))
            counts[pc] += 1
        tracer = self.tracer
        if tracer is not None and tracer.full:
            tracer.emit(
                cycle, EventKind.ISSUE, warp.warp_id,
                pc=pc, mode=warp.mode.value,
                mnemonic=tables.program.instructions[pc].mnemonic,
            )
        traffic = executor.execute_indexed(tables, warp.state, pc)
        warp.next_free = cycle + 1
        if running:
            warp.dyn_count += 1
        self.stats.issued += 1
        mode_key = warp.mode.value
        self.stats.issued_by_mode[mode_key] = (
            self.stats.issued_by_mode.get(mode_key, 0) + 1
        )

        latencies = warp._lat_list
        if warp._lat_tables is not tables:
            latencies = warp._lat_list = tables.latencies(*self._latency_key)
            warp._lat_tables = tables
        completion = cycle + latencies[pc]
        if traffic is not None and traffic.nbytes:
            completion = self.pipeline.request(
                cycle,
                traffic.nbytes,
                is_ctx=traffic.is_ctx,
                kind=traffic.kind or tables.program.instructions[pc].mnemonic,
            )
            warp.routine_last_mem_completion = max(
                warp.routine_last_mem_completion, completion
            )
        pending = warp.pending
        for rid in tables.def_ids[pc]:
            pending[rid] = completion
        if completion > warp.pending_max:
            warp.pending_max = completion
        if len(pending) > self.config.scoreboard_prune_threshold:
            warp.prune_pending(cycle)
        faults = self.faults
        if faults is not None:
            # after all per-issue bookkeeping: the injector may abort a
            # preemption routine (flipping the warp to EVICTED) or stall
            # the memory port; the next scan handles the mode change
            faults.on_issue(self, warp, cycle)

    def warp_state_dump(self) -> list[dict]:
        """Per-warp diagnostic snapshot for the watchdog's hang report."""
        return [
            {
                "warp": warp.warp_id,
                "mode": warp.mode.value,
                "pc": warp.state.pc,
                "dyn": warp.dyn_count,
                "next_free": warp.next_free,
                "pending": len(warp.pending),
            }
            for warp in self.warps
        ]

    def advance(
        self, stop_cycle: int | None = None, limit: int | None = None
    ) -> bool:
        """Advance by one batch of issues (fast core) or one issue
        (reference core); returns False when nothing can run.

        Semantically a loop over :meth:`step` that hands control back at
        every externally observable boundary — scheduler hooks, a RUNNING
        warp reaching its ``dyn_break``, *stop_cycle*, the *limit*
        watchdog.  With ``core="reference"`` it degrades to exactly one
        :meth:`step`.
        """
        if self.core != "fast":
            return self.step()
        fast = self._fast
        if fast is None:
            from .fastcore import FastCore

            fast = self._fast = FastCore(self)
        return fast.advance(stop_cycle=stop_cycle, limit=limit)

    def run(self, max_cycles: int | None = None) -> int:
        """Run until no warp can issue; returns the final cycle.

        The cycle cap is the no-forward-progress watchdog: exceeding it
        raises :class:`~repro.faults.errors.SimulationHangError` with a
        per-warp diagnostic dump instead of spinning forever.
        """
        # `is None`, not truthiness: an explicit max_cycles=0 means "trip
        # the watchdog immediately", not "use the config default"
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        while self.advance(limit=limit):
            if self.cycle > limit:
                raise SimulationHangError(
                    f"simulation exceeded {limit} cycles (livelock?)",
                    cycle=self.cycle,
                    warp_dump=self.warp_state_dump(),
                )
        return self.cycle
