"""Basic-block compiler for the fast execution core.

The fast core (:mod:`repro.sim.fastcore`) splits every instruction into a
*timing* half (issued cycle-exactly by the scheduler) and a *semantics*
half.  Scalar semantics (SALU, compares, branches) execute eagerly at issue
time — branch outcomes feed the scheduler — while vector semantics (VALU,
memory, LDS, context transfers) are *deferred*: recorded with their
issue-time scalar operands and materialized in batch at the next barrier.

This module compiles one :class:`~repro.isa.instruction.Program` under one
:class:`~repro.sim.config.GPUConfig` into that split form:

* every pc gets an :class:`OpPlan` — an eager closure, a deferred closure
  (plus a capture function for issue-time scalar operands), a lockstep
  *group* closure for cross-warp batched VALU dispatch, the static memory
  traffic, the result latency and the barrier/boundary flags;
* the program is partitioned into **straight-line basic blocks** (leaders
  at branch targets; boundaries at branches, program ends, checkpoint
  probes and barrier instructions); any contiguous run of a block's
  deferred ops — entered at *any* position, not just the block head — is
  compiled per warp into one bound segment (:func:`bind_segment`) whose
  register rows are resolved once and whose ops are single
  ``ufunc(..., out=row)`` calls, so a warp materializes a whole run
  through one Python call with zero per-op allocation;
* the intermediate representation (:func:`build_ir`) is pure data —
  mnemonics, operand tags, latencies, traffic, block spans — and is keyed
  in the content-addressed artifact cache by the program's assembly text
  plus the **full** canonical ``GPUConfig`` (see
  :func:`repro.analysis.cache.canonical`), so *any* config field that can
  change semantics or timing (warp width, latencies, ctx rates, …)
  produces a different key.  This is the conservative fix for the PR 1
  warp-size aliasing bug class: compiled blocks can never be reused across
  configs that differ anywhere.

Correctness bar: every closure reproduces the reference executor's
semantics bit-for-bit (same NumPy dtypes and formulas where rounding or
wrapping is observable).  The differential twin suite
(``tests/test_fastcore_equiv.py``) holds the two cores to that bar.
"""

from __future__ import annotations

import struct
import warnings

import numpy as np

from ..isa.instruction import Imm, Label, Program
from ..isa.opcodes import OpClass
from ..isa.registers import EXEC, SCC, RegKind
from .config import GPUConfig
from .executor import _CMP_OPS, _FLOAT_OPS, _INT_OPS, ExecutionError

_M32 = 0xFFFFFFFF
_MASK64 = np.uint64(0xFFFFFFFF)

# -- IR flags --------------------------------------------------------------------

#: materialization barrier: drain all deferred work before executing
F_BARRIER = 1
#: ckpt_probe — the SM may invoke the checkpoint hook at this pc
F_PROBE = 2
#: ends a straight-line block (branch, endpgm, probe, barrier)
F_ENDS = 4

# -- scalar (eager) semantics ----------------------------------------------------

#: Python-int twins of the executor's ``_INT_OPS``.  Operands are 32-bit
#: non-negative ints; results are masked by the caller.  Exactness vs the
#: uint64 NumPy formulas: all operands are < 2**32, so +, *, mad and lshl
#: stay below 2**64 (no uint64 wrap to diverge from exact Python ints);
#: sub relies on ``& 0xFFFFFFFF`` giving the same residue for Python's
#: negative result as for uint64 wraparound; ~ likewise.
_PY_INT_OPS = {
    "mov": lambda a: a,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "mulhi": lambda a, b: (a * b) >> 32,
    "mad": lambda a, b, c: a * b + c,
    "min": min,
    "max": max,
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "not": lambda a: ~a,
    "lshl": lambda a, b: a << (b & 31),
    "lshr": lambda a, b: a >> (b & 31),
}

# scratch pair for exact uint32<->float32 bit casts of captured scalars
_f32_bits = struct.Struct("<I")
_f32_val = struct.Struct("<f")


def _bitcast_f32(value: int) -> np.float32:
    """The float32 whose storage bits are *value* (reference: uint32 view)."""
    return np.float32(_f32_val.unpack(_f32_bits.pack(value & _M32))[0])


# -- operand encoding ------------------------------------------------------------
#
# Operands are encoded as small tuples so the IR pickles without touching
# Reg/Imm objects: ('v', i) vector reg, ('s', i) scalar reg, ('e',) EXEC,
# ('c',) SCC, ('i', value) immediate, ('t', target_pc) branch target.


def _encode_operand(op):
    if isinstance(op, Imm):
        return ("i", op.value & _M32)
    if isinstance(op, Label):
        raise AssertionError("labels are resolved to ('t', pc) by the builder")
    if op.kind is RegKind.VECTOR:
        return ("v", op.index)
    if op.kind is RegKind.SCALAR:
        return ("s", op.index)
    if op == EXEC:
        return ("e",)
    if op == SCC:
        return ("c",)
    raise ExecutionError(f"cannot encode operand {op!r}")


def _is_scalar_read(spec) -> bool:
    """Operand needs an issue-time capture when used by a deferred op?"""
    return spec[0] in ("s", "e", "c")


# -- scalar readers / writers (eager domain) -------------------------------------


def _scalar_reader(spec):
    """Issue-time reader returning the operand's 32-bit value as an int
    (reference ``_scalar_operand``: note EXEC truncates to 32 bits here)."""
    tag = spec[0]
    if tag == "i":
        value = spec[1]
        return lambda st: value
    if tag == "s":
        index = spec[1]
        return lambda st: int(st.sregs[index])
    if tag == "e":
        return lambda st: st._exec_as_int() & _M32
    if tag == "c":
        return lambda st: st.scc
    raise ExecutionError(f"operand {spec!r} is not scalar-readable")


def _scalar_writer(spec):
    """Eager writer matching ``WarpState.set_scalar`` semantics."""
    tag = spec[0]
    if tag == "s":
        index = spec[1]

        def write_sreg(st, value):
            st.sregs[index] = value & _M32

        return write_sreg
    if tag == "e":
        return lambda st, value: st._exec_from_int(value)
    if tag == "c":

        def write_scc(st, value):
            st.scc = value & 1

        return write_scc
    raise ExecutionError(f"cannot write {spec!r} as a scalar")


def _capture_fn(specs):
    """Issue-time capture of a deferred op's scalar operands (or ``None``)."""
    readers = [_scalar_reader(s) for s in specs if _is_scalar_read(s)]
    if not readers:
        return None
    if len(readers) == 1:
        return readers[0]
    if len(readers) == 2:
        r0, r1 = readers
        return lambda st: (r0(st), r1(st))
    return lambda st: tuple(r(st) for r in readers)


def _cap_positions(specs):
    """For each operand: ('cap', k) when the k-th captured value feeds it."""
    positions = []
    k = 0
    n_caps = sum(1 for s in specs if _is_scalar_read(s))
    for spec in specs:
        if _is_scalar_read(spec):
            if n_caps == 1:
                positions.append(("cap",))  # cap IS the value
            else:
                positions.append(("capk", k))
            k += 1
        else:
            positions.append(spec)
    return tuple(positions)


# -- deferred vector closures ----------------------------------------------------


def _u32_fetcher(spec, warp_size, broadcast):
    """Replay-time fetcher in the uint32 compute domain."""
    tag = spec[0]
    if tag == "v":
        index = spec[1]
        return lambda st, cap: st.vregs[index]
    if tag == "i":
        if broadcast:
            const = np.full(warp_size, spec[1], dtype=np.uint32)
            return lambda st, cap: const
        const = np.uint32(spec[1])
        return lambda st, cap: const
    if tag == "cap":
        if broadcast:
            return lambda st, cap: np.full(warp_size, cap, dtype=np.uint32)
        return lambda st, cap: np.uint32(cap)
    if tag == "capk":
        k = spec[1]
        if broadcast:
            return lambda st, cap: np.full(warp_size, cap[k], dtype=np.uint32)
        return lambda st, cap: np.uint32(cap[k])
    raise ExecutionError(f"bad vector operand {spec!r}")


def _u64_fetcher(spec, warp_size):
    """Replay-time fetcher in the reference executor's uint64 domain
    (memory addresses/data and mulhi)."""
    tag = spec[0]
    if tag == "v":
        index = spec[1]
        return lambda st, cap: st.vregs[index].astype(np.uint64)
    if tag == "i":
        const = np.full(warp_size, spec[1], dtype=np.uint64)
        return lambda st, cap: const
    if tag == "cap":
        return lambda st, cap: np.full(warp_size, cap & _M32, dtype=np.uint64)
    if tag == "capk":
        k = spec[1]
        return lambda st, cap: np.full(warp_size, cap[k] & _M32, dtype=np.uint64)
    raise ExecutionError(f"bad vector operand {spec!r}")


def _f32_fetcher(spec, warp_size, broadcast):
    """Replay-time fetcher as float32 (zero-copy view of vector registers —
    bit-identical to the reference's astype(uint32).view(float32))."""
    tag = spec[0]
    if tag == "v":
        index = spec[1]
        return lambda st, cap: st.vregs[index].view(np.float32)
    if tag == "i":
        if broadcast:
            const = np.full(warp_size, _bitcast_f32(spec[1]), dtype=np.float32)
            return lambda st, cap: const
        const = _bitcast_f32(spec[1])
        return lambda st, cap: const
    if tag == "cap":
        if broadcast:
            return lambda st, cap: np.full(
                warp_size, _bitcast_f32(cap), dtype=np.float32
            )
        return lambda st, cap: _bitcast_f32(cap)
    if tag == "capk":
        k = spec[1]
        if broadcast:
            return lambda st, cap: np.full(
                warp_size, _bitcast_f32(cap[k]), dtype=np.float32
            )
        return lambda st, cap: _bitcast_f32(cap[k])
    raise ExecutionError(f"bad vector operand {spec!r}")


def _write_u32(dst_index):
    """Exec-masked uint32 result write (reference ``_write_vector``)."""

    def write(st, result):
        if st.exec_all:
            st.vregs[dst_index][:] = result
        else:
            mask = st.exec_mask
            st.vregs[dst_index][mask] = result[mask]

    return write


def _make_valu_int(base, srcs, dst, warp_size):
    op = _INT_OPS[base]
    # no vector operand at all (e.g. v_mov v1, 5): the reference computes a
    # full-width array from the broadcast operand, so force one here too
    any_vec = any(s[0] == "v" for s in srcs)
    if base == "mulhi":
        fetch = [_u64_fetcher(s, warp_size) for s in srcs]
        a, b = fetch
        write = _write_u32(dst[1])

        def run_mulhi(rt, cap):
            st = rt.state
            result = ((op(a(st, cap), b(st, cap))) & _MASK64).astype(np.uint32)
            write(st, result)

        return run_mulhi
    fetch = [
        _u32_fetcher(s, warp_size, broadcast=(i == 0 and not any_vec))
        for i, s in enumerate(srcs)
    ]
    write = _write_u32(dst[1])
    if len(fetch) == 1:
        f0 = fetch[0]

        def run1(rt, cap):
            st = rt.state
            write(st, op(f0(st, cap)))

        return run1
    if len(fetch) == 2:
        f0, f1 = fetch

        def run2(rt, cap):
            st = rt.state
            write(st, op(f0(st, cap), f1(st, cap)))

        return run2
    f0, f1, f2 = fetch

    def run3(rt, cap):
        st = rt.state
        write(st, op(f0(st, cap), f1(st, cap), f2(st, cap)))

    return run3


def _make_valu_float(base, srcs, dst, warp_size):
    op = _FLOAT_OPS[base]
    any_vec = any(s[0] == "v" for s in srcs)
    fetch = [
        _f32_fetcher(s, warp_size, broadcast=(i == 0 and not any_vec))
        for i, s in enumerate(srcs)
    ]
    dst_index = dst[1]

    def run(rt, cap):
        st = rt.state
        values = [f(st, cap) for f in fetch]
        bits = op(*values).astype(np.float32).view(np.uint32)
        if st.exec_all:
            st.vregs[dst_index][:] = bits
        else:
            mask = st.exec_mask
            st.vregs[dst_index][mask] = bits[mask]

    return run


def _group_fetch_u32(spec):
    """Lockstep-group fetcher over a (warps, num_vregs, lanes) backing view.
    Only const/vector operands — scalar captures disable grouping."""
    tag = spec[0]
    if tag == "v":
        index = spec[1]
        return lambda vb: vb[:, index]
    if tag == "i":
        const = np.uint32(spec[1])
        return lambda vb: const
    return None


def _make_group_int(base, srcs, dst):
    if base == "mulhi" or any(_group_fetch_u32(s) is None for s in srcs):
        return None
    op = _INT_OPS[base]
    fetch = [_group_fetch_u32(s) for s in srcs]
    dst_index = dst[1]

    def run(vb, eb, exec_all, caps):
        result = op(*[f(vb) for f in fetch])
        if exec_all:
            vb[:, dst_index] = result
        else:
            vb[:, dst_index][eb] = result[eb]

    return run


def _make_group_float(base, srcs, dst):
    if any(s[0] not in ("v", "i") for s in srcs):
        return None
    op = _FLOAT_OPS[base]
    dst_index = dst[1]

    def fetcher(spec):
        if spec[0] == "v":
            index = spec[1]
            return lambda vb: vb[:, index].view(np.float32)
        const = _bitcast_f32(spec[1])
        return lambda vb: const

    fetch = [fetcher(s) for s in srcs]

    def run(vb, eb, exec_all, caps):
        bits = op(*[f(vb) for f in fetch]).astype(np.float32).view(np.uint32)
        if exec_all:
            vb[:, dst_index] = bits
        else:
            vb[:, dst_index][eb] = bits[eb]

    return run


# -- per-warp bound segments -----------------------------------------------------
#
# The generic deferred closures above re-resolve register rows and allocate
# result arrays on every call.  For the hot path the fast core instead
# *binds* a run of deferred ops to one warp: register rows (and float32
# views of them) are looked up once, immediates are pre-converted, and each
# op becomes a single ``ufunc(..., out=row)`` call writing the register
# file in place — zero allocations.  The bound form is only valid under a
# full EXEC mask (it writes whole rows); the generated segment checks
# ``exec_all`` once — legal because EXEC writes are barriers, so the mask
# cannot change inside one materialization batch — and falls back to the
# generic exec-masked closures op by op otherwise.
#
# Exactness notes (vs the reference's uint64-then-mask formulas):
# add/sub/mul/mad wrap identically in uint32; and/or/xor/not/min/max are
# value-preserving for operands < 2**32; shift amounts are pre-masked to
# 0..31 so uint32 shifts match the masked uint64 results bit for bit.
# Float ops run on float32 views of the same storage, which is exactly the
# reference's astype(uint32).view(float32) round trip.

_INT_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "xor": np.bitwise_xor,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
}
_FLOAT_UFUNCS = {
    "addf": np.add,
    "subf": np.subtract,
    "mulf": np.multiply,
    "minf": np.minimum,
    "maxf": np.maximum,
}
_SHIFT_UFUNCS = {"lshl": np.left_shift, "lshr": np.right_shift}

#: names every generated segment can reference; merged into each cached
#: entry's constant environment
_BASE_ENV = {
    "_u32": np.uint32,
    "_u64": np.uint64,
    "_bf": _bitcast_f32,
    "_cp": np.copyto,
    "_inv": np.invert,
    "_and": np.bitwise_and,
    "_mul": np.multiply,
    "_add": np.add,
    "_shr64": np.right_shift,
    "_c31": np.uint32(31),
    "_c2": np.uint64(2),
}

#: compiled-segment cache: content key -> (code, consts, regs).  Keyed by
#: the ops' bindspecs (operand tags, immediates, register indices) and the
#: warp size, NOT by program identity — launches rebuild identical program
#: objects every run, and recompiling the generated source each time costs
#: more than executing it.  ``regs`` lists the (name, vreg_index, domain)
#: register rows a per-warp bind must resolve; everything else in
#: ``consts`` (ufuncs, immediates, scratch temporaries) is warp-agnostic.
#: Scratch temporaries are safely shared: materialization is sequential.
_SEG_CACHE: dict = {}


def _emit_bound(i, plan, ws, consts, regs, out) -> bool:
    """Append op *i*'s full-EXEC bound statement(s) to *out* (statement
    strings evaluated against the bind environment); ``False`` — with the
    generic call emitted instead — when the op has no bound form (mulhi,
    LDS ops without an LDS block, context transfers)."""
    bs = plan.bindspec
    if bs is None:
        out.append(f"_d{i}(_rt, caps[{i}])")
        return False
    kind, base, specs, dst = bs

    def reg(idx, domain):
        name = f"_r{idx}" if domain == 0 else f"_rf{idx}"
        regs.add((name, idx, domain))
        return name

    def iexpr(j, spec):
        tag = spec[0]
        if tag == "v":
            return reg(spec[1], 0)
        if tag == "i":
            name = f"_a{i}_{j}"
            consts[name] = np.uint32(spec[1])
            return name
        if tag == "cap":
            return f"_u32(caps[{i}])"
        return f"_u32(caps[{i}][{spec[1]}])"

    if kind == "i":
        oname = reg(dst, 0)
        if base == "mov":
            out.append(f"_cp({oname}, {iexpr(0, specs[0])})")
        elif base == "not":
            out.append(f"_inv({iexpr(0, specs[0])}, out={oname})")
        elif base == "mad":
            tname = f"_t{i}"
            consts[tname] = np.empty(ws, dtype=np.uint32)
            e0, e1, e2 = (iexpr(j, s) for j, s in enumerate(specs))
            out.append(f"_mul({e0}, {e1}, out={tname})")
            out.append(f"_add({tname}, {e2}, out={oname})")
        elif base in _SHIFT_UFUNCS:
            ufname = f"_uf{i}"
            consts[ufname] = _SHIFT_UFUNCS[base]
            e0 = iexpr(0, specs[0])
            tag = specs[1][0]
            if tag == "v":
                tname = f"_t{i}"
                consts[tname] = np.empty(ws, dtype=np.uint32)
                e1 = iexpr(1, specs[1])
                out.append(f"_and({e1}, _c31, out={tname})")
                out.append(f"{ufname}({e0}, {tname}, out={oname})")
            elif tag == "i":
                name = f"_a{i}_1"
                consts[name] = np.uint32(specs[1][1] & 31)
                out.append(f"{ufname}({e0}, {name}, out={oname})")
            elif tag == "cap":
                out.append(f"{ufname}({e0}, _u32(caps[{i}] & 31), out={oname})")
            else:
                k = specs[1][1]
                out.append(
                    f"{ufname}({e0}, _u32(caps[{i}][{k}] & 31), out={oname})"
                )
        else:
            ufname = f"_uf{i}"
            consts[ufname] = _INT_UFUNCS[base]
            e0, e1 = (iexpr(j, s) for j, s in enumerate(specs))
            out.append(f"{ufname}({e0}, {e1}, out={oname})")
        return True

    if kind == "f":

        def fexpr(j, spec):
            tag = spec[0]
            if tag == "v":
                return reg(spec[1], 1)
            if tag == "i":
                name = f"_a{i}_{j}"
                consts[name] = _bitcast_f32(spec[1])
                return name
            if tag == "cap":
                return f"_bf(caps[{i}])"
            return f"_bf(caps[{i}][{spec[1]}])"

        oname = reg(dst, 1)
        if base == "madf":
            tname = f"_t{i}"
            consts[tname] = np.empty(ws, dtype=np.float32)
            e0, e1, e2 = (fexpr(j, s) for j, s in enumerate(specs))
            out.append(f"_mul({e0}, {e1}, out={tname})")
            out.append(f"_add({tname}, {e2}, out={oname})")
        else:
            ufname = f"_uf{i}"
            consts[ufname] = _FLOAT_UFUNCS[base]
            e0, e1 = (fexpr(j, s) for j, s in enumerate(specs))
            out.append(f"{ufname}({e0}, {e1}, out={oname})")
        return True

    # memory domain: address/offset in uint64, via one shared scratch row.
    # byte addresses are sums of two 32-bit values, so the uint64 word
    # index is always in [0, 2**31) — unsigned take/fancy-write bounds
    # checking matches the reference's sign-plus-range checks exactly.
    def mexpr(j, spec, domain):
        tag = spec[0]
        if tag == "v":
            return reg(spec[1], 0)
        if tag == "i":
            name = f"_a{i}_{j}"
            consts[name] = np.uint64(spec[1]) if domain else np.uint32(spec[1])
            return name
        conv = "_u64" if domain else "_u32"
        if tag == "cap":
            return f"{conv}(caps[{i}])"
        return f"{conv}(caps[{i}][{spec[1]}])"

    consts["_tm64"] = consts.get("_tm64", np.empty(ws, dtype=np.uint64))
    if kind == "gl" or kind == "ll":
        target = "_gi" if kind == "gl" else "_li"
        addr = mexpr(0, specs[0], 0)
        off = mexpr(1, specs[1], 1)
        out.append(f"_add({addr}, {off}, out=_tm64)")
        out.append(f"_shr64(_tm64, _c2, out=_tm64)")
        out.append(f"{target}(_tm64, {reg(dst, 0)})")
        return True
    # global/LDS store
    target = "_si" if kind == "gs" else "_sl"
    addr = mexpr(0, specs[0], 0)
    data = mexpr(1, specs[1], 0)
    off = mexpr(2, specs[2], 1)
    out.append(f"_add({addr}, {off}, out=_tm64)")
    out.append(f"_shr64(_tm64, _c2, out=_tm64)")
    out.append(f"{target}(_tm64, {data})")
    return True


def bind_segment(rt, plans):
    """Compile a run of deferred ops into one per-warp ``seg(caps)`` call.

    *caps* is the list of issue-time captures, one entry per op.  The
    generated function replays the whole run through bound ``out=`` ufuncs
    and full-warp gathers/scatters when the warp's EXEC mask is full, and
    through the generic exec-masked closures otherwise; both branches
    preserve program order, so memory effects are identical either way.
    The generated code object and its warp-agnostic constants are cached
    by op content (see ``_SEG_CACHE``); a bind only resolves the warp's
    register rows and replays the cached ``def``.
    """
    st = rt.state
    has_lds = rt.lds is not None
    key = (st.warp_size, has_lds, tuple(p.bindspec or "g" for p in plans))
    entry = _SEG_CACHE.get(key)
    if entry is None:
        consts = dict(_BASE_ENV)
        regs: set = set()
        fast: list[str] = []
        slow: list[str] = []
        bindable = False
        for i, plan in enumerate(plans):
            slow.append(f"_d{i}(_rt, caps[{i}])")
            bs = plan.bindspec
            if bs is not None and bs[0] in ("ll", "lw") and not has_lds:
                # no LDS block attached: the generic closure raises the
                # reference's ExecutionError
                fast.append(f"_d{i}(_rt, caps[{i}])")
                continue
            if _emit_bound(i, plan, st.warp_size, consts, regs, fast):
                bindable = True
        if bindable:
            src = ["def _seg(caps):", "    if _st.exec_all:"]
            src += ["        " + line for line in fast]
            src.append("    else:")
            src += ["        " + line for line in slow]
        else:
            src = ["def _seg(caps):"] + ["    " + line for line in slow]
        code = compile("\n".join(src), "<fastseg>", "exec")
        entry = _SEG_CACHE[key] = (code, consts, tuple(regs))
    code, consts, regs = entry
    env = dict(consts)
    env["_rt"] = rt
    env["_st"] = st
    memory = rt.memory
    env["_gi"] = memory.gather_into
    env["_si"] = memory.scatter_full
    if has_lds:
        env["_li"] = rt.lds.gather_into
        env["_sl"] = rt.lds.scatter_full
    vregs = st.vregs
    for name, idx, domain in regs:
        row = vregs[idx]
        env[name] = row.view(np.float32) if domain else row
    for i, plan in enumerate(plans):
        env[f"_d{i}"] = plan.defer
    exec(code, env)  # noqa: S102 - trusted, generated source
    return env["_seg"]


def _off_value(spec):
    """Deferred memory offset: a bound constant or the captured value."""
    tag = spec[0]
    if tag == "i":
        const = np.uint64(spec[1])
        return lambda cap: const
    if tag == "cap":
        return lambda cap: np.uint64(cap)
    if tag == "capk":
        k = spec[1]
        return lambda cap: np.uint64(cap[k])
    raise ExecutionError(f"bad scalar operand {spec!r}")


def _make_global_load(srcs, dst, warp_size):
    addr = _u64_fetcher(srcs[0], warp_size)
    off = _off_value(srcs[1])
    dst_index = dst[1]

    def run(rt, cap):
        st = rt.state
        mask = st.exec_mask
        loaded = rt.memory.gather(addr(st, cap) + off(cap), mask)
        st.vregs[dst_index][mask] = loaded[mask]

    return run


def _make_global_store(srcs, warp_size):
    addr = _u64_fetcher(srcs[0], warp_size)
    data = _u64_fetcher(srcs[1], warp_size)
    off = _off_value(srcs[2])

    def run(rt, cap):
        st = rt.state
        rt.memory.scatter(addr(st, cap) + off(cap), data(st, cap), st.exec_mask)

    return run


def _require_lds(rt):
    if rt.lds is None:
        raise ExecutionError("kernel uses LDS but no LDS block is attached")
    return rt.lds


def _make_lds_read(srcs, dst, warp_size):
    addr = _u64_fetcher(srcs[0], warp_size)
    off = _off_value(srcs[1])
    dst_index = dst[1]

    def run(rt, cap):
        st = rt.state
        mask = st.exec_mask
        loaded = _require_lds(rt).gather(addr(st, cap) + off(cap), mask)
        st.vregs[dst_index][mask] = loaded[mask]

    return run


def _make_lds_write(srcs, warp_size):
    addr = _u64_fetcher(srcs[0], warp_size)
    data = _u64_fetcher(srcs[1], warp_size)
    off = _off_value(srcs[2])

    def run(rt, cap):
        st = rt.state
        _require_lds(rt).scatter(addr(st, cap) + off(cap), data(st, cap), st.exec_mask)

    return run


def _make_ctx(mnemonic, srcs, dsts):
    """Context-buffer transfers (reference ``Executor._exec_ctx``)."""
    if mnemonic == "ctx_store_v":
        reg_index, slot = srcs[0][1], srcs[1][1]

        def store_v(rt, cap):
            st = rt.state
            st.ctx_buffer[slot] = st.vregs[reg_index].copy()

        return store_v
    if mnemonic == "ctx_load_v":
        slot = srcs[0][1]
        dst_index = dsts[0][1]

        def load_v(rt, cap):
            st = rt.state
            stored = st.ctx_buffer[slot]
            if np.isscalar(stored) or getattr(stored, "ndim", 1) == 0:
                st.vregs[dst_index, :] = np.uint32(int(stored) & _M32)
            else:
                st.vregs[dst_index, :] = stored

        return load_v
    if mnemonic == "ctx_store_lds":

        def store_lds(rt, cap):
            rt.state.ctx_buffer["lds"] = _require_lds(rt).snapshot()

        return store_lds
    if mnemonic == "ctx_load_lds":

        def load_lds(rt, cap):
            lds = _require_lds(rt)
            if "lds" in rt.state.ctx_buffer:
                lds.restore(rt.state.ctx_buffer["lds"])

        return load_lds
    raise ExecutionError(f"no semantics for {mnemonic}")


# -- eager closures --------------------------------------------------------------


def _make_salu_int(base, srcs, dst, next_pc):
    op = _PY_INT_OPS[base]
    readers = [_scalar_reader(s) for s in srcs]
    write = _scalar_writer(dst)
    if len(readers) == 1:
        r0 = readers[0]

        def run1(rt):
            st = rt.state
            write(st, op(r0(st)) & _M32)
            return next_pc

        return run1
    if len(readers) == 2:
        r0, r1 = readers

        def run2(rt):
            st = rt.state
            write(st, op(r0(st), r1(st)) & _M32)
            return next_pc

        return run2
    r0, r1, r2 = readers

    def run3(rt):
        st = rt.state
        write(st, op(r0(st), r1(st), r2(st)) & _M32)
        return next_pc

    return run3


def _make_salu_float(base, srcs, dst, next_pc):
    """Float SALU: mirror ``Executor._salu_op`` exactly (length-1 float32
    arrays, so rounding matches bit-for-bit)."""
    op = _FLOAT_OPS[base]
    readers = [_scalar_reader(s) for s in srcs]
    write = _scalar_writer(dst)

    def run(rt):
        st = rt.state
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            arrays = [
                np.array([r(st)], dtype=np.uint64).astype(np.uint32).view(np.float32)
                for r in readers
            ]
            bits = op(*arrays).astype(np.float32).view(np.uint32)
            write(st, int(bits[0]))
        return next_pc

    return run


def _make_scmp(base, srcs, next_pc):
    op = _CMP_OPS[base]
    r0, r1 = (_scalar_reader(s) for s in srcs)

    def run(rt):
        st = rt.state
        st.scc = int(op(r0(st), r1(st)))
        return next_pc

    return run


def _make_branch(condition, target, fallthrough):
    if condition is None:
        return lambda rt: target

    def run(rt):
        if rt.state.scc == condition:
            return target
        return fallthrough

    return run


def _make_sload(srcs, dst, next_pc):
    r_addr, r_off = (_scalar_reader(s) for s in srcs)
    write = _scalar_writer(dst)

    def run(rt):
        st = rt.state
        write(st, rt.memory.load_word(r_addr(st) + r_off(st)))
        return next_pc

    return run


def _make_ctx_scalar(mnemonic, srcs, dsts, next_pc):
    if mnemonic == "ctx_store_s":
        # reference stores get_scalar() unmasked: EXEC keeps all 64 bits
        if srcs[0] == ("e",):
            reader = lambda st: st._exec_as_int()  # noqa: E731
        else:
            reader = _scalar_reader(srcs[0])
        slot = srcs[1][1]

        def store_s(rt):
            st = rt.state
            st.ctx_buffer[slot] = reader(st)
            return next_pc

        return store_s
    slot = srcs[0][1]
    write = _scalar_writer(dsts[0])

    def load_s(rt):
        st = rt.state
        write(st, int(st.ctx_buffer[slot]))
        return next_pc

    return load_s


# -- IR --------------------------------------------------------------------------


def build_ir(program: Program, config: GPUConfig) -> dict:
    """Pure-data compilation artifact for one (program, config) pair.

    Pickles cleanly (tuples of tags/ints/strings only) so it can live in
    the content-addressed artifact cache; :func:`compile_plan` turns it
    back into executable closures without re-reading the program.
    """
    from .tables import tables_for

    tables = tables_for(program)
    warp_size = config.warp_size
    n = tables.n
    ops = []
    for pc, instruction in enumerate(program.instructions):
        mnemonic = instruction.mnemonic
        srcs = []
        for src in instruction.srcs:
            if isinstance(src, Label):
                srcs.append(("t", program.target_index(src.name)))
            else:
                srcs.append(_encode_operand(src))
        dsts = [_encode_operand(d) for d in instruction.dsts]
        opclass = instruction.spec.opclass
        if opclass is OpClass.VALU:
            latency = config.valu_latency
        elif opclass is OpClass.LDS:
            latency = config.lds_latency
        else:
            latency = config.salu_latency

        traffic = None
        flags = 0
        if mnemonic == "s_load":
            traffic = (4, False, "smem")
            flags |= F_BARRIER | F_ENDS
        elif mnemonic == "global_load":
            traffic = (4 * warp_size, False, "load")
        elif mnemonic == "global_store":
            traffic = (4 * warp_size, False, "store")
        elif mnemonic == "ctx_store_v":
            traffic = (4 * warp_size, True, "ctx_store")
        elif mnemonic == "ctx_load_v":
            traffic = (4 * warp_size, True, "ctx_load")
        elif mnemonic == "ctx_store_s":
            nbytes = 8 if srcs[0] == ("e",) else 4
            traffic = (nbytes, True, "ctx_store")
            flags |= F_BARRIER | F_ENDS
        elif mnemonic == "ctx_load_s":
            nbytes = 8 if dsts[0] == ("e",) else 4
            traffic = (nbytes, True, "ctx_load")
            flags |= F_BARRIER | F_ENDS
        elif mnemonic == "ctx_store_lds":
            traffic = (srcs[0][1], True, "ctx_store")
        elif mnemonic == "ctx_load_lds":
            traffic = (srcs[0][1], True, "ctx_load")

        if traffic is not None and not traffic[0]:
            # zero-byte transfers never reach the pipeline in the
            # reference core (``if traffic.nbytes``): use the latency path
            traffic = None
        if mnemonic == "ckpt_probe":
            flags |= F_PROBE | F_ENDS
        if tables.kind[pc] in (3, 4):  # K_BRANCH, K_ENDPGM
            flags |= F_ENDS
        if tables.writes_exec[pc]:
            # an eager EXEC write must not land while deferred vector work
            # (which reads the mask at materialization) is still queued
            flags |= F_BARRIER | F_ENDS
        ops.append((mnemonic, tuple(dsts), tuple(srcs), latency, traffic, flags))

    # block partition: leaders at 0, branch targets, and after every
    # block-ending instruction
    leaders = {0, n}
    for pc, (mnemonic, dsts, srcs, latency, traffic, flags) in enumerate(ops):
        if flags & F_ENDS:
            leaders.add(pc + 1)
            if flags & (F_PROBE | F_BARRIER):
                leaders.add(pc)
        for src in srcs:
            if src[0] == "t":
                leaders.add(src[1])
    bounds = sorted(b for b in leaders if 0 <= b <= n)
    blocks = [
        (lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    return {"n": n, "warp_size": warp_size, "ops": ops, "blocks": blocks}


def ir_cache_parts(program: Program, config: GPUConfig) -> dict:
    """Artifact-cache key parts for a compiled program: the assembly text
    plus the full canonical config (every field participates — the
    warp-size-aliasing regression guard)."""
    from ..analysis.cache import canonical
    from ..isa.assembler import serialize

    return {"asm": serialize(program), "config": canonical(config)}


def cached_ir(program: Program, config: GPUConfig) -> dict:
    """The program's IR via the content-addressed artifact cache."""
    from ..analysis.cache import get_cache

    return get_cache().get_or_create(
        "blocks", ir_cache_parts(program, config), lambda: build_ir(program, config)
    )


# -- compiled plans --------------------------------------------------------------


class OpPlan:
    """Issue-time plan for one pc: eager/deferred closures + static timing."""

    __slots__ = (
        "pc",
        "mnemonic",
        "eager",
        "defer",
        "capture",
        "group",
        "latency",
        "traffic",
        "barrier",
        "probe",
        "ends",
        "block",
        "defer_index",
        "bindspec",
    )

    def __init__(self, pc, mnemonic, eager, defer, capture, group, latency, traffic, flags):
        self.pc = pc
        self.mnemonic = mnemonic
        self.eager = eager  # eager(rt) -> next_pc, or None (pure defer / nop)
        self.defer = defer  # defer(rt, cap) -> None, or None
        self.capture = capture  # capture(state) -> cap, or None
        self.group = group  # group(vb, eb, exec_all, caps) -> None, or None
        self.latency = latency
        self.traffic = traffic  # (nbytes, is_ctx, kind) or None
        self.barrier = bool(flags & F_BARRIER)
        self.probe = bool(flags & F_PROBE)
        self.ends = bool(flags & F_ENDS)
        self.block = None  # BlockInfo, set for consolidatable deferred ops
        self.defer_index = -1  # position in block's deferred sequence
        self.bindspec = None  # (kind, base, specs, dst) for bound VALU forms


class BlockInfo:
    """One straight-line block's deferred-op sequence."""

    __slots__ = ("lo", "hi", "defer_plans", "n_defer", "gsegs")

    def __init__(self, lo, hi, defer_plans):
        self.lo = lo
        self.hi = hi
        self.defer_plans = defer_plans
        self.n_defer = len(defer_plans)
        #: (start, count) -> tuple of lockstep group closures, or False
        #: when any op in the span is ungroupable (lazily filled)
        self.gsegs = {}


class ProgramPlan:
    """All per-pc plans plus the block partition of one compiled program."""

    __slots__ = ("n", "plans", "blocks", "warp_size", "rows", "xrows")

    def __init__(self, ir: dict):
        self.n = ir["n"]
        self.warp_size = ir["warp_size"]
        self.plans = [_compile_op(pc, *op, warp_size=self.warp_size)
                      for pc, op in enumerate(ir["ops"])]
        for plan in self.plans:
            # s_endpgm jumps to one-past-the-end, like the reference
            # executor; mid-program endpgms matter for multi-exit kernels
            if plan.mnemonic == "s_endpgm":
                plan.eager = lambda rt, _n=self.n: _n
        self.blocks = []
        for lo, hi in ir["blocks"]:
            defer_plans = [p for p in self.plans[lo:hi] if p.defer is not None]
            block = BlockInfo(lo, hi, defer_plans)
            self.blocks.append(block)
            for index, plan in enumerate(defer_plans):
                plan.block = block
                plan.defer_index = index
        # flat per-pc issue rows: one subscript + unpack in the fast core's
        # inner loop instead of a cascade of attribute reads
        self.rows = [
            (
                p.eager,
                p.defer,
                p.capture,
                p.block,
                p.defer_index,
                p.barrier,
                p.probe,
                p.traffic,
                p.latency,
                p.mnemonic,
            )
            for p in self.plans
        ]
        #: rows extended with scoreboard ids and precomputed pipeline
        #: service time, filled by the fast core on first use (they need
        #: the dependence tables and the config's streaming rate)
        self.xrows = None


def _compile_op(pc, mnemonic, dsts, srcs, latency, traffic, flags, *, warp_size):
    next_pc = pc + 1
    eager = None
    defer = None
    capture = None
    group = None

    bindspec = None
    if mnemonic.startswith("v_"):
        base = mnemonic[2:]
        specs = _cap_positions(srcs)
        capture = _capture_fn(srcs)
        if base in _INT_OPS:
            defer = _make_valu_int(base, specs, dsts[0], warp_size)
            group = _make_group_int(base, srcs, dsts[0]) if capture is None else None
            if base != "mulhi":
                bindspec = ("i", base, specs, dsts[0][1])
        else:
            defer = _make_valu_float(base, specs, dsts[0], warp_size)
            group = _make_group_float(base, srcs, dsts[0]) if capture is None else None
            bindspec = ("f", base, specs, dsts[0][1])
    elif mnemonic.startswith("s_cmp_"):
        eager = _make_scmp(mnemonic[len("s_cmp_"):], srcs, next_pc)
    elif mnemonic in ("s_branch", "s_cbranch_scc0", "s_cbranch_scc1"):
        condition = {"s_branch": None, "s_cbranch_scc0": 0, "s_cbranch_scc1": 1}[
            mnemonic
        ]
        eager = _make_branch(condition, srcs[0][1], next_pc)
    elif mnemonic == "s_endpgm":
        pass  # fastcore handles end-of-program via the ENDS flag
    elif mnemonic in ("s_nop", "s_barrier", "ckpt_probe"):
        pass
    elif mnemonic == "s_load":
        eager = _make_sload(srcs, dsts[0], next_pc)
    elif mnemonic.startswith("s_"):
        base = mnemonic[2:]
        if base in _PY_INT_OPS:
            eager = _make_salu_int(base, srcs, dsts[0], next_pc)
        else:
            eager = _make_salu_float(base, srcs, dsts[0], next_pc)
    elif mnemonic == "global_load":
        specs = _cap_positions(srcs)
        capture = _capture_fn(srcs)
        defer = _make_global_load(specs, dsts[0], warp_size)
        bindspec = ("gl", None, specs, dsts[0][1])
    elif mnemonic == "global_store":
        specs = _cap_positions(srcs)
        capture = _capture_fn(srcs)
        defer = _make_global_store(specs, warp_size)
        bindspec = ("gs", None, specs, None)
    elif mnemonic == "lds_read":
        specs = _cap_positions(srcs)
        capture = _capture_fn(srcs)
        defer = _make_lds_read(specs, dsts[0], warp_size)
        bindspec = ("ll", None, specs, dsts[0][1])
    elif mnemonic == "lds_write":
        specs = _cap_positions(srcs)
        capture = _capture_fn(srcs)
        defer = _make_lds_write(specs, warp_size)
        bindspec = ("lw", None, specs, None)
    elif mnemonic in ("ctx_store_s", "ctx_load_s"):
        eager = _make_ctx_scalar(mnemonic, srcs, dsts, next_pc)
    elif mnemonic.startswith("ctx_"):
        defer = _make_ctx(mnemonic, srcs, dsts)
    else:  # pragma: no cover - opcode table keeps this exhaustive
        raise ExecutionError(f"no fast-core semantics for {mnemonic}")

    plan = OpPlan(
        pc, mnemonic, eager, defer, capture, group, latency, traffic, flags
    )
    plan.bindspec = bindspec
    if mnemonic == "s_endpgm":
        plan.ends = True
    return plan


def plan_for(program: Program, config: GPUConfig, *, use_cache: bool = False) -> ProgramPlan:
    """The (memoized) compiled plan of *program* under *config*.

    Memoized on the program instance like
    :func:`repro.sim.tables.tables_for`; with ``use_cache`` the IR goes
    through the content-addressed artifact cache (main kernels — routines
    are small one-shot programs and compile directly).
    """
    cached = program.__dict__.get("_fast_plan")
    if (
        cached is not None
        and cached[0] is config
        and cached[1] == len(program.instructions)
    ):
        return cached[2]
    ir = cached_ir(program, config) if use_cache else build_ir(program, config)
    plan = ProgramPlan(ir)
    program.__dict__["_fast_plan"] = (config, len(program.instructions), plan)
    return plan
