"""Simulated warps: in-order issue, scoreboard, mode transitions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..ctxback.plan import InstrPlan
from ..isa.instruction import Program
from ..isa.registers import Reg
from .regfile import LDSBlock, WarpState
from .tables import ProgramTables, reg_id, tables_for


class WarpMode(enum.Enum):
    """Lifecycle of a simulated warp across preemption and resume."""

    RUNNING = "running"  # executing the kernel program
    PREEMPT_ROUTINE = "preempt"  # executing a dedicated preemption routine
    RESUME_ROUTINE = "resume"  # executing a dedicated resuming routine
    EVICTED = "evicted"  # context saved; registers released
    DONE = "done"  # kernel finished


@dataclass
class CkptSnapshot:
    """Functional checkpoint taken by the CKPT mechanism at a probe."""

    regs: tuple
    lds: Optional[np.ndarray]
    dyn_count: int
    probe_counts: dict[int, int]
    nbytes: int
    pc_after_probe: int


@dataclass
class SimWarp:
    """One warp's scheduling state inside the SM."""

    warp_id: int
    state: WarpState
    main_program: Program
    block_id: int = 0
    #: this warp's private share of the thread block's LDS allocation
    lds: LDSBlock | None = None

    mode: WarpMode = WarpMode.RUNNING
    program: Program = None  # type: ignore[assignment]
    #: interned register id -> cycle at which its pending write completes
    #: (see :func:`repro.sim.tables.reg_id`)
    pending: dict[int, int] = field(default_factory=dict)
    #: watermark over ``pending`` completions (may be stale-high, never
    #: stale-low): when it trails the current cycle no operand can stall,
    #: so the fast core skips the per-issue scoreboard walk entirely
    pending_max: int = 0
    next_free: int = 0  # earliest cycle the warp may issue again
    dyn_count: int = 0  # dynamic instructions issued from the main program
    #: fast core: return to the caller once the RUNNING-mode ``dyn_count``
    #: reaches this value (the experiment loop arms it with the pending
    #: signal's dynamic-instruction target so polling stays step-accurate)
    dyn_break: int | None = None

    # preemption bookkeeping
    preempt_flag: bool = False
    #: strategy latched when the signal was processed ("switch"/"drop"/"drain")
    active_strategy: str | None = None
    active_plan: InstrPlan | None = None
    signal_cycle: int | None = None
    preempt_done_cycle: int | None = None
    resume_start_cycle: int | None = None
    resume_done_cycle: int | None = None
    routine_last_mem_completion: int = 0
    #: CKPT: dynamic progress target that ends resume measurement
    resume_watch_dyn: int | None = None
    #: CKPT: probe id -> executions seen
    probe_counts: dict[int, int] = field(default_factory=dict)
    last_checkpoint: CkptSnapshot | None = None

    # fault-tolerance bookkeeping (:mod:`repro.faults`)
    #: checksum of the saved context, computed when eviction completes and
    #: verified before the context is trusted at resume
    ctx_checksum: int | None = None
    #: signal-time architectural image, captured only while fault injection
    #: is armed; ground truth for the full-save degradation path
    arch_image: CkptSnapshot | None = None
    #: this eviction fell back to the conservative full-register save
    degraded_save: bool = False

    #: issue tables of ``self.program`` (refreshed on program swap)
    _tables: ProgramTables | None = field(default=None, repr=False)
    #: executor bound to (SM memory, this warp's LDS); cached by the SM
    _executor: object | None = field(default=None, repr=False)
    #: fast-core runtime handle (compiled plan + closures), cached here
    _fast_rt: object | None = field(default=None, repr=False)
    #: per-config latency list of ``_lat_tables`` (cached by ``SM._issue``)
    _lat_list: list[int] | None = field(default=None, repr=False)
    _lat_tables: ProgramTables | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.program is None:
            self.program = self.main_program

    # -- scheduling ------------------------------------------------------------

    @property
    def issuable(self) -> bool:
        return self.mode in (
            WarpMode.RUNNING,
            WarpMode.PREEMPT_ROUTINE,
            WarpMode.RESUME_ROUTINE,
        )

    def at_program_end(self) -> bool:
        return self.state.pc >= len(self.program.instructions)

    def tables(self) -> ProgramTables:
        """Issue tables of the currently executing program."""
        tables = self._tables
        if tables is None or tables.program is not self.program:
            tables = self._tables = tables_for(self.program)
        return tables

    def ready_cycle(self) -> int:
        """Earliest cycle the next instruction's operands are all ready."""
        ready = self.next_free
        pending = self.pending
        if pending:
            for rid in self.tables().dep_ids[self.state.pc]:
                completion = pending.get(rid, 0)
                if completion > ready:
                    ready = completion
        return ready

    def note_write(self, reg: Reg, completion: int) -> None:
        self.pending[reg_id(reg)] = completion
        if completion > self.pending_max:
            self.pending_max = completion

    def prune_pending(self, cycle: int) -> None:
        """Drop completed scoreboard entries (keeps the dict small)."""
        self.pending = {r: c for r, c in self.pending.items() if c > cycle}
