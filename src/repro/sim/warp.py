"""Simulated warps: in-order issue, scoreboard, mode transitions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..ctxback.plan import InstrPlan
from ..isa.instruction import Program
from ..isa.registers import Reg
from .regfile import LDSBlock, WarpState


class WarpMode(enum.Enum):
    """Lifecycle of a simulated warp across preemption and resume."""

    RUNNING = "running"  # executing the kernel program
    PREEMPT_ROUTINE = "preempt"  # executing a dedicated preemption routine
    RESUME_ROUTINE = "resume"  # executing a dedicated resuming routine
    EVICTED = "evicted"  # context saved; registers released
    DONE = "done"  # kernel finished


@dataclass
class CkptSnapshot:
    """Functional checkpoint taken by the CKPT mechanism at a probe."""

    regs: tuple
    lds: Optional[np.ndarray]
    dyn_count: int
    probe_counts: dict[int, int]
    nbytes: int
    pc_after_probe: int


@dataclass
class SimWarp:
    """One warp's scheduling state inside the SM."""

    warp_id: int
    state: WarpState
    main_program: Program
    block_id: int = 0
    #: this warp's private share of the thread block's LDS allocation
    lds: LDSBlock | None = None

    mode: WarpMode = WarpMode.RUNNING
    program: Program = None  # type: ignore[assignment]
    #: register -> cycle at which its pending write completes
    pending: dict[Reg, int] = field(default_factory=dict)
    next_free: int = 0  # earliest cycle the warp may issue again
    dyn_count: int = 0  # dynamic instructions issued from the main program

    # preemption bookkeeping
    preempt_flag: bool = False
    #: strategy latched when the signal was processed ("switch"/"drop"/"drain")
    active_strategy: str | None = None
    active_plan: InstrPlan | None = None
    signal_cycle: int | None = None
    preempt_done_cycle: int | None = None
    resume_start_cycle: int | None = None
    resume_done_cycle: int | None = None
    routine_last_mem_completion: int = 0
    #: CKPT: dynamic progress target that ends resume measurement
    resume_watch_dyn: int | None = None
    #: CKPT: probe id -> executions seen
    probe_counts: dict[int, int] = field(default_factory=dict)
    last_checkpoint: CkptSnapshot | None = None

    def __post_init__(self) -> None:
        if self.program is None:
            self.program = self.main_program

    # -- scheduling ------------------------------------------------------------

    @property
    def issuable(self) -> bool:
        return self.mode in (
            WarpMode.RUNNING,
            WarpMode.PREEMPT_ROUTINE,
            WarpMode.RESUME_ROUTINE,
        )

    def at_program_end(self) -> bool:
        return self.state.pc >= len(self.program.instructions)

    def ready_cycle(self) -> int:
        """Earliest cycle the next instruction's operands are all ready."""
        instruction = self.program.instructions[self.state.pc]
        ready = self.next_free
        for reg in instruction.uses():
            ready = max(ready, self.pending.get(reg, 0))
        for reg in instruction.defs():
            ready = max(ready, self.pending.get(reg, 0))
        return ready

    def note_write(self, reg: Reg, completion: int) -> None:
        self.pending[reg] = completion

    def prune_pending(self, cycle: int) -> None:
        """Drop completed scoreboard entries (keeps the dict small)."""
        self.pending = {r: c for r, c in self.pending.items() if c > cycle}
