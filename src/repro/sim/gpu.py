"""Launch harness and preemption experiments.

Ties the pieces together for the evaluation flows of paper §V:

* :func:`run_reference` — run a kernel to completion (optionally with a
  mechanism's instrumentation active) and report cycles + final memory;
* :func:`run_preemption_experiment` — run a kernel, preempt its warps at a
  chosen dynamic instruction under a mechanism's plans (optionally with a
  *background* kernel keeping the SM's memory system busy, as in the paper's
  bandwidth-contention observation), resume after a gap, run to completion,
  and verify the final memory image against an uninterrupted reference run.

The functional verification is the repo's ground truth: a mechanism is only
credible if preempt-anywhere + resume is bit-identical to never preempting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

import numpy as np

from ..faults.errors import SimulationHangError
from ..isa.instruction import Kernel
from ..obs import PhaseBreakdown, Tracer, build_breakdowns, make_tracer
from .config import GPUConfig

if TYPE_CHECKING:  # avoid a circular import; PreparedKernel is type-only here
    from ..mechanisms.base import PreparedKernel
from .memory import DeviceMemory
from .preemption import PreemptionController, WarpMeasurement
from .regfile import LDSBlock, WarpState
from .sm import SM
from .warp import SimWarp, WarpMode


@dataclass
class LaunchSpec:
    """How to instantiate a kernel on the simulator.

    ``setup_memory`` populates input buffers; ``setup_warp(state, warp_index)``
    initialises the launch ABI registers (base pointers, sizes, lane ids).
    """

    kernel: Kernel
    setup_memory: Callable[[DeviceMemory], None]
    setup_warp: Callable[[WarpState, int], None]
    num_warps: int | None = None

    @property
    def warp_count(self) -> int:
        return self.num_warps or self.kernel.warps_per_block


def _make_warp_state(kernel: Kernel, config: GPUConfig) -> WarpState:
    spec = config.rf_spec
    return WarpState(
        num_vregs=max(1, spec.allocated_vgprs(kernel.vgprs_used)),
        num_sregs=max(1, spec.allocated_sgprs(kernel.sgprs_used)),
        warp_size=spec.warp_size,
    )


def build_launch(
    spec: LaunchSpec,
    config: GPUConfig,
    *,
    kernel_override: Kernel | None = None,
    block_id: int = 0,
    warp_id_base: int = 0,
    sm: SM | None = None,
    memory: DeviceMemory | None = None,
) -> tuple[SM, list[SimWarp], DeviceMemory]:
    """Instantiate warps (and LDS) for a kernel on an SM."""
    kernel = kernel_override or spec.kernel
    memory = memory if memory is not None else DeviceMemory()
    if sm is None:
        sm = SM(config, memory)
        spec.setup_memory(memory)
    else:
        spec.setup_memory(memory)
    # each warp owns its share of the thread block's LDS allocation (the
    # benchmark kernels partition LDS per warp; this also matches the
    # per-warp lds_share_bytes context accounting)
    from ..ctxback.context import lds_share_bytes

    share = lds_share_bytes(kernel)
    count = spec.warp_count
    warps = []
    backing_v = backing_e = None
    for index in range(count):
        state = _make_warp_state(kernel, config)
        if count > 1:
            # co-locate the launch's register files in one (warps, vregs,
            # lanes) array so the fast core can batch lockstep VALU work
            # across warps; must happen before any register is written
            if backing_v is None:
                backing_v = np.zeros(
                    (count, state.num_vregs, state.warp_size), dtype=np.uint32
                )
                backing_e = np.ones((count, state.warp_size), dtype=bool)
            state.adopt_shared(backing_v[index], backing_e[index], index)
        spec.setup_warp(state, index)
        warp = SimWarp(
            warp_id=warp_id_base + index,
            state=state,
            main_program=kernel.program,
            block_id=block_id,
            lds=LDSBlock(share) if share else None,
        )
        sm.add_warp(warp)
        warps.append(warp)
    return sm, warps, memory


@dataclass
class RunResult:
    cycles: int
    memory: DeviceMemory
    sm: SM

    @property
    def trace(self) -> Tracer | None:
        """The run's event trace (``None`` unless tracing was enabled)."""
        return self.sm.tracer


def run_reference(
    spec: LaunchSpec,
    config: GPUConfig,
    prepared: "PreparedKernel | None" = None,
) -> RunResult:
    """Run to completion with no preemption signal.

    With *prepared* given, the instrumented program runs and instrumentation
    hooks (CKPT probes) stay active — this is how Fig. 10's runtime overhead
    is measured.
    """
    kernel = prepared.kernel if prepared is not None else None
    sm, warps, memory = build_launch(spec, config, kernel_override=kernel)
    sm.tracer = make_tracer(
        config, prepared.mechanism if prepared is not None else ""
    )
    if prepared is not None:
        controller = PreemptionController(
            sm=sm,
            prepared=prepared,
            target_warp_ids=set(),
            signal_dyn=1 << 62,
        )
        prepared.warp_initializer = _initializer_for(spec)
        del controller  # hooks stay installed on the SM
    cycles = sm.run()
    return RunResult(cycles=cycles, memory=memory, sm=sm)


def _initializer_for(spec: LaunchSpec):
    def init(warp: SimWarp) -> None:
        index = warp.warp_id  # target warps are numbered from zero
        spec.setup_warp(warp.state, index)
        warp.state.pc = 0

    return init


@dataclass
class ExperimentResult:
    mechanism: str
    measurements: list[WarpMeasurement]
    total_cycles: int
    verified: bool
    #: cycles of the uninterrupted reference run; ``None`` — not ``0`` —
    #: when no reference was run (``verify=False``).  A 0-cycle reference
    #: (degenerate launch) is a legitimate value, distinct from "absent".
    reference_cycles: int | None
    memory: DeviceMemory = field(repr=False, default=None)  # type: ignore[assignment]
    #: the run's event trace (``None`` unless tracing was enabled)
    trace: Tracer | None = field(repr=False, default=None)
    #: per-warp latency decomposition (populated only when tracing):
    #: ``sum(phases) == latency_cycles`` for every measured warp
    breakdowns: dict[int, PhaseBreakdown] = field(default_factory=dict)
    #: the fault injector that ran (``None`` for clean runs); carries the
    #: injected-fault audit log and recovery counters
    faults: object | None = field(repr=False, default=None)
    #: the simulated SM, kept for post-run architectural-state inspection
    #: (the chaos oracle compares final register files and LDS)
    sm: SM | None = field(repr=False, default=None)

    @property
    def mean_latency(self) -> float:
        if not self.measurements:
            return 0.0
        return sum(m.latency_cycles for m in self.measurements) / len(
            self.measurements
        )

    @property
    def mean_resume(self) -> float | None:
        """Mean resume cost; ``None`` — not ``0.0`` — when no warp carries
        resume data (``verify=False`` short runs, routines that never fired).
        A genuine 0-cycle resume (DRAIN finishing the warp in place) is a
        legitimate value, distinct from "absent"."""
        values = [
            m.resume_cycles for m in self.measurements if m.resume_cycles is not None
        ]
        return sum(values) / len(values) if values else None

    @property
    def mean_context_bytes(self) -> float:
        if not self.measurements:
            return 0.0
        return sum(m.context_bytes for m in self.measurements) / len(
            self.measurements
        )

    def breakdown_for(self, warp_id: int) -> PhaseBreakdown | None:
        return self.breakdowns.get(warp_id)


def finalize_measurements(
    sm: SM,
    controller: PreemptionController,
    target_warps: list[SimWarp],
) -> None:
    """Post-run measurement fill: CKPT resume times from the watch
    timestamps, and restart-from-zero recovery attribution.

    ``is None`` guards throughout — ``recovery_cycles == 0`` is a
    legitimate zero-cost fallback (a degraded save whose stores drained
    within the same cycle) and must not be overwritten, and a degraded
    warp with no resume data keeps ``recovery_cycles is None`` rather
    than being coerced to a fabricated 0.
    """
    for warp in target_warps:
        measurement = controller.measurements.get(warp.warp_id)
        if measurement is None:
            continue
        if measurement.resume_cycles is None and warp.resume_start_cycle is not None:
            end = warp.resume_done_cycle
            if end is None:
                end = sm.cycle  # finished before re-reaching the signal point
            measurement.resume_cycles = end - warp.resume_start_cycle
        if measurement.degraded and measurement.recovery_cycles is None:
            # restart-from-zero recovery: the whole re-execution back to
            # the signal point is recovery work.  Preserve None when the
            # resume data is genuinely absent.
            measurement.recovery_cycles = measurement.resume_cycles


def drive_experiment_loop(
    sm: SM,
    controller: PreemptionController,
    target_warps: list[SimWarp],
    config: GPUConfig,
    *,
    signal_dyn: int,
    resume_gap: int = 2000,
    injector=None,
    resumed: bool = False,
    resume_at: int | None = None,
    loop_hook: Callable[[SM, PreemptionController, list[SimWarp], dict], None]
    | None = None,
) -> None:
    """Drive a preemption experiment to completion: poll, evict, resume at
    the gap deadline, run out the kernel.

    Factored out of :func:`run_preemption_experiment` so a restored
    snapshot (:mod:`repro.snap`) can re-enter the experiment mid-flight —
    *resumed*/*resume_at* carry the loop state across the save/restore
    boundary.  *loop_hook*, when given, is called at the top of every
    iteration with the current loop state (``{"resumed", "resume_at",
    "signal_dyn", "resume_gap"}``); it may only observe (snapshot capture),
    never mutate — mutation would be an observer effect.
    """

    def _resume_deadline() -> int:
        done_cycles = [
            w.preempt_done_cycle
            for w in target_warps
            if w.preempt_done_cycle is not None
        ]
        return (max(done_cycles) if done_cycles else sm.cycle) + resume_gap

    def _deliver_resume() -> None:
        nonlocal resumed
        sm.cycle = max(sm.cycle, resume_at)
        if loop_hook is not None:
            # the pre-resume observation: every target context is saved and
            # sm.cycle equals the (core-independent) resume deadline — the
            # one loop point both cores reach in the same simulated state,
            # which snapshot capture (repro.snap) keys on
            loop_hook(
                sm,
                controller,
                target_warps,
                {
                    "resumed": False,
                    "resume_at": resume_at,
                    "signal_dyn": signal_dyn,
                    "resume_gap": resume_gap,
                },
            )
        for warp in target_warps:
            controller.resume_warp(warp, sm.cycle)
        resumed = True

    # the fast core batches many issues per call; fault injection needs the
    # per-step reference path (the injector hooks every single issue)
    use_fast = sm.core == "fast" and injector is None
    while True:
        if loop_hook is not None:
            loop_hook(
                sm,
                controller,
                target_warps,
                {
                    "resumed": resumed,
                    "resume_at": resume_at,
                    "signal_dyn": signal_dyn,
                    "resume_gap": resume_gap,
                },
            )
        controller.poll()
        if not resumed and controller.all_evicted():
            if resume_at is None:
                resume_at = _resume_deadline()
            # honour the gap exactly: resume is delivered *at* resume_at,
            # never before (an idle SM warps time forward instead of
            # resuming early) and never after (the scheduler must not
            # leap past the deadline to a stalled warp's ready cycle)
            next_issue = sm.next_issue_cycle()
            if (
                sm.cycle >= resume_at
                or next_issue is None
                or next_issue >= resume_at
            ):
                _deliver_resume()
                continue
        if use_fast:
            # arm the dyn-break so the batch returns exactly when a target
            # warp reaches the signal's dynamic instruction — the next
            # poll() then delivers the signal at the reference boundary
            dyn_break = signal_dyn if controller.armed else None
            for warp in target_warps:
                warp.dyn_break = dyn_break
            progressed = sm.advance(
                stop_cycle=resume_at if not resumed else None,
                limit=config.max_cycles,
            )
        else:
            progressed = sm.step()
        if not progressed:
            if not resumed and controller.all_evicted():
                # nothing can issue before the gap elapses (the last warp
                # may have evicted during this very advance): warp idle time
                if resume_at is None:
                    resume_at = _resume_deadline()
                _deliver_resume()
                continue
            break
        if sm.cycle > config.max_cycles:
            # the no-forward-progress watchdog: a typed error with a
            # per-warp diagnostic dump instead of spinning to the job cap
            raise SimulationHangError(
                f"preemption experiment exceeded {config.max_cycles} cycles "
                f"without completing (livelock?)",
                cycle=sm.cycle,
                warp_dump=sm.warp_state_dump(),
            )


def run_preemption_experiment(
    spec: LaunchSpec,
    prepared: "PreparedKernel",
    config: GPUConfig,
    signal_dyn: int,
    *,
    background: LaunchSpec | None = None,
    resume_gap: int = 2000,
    verify: bool = True,
    faults=None,
    loop_hook=None,
    memory: DeviceMemory | None = None,
) -> ExperimentResult:
    """Preempt every target warp at dynamic instruction *signal_dyn*, resume
    after *resume_gap* cycles, run to completion, verify memory.

    *faults* is a :class:`~repro.faults.plan.FaultPlan` (or an already-built
    :class:`~repro.faults.injector.FaultInjector`); ``None`` — the default —
    disables injection entirely and costs nothing on the hot path.
    *loop_hook* is the snapshot capture point (see
    :func:`drive_experiment_loop`).  *memory* substitutes the experiment's
    device memory (e.g. a :class:`~repro.sim.memory.TrackedMemory` so a
    speculative checkpoint can record write epochs).
    """
    reference_cycles: int | None = None
    ref_memory = None
    if verify:
        ref = run_reference(spec, config)
        if background is not None:
            # reference for memory comparison must include background effects
            ref_sm, _, ref_mem = build_launch(spec, config)
            build_launch(
                background,
                config,
                sm=ref_sm,
                memory=ref_mem,
                block_id=1,
                warp_id_base=1000,
            )
            ref_sm.run()
            ref_memory = ref_mem
        else:
            ref_memory = ref.memory
        reference_cycles = ref.cycles

    sm, target_warps, memory = build_launch(
        spec, config, kernel_override=prepared.kernel, memory=memory
    )
    sm.tracer = make_tracer(config, prepared.mechanism)
    if background is not None:
        build_launch(
            background, config, sm=sm, memory=memory, block_id=1, warp_id_base=1000
        )
    controller = PreemptionController(
        sm=sm,
        prepared=prepared,
        target_warp_ids={w.warp_id for w in target_warps},
        signal_dyn=signal_dyn,
    )
    prepared.warp_initializer = _initializer_for(spec)
    injector = None
    if faults is not None:
        # accept a plan (built per run: injector state is single-use) or a
        # pre-built injector (tests tweak policies through it)
        injector = faults.build() if hasattr(faults, "build") else faults
        injector.attach(sm, controller)

    drive_experiment_loop(
        sm,
        controller,
        target_warps,
        config,
        signal_dyn=signal_dyn,
        resume_gap=resume_gap,
        injector=injector,
        loop_hook=loop_hook,
    )

    finalize_measurements(sm, controller, target_warps)

    verified = True
    if verify and ref_memory is not None:
        verified = memory == ref_memory
    measurements = [
        controller.measurements[w.warp_id]
        for w in target_warps
        if w.warp_id in controller.measurements
    ]
    breakdowns: dict[int, PhaseBreakdown] = {}
    if sm.tracer is not None:
        breakdowns = build_breakdowns(sm.tracer, measurements)
    return ExperimentResult(
        mechanism=prepared.mechanism,
        measurements=measurements,
        total_cycles=sm.cycle,
        verified=verified,
        reference_cycles=reference_cycles,
        memory=memory,
        trace=sm.tracer,
        breakdowns=breakdowns,
        faults=injector,
        sm=sm,
    )
