"""Per-warp architectural state: register files, exec mask, context buffer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..isa.registers import EXEC, SCC, Reg, RegKind


@dataclass
class WarpState:
    """Architectural state of one warp.

    Vector registers are a ``(num_vregs, warp_size)`` uint32 array — one
    4-byte copy per lane, as on real SIMT hardware.  The context buffer holds
    values spilled by ``ctx_store_*`` during preemption, keyed by byte slot.
    """

    num_vregs: int
    num_sregs: int
    warp_size: int
    vregs: np.ndarray = field(init=False)
    sregs: np.ndarray = field(init=False)
    exec_mask: np.ndarray = field(init=False)
    scc: int = 0
    pc: int = 0
    ctx_buffer: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vregs = np.zeros((self.num_vregs, self.warp_size), dtype=np.uint32)
        self.sregs = np.zeros(self.num_sregs, dtype=np.uint32)
        self.exec_mask = np.ones(self.warp_size, dtype=bool)
        #: fast-core hint: all lanes enabled, so masked vector writes can
        #: use a whole-row assignment (identical values either way).
        #: Maintained by every exec-mask writer on this class; code that
        #: pokes ``exec_mask`` directly must not rely on it (only the fast
        #: core reads it, and only via the maintained paths).
        self.exec_all = True
        #: lockstep-batch backing (set by :meth:`adopt_shared`): slot index
        #: in the shared (warps, num_vregs, lanes) register-file array
        self.backing_slot = -1
        self.backing_vregs = None
        self.backing_exec = None

    # -- scalar-context reads/writes (sregs + specials) -----------------------

    def get_scalar(self, reg: Reg) -> int:
        if reg.kind is RegKind.SCALAR:
            return int(self.sregs[reg.index])
        if reg == EXEC:
            return self._exec_as_int()
        if reg == SCC:
            return self.scc
        raise ValueError(f"cannot read {reg} as a scalar")

    def set_scalar(self, reg: Reg, value: int) -> None:
        if reg.kind is RegKind.SCALAR:
            self.sregs[reg.index] = value & 0xFFFFFFFF
            return
        if reg == EXEC:
            self._exec_from_int(value)
            return
        if reg == SCC:
            self.scc = value & 1
            return
        raise ValueError(f"cannot write {reg} as a scalar")

    def _exec_as_int(self) -> int:
        bits = 0
        for lane in range(self.warp_size):
            if self.exec_mask[lane]:
                bits |= 1 << lane
        return bits

    def _exec_from_int(self, value: int) -> None:
        for lane in range(self.warp_size):
            self.exec_mask[lane] = bool((value >> lane) & 1)
        self.exec_all = value & ((1 << self.warp_size) - 1) == (
            1 << self.warp_size
        ) - 1

    # -- lockstep-batch backing (fast core) -----------------------------------

    def adopt_shared(
        self, vregs_view: np.ndarray, exec_view: np.ndarray, slot: int
    ) -> None:
        """Rebind this warp's registers to rows of a shared backing array.

        The fast core batches VALU work across warps by operating on
        contiguous (warps, num_vregs, lanes) slices; adopting must happen
        before any state is written (the freshly-allocated private arrays
        are discarded, not copied).
        """
        exec_view[:] = self.exec_mask
        self.vregs = vregs_view
        self.exec_mask = exec_view
        self.backing_slot = slot
        self.backing_vregs = vregs_view.base if vregs_view.base is not None else None
        self.backing_exec = exec_view.base if exec_view.base is not None else None

    # -- snapshots (used by CKPT and by the functional tests) -----------------

    def snapshot_regs(self):
        return (
            self.vregs.copy(),
            self.sregs.copy(),
            self.exec_mask.copy(),
            self.scc,
            self.pc,
        )

    def restore_regs(self, snap) -> None:
        vregs, sregs, exec_mask, scc, pc = snap
        self.vregs[...] = vregs
        self.sregs[...] = sregs
        self.exec_mask[...] = exec_mask
        self.exec_all = bool(exec_mask.all())
        self.scc = scc
        self.pc = pc

    def clear(self) -> None:
        """Zero all state, as after eviction frees the registers."""
        self.vregs.fill(0)
        self.sregs.fill(0)
        self.exec_mask.fill(True)
        self.exec_all = True
        self.scc = 0
        self.pc = 0


class LDSBlock:
    """One thread block's shared-memory allocation (word granularity)."""

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes
        self.words = np.zeros(max(1, -(-nbytes // 4)), dtype=np.uint32)

    def load(self, byte_addr: int) -> int:
        return int(self.words[byte_addr >> 2])

    def store(self, byte_addr: int, value: int) -> None:
        self.words[byte_addr >> 2] = value & 0xFFFFFFFF

    def gather(self, byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        words = (byte_addrs >> np.uint64(2)).astype(np.int64)
        out = np.zeros(len(words), dtype=np.uint32)
        if mask.any():
            out[mask] = self.words[words[mask]]
        return out

    def scatter(
        self, byte_addrs: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        if not mask.any():
            return
        words = (byte_addrs >> np.uint64(2)).astype(np.int64)[mask]
        self.words[words] = values.astype(np.uint64)[mask] & np.uint64(0xFFFFFFFF)

    def gather_into(self, word_addrs: np.ndarray, out: np.ndarray) -> None:
        """Full-warp gather (fast-core bound form of :meth:`gather` for a
        full EXEC mask; *word_addrs* are unsigned word indices)."""
        self.words.take(word_addrs, out=out)

    def scatter_full(self, word_addrs: np.ndarray, values) -> None:
        """Full-warp scatter (bound form of :meth:`scatter`)."""
        self.words[word_addrs] = values

    def snapshot(self) -> np.ndarray:
        return self.words.copy()

    def restore(self, snap: np.ndarray) -> None:
        self.words[...] = snap
