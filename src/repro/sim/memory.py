"""Device memory: functional word store + bandwidth/latency timing model.

Functional side: a flat word-addressed NumPy array (4-byte words, byte
addresses, word-aligned) so warp-wide gathers/scatters vectorize — per the
HPC guides, the per-lane path must not be a Python loop.  Timing side: a
single bandwidth-limited server per SM — each request occupies the server
for ``bytes / bandwidth`` cycles (plus a fixed per-request overhead for
context-buffer traffic) and completes a fixed pipeline latency after leaving
the server.  This reproduces the two effects the paper leans on:
context-switch time grows with context bytes, and routines contend with the
streaming traffic of non-preempted warps (§V, Table I discussion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

_WORD_MASK = 0xFFFFFFFF

#: default functional address space: 32 MB
DEFAULT_SIZE_BYTES = 32 * 1024 * 1024


class DeviceMemory:
    """Flat functional memory; unwritten words read as zero."""

    def __init__(self, size_bytes: int = DEFAULT_SIZE_BYTES) -> None:
        self.size_bytes = size_bytes
        self._words = np.zeros(size_bytes >> 2, dtype=np.uint32)

    def _word_addr(self, addr: int) -> int:
        if addr % 4:
            raise ValueError(f"unaligned word access at {addr:#x}")
        word = addr >> 2
        if not 0 <= word < len(self._words):
            raise ValueError(f"address {addr:#x} outside device memory")
        return word

    def load_word(self, addr: int) -> int:
        return int(self._words[self._word_addr(addr)])

    def store_word(self, addr: int, value: int) -> None:
        self._words[self._word_addr(addr)] = value & _WORD_MASK

    # -- warp-wide vectorized access ------------------------------------------

    def gather(self, byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Masked gather of 4-byte words at *byte_addrs* (uint64 array)."""
        words = (byte_addrs >> np.uint64(2)).astype(np.int64)
        out = np.zeros(len(words), dtype=np.uint32)
        if mask.any():
            selected = words[mask]
            if (selected < 0).any() or (selected >= len(self._words)).any():
                raise ValueError("gather outside device memory")
            out[mask] = self._words[selected]
        return out

    def gather_into(self, word_addrs: np.ndarray, out: np.ndarray) -> None:
        """Full-warp gather of 4-byte words straight into *out* (uint32).

        The fast core's bound form of :meth:`gather` for a full EXEC mask:
        *word_addrs* are word (not byte) indices, unsigned, so the masked
        select, the zero-fill and the sign checks all drop out.  Bounds are
        enforced by ``take(mode="raise")``; identical results to
        ``gather`` when every lane is active.
        """
        try:
            self._words.take(word_addrs, out=out)
        except IndexError:
            raise ValueError("gather outside device memory") from None

    def scatter_full(self, word_addrs: np.ndarray, values) -> None:
        """Full-warp scatter of 4-byte words (bound form of :meth:`scatter`
        for a full EXEC mask; *word_addrs* are unsigned word indices).

        NumPy validates the whole index array before writing any element,
        so a failed scatter leaves memory untouched — the same observable
        state as the reference path's up-front bounds check."""
        try:
            self._words[word_addrs] = values
        except IndexError:
            raise ValueError("scatter outside device memory") from None

    def scatter(
        self, byte_addrs: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Masked scatter of 4-byte words."""
        if not mask.any():
            return
        words = (byte_addrs >> np.uint64(2)).astype(np.int64)[mask]
        if (words < 0).any() or (words >= len(self._words)).any():
            raise ValueError("scatter outside device memory")
        self._words[words] = values.astype(np.uint64)[mask] & np.uint64(_WORD_MASK)

    def load_array(self, addr: int, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"negative load count {count} at {addr:#x}")
        start = self._word_addr(addr)
        # an out-of-range slice would silently truncate; reject it instead
        if start + count > len(self._words):
            raise ValueError(
                f"load of {count} words at {addr:#x} runs past the end of "
                f"device memory ({self.size_bytes:#x} bytes)"
            )
        return self._words[start : start + count].copy()

    def store_array(self, addr: int, values) -> None:
        start = self._word_addr(addr)
        flat = np.asarray(values, dtype=np.uint32).ravel()
        if start + len(flat) > len(self._words):
            raise ValueError(
                f"store of {len(flat)} words at {addr:#x} runs past the end "
                f"of device memory ({self.size_bytes:#x} bytes)"
            )
        self._words[start : start + len(flat)] = flat

    def snapshot(self) -> np.ndarray:
        return self._words.copy()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeviceMemory):
            return NotImplemented
        a, b = self._words, other._words
        if len(a) == len(b):
            return bool(np.array_equal(a, b))
        short, long_ = (a, b) if len(a) < len(b) else (b, a)
        return bool(
            np.array_equal(short, long_[: len(short)])
            and not long_[len(short) :].any()
        )

    def __hash__(self):  # pragma: no cover - mutable
        raise TypeError("DeviceMemory is unhashable")


class TrackedMemory(DeviceMemory):
    """Device memory that records which words were ever written.

    The model checker (:mod:`repro.mc`) digests device memory at every
    choice point; hashing the full address space each time would dominate
    exploration, so kernels under exploration run on this subclass and
    the digest covers only the dirty set.  Reads as zero / writes behave
    exactly like :class:`DeviceMemory` — tracking is bookkeeping only.
    """

    def __init__(self, size_bytes: int = DEFAULT_SIZE_BYTES) -> None:
        super().__init__(size_bytes)
        self._dirty: set[int] = set()
        #: epoch-scoped dirty set for the speculative checkpointer
        #: (:mod:`repro.snap.speculative`): ``None`` when no epoch is open
        self._epoch: set[int] | None = None

    def store_word(self, addr: int, value: int) -> None:
        super().store_word(addr, value)
        self._dirty.add(addr >> 2)
        if self._epoch is not None:
            self._epoch.add(addr >> 2)

    def store_array(self, addr: int, values) -> None:
        super().store_array(addr, values)
        start = addr >> 2
        count = len(np.asarray(values, dtype=np.uint32).ravel())
        self._dirty.update(range(start, start + count))
        if self._epoch is not None:
            self._epoch.update(range(start, start + count))

    def scatter(
        self, byte_addrs: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        super().scatter(byte_addrs, values, mask)
        if mask.any():
            words = (byte_addrs >> np.uint64(2)).astype(np.int64)[mask].tolist()
            self._dirty.update(words)
            if self._epoch is not None:
                self._epoch.update(words)

    def scatter_full(self, word_addrs: np.ndarray, values) -> None:
        super().scatter_full(word_addrs, values)
        words = np.asarray(word_addrs).tolist()
        self._dirty.update(words)
        if self._epoch is not None:
            self._epoch.update(words)

    def dirty_words(self) -> list[int]:
        """Sorted word indices written at least once."""
        if not self._dirty:
            return []
        indices = np.fromiter(
            self._dirty, dtype=np.int64, count=len(self._dirty)
        )
        indices.sort()
        return indices.tolist()

    # -- speculative-checkpoint epochs ----------------------------------------

    def begin_epoch(self) -> None:
        """Start recording writes into a fresh epoch dirty set.

        The speculative checkpointer copies memory at the begin point and
        lets execution run ahead; at commit it patches exactly the words
        this epoch recorded.  Re-entering simply restarts the recording.
        """
        self._epoch = set()

    def end_epoch(self) -> list[int]:
        """Stop recording; returns the sorted word indices written since
        :meth:`begin_epoch`."""
        epoch = self._epoch if self._epoch is not None else set()
        self._epoch = None
        return sorted(epoch)

    def content_digest(self) -> bytes:
        """sha256 equivalent to hashing the full contents: dirty words that
        currently hold zero are skipped, so the digest depends only on the
        nonzero (index, value) pairs — untouched words read as zero."""
        import hashlib

        h = hashlib.sha256()
        h.update(str(self.size_bytes).encode())
        idx = np.fromiter(sorted(self._dirty), dtype=np.int64, count=len(self._dirty))
        values = self._words[idx]
        live = values != 0
        h.update(idx[live].tobytes())
        h.update(values[live].tobytes())
        return h.digest()


@dataclass
class MemoryPipeline:
    """Bandwidth-limited, fixed-latency memory service for one SM.

    Context-buffer traffic is served at its own (much lower) rate,
    modelling the driver-managed swap routine; it still occupies the same
    port, so preemption routines contend with streaming kernel traffic.
    """

    bytes_per_cycle: float
    latency: int
    ctx_bytes_per_cycle: float | None = None
    ctx_load_speedup: float = 1.0
    ctx_request_overhead: float = 0.0
    #: cycle at which the (single) service port becomes free
    _port_free: float = 0.0
    total_bytes: int = 0
    total_requests: int = 0
    stats_by_kind: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # validate at construction: a zero rate would divide by zero at the
        # first request, and a falsy-zero ctx rate used to silently fall
        # back to the streaming rate instead of being rejected
        if self.bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be > 0, got {self.bytes_per_cycle!r}"
            )
        if self.ctx_bytes_per_cycle is not None and self.ctx_bytes_per_cycle <= 0:
            raise ValueError(
                "ctx_bytes_per_cycle must be > 0 (or None to use the "
                f"streaming rate), got {self.ctx_bytes_per_cycle!r}"
            )
        if self.ctx_load_speedup <= 0:
            raise ValueError(
                f"ctx_load_speedup must be > 0, got {self.ctx_load_speedup!r}"
            )

    def request(
        self, now: int, nbytes: int, *, is_ctx: bool = False, kind: str = ""
    ) -> int:
        """Issue a request at cycle *now*; returns the completion cycle."""
        if is_ctx:
            # `is None`, not truthiness: rates are validated positive above
            rate = (
                self.bytes_per_cycle
                if self.ctx_bytes_per_cycle is None
                else self.ctx_bytes_per_cycle
            )
            if kind.endswith("load"):
                rate *= self.ctx_load_speedup
            service = nbytes / rate + self.ctx_request_overhead
        else:
            service = nbytes / self.bytes_per_cycle
        self._port_free = max(self._port_free, float(now)) + service
        self.total_bytes += nbytes
        self.total_requests += 1
        if kind:
            self.stats_by_kind[kind] = self.stats_by_kind.get(kind, 0) + nbytes
        # ceil, not int: truncating a fractional service time would report
        # completion a cycle before the port is actually free
        return math.ceil(self._port_free) + self.latency

    def inject_stall(self, now: int, cycles: float) -> None:
        """Fault injection: hold the service port busy for *cycles* extra
        (models a burst of contention from outside the modelled SM)."""
        self._port_free = max(self._port_free, float(now)) + cycles

    def port_busy_until(self) -> float:
        return self._port_free
