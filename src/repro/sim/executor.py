"""Functional semantics of every opcode.

Execution is *vectorized over lanes* with NumPy (per the HPC guides: avoid
per-lane Python loops on the ALU path).  Integer arithmetic wraps modulo
2³², computed in uint64 and masked; ``*f`` opcodes reinterpret the same
32-bit storage as IEEE float32.  Vector writes honour the exec mask;
context-buffer transfers deliberately ignore it (a context switch moves the
whole architectural register).

The executor is timing-free: it returns a :class:`MemTraffic` descriptor for
the SM to charge against the memory pipeline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..isa.instruction import Imm, Instruction, Label, Program
from ..isa.registers import EXEC, SCC, Reg, RegKind
from .memory import DeviceMemory
from .regfile import LDSBlock, WarpState
from . import tables as _tables

_MASK = np.uint64(0xFFFFFFFF)


@dataclass(frozen=True)
class MemTraffic:
    """Memory-system work produced by one executed instruction."""

    nbytes: int
    is_ctx: bool = False
    kind: str = ""
    is_load: bool = False


def _f32(bits: np.ndarray) -> np.ndarray:
    return bits.astype(np.uint32).view(np.float32)


def _bits(floats: np.ndarray) -> np.ndarray:
    return floats.astype(np.float32).view(np.uint32).astype(np.uint64)


def _shift_amount(b: np.ndarray) -> np.ndarray:
    return b & np.uint64(31)


_INT_OPS: dict[str, Callable] = {
    "mov": lambda a: a,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "mulhi": lambda a, b: (a * b) >> np.uint64(32),
    "mad": lambda a, b, c: a * b + c,
    "min": np.minimum,
    "max": np.maximum,
    "xor": np.bitwise_xor,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "not": np.invert,
    "lshl": lambda a, b: a << _shift_amount(b),
    "lshr": lambda a, b: (a & _MASK) >> _shift_amount(b),
}

_FLOAT_OPS: dict[str, Callable] = {
    "addf": lambda a, b: a + b,
    "subf": lambda a, b: a - b,
    "mulf": lambda a, b: a * b,
    "madf": lambda a, b, c: a * b + c,
    "minf": np.minimum,
    "maxf": np.maximum,
}

_CMP_OPS: dict[str, Callable[[int, int], bool]] = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class ExecutionError(RuntimeError):
    """Raised on semantically invalid execution (bad operand, missing LDS)."""


class Executor:
    """Executes instructions against a warp, device memory and (optionally)
    the thread block's LDS."""

    def __init__(
        self, memory: DeviceMemory, lds: LDSBlock | None = None
    ) -> None:
        self.memory = memory
        self.lds = lds

    # -- operand access ---------------------------------------------------------

    def _vector_operand(self, warp: WarpState, operand) -> np.ndarray:
        if isinstance(operand, Imm):
            return np.full(warp.warp_size, operand.value & 0xFFFFFFFF, dtype=np.uint64)
        if isinstance(operand, Reg):
            if operand.kind is RegKind.VECTOR:
                return warp.vregs[operand.index].astype(np.uint64)
            return np.full(
                warp.warp_size, warp.get_scalar(operand) & 0xFFFFFFFF, dtype=np.uint64
            )
        raise ExecutionError(f"bad vector operand {operand!r}")

    def _scalar_operand(self, warp: WarpState, operand) -> int:
        if isinstance(operand, Imm):
            return operand.value & 0xFFFFFFFF
        if isinstance(operand, Reg):
            return warp.get_scalar(operand) & 0xFFFFFFFF
        raise ExecutionError(f"bad scalar operand {operand!r}")

    @staticmethod
    def _write_vector(warp: WarpState, reg: Reg, result: np.ndarray) -> None:
        masked = (result & _MASK).astype(np.uint32)
        warp.vregs[reg.index][warp.exec_mask] = masked[warp.exec_mask]

    # -- main dispatch -------------------------------------------------------------

    def execute(
        self, program: Program, warp: WarpState, instruction: Instruction
    ) -> MemTraffic | None:
        """Run one instruction; updates ``warp.pc``; returns memory traffic."""
        mnemonic = instruction.mnemonic
        next_pc = warp.pc + 1
        traffic: MemTraffic | None = None

        if mnemonic.startswith("v_"):
            self._exec_valu(warp, instruction, mnemonic[2:])
        elif mnemonic.startswith("s_cmp_"):
            a = self._scalar_operand(warp, instruction.srcs[0])
            b = self._scalar_operand(warp, instruction.srcs[1])
            warp.scc = int(_CMP_OPS[mnemonic[len("s_cmp_") :]](a, b))
        elif mnemonic in ("s_branch", "s_cbranch_scc0", "s_cbranch_scc1"):
            taken = (
                mnemonic == "s_branch"
                or (mnemonic == "s_cbranch_scc1" and warp.scc == 1)
                or (mnemonic == "s_cbranch_scc0" and warp.scc == 0)
            )
            if taken:
                target = instruction.srcs[0]
                assert isinstance(target, Label)
                next_pc = program.target_index(target.name)
        elif mnemonic == "s_endpgm":
            next_pc = len(program.instructions)
        elif mnemonic in ("s_nop", "s_barrier", "ckpt_probe"):
            pass  # ckpt_probe side effects are handled by the SM hook
        elif mnemonic == "s_load":
            addr = self._scalar_operand(warp, instruction.srcs[0])
            offset = self._scalar_operand(warp, instruction.srcs[1])
            warp.set_scalar(instruction.dsts[0], self.memory.load_word(addr + offset))
            traffic = MemTraffic(4, kind="smem", is_load=True)
        elif mnemonic.startswith("s_"):
            self._exec_salu(warp, instruction, mnemonic[2:])
        elif mnemonic == "global_load":
            traffic = self._global_load(warp, instruction)
        elif mnemonic == "global_store":
            traffic = self._global_store(warp, instruction)
        elif mnemonic == "lds_read":
            traffic = self._lds_read(warp, instruction)
        elif mnemonic == "lds_write":
            traffic = self._lds_write(warp, instruction)
        elif mnemonic.startswith("ctx_"):
            traffic = self._exec_ctx(warp, instruction)
        else:  # pragma: no cover - opcode table keeps this exhaustive
            raise ExecutionError(f"no semantics for {mnemonic}")

        warp.pc = next_pc
        return traffic

    def execute_indexed(
        self, tables: "_tables.ProgramTables", warp: WarpState, pc: int
    ) -> MemTraffic | None:
        """Hot-loop twin of :meth:`execute` driven by precompiled tables.

        Uses the integer dispatch kind and pre-resolved ALU callables /
        branch targets from :func:`repro.sim.tables.tables_for` instead of
        re-deriving them from the mnemonic on every issue.  Semantics are
        identical to :meth:`execute` (both call the same per-opcode
        helpers).
        """
        instruction = tables.program.instructions[pc]
        kind = tables.kind[pc]
        next_pc = pc + 1
        traffic: MemTraffic | None = None

        if kind == _tables.K_VALU:
            op, is_float = tables.aux[pc]
            self._valu_op(warp, instruction, op, is_float)
        elif kind == _tables.K_GLOAD:
            traffic = self._global_load(warp, instruction)
        elif kind == _tables.K_GSTORE:
            traffic = self._global_store(warp, instruction)
        elif kind == _tables.K_SALU:
            op, is_float = tables.aux[pc]
            self._salu_op(warp, instruction, op, is_float)
        elif kind == _tables.K_SCMP:
            a = self._scalar_operand(warp, instruction.srcs[0])
            b = self._scalar_operand(warp, instruction.srcs[1])
            warp.scc = int(tables.aux[pc](a, b))
        elif kind == _tables.K_BRANCH:
            condition, target = tables.aux[pc]
            if condition is None or warp.scc == condition:
                next_pc = target
        elif kind == _tables.K_ENDPGM:
            next_pc = tables.n
        elif kind == _tables.K_NOP:
            pass
        elif kind == _tables.K_SLOAD:
            addr = self._scalar_operand(warp, instruction.srcs[0])
            offset = self._scalar_operand(warp, instruction.srcs[1])
            warp.set_scalar(instruction.dsts[0], self.memory.load_word(addr + offset))
            traffic = MemTraffic(4, kind="smem", is_load=True)
        elif kind == _tables.K_LDS_READ:
            traffic = self._lds_read(warp, instruction)
        elif kind == _tables.K_LDS_WRITE:
            traffic = self._lds_write(warp, instruction)
        else:  # _tables.K_CTX — routine-only, off the main-loop hot path
            traffic = self._exec_ctx(warp, instruction)

        warp.pc = next_pc
        return traffic

    # -- ALU ------------------------------------------------------------------------

    def _valu_op(
        self, warp: WarpState, instruction: Instruction, op: Callable, is_float: bool
    ) -> None:
        operands = [self._vector_operand(warp, s) for s in instruction.srcs]
        if is_float:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = _bits(op(*[_f32(o) for o in operands]))
        else:
            with np.errstate(over="ignore"):
                result = op(*operands) & _MASK
        self._write_vector(warp, instruction.dsts[0], result)

    def _exec_valu(self, warp: WarpState, instruction: Instruction, base: str) -> None:
        if base in _INT_OPS:
            self._valu_op(warp, instruction, _INT_OPS[base], False)
        elif base in _FLOAT_OPS:
            self._valu_op(warp, instruction, _FLOAT_OPS[base], True)
        else:  # pragma: no cover
            raise ExecutionError(f"no VALU semantics for v_{base}")

    def _salu_op(
        self, warp: WarpState, instruction: Instruction, op: Callable, is_float: bool
    ) -> None:
        operands = [
            np.uint64(self._scalar_operand(warp, s)) for s in instruction.srcs
        ]
        if is_float:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                arrays = [_f32(np.array([o], dtype=np.uint64)) for o in operands]
                result = int(_bits(op(*arrays))[0])
        else:
            with np.errstate(over="ignore"):
                result = int(op(*operands) & _MASK)
        warp.set_scalar(instruction.dsts[0], result)

    def _exec_salu(self, warp: WarpState, instruction: Instruction, base: str) -> None:
        if base in _INT_OPS:
            self._salu_op(warp, instruction, _INT_OPS[base], False)
        elif base in _FLOAT_OPS:
            self._salu_op(warp, instruction, _FLOAT_OPS[base], True)
        else:  # pragma: no cover
            raise ExecutionError(f"no SALU semantics for s_{base}")

    # -- memory -----------------------------------------------------------------------

    def _global_load(self, warp: WarpState, instruction: Instruction) -> MemTraffic:
        addrs = self._vector_operand(warp, instruction.srcs[0])
        offset = self._scalar_operand(warp, instruction.srcs[1])
        dst = instruction.dsts[0]
        loaded = self.memory.gather(addrs + np.uint64(offset), warp.exec_mask)
        warp.vregs[dst.index][warp.exec_mask] = loaded[warp.exec_mask]
        return MemTraffic(4 * warp.warp_size, kind="load", is_load=True)

    def _global_store(self, warp: WarpState, instruction: Instruction) -> MemTraffic:
        addrs = self._vector_operand(warp, instruction.srcs[0])
        data = self._vector_operand(warp, instruction.srcs[1])
        offset = self._scalar_operand(warp, instruction.srcs[2])
        self.memory.scatter(addrs + np.uint64(offset), data, warp.exec_mask)
        return MemTraffic(4 * warp.warp_size, kind="store")

    def _require_lds(self) -> LDSBlock:
        if self.lds is None:
            raise ExecutionError("kernel uses LDS but no LDS block is attached")
        return self.lds

    def _lds_read(self, warp: WarpState, instruction: Instruction) -> MemTraffic:
        lds = self._require_lds()
        addrs = self._vector_operand(warp, instruction.srcs[0])
        offset = self._scalar_operand(warp, instruction.srcs[1])
        dst = instruction.dsts[0]
        loaded = lds.gather(addrs + np.uint64(offset), warp.exec_mask)
        warp.vregs[dst.index][warp.exec_mask] = loaded[warp.exec_mask]
        return MemTraffic(0, kind="lds", is_load=True)

    def _lds_write(self, warp: WarpState, instruction: Instruction) -> MemTraffic:
        lds = self._require_lds()
        addrs = self._vector_operand(warp, instruction.srcs[0])
        data = self._vector_operand(warp, instruction.srcs[1])
        offset = self._scalar_operand(warp, instruction.srcs[2])
        lds.scatter(addrs + np.uint64(offset), data, warp.exec_mask)
        return MemTraffic(0, kind="lds")

    # -- context buffer ------------------------------------------------------------------

    def _exec_ctx(self, warp: WarpState, instruction: Instruction) -> MemTraffic:
        mnemonic = instruction.mnemonic
        if mnemonic == "ctx_store_v":
            reg, slot = instruction.srcs
            warp.ctx_buffer[slot.value] = warp.vregs[reg.index].copy()
            return MemTraffic(4 * warp.warp_size, is_ctx=True, kind="ctx_store")
        if mnemonic == "ctx_load_v":
            (slot,) = instruction.srcs
            stored = warp.ctx_buffer[slot.value]
            dst = instruction.dsts[0]
            if np.isscalar(stored) or getattr(stored, "ndim", 1) == 0:
                warp.vregs[dst.index, :] = np.uint32(int(stored) & 0xFFFFFFFF)
            else:
                warp.vregs[dst.index, :] = stored
            return MemTraffic(4 * warp.warp_size, is_ctx=True, kind="ctx_load", is_load=True)
        if mnemonic == "ctx_store_s":
            reg, slot = instruction.srcs
            warp.ctx_buffer[slot.value] = warp.get_scalar(reg)
            return MemTraffic(8 if reg == EXEC else 4, is_ctx=True, kind="ctx_store")
        if mnemonic == "ctx_load_s":
            (slot,) = instruction.srcs
            dst = instruction.dsts[0]
            warp.set_scalar(dst, int(warp.ctx_buffer[slot.value]))
            return MemTraffic(
                8 if dst == EXEC else 4, is_ctx=True, kind="ctx_load", is_load=True
            )
        if mnemonic == "ctx_store_lds":
            (nbytes,) = instruction.srcs
            lds = self._require_lds()
            warp.ctx_buffer["lds"] = lds.snapshot()
            return MemTraffic(nbytes.value, is_ctx=True, kind="ctx_store")
        if mnemonic == "ctx_load_lds":
            (nbytes,) = instruction.srcs
            lds = self._require_lds()
            if "lds" in warp.ctx_buffer:
                lds.restore(warp.ctx_buffer["lds"])
            return MemTraffic(nbytes.value, is_ctx=True, kind="ctx_load", is_load=True)
        raise ExecutionError(f"no semantics for {mnemonic}")  # pragma: no cover
