"""Preemption controller: signals, routine dispatch, measurement.

Implements paper §IV-B's runtime flow: when the preemption signal is
processed (before the next instruction of a running warp issues), the warp
jumps to the *dedicated preemption routine* selected by its program counter;
once the routine's stores have drained, the warp's on-chip resources are
released (``EVICTED``).  On resume, the warp runs the dedicated resuming
routine and re-enters the kernel at the plan's ``resume_pc``.

Two measurements fall out, matching §V's metrics:

* **preemption latency** — signal cycle → last context store drained;
* **resuming time** — resume request → resume routine finished (for CKPT:
  → execution has re-reached the dynamic instruction where the preemption
  hit, counting the re-executed iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..ctxback.context import META_BYTES
from ..obs.events import EventKind
from .sm import SM

if TYPE_CHECKING:  # avoid a circular import; PreparedKernel is type-only here
    from ..mechanisms.base import PreparedKernel
from .warp import CkptSnapshot, SimWarp, WarpMode


@dataclass
class WarpMeasurement:
    warp_id: int
    signal_pc: int
    signal_cycle: int
    latency_cycles: int
    resume_cycles: int | None = None
    context_bytes: int = 0
    flashback_pos: int | None = None


@dataclass
class PreemptionController:
    sm: SM
    prepared: "PreparedKernel"
    target_warp_ids: set[int]
    #: preempt each target warp when its dynamic instruction count reaches this
    signal_dyn: int
    measurements: dict[int, WarpMeasurement] = field(default_factory=dict)
    armed: bool = True
    #: warps already signalled once — the experiment preempts each warp once
    delivered: set[int] = field(default_factory=set)
    #: warps currently draining (signal received, running to completion)
    _draining: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.sm.pre_issue_hook = self._on_pre_issue
        self.sm.program_end_hook = self._on_program_end
        self.sm.ckpt_hook = self._on_ckpt_probe

    # -- signal delivery --------------------------------------------------------

    def poll(self) -> None:
        """Raise the preempt flag on target warps that reached the trigger."""
        if not self.armed:
            return
        if len(self.delivered) == len(self.target_warp_ids):
            self.armed = False  # every target signalled once; nothing to scan
            return
        for warp in self.sm.warps:
            if (
                warp.warp_id in self.target_warp_ids
                and warp.warp_id not in self.delivered
                and warp.mode is WarpMode.RUNNING
                and not warp.preempt_flag
                and warp.dyn_count >= self.signal_dyn
            ):
                warp.preempt_flag = True
                self.delivered.add(warp.warp_id)

    # -- hooks ---------------------------------------------------------------------

    def _on_pre_issue(self, warp: SimWarp, cycle: int) -> None:
        """Flagged warp about to issue: divert it into its preemption routine."""
        warp.preempt_flag = False
        n = warp.state.pc
        warp.signal_cycle = cycle
        warp.routine_last_mem_completion = cycle
        strategy = self.prepared.strategy_for(warp)
        warp.active_strategy = strategy
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.SIGNAL, warp.warp_id,
                pc=n, strategy=strategy,
            )
        if strategy == "drain":
            # SM-draining: the warp keeps running; latency is measured when
            # it finishes (see _on_program_end)
            self.measurements[warp.warp_id] = WarpMeasurement(
                warp_id=warp.warp_id,
                signal_pc=n,
                signal_cycle=cycle,
                latency_cycles=-1,
                context_bytes=0,
            )
            self._draining.add(warp.warp_id)
            return
        if strategy == "drop":
            # CKPT drops the warp: its context already lives in the last
            # checkpoint.  Only the per-warp metadata is written out.
            completion = self.sm.pipeline.request(
                cycle, META_BYTES, is_ctx=True, kind="ctx_store"
            )
            warp.mode = WarpMode.EVICTED
            warp.resume_watch_dyn = warp.dyn_count
            snapshot = warp.last_checkpoint
            self.measurements[warp.warp_id] = WarpMeasurement(
                warp_id=warp.warp_id,
                signal_pc=n,
                signal_cycle=cycle,
                latency_cycles=completion - cycle,
                context_bytes=snapshot.nbytes if snapshot else META_BYTES,
            )
            warp.preempt_done_cycle = completion
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="preempt", dur=completion - cycle,
                    nbytes=META_BYTES,
                )
                tracer.emit(completion, EventKind.EVICT, warp.warp_id)
            return
        plan = self.prepared.plans[n]
        warp.active_plan = plan
        warp.mode = WarpMode.PREEMPT_ROUTINE
        warp.program = plan.preempt_routine
        warp.state.pc = 0
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.ROUTINE_START, warp.warp_id,
                routine="preempt", context_bytes=plan.context_bytes,
                flashback=plan.flashback_pos,
            )
        self.measurements[warp.warp_id] = WarpMeasurement(
            warp_id=warp.warp_id,
            signal_pc=n,
            signal_cycle=cycle,
            latency_cycles=-1,
            context_bytes=plan.context_bytes,
            flashback_pos=plan.flashback_pos,
        )

    def _on_program_end(self, warp: SimWarp, cycle: int) -> None:
        tracer = self.sm.tracer
        if warp.mode is WarpMode.RUNNING and warp.warp_id in self._draining:
            # a draining warp finished: the SM is finally released
            measurement = self.measurements[warp.warp_id]
            measurement.latency_cycles = cycle - measurement.signal_cycle
            measurement.resume_cycles = 0  # nothing to resume
            self._draining.discard(warp.warp_id)
            if tracer is not None:
                tracer.emit(cycle, EventKind.DRAIN_DONE, warp.warp_id)
            return
        if warp.mode is WarpMode.PREEMPT_ROUTINE:
            done = max(cycle, warp.routine_last_mem_completion)
            # metadata (pc, ids) rides along with the context
            done = max(
                done,
                self.sm.pipeline.request(done, META_BYTES, is_ctx=True, kind="ctx_store"),
            )
            warp.preempt_done_cycle = done
            warp.mode = WarpMode.EVICTED
            measurement = self.measurements[warp.warp_id]
            measurement.latency_cycles = done - measurement.signal_cycle
            warp.state.clear()  # registers are released; restore must rebuild
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.ROUTINE_END, warp.warp_id,
                    routine="preempt",
                )
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="preempt", dur=done - cycle,
                )
                tracer.emit(done, EventKind.EVICT, warp.warp_id)
        elif warp.mode is WarpMode.RESUME_ROUTINE:
            plan = warp.active_plan
            assert plan is not None
            done = max(cycle, warp.routine_last_mem_completion)
            warp.resume_done_cycle = done
            warp.mode = WarpMode.RUNNING
            warp.program = warp.main_program
            warp.state.pc = plan.resume_pc
            measurement = self.measurements[warp.warp_id]
            measurement.resume_cycles = done - (warp.resume_start_cycle or done)
            warp.active_plan = None
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.ROUTINE_END, warp.warp_id,
                    routine="resume",
                )
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="resume", dur=done - cycle,
                )
                tracer.emit(
                    done, EventKind.RESUME_END, warp.warp_id,
                    strategy="switch",
                )

    def _on_ckpt_probe(self, warp: SimWarp, instruction, cycle: int) -> None:
        if not self.prepared.is_checkpoint_based:
            return
        probe_id = instruction.srcs[0].value
        count = warp.probe_counts.get(probe_id, 0)
        warp.probe_counts[probe_id] = count + 1
        if count % self.sm.config.ckpt_interval != 0:
            return
        site = self.prepared.ckpt_sites[probe_id]
        lds = warp.lds
        warp.last_checkpoint = CkptSnapshot(
            regs=warp.state.snapshot_regs(),
            lds=lds.snapshot() if lds is not None else None,
            dyn_count=warp.dyn_count,
            probe_counts=dict(warp.probe_counts),
            nbytes=site.nbytes,
            pc_after_probe=warp.state.pc + 1,
        )
        # checkpoint stores occupy bandwidth; the warp stalls only while
        # the requests are being issued (one cycle per stored register).
        self.sm.pipeline.request(cycle, site.nbytes, is_ctx=True, kind="ckpt_store")
        warp.next_free = cycle + max(1, site.store_ops)
        if self.sm.tracer is not None:
            self.sm.tracer.emit(
                cycle, EventKind.CKPT_STORE, warp.warp_id,
                probe=probe_id, nbytes=site.nbytes,
            )

    # -- resume ----------------------------------------------------------------------

    def resume_warp(self, warp: SimWarp, cycle: int) -> None:
        if warp.mode is WarpMode.DONE:
            return  # drained warps completed; there is nothing to resume
        if warp.mode is not WarpMode.EVICTED:
            raise RuntimeError(f"warp {warp.warp_id} is not evicted")
        warp.resume_start_cycle = cycle
        warp.routine_last_mem_completion = cycle
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(cycle, EventKind.RESUME_START, warp.warp_id)
        if warp.active_strategy == "drop":
            snapshot = warp.last_checkpoint
            measurement = self.measurements[warp.warp_id]
            if snapshot is None:
                # never checkpointed: restart the kernel from the beginning
                warp.state.clear()
                self.prepared.reinit_warp(warp)
                warp.dyn_count = 0
                warp.probe_counts = {}
                completion = cycle
            else:
                warp.state.restore_regs(snapshot.regs)
                lds = warp.lds
                if lds is not None and snapshot.lds is not None:
                    lds.restore(snapshot.lds)
                warp.dyn_count = snapshot.dyn_count
                warp.probe_counts = dict(snapshot.probe_counts)
                completion = self.sm.pipeline.request(
                    cycle, snapshot.nbytes, is_ctx=True, kind="ctx_load"
                )
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.CTX_RELOAD, warp.warp_id,
                    nbytes=snapshot.nbytes if snapshot else 0,
                    dur=completion - cycle,
                )
            warp.mode = WarpMode.RUNNING
            warp.next_free = max(warp.next_free, completion)
            # resume "completes" when execution re-reaches the preempted
            # dynamic instruction (SM clears the watch when it happens);
            # `is None`, not truthiness — a watch target of dyn 0 is real
            if warp.resume_watch_dyn is None:
                warp.resume_watch_dyn = warp.dyn_count
            warp.resume_done_cycle = None
            measurement.resume_cycles = None
            self.sm.refresh_issuable()  # the warp left the scheduler's list
            return
        plan = warp.active_plan
        assert plan is not None, "evicted warp has no plan"
        warp.mode = WarpMode.RESUME_ROUTINE
        warp.program = plan.resume_routine
        warp.state.pc = 0
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.ROUTINE_START, warp.warp_id,
                routine="resume", context_bytes=plan.context_bytes,
            )
        self.sm.refresh_issuable()  # the warp left the scheduler's list

    def all_evicted(self) -> bool:
        """All signalled target warps have released the SM: their context is
        saved (EVICTED) or, for draining warps, they finished (DONE)."""
        for warp in self.sm.warps:
            if warp.warp_id not in self.target_warp_ids:
                continue
            if warp.warp_id not in self.delivered:
                return False
            if warp.mode not in (WarpMode.EVICTED, WarpMode.DONE):
                return False
        return True
