"""Preemption controller: signals, routine dispatch, measurement.

Implements paper §IV-B's runtime flow: when the preemption signal is
processed (before the next instruction of a running warp issues), the warp
jumps to the *dedicated preemption routine* selected by its program counter;
once the routine's stores have drained, the warp's on-chip resources are
released (``EVICTED``).  On resume, the warp runs the dedicated resuming
routine and re-enters the kernel at the plan's ``resume_pc``.

Two measurements fall out, matching §V's metrics:

* **preemption latency** — signal cycle → last context store drained;
* **resuming time** — resume request → resume routine finished (for CKPT:
  → execution has re-reached the dynamic instruction where the preemption
  hit, counting the re-executed iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..ctxback.context import META_BYTES
from ..faults.errors import ContextIntegrityError
from ..faults.integrity import context_checksum, snapshot_checksum
from ..obs.events import EventKind
from .sm import SM

if TYPE_CHECKING:  # avoid a circular import; PreparedKernel is type-only here
    from ..faults.injector import FaultInjector
    from ..mechanisms.base import PreparedKernel
from .warp import CkptSnapshot, SimWarp, WarpMode


@dataclass
class WarpMeasurement:
    warp_id: int
    signal_pc: int
    signal_cycle: int
    latency_cycles: int
    resume_cycles: int | None = None
    context_bytes: int = 0
    flashback_pos: int | None = None
    #: this warp's preemption fell back to the conservative path
    #: (full register save/restore, or a CKPT checkpoint discard + restart)
    degraded: bool = False
    #: extra cycles spent on the fallback.  ``None`` means *no recovery
    #: data* (clean preemptions never touch it); a genuine ``0`` is a
    #: legitimate zero-cost fallback — e.g. a degraded save whose stores
    #: drained within the same cycle — and must never be coerced back to
    #: "absent" (the falsy-zero sentinel class fixed in PR 2 and PR 7)
    recovery_cycles: int | None = None


@dataclass
class PreemptionController:
    sm: SM
    prepared: "PreparedKernel"
    target_warp_ids: set[int]
    #: preempt each target warp when its dynamic instruction count reaches this
    signal_dyn: int
    measurements: dict[int, WarpMeasurement] = field(default_factory=dict)
    armed: bool = True
    #: warps already signalled once — the experiment preempts each warp once
    delivered: set[int] = field(default_factory=set)
    #: measurements archived by :meth:`rearm` (multi-round preemption —
    #: the model checker signals the same warp several times per run)
    history: list[WarpMeasurement] = field(default_factory=list)
    #: warps currently draining (signal received, running to completion)
    _draining: set[int] = field(default_factory=set)
    #: fault injector (:mod:`repro.faults`); ``None`` disables injection
    #: entirely — the integrity checksums stay on regardless
    faults: "FaultInjector | None" = None
    _full_context_bytes: int | None = None

    def __post_init__(self) -> None:
        self.sm.pre_issue_hook = self._on_pre_issue
        self.sm.program_end_hook = self._on_program_end
        self.sm.ckpt_hook = self._on_ckpt_probe

    # -- signal delivery --------------------------------------------------------

    def poll(self) -> None:
        """Raise the preempt flag on target warps that reached the trigger."""
        faults = self.faults
        if faults is not None:
            # before the armed checks: duplicate injection targets warps
            # whose first preemption was already served (armed may be off)
            faults.on_poll(self, self.sm.cycle)
        if not self.armed:
            return
        if len(self.delivered) == len(self.target_warp_ids):
            self.armed = False  # every target signalled once; nothing to scan
            return
        # pinned delivery order: sm.warps is built in warp_id order, so
        # several warps crossing the trigger on the same poll are flagged
        # in ascending warp_id — same-cycle signals are totally ordered by
        # (signal_cycle, warp_id) on both cores (tests/test_signal_order.py)
        for warp in self.sm.warps:
            if (
                warp.warp_id in self.target_warp_ids
                and warp.warp_id not in self.delivered
                and warp.mode is WarpMode.RUNNING
                and not warp.preempt_flag
                and warp.dyn_count >= self.signal_dyn
            ):
                if faults is not None and faults.drop_signal(warp, self.sm.cycle):
                    continue  # delivery lost in flight; retried next poll
                warp.preempt_flag = True
                self.delivered.add(warp.warp_id)

    # -- hooks ---------------------------------------------------------------------

    def _on_pre_issue(self, warp: SimWarp, cycle: int) -> None:
        """Flagged warp about to issue: divert it into its preemption routine."""
        warp.preempt_flag = False
        if warp.warp_id in self.measurements:
            # duplicate signal for an already-served warp: absorb it rather
            # than re-entering the preemption flow (the experiment preempts
            # each warp exactly once; a re-delivered signal is a fault)
            if self.faults is not None:
                self.faults.stats.duplicates_ignored += 1
            if self.sm.tracer is not None:
                self.sm.tracer.emit(
                    cycle, EventKind.RECOVER, warp.warp_id,
                    action="duplicate_ignored",
                )
            return
        n = warp.state.pc
        warp.signal_cycle = cycle
        warp.routine_last_mem_completion = cycle
        strategy = self.prepared.strategy_for(warp)
        warp.active_strategy = strategy
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.SIGNAL, warp.warp_id,
                pc=n, strategy=strategy,
            )
        if strategy == "drain":
            # SM-draining: the warp keeps running; latency is measured when
            # it finishes (see _on_program_end)
            self.measurements[warp.warp_id] = WarpMeasurement(
                warp_id=warp.warp_id,
                signal_pc=n,
                signal_cycle=cycle,
                latency_cycles=-1,
                context_bytes=0,
            )
            self._draining.add(warp.warp_id)
            return
        if strategy == "drop":
            # CKPT drops the warp: its context already lives in the last
            # checkpoint.  Only the per-warp metadata is written out.
            completion = self.sm.pipeline.request(
                cycle, META_BYTES, is_ctx=True, kind="ctx_store"
            )
            warp.mode = WarpMode.EVICTED
            warp.resume_watch_dyn = warp.dyn_count
            snapshot = warp.last_checkpoint
            # integrity guard: the checkpoint (the context at rest) is
            # checksummed now and re-verified before the resume trusts it
            warp.ctx_checksum = (
                snapshot_checksum(snapshot) if snapshot is not None else None
            )
            self.measurements[warp.warp_id] = WarpMeasurement(
                warp_id=warp.warp_id,
                signal_pc=n,
                signal_cycle=cycle,
                latency_cycles=completion - cycle,
                context_bytes=snapshot.nbytes if snapshot else META_BYTES,
            )
            warp.preempt_done_cycle = completion
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="preempt", dur=completion - cycle,
                    nbytes=META_BYTES,
                )
                tracer.emit(completion, EventKind.EVICT, warp.warp_id)
            if self.faults is not None:
                self.faults.on_evicted(warp, completion)
            return
        plan = self.prepared.plans[n]
        warp.active_plan = plan
        if self.faults is not None:
            # shadow architectural image at the signal point: the ground
            # truth the full-save degradation path restores from.  Captured
            # only while injection is armed — a clean run pays nothing.
            warp.arch_image = self._capture_image(warp)
        warp.mode = WarpMode.PREEMPT_ROUTINE
        warp.program = plan.preempt_routine
        warp.state.pc = 0
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.ROUTINE_START, warp.warp_id,
                routine="preempt", context_bytes=plan.context_bytes,
                flashback=plan.flashback_pos,
            )
        self.measurements[warp.warp_id] = WarpMeasurement(
            warp_id=warp.warp_id,
            signal_pc=n,
            signal_cycle=cycle,
            latency_cycles=-1,
            context_bytes=plan.context_bytes,
            flashback_pos=plan.flashback_pos,
        )

    def _on_program_end(self, warp: SimWarp, cycle: int) -> None:
        tracer = self.sm.tracer
        if warp.mode is WarpMode.RUNNING and warp.warp_id in self._draining:
            # a draining warp finished: the SM is finally released
            measurement = self.measurements[warp.warp_id]
            measurement.latency_cycles = cycle - measurement.signal_cycle
            measurement.resume_cycles = 0  # nothing to resume
            self._draining.discard(warp.warp_id)
            if tracer is not None:
                tracer.emit(cycle, EventKind.DRAIN_DONE, warp.warp_id)
            return
        if warp.mode is WarpMode.PREEMPT_ROUTINE:
            done = max(cycle, warp.routine_last_mem_completion)
            # metadata (pc, ids) rides along with the context
            done = max(
                done,
                self.sm.pipeline.request(done, META_BYTES, is_ctx=True, kind="ctx_store"),
            )
            warp.preempt_done_cycle = done
            warp.mode = WarpMode.EVICTED
            measurement = self.measurements[warp.warp_id]
            measurement.latency_cycles = done - measurement.signal_cycle
            # integrity guard: checksum the saved context now; resume_warp
            # re-verifies before trusting it.  Functional only — computing
            # a CRC cannot change a simulated cycle.
            warp.ctx_checksum = context_checksum(warp.state.ctx_buffer)
            warp.state.clear()  # registers are released; restore must rebuild
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.ROUTINE_END, warp.warp_id,
                    routine="preempt",
                )
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="preempt", dur=done - cycle,
                )
                tracer.emit(done, EventKind.EVICT, warp.warp_id)
            if self.faults is not None:
                self.faults.on_evicted(warp, done)
        elif warp.mode is WarpMode.RESUME_ROUTINE:
            plan = warp.active_plan
            assert plan is not None
            done = max(cycle, warp.routine_last_mem_completion)
            warp.resume_done_cycle = done
            warp.mode = WarpMode.RUNNING
            warp.program = warp.main_program
            warp.state.pc = plan.resume_pc
            measurement = self.measurements[warp.warp_id]
            # `is None`, not truthiness: a resume that started at cycle 0 is
            # a real start, not absent data
            start = warp.resume_start_cycle
            measurement.resume_cycles = done - start if start is not None else 0
            warp.active_plan = None
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.ROUTINE_END, warp.warp_id,
                    routine="resume",
                )
                tracer.emit(
                    cycle, EventKind.MEM_DRAIN, warp.warp_id,
                    routine="resume", dur=done - cycle,
                )
                tracer.emit(
                    done, EventKind.RESUME_END, warp.warp_id,
                    strategy="switch",
                )

    def _on_ckpt_probe(self, warp: SimWarp, instruction, cycle: int) -> None:
        if not self.prepared.is_checkpoint_based:
            return
        probe_id = instruction.srcs[0].value
        count = warp.probe_counts.get(probe_id, 0)
        warp.probe_counts[probe_id] = count + 1
        if count % self.sm.config.ckpt_interval != 0:
            return
        site = self.prepared.ckpt_sites[probe_id]
        lds = warp.lds
        warp.last_checkpoint = CkptSnapshot(
            regs=warp.state.snapshot_regs(),
            lds=lds.snapshot() if lds is not None else None,
            dyn_count=warp.dyn_count,
            probe_counts=dict(warp.probe_counts),
            nbytes=site.nbytes,
            pc_after_probe=warp.state.pc + 1,
        )
        # checkpoint stores occupy bandwidth; the warp stalls only while
        # the requests are being issued (one cycle per stored register).
        self.sm.pipeline.request(cycle, site.nbytes, is_ctx=True, kind="ckpt_store")
        warp.next_free = cycle + max(1, site.store_ops)
        if self.sm.tracer is not None:
            self.sm.tracer.emit(
                cycle, EventKind.CKPT_STORE, warp.warp_id,
                probe=probe_id, nbytes=site.nbytes,
            )

    # -- recovery ----------------------------------------------------------------------

    def full_context_bytes(self) -> int:
        """Bytes of the conservative full-register save (regsave semantics:
        the whole allocated register file + LDS + metadata)."""
        if self._full_context_bytes is None:
            from ..ctxback.context import baseline_context_bytes

            self._full_context_bytes = baseline_context_bytes(
                self.prepared.kernel, self.sm.config.rf_spec
            )
        return self._full_context_bytes

    def _capture_image(self, warp: SimWarp) -> CkptSnapshot:
        """Functional snapshot of the warp's architectural state at the
        signal point (registers, LDS, dynamic progress)."""
        lds = warp.lds
        return CkptSnapshot(
            regs=warp.state.snapshot_regs(),
            lds=lds.snapshot() if lds is not None else None,
            dyn_count=warp.dyn_count,
            probe_counts=dict(warp.probe_counts),
            nbytes=self.full_context_bytes(),
            pc_after_probe=warp.state.pc,
        )

    def _integrity_failure(
        self, warp: SimWarp, cycle: int, *, expected: int, actual: int,
        can_degrade: bool,
    ) -> None:
        """Record a checksum mismatch; degrade if the policy allows it,
        raise :class:`ContextIntegrityError` otherwise."""
        faults = self.faults
        retries = faults.policy.max_retries if faults is not None else 0
        if faults is not None:
            faults.stats.integrity_failures += 1
        if self.sm.tracer is not None:
            self.sm.tracer.emit(
                cycle, EventKind.INTEGRITY_FAIL, warp.warp_id,
                expected=expected, actual=actual, retries=retries,
            )
        if can_degrade and faults is not None and faults.policy.allow_degrade:
            return
        raise ContextIntegrityError(
            f"warp {warp.warp_id}: saved context failed checksum "
            f"verification at resume (expected {expected:#010x}, got "
            f"{actual:#010x}) after {retries} re-read retries",
            warp_id=warp.warp_id, expected=expected, actual=actual,
        )

    def degrade_save(self, warp: SimWarp, cycle: int, reason: str = "") -> None:
        """Abandon the in-flight preemption routine and evict through the
        conservative full-register-save path (regsave semantics).

        The routine's partial context is discarded; the signal-time
        architectural image is written out whole, so the later resume is a
        plain full reload regardless of how far the routine got.
        """
        image = warp.arch_image
        if warp.mode is not WarpMode.PREEMPT_ROUTINE or image is None:
            raise RuntimeError(
                f"warp {warp.warp_id} has no in-flight routine to degrade"
            )
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.DEGRADE, warp.warp_id,
                fallback="full_save", reason=reason,
            )
        completion = self.sm.pipeline.request(
            cycle, image.nbytes, is_ctx=True, kind="ctx_store"
        )
        # stores the aborted routine already issued still have to drain
        completion = max(completion, warp.routine_last_mem_completion)
        warp.degraded_save = True
        warp.ctx_checksum = snapshot_checksum(image)
        warp.mode = WarpMode.EVICTED
        warp.preempt_done_cycle = completion
        warp.state.clear()
        measurement = self.measurements[warp.warp_id]
        measurement.latency_cycles = completion - measurement.signal_cycle
        measurement.context_bytes = image.nbytes
        measurement.degraded = True
        base = measurement.recovery_cycles
        measurement.recovery_cycles = (
            (0 if base is None else base) + max(0, completion - cycle)
        )
        if self.faults is not None:
            self.faults.stats.degraded_saves += 1
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.MEM_DRAIN, warp.warp_id,
                routine="preempt", dur=completion - cycle, nbytes=image.nbytes,
            )
            tracer.emit(completion, EventKind.EVICT, warp.warp_id)
            tracer.emit(
                completion, EventKind.RECOVER, warp.warp_id, action="full_save",
            )

    def _resume_full_image(self, warp: SimWarp, cycle: int) -> None:
        """Restore the signal-time architectural image whole (the full
        register save's restore path) and re-enter the kernel."""
        image = warp.arch_image
        if image is None:
            raise ContextIntegrityError(
                f"warp {warp.warp_id}: context corrupt and no fallback "
                f"image exists",
                warp_id=warp.warp_id,
            )
        warp.state.restore_regs(image.regs)
        lds = warp.lds
        if lds is not None and image.lds is not None:
            lds.restore(image.lds)
        warp.dyn_count = image.dyn_count
        warp.probe_counts = dict(image.probe_counts)
        completion = self.sm.pipeline.request(
            cycle, image.nbytes, is_ctx=True, kind="ctx_load"
        )
        warp.mode = WarpMode.RUNNING
        warp.program = warp.main_program
        warp.next_free = max(warp.next_free, completion)
        warp.resume_done_cycle = completion
        warp.active_plan = None
        measurement = self.measurements[warp.warp_id]
        measurement.resume_cycles = completion - cycle
        base = measurement.recovery_cycles
        measurement.recovery_cycles = (
            (0 if base is None else base) + max(0, completion - cycle)
        )
        measurement.degraded = True
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.CTX_RELOAD, warp.warp_id,
                nbytes=image.nbytes, dur=completion - cycle,
            )
            tracer.emit(
                completion, EventKind.RECOVER, warp.warp_id,
                action="full_reload",
            )
            tracer.emit(
                completion, EventKind.RESUME_END, warp.warp_id,
                strategy="degraded",
            )
        self.sm.refresh_issuable()  # the warp left the scheduler's list

    # -- resume ----------------------------------------------------------------------

    def resume_warp(self, warp: SimWarp, cycle: int) -> None:
        if warp.mode is WarpMode.DONE:
            return  # drained warps completed; there is nothing to resume
        if warp.mode is not WarpMode.EVICTED:
            raise RuntimeError(f"warp {warp.warp_id} is not evicted")
        warp.resume_start_cycle = cycle
        warp.routine_last_mem_completion = cycle
        tracer = self.sm.tracer
        if tracer is not None:
            tracer.emit(cycle, EventKind.RESUME_START, warp.warp_id)
        if warp.degraded_save:
            # the eviction already fell back to the full save; verify the
            # image (cannot degrade further — a mismatch here is fatal)
            actual = snapshot_checksum(warp.arch_image)
            if actual != warp.ctx_checksum:
                self._integrity_failure(
                    warp, cycle, expected=warp.ctx_checksum, actual=actual,
                    can_degrade=False,
                )
            self._resume_full_image(warp, cycle)
            return
        if warp.active_strategy == "drop":
            snapshot = warp.last_checkpoint
            measurement = self.measurements[warp.warp_id]
            if snapshot is not None and warp.ctx_checksum is not None:
                actual = snapshot_checksum(snapshot)
                if actual != warp.ctx_checksum:
                    self._integrity_failure(
                        warp, cycle, expected=warp.ctx_checksum,
                        actual=actual, can_degrade=True,
                    )
                    # degrade: discard the corrupt checkpoint and restart
                    # from the kernel's beginning (the CKPT fallback)
                    warp.last_checkpoint = None
                    snapshot = None
                    measurement.degraded = True
                    if self.faults is not None:
                        self.faults.stats.restarts += 1
                    if tracer is not None:
                        tracer.emit(
                            cycle, EventKind.DEGRADE, warp.warp_id,
                            fallback="restart", reason="corrupt_checkpoint",
                        )
                        tracer.emit(
                            cycle, EventKind.RECOVER, warp.warp_id,
                            action="restart",
                        )
            if snapshot is None:
                # never checkpointed: restart the kernel from the beginning
                warp.state.clear()
                self.prepared.reinit_warp(warp)
                warp.dyn_count = 0
                warp.probe_counts = {}
                completion = cycle
            else:
                warp.state.restore_regs(snapshot.regs)
                lds = warp.lds
                if lds is not None and snapshot.lds is not None:
                    lds.restore(snapshot.lds)
                warp.dyn_count = snapshot.dyn_count
                warp.probe_counts = dict(snapshot.probe_counts)
                completion = self.sm.pipeline.request(
                    cycle, snapshot.nbytes, is_ctx=True, kind="ctx_load"
                )
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.CTX_RELOAD, warp.warp_id,
                    nbytes=snapshot.nbytes if snapshot else 0,
                    dur=completion - cycle,
                )
            warp.mode = WarpMode.RUNNING
            warp.next_free = max(warp.next_free, completion)
            # resume "completes" when execution re-reaches the preempted
            # dynamic instruction (SM clears the watch when it happens);
            # `is None`, not truthiness — a watch target of dyn 0 is real
            if warp.resume_watch_dyn is None:
                warp.resume_watch_dyn = warp.dyn_count
            warp.resume_done_cycle = None
            measurement.resume_cycles = None
            self.sm.refresh_issuable()  # the warp left the scheduler's list
            return
        if warp.ctx_checksum is not None:
            actual = context_checksum(warp.state.ctx_buffer)
            if actual != warp.ctx_checksum:
                self._integrity_failure(
                    warp, cycle, expected=warp.ctx_checksum, actual=actual,
                    can_degrade=warp.arch_image is not None,
                )
                # degrade: the flashback context is untrustworthy, so fall
                # back to restoring the signal-time image whole (the full
                # register save's restore path)
                if tracer is not None:
                    tracer.emit(
                        cycle, EventKind.DEGRADE, warp.warp_id,
                        fallback="full_save", reason="corrupt_context",
                    )
                if self.faults is not None:
                    self.faults.stats.degraded_resumes += 1
                self._resume_full_image(warp, cycle)
                return
        plan = warp.active_plan
        assert plan is not None, "evicted warp has no plan"
        warp.mode = WarpMode.RESUME_ROUTINE
        warp.program = plan.resume_routine
        warp.state.pc = 0
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.ROUTINE_START, warp.warp_id,
                routine="resume", context_bytes=plan.context_bytes,
            )
        self.sm.refresh_issuable()  # the warp left the scheduler's list

    def rearm(self, warp: SimWarp) -> None:
        """Archive a completed preemption round and allow another signal.

        The single-signal experiment preempts each warp exactly once; the
        model checker explores *multiple* rounds per warp.  Once a warp is
        back to RUNNING in the main program this resets the controller's
        per-warp bookkeeping — the finished measurement moves to
        :attr:`history`, the warp becomes signalable again, and the fault /
        integrity fields from the finished round are cleared so the next
        round starts from the same invariants as the first.
        """
        if warp.mode is not WarpMode.RUNNING and warp.mode is not WarpMode.DONE:
            raise RuntimeError(
                f"warp {warp.warp_id} cannot rearm mid-round ({warp.mode.value})"
            )
        measurement = self.measurements.pop(warp.warp_id, None)
        if measurement is not None:
            self.history.append(measurement)
        self.delivered.discard(warp.warp_id)
        self._draining.discard(warp.warp_id)
        warp.active_strategy = None
        warp.active_plan = None
        warp.signal_cycle = None
        warp.preempt_done_cycle = None
        warp.resume_start_cycle = None
        warp.resume_done_cycle = None
        warp.resume_watch_dyn = None
        warp.ctx_checksum = None
        warp.arch_image = None
        warp.degraded_save = False
        self.armed = True

    def all_evicted(self) -> bool:
        """All signalled target warps have released the SM: their context is
        saved (EVICTED) or, for draining warps, they finished (DONE)."""
        for warp in self.sm.warps:
            if warp.warp_id not in self.target_warp_ids:
                continue
            if warp.warp_id not in self.delivered:
                return False
            if warp.mode not in (WarpMode.EVICTED, WarpMode.DONE):
                return False
        return True
