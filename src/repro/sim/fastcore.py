"""Fast execution core: batched warp stepping over compiled basic blocks.

Drop-in engine behind :meth:`repro.sim.sm.SM.advance`, selected by
``GPUConfig.core`` (``REPRO_CORE`` overrides).  It reproduces the reference
core bit-for-bit — same issue cycles, same pipeline-request order, same
trace events, same architectural state — while executing many issues per
Python-level iteration.  The two pillars:

**Eager timing, deferred semantics.**  Issue timing in this simulator is
data-independent within straight-line code: per-pc memory traffic and
latency are static (:mod:`repro.sim.blocks`), the pipeline is a
deterministic function of request order, and only *scalar* state (SCC,
sregs, EXEC) feeds back into control flow.  So each issue executes its
scalar half eagerly (pure-Python ints — cheap) and records its vector half
(NumPy work: VALU, global/LDS memory, context transfers) on one global
deferred list in issue order, materialized in batch at the next barrier.
Consecutive deferred ops of one warp inside one straight-line block
collapse into a *segment* — replayed through a per-warp compiled function
(:func:`~repro.sim.blocks.bind_segment`) whose register rows are bound
once and whose ops are single ``ufunc(..., out=row)`` calls; runs of
identical single-op segments from warps in adjacent backing slots collapse
further into one (warps × lanes) array operation over the shared
register-file backing (see :meth:`WarpState.adopt_shared`).

**Run-ahead scheduling.**  The round-robin tie rule means a warp that just
issued loses any same-cycle tie, so a warp may issue repeatedly without a
scheduler pass exactly while its next ready cycle stays strictly below
every other warp's.  The inner loop exploits that: pick once, then issue
the chosen warp until the horizon (the other warps' minimum ready cycle)
is reached — the common case for stall-heavy kernels and for preemption
routines running while other warps wait on memory.

Materialization barriers (full flush of the deferred list, preserving
cross-warp DeviceMemory ordering):

* before any scheduler hook runs (``pre_issue``/``program_end`` via
  ``SM._scan_slow``, ``ckpt_hook`` at probes) — hooks read and write
  architectural state;
* before eager instructions that read shared semantic state (``s_load``
  reads DeviceMemory; ``ctx_store_s``/``ctx_load_s`` share the context
  buffer) or write EXEC (deferred ops read the mask at materialization);
* when the simulation can return to the caller (no candidates, dyn-break,
  stop cycle, cycle limit) — external code may inspect any state.

Fault injection falls back to the reference interpreter entirely: the
injector hooks every issue and may mutate state mid-flight, which is
precisely the cycle-exact boundary the fast path cannot batch across.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from ..obs.events import SM_WIDE, EventKind
from .blocks import bind_segment, plan_for
from .tables import tables_for
from .warp import SimWarp, WarpMode

_INF = 1 << 62
#: flush the deferred list beyond this many segments even with no barrier
#: in sight, bounding memory for long barrier-free stretches
_FLUSH_CAP = 4096


class _WarpRT:
    """Per-warp runtime handle passed to compiled closures."""

    __slots__ = (
        "warp", "state", "lds", "memory", "prog", "plan", "tables", "segs",
        "xrows",
    )

    def __init__(self, warp: SimWarp, memory) -> None:
        self.warp = warp
        self.state = warp.state
        self.lds = warp.lds
        self.memory = memory
        self.prog = None
        self.plan = None
        self.tables = None
        self.xrows = None
        #: (block, start, count) -> bound segment fn (see bind_segment)
        self.segs = {}


class FastCore:
    """Batched-execution engine bound to one :class:`~repro.sim.sm.SM`."""

    def __init__(self, sm) -> None:
        self.sm = sm
        #: global deferred list, in issue order.  Entries are segments:
        #: ``(rt, block, start, caps)`` — the warp replays
        #: ``block.defer_plans[start:start + len(caps)]``.
        self.queue: list = []

    # -- per-warp compiled state ----------------------------------------------

    def _rt(self, warp: SimWarp) -> _WarpRT:
        rt = warp._fast_rt
        if rt is None:
            rt = warp._fast_rt = _WarpRT(warp, self.sm.memory)
        if rt.prog is not warp.program:
            program = warp.program
            rt.prog = program
            tables = rt.tables = tables_for(program)
            # main kernels go through the content-addressed artifact cache;
            # routines are small one-shot programs compiled directly
            plan = rt.plan = plan_for(
                program,
                self.sm.config,
                use_cache=program is warp.main_program,
            )
            if plan.xrows is None:
                # extend the issue rows with the scoreboard id tuples and
                # the precomputed non-ctx pipeline service time (the plan
                # is memoized per (program, config), and the pipeline's
                # streaming rate is a pure function of the config)
                def_ids = tables.def_ids
                dep_ids = tables.dep_ids
                bpc = self.sm.pipeline.bytes_per_cycle
                plan.xrows = [
                    row
                    + (
                        def_ids[pc],
                        dep_ids[pc],
                        None
                        if row[7] is None or row[7][1]
                        else row[7][0] / bpc,
                    )
                    for pc, row in enumerate(plan.rows)
                ]
            rt.xrows = plan.xrows
        return rt

    # -- materialization -------------------------------------------------------

    def flush(self) -> None:
        """Materialize all deferred vector work, in issue order.

        Each segment replays through its warp's bound function; runs of
        identical segments from warps in adjacent backing slots execute as
        (warps × lanes) NumPy calls when every op in the span has a
        lockstep group form.
        """
        q = self.queue
        if not q:
            return
        self.queue = []
        with np.errstate(over="ignore"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                i = 0
                n = len(q)
                while i < n:
                    entry = q[i]
                    blk = entry[1]
                    start = entry[2]
                    count = len(entry[3])
                    j = i + 1
                    while j < n:
                        e = q[j]
                        if (
                            e[1] is not blk
                            or e[2] != start
                            or len(e[3]) != count
                        ):
                            break
                        j += 1
                    if j - i > 1:
                        key = (start, count)
                        gfns = blk.gsegs.get(key)
                        if gfns is None:
                            fns = [
                                p.group
                                for p in blk.defer_plans[start : start + count]
                            ]
                            gfns = (
                                tuple(fns)
                                if all(f is not None for f in fns)
                                else False
                            )
                            blk.gsegs[key] = gfns
                        if gfns and self._run_group(gfns, q, i, j):
                            i = j
                            continue
                    skey = (blk, start, count)
                    lrt = None
                    seg = None
                    for k in range(i, j):
                        e = q[k]
                        rt = e[0]
                        if rt is not lrt:
                            lrt = rt
                            segs = rt.segs
                            seg = segs.get(skey)
                            if seg is None:
                                seg = segs[skey] = bind_segment(
                                    rt, blk.defer_plans[start : start + count]
                                )
                        seg(e[3])
                    i = j

    @staticmethod
    def _run_group(gfns, q, i, j) -> bool:
        """Execute q[i:j] (identical segments) as batched array ops if the
        warps occupy strictly ascending adjacent backing slots."""
        st0 = q[i][0].state
        base_v = st0.backing_vregs
        if base_v is None:
            return False
        base_e = st0.backing_exec
        slot0 = st0.backing_slot
        exec_all = st0.exec_all
        for offset in range(1, j - i):
            st = q[i + offset][0].state
            if (
                st.backing_vregs is not base_v
                or st.backing_slot != slot0 + offset
            ):
                return False
            if not st.exec_all:
                exec_all = False
        count = j - i
        vb = base_v[slot0 : slot0 + count]
        eb = base_e[slot0 : slot0 + count]
        for fn in gfns:
            fn(vb, eb, exec_all, None)
        return True

    # -- main loop -------------------------------------------------------------

    def advance(self, stop_cycle: int | None = None, limit: int | None = None) -> bool:
        """Advance the SM through as many issues as can be batched.

        Semantically equivalent to calling :meth:`SM.step` in a loop, with
        returns at every boundary the caller could observe or influence:

        * a scheduler hook fired (one further issue completes first, the
          reference's step granularity);
        * a RUNNING warp's ``dyn_break`` target was reached (the experiment
          loop's poll boundary);
        * the cycle counter reached *stop_cycle* (the resume gate) or
          exceeded *limit* (the hang watchdog);
        * nothing can issue (returns ``False`` if no issue happened at all).
        """
        sm = self.sm
        if sm.faults is not None:
            # cycle-exact boundary the batch engine cannot honour: fall
            # back to the reference interpreter per step
            self.flush()
            return sm.step()
        config = sm.config
        if limit is None:
            limit = config.max_cycles
        # one merged cycle ceiling — the first cycle count at which control
        # must return (resume gate or hang watchdog), one compare per issue
        hard_stop = limit + 1
        if stop_cycle is not None and stop_cycle < hard_stop:
            hard_stop = stop_cycle
        running_m = WarpMode.RUNNING
        preempt_m = WarpMode.PREEMPT_ROUTINE
        resume_m = WarpMode.RESUME_ROUTINE
        tracer = sm.tracer
        tr_full = tracer is not None and tracer.full
        stall_kind = EventKind.ISSUE_STALL
        issue_kind = EventKind.ISSUE
        resume_end_kind = EventKind.RESUME_END
        ckpt_hook = sm.ckpt_hook
        has_hook = ckpt_hook is not None
        pipeline = sm.pipeline
        request = pipeline.request
        sbk = pipeline.stats_by_kind
        pipe_lat = pipeline.latency
        ceil = math.ceil
        stats = sm.stats
        counts = stats.pc_counts
        ibm = stats.issued_by_mode
        prune_at = config.scoreboard_prune_threshold
        nw_mod = max(1, len(sm.warps))
        cw: list[SimWarp] = []
        cr: list[int] = []

        issued_any = False
        need_scan = True
        return_once = False
        while True:
            if need_scan:
                need_scan = False
                cw.clear()
                cr.clear()
                dropped = False
                slow = False
                for warp in sm._issuable:
                    mode = warp.mode
                    if (
                        mode is not running_m
                        and mode is not preempt_m
                        and mode is not resume_m
                    ):
                        dropped = True
                        continue
                    if warp.state.pc >= warp.tables().n or warp.preempt_flag:
                        # hooks read (and write) architectural state:
                        # materialize everything first
                        slow = True
                        self.flush()
                        if not sm._scan_slow(warp):
                            dropped = dropped or not warp.issuable
                            continue
                    cw.append(warp)
                    cr.append(warp.ready_cycle())
                if dropped:
                    sm.refresh_issuable()
                if not cw:
                    self.flush()
                    return issued_any
                # a hook fired: let the caller regain control after one
                # more issue (the reference observes at step granularity)
                return_once = slow

            # ---- pick: replicate the reference scheduler exactly --------
            # one pass finds the two smallest ready cycles (m1 at i1, m2);
            # a second picks the round-robin winner among the ready warps.
            # horizon (min ready over the others) then falls out of m1/m2
            # instead of a third scan.
            n_c = len(cw)
            m1 = cr[0]
            i1 = 0
            m2 = _INF
            for i in range(1, n_c):
                c = cr[i]
                if c < m1:
                    m2 = m1
                    m1 = c
                    i1 = i
                elif c < m2:
                    m2 = c
            cyc = sm.cycle
            t = m1 if m1 > cyc else cyc
            if stop_cycle is not None and t >= stop_cycle:
                # the resume gate is strict: no issue may land at or past
                # it.  Hand control back *before* issuing (and before the
                # stall event — the caller acts at stop_cycle and the next
                # advance re-derives the stall from the new picture).  The
                # limit watchdog stays post-issue below so SM.run still
                # observes cycle > limit and raises.
                self.flush()
                return issued_any
            if tracer is not None and m1 > cyc:
                tracer.emit(cyc, stall_kind, SM_WIDE, dur=m1 - cyc)
            rr = sm._rr
            # the reference orders ready warps by (wid < rr, wid): the
            # smallest wid >= rr wins, else the smallest wid overall
            k = -1
            best_ge = -1
            wid_ge = 0
            best_lt = -1
            wid_lt = 0
            for i in range(n_c):
                if cr[i] <= t:
                    wid = cw[i].warp_id
                    if wid >= rr:
                        if best_ge < 0 or wid < wid_ge:
                            best_ge = i
                            wid_ge = wid
                    elif best_lt < 0 or wid < wid_lt:
                        best_lt = i
                        wid_lt = wid
            k = best_ge if best_ge >= 0 else best_lt
            horizon = m2 if k == i1 else m1

            w = cw[k]
            sm._rr = (w.warp_id + 1) % nw_mod
            rt = w._fast_rt
            if rt is None or rt.prog is not w.program:
                rt = self._rt(w)
            rows = rt.xrows
            pn = rt.plan.n
            state = w.state
            pending = w.pending
            pmax = w.pending_max
            mode = w.mode
            running = mode is running_m
            # resolve the common modes by identity: the enum descriptor
            # behind .value is measurable at this call rate
            mode_key = (
                "running"
                if running
                else "preempt"
                if mode is preempt_m
                else mode.value
            )
            wid = w.warp_id
            pc = state.pc
            db = w.dyn_break if running else None
            dyn = w.dyn_count
            watch_dyn = _INF
            if (
                running
                and w.resume_watch_dyn is not None
                and w.resume_start_cycle is not None
                and w.resume_done_cycle is None
            ):
                watch_dyn = w.resume_watch_dyn
            clen = len(counts)
            queue = self.queue
            ni = 0  # issues this pick (stats batched at the exits)
            last_t1 = cyc  # sm.cycle image (synced at hooks and exits)
            seg_blk = None
            seg_start = 0
            seg_caps = None
            seg_n = 0
            issued_any = True  # the pick guarantees at least one issue
            row = rows[pc]

            # ---- run-ahead: issue w until the horizon (or an event) -----
            while True:
                if row[6] and has_hook:
                    # the hook snapshots registers/LDS and may redirect pc
                    if seg_blk is not None:
                        queue.append((rt, seg_blk, seg_start, seg_caps))
                        seg_blk = None
                    if ni:
                        stats.issued += ni
                        ibm[mode_key] = ibm.get(mode_key, 0) + ni
                        ni = 0
                    sm.cycle = last_t1
                    stats.cycles = last_t1
                    w.pending_max = pmax
                    self.flush()
                    queue = self.queue
                    state.pc = pc
                    ckpt_hook(w, rt.tables.program.instructions[pc], t)
                    pc = state.pc
                    row = rows[pc]
                    watch_dyn = _INF
                    if (
                        running
                        and w.resume_watch_dyn is not None
                        and w.resume_start_cycle is not None
                        and w.resume_done_cycle is None
                    ):
                        watch_dyn = w.resume_watch_dyn
                if running:
                    if dyn >= watch_dyn:
                        w.resume_done_cycle = t
                        watch_dyn = _INF
                        if tracer is not None:
                            tracer.emit(
                                t, resume_end_kind, wid, strategy="drop"
                            )
                    if pc >= clen:
                        counts.extend([0] * (pc + 1 - clen))
                        clen = pc + 1
                    counts[pc] += 1
                if tr_full:
                    tracer.emit(
                        t, issue_kind, wid,
                        pc=pc, mode=mode_key, mnemonic=row[9],
                    )

                # semantics: eager scalar half now, vector half deferred
                eager = row[0]
                if eager is not None:
                    if row[5]:
                        if seg_blk is not None:
                            queue.append((rt, seg_blk, seg_start, seg_caps))
                            seg_blk = None
                        self.flush()
                        queue = self.queue
                    next_pc = eager(rt)
                else:
                    if row[1] is not None:
                        capfn = row[2]
                        cap = capfn(state) if capfn is not None else None
                        b = row[3]
                        if b is seg_blk and row[4] == seg_start + seg_n:
                            seg_caps.append(cap)
                            seg_n += 1
                        else:
                            if seg_blk is not None:
                                queue.append(
                                    (rt, seg_blk, seg_start, seg_caps)
                                )
                                if len(queue) >= _FLUSH_CAP:
                                    self.flush()
                                    queue = self.queue
                            seg_blk = b
                            seg_start = row[4]
                            seg_caps = [cap]
                            seg_n = 1
                    next_pc = pc + 1

                # bookkeeping: mirror SM._issue field by field
                w.next_free = t + 1
                if running:
                    dyn += 1
                    w.dyn_count = dyn
                ni += 1
                traffic = row[7]
                if traffic is None:
                    completion = t + row[8]
                else:
                    service = row[12]
                    if service is None:
                        # ctx traffic: rate selection + overhead stay in
                        # the pipeline method
                        completion = request(
                            t, traffic[0], is_ctx=True, kind=traffic[2]
                        )
                    else:
                        # streaming traffic: MemoryPipeline.request inlined
                        # with the division precompiled into the row
                        # (identical float sequence, max → ternary)
                        pf = pipeline._port_free
                        pf = (pf if pf >= t else float(t)) + service
                        pipeline._port_free = pf
                        pipeline.total_bytes += traffic[0]
                        pipeline.total_requests += 1
                        kk = traffic[2]
                        sbk[kk] = sbk.get(kk, 0) + traffic[0]
                        completion = ceil(pf) + pipe_lat
                    if completion > w.routine_last_mem_completion:
                        w.routine_last_mem_completion = completion
                if row[10]:
                    for rid in row[10]:
                        pending[rid] = completion
                    if completion > pmax:
                        pmax = completion
                    if len(pending) > prune_at:
                        w.prune_pending(t)  # rebinds warp.pending
                        pending = w.pending
                t1 = t + 1
                last_t1 = t1
                pc = next_pc

                # exits.  Returns (control to the caller) before the
                # program-end rescan: the poll between steps must see this
                # warp's dyn_count while it is still RUNNING.
                if return_once:
                    break
                if db is not None and dyn >= db:
                    break
                if t1 >= hard_stop:
                    break
                if pc >= pn:
                    # program ended: rescan so the end hook fires at the
                    # next step boundary (cycle t1), like the reference
                    state.pc = pc
                    need_scan = True
                    break
                row = rows[pc]

                # next ready cycle of w (>= t1 by construction).  The
                # watermark check subsumes the scoreboard walk: every
                # outstanding completion is <= pmax
                nr = t1
                if pmax > t1:
                    for rid in row[11]:
                        c = pending.get(rid, 0)
                        if c > nr:
                            nr = c
                if nr >= horizon or nr >= hard_stop:
                    # another warp ties or beats w at its next slot (the
                    # round-robin rule hands the SM over) — or the stall
                    # jump would cross the cycle ceiling: repick, where
                    # the pre-issue stop gate can intervene
                    cr[k] = nr
                    state.pc = pc
                    break
                if tracer is not None and nr > t1:
                    tracer.emit(t1, stall_kind, SM_WIDE, dur=nr - t1)
                t = nr

            # spill any half-tracked segment before control can leave
            if seg_blk is not None:
                queue.append((rt, seg_blk, seg_start, seg_caps))
                seg_blk = None
                if len(queue) >= _FLUSH_CAP:
                    self.flush()
            if ni:
                stats.issued += ni
                ibm[mode_key] = ibm.get(mode_key, 0) + ni
            sm.cycle = last_t1
            stats.cycles = last_t1
            w.pending_max = pmax
            if need_scan:
                continue
            if pc < pn or state.pc != pc:
                state.pc = pc
            if return_once or (db is not None and dyn >= db):
                return True
            if last_t1 >= hard_stop:
                return True
            # horizon break: candidates are still valid, repick directly
