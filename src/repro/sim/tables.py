"""Precomputed per-program issue tables for the SM's hot loop.

``SM._issue`` and ``SimWarp.ready_cycle`` run once per simulated cycle; with
the naive implementation every issue re-derives the instruction's register
effects (``uses()``/``defs()`` build fresh tuples and hash ``Reg`` objects),
re-looks-up the opcode spec, and re-walks a string-prefix dispatch chain in
the executor.  :func:`tables_for` hoists all of that to program-build time:

* register operands are interned to small integers (:func:`reg_id`), so the
  scoreboard becomes a plain ``dict[int, int]``;
* per-pc dependence tuples (uses ∪ defs) and def tuples are precomputed;
* branch targets are resolved to instruction indices;
* the executor dispatch is compiled to an integer opcode kind plus the
  pre-resolved ALU/compare callable;
* per-pc result latencies are memoized per timing configuration.

Tables are cached on the :class:`~repro.isa.instruction.Program` instance
and invalidated if the instruction count changes (programs are only mutated
while being built, never mid-simulation).
"""

from __future__ import annotations

from ..isa.instruction import Imm, Instruction, Label, Program
from ..isa.opcodes import OpClass
from ..isa.registers import Reg

# -- register interning ---------------------------------------------------------

_REG_IDS: dict[Reg, int] = {}
_REGS_BY_ID: list[Reg] = []


def reg_id(reg: Reg) -> int:
    """Small-integer handle for *reg*, stable for the process lifetime."""
    rid = _REG_IDS.get(reg)
    if rid is None:
        rid = len(_REGS_BY_ID)
        _REG_IDS[reg] = rid
        _REGS_BY_ID.append(reg)
    return rid


def reg_of(rid: int) -> Reg:
    return _REGS_BY_ID[rid]


# -- executor dispatch kinds ----------------------------------------------------

K_VALU = 0  # aux: (op callable, is_float)
K_SALU = 1  # aux: (op callable, is_float)
K_SCMP = 2  # aux: compare callable
K_BRANCH = 3  # aux: (condition, target_index); condition None=always, 0/1=scc
K_ENDPGM = 4
K_NOP = 5  # s_nop / s_barrier / ckpt_probe
K_SLOAD = 6
K_GLOAD = 7
K_GSTORE = 8
K_LDS_READ = 9
K_LDS_WRITE = 10
K_CTX = 11  # context-buffer transfers; dispatched by mnemonic (cold path)


def _compile_dispatch(program: Program, instruction: Instruction):
    """(kind, aux) executor dispatch entry for one instruction."""
    # imported here: executor imports this module for the fast path
    from .executor import _CMP_OPS, _FLOAT_OPS, _INT_OPS

    mnemonic = instruction.mnemonic
    if mnemonic.startswith("v_"):
        base = mnemonic[2:]
        if base in _INT_OPS:
            return K_VALU, (_INT_OPS[base], False)
        return K_VALU, (_FLOAT_OPS[base], True)
    if mnemonic.startswith("s_cmp_"):
        return K_SCMP, _CMP_OPS[mnemonic[len("s_cmp_") :]]
    if mnemonic in ("s_branch", "s_cbranch_scc0", "s_cbranch_scc1"):
        condition = {"s_branch": None, "s_cbranch_scc0": 0, "s_cbranch_scc1": 1}[
            mnemonic
        ]
        target = instruction.srcs[0]
        assert isinstance(target, Label)
        return K_BRANCH, (condition, program.target_index(target.name))
    if mnemonic == "s_endpgm":
        return K_ENDPGM, None
    if mnemonic in ("s_nop", "s_barrier", "ckpt_probe"):
        return K_NOP, None
    if mnemonic == "s_load":
        return K_SLOAD, None
    if mnemonic.startswith("s_"):
        base = mnemonic[2:]
        if base in _INT_OPS:
            return K_SALU, (_INT_OPS[base], False)
        return K_SALU, (_FLOAT_OPS[base], True)
    if mnemonic == "global_load":
        return K_GLOAD, None
    if mnemonic == "global_store":
        return K_GSTORE, None
    if mnemonic == "lds_read":
        return K_LDS_READ, None
    if mnemonic == "lds_write":
        return K_LDS_WRITE, None
    if mnemonic.startswith("ctx_"):
        return K_CTX, None
    raise KeyError(f"no dispatch for {mnemonic}")


class ProgramTables:
    """Issue-time lookup tables for one (immutable) program."""

    __slots__ = (
        "program",
        "n",
        "dep_ids",
        "def_ids",
        "opclass",
        "kind",
        "aux",
        "is_ckpt_probe",
        "mnemonics",
        "writes_exec",
        "_latency_cache",
    )

    def __init__(self, program: Program) -> None:
        from ..isa.registers import EXEC

        self.program = program
        instructions = program.instructions
        self.n = len(instructions)
        self.dep_ids: list[tuple[int, ...]] = []
        self.def_ids: list[tuple[int, ...]] = []
        self.opclass: list[OpClass] = []
        self.kind: list[int] = []
        self.aux: list = []
        self.is_ckpt_probe: list[bool] = []
        #: per-pc mnemonic strings (tracer ``ISSUE`` events, traffic kinds)
        self.mnemonics: list[str] = []
        #: per-pc "writes the EXEC mask" flags — the fast core must drain
        #: deferred vector work before an EXEC write lands (the mask is read
        #: at materialization time, not at issue time)
        self.writes_exec: list[bool] = []
        self._latency_cache: dict[tuple[int, int, int], list[int]] = {}
        exec_id = reg_id(EXEC)
        for instruction in instructions:
            deps: list[int] = []
            for reg in instruction.uses():
                rid = reg_id(reg)
                if rid not in deps:
                    deps.append(rid)
            defs: list[int] = []
            for reg in instruction.defs():
                rid = reg_id(reg)
                if rid not in defs:
                    defs.append(rid)
                if rid not in deps:
                    deps.append(rid)
            self.dep_ids.append(tuple(deps))
            self.def_ids.append(tuple(defs))
            self.opclass.append(instruction.spec.opclass)
            kind, aux = _compile_dispatch(program, instruction)
            self.kind.append(kind)
            self.aux.append(aux)
            self.is_ckpt_probe.append(instruction.mnemonic == "ckpt_probe")
            self.mnemonics.append(instruction.mnemonic)
            self.writes_exec.append(exec_id in defs)

    def latencies(self, valu: int, lds: int, salu: int) -> list[int]:
        """Per-pc result latency under one timing configuration."""
        key = (valu, lds, salu)
        cached = self._latency_cache.get(key)
        if cached is None:
            by_class = {OpClass.VALU: valu, OpClass.LDS: lds}
            cached = [by_class.get(c, salu) for c in self.opclass]
            self._latency_cache[key] = cached
        return cached


def tables_for(program: Program) -> ProgramTables:
    """The (cached) issue tables of *program*.

    The cache key is the instance itself; a length change (the only mutation
    the builder performs) invalidates the cached tables.
    """
    tables = program.__dict__.get("_sim_tables")
    if tables is None or tables.n != len(program.instructions):
        tables = ProgramTables(program)
        program.__dict__["_sim_tables"] = tables
    return tables
