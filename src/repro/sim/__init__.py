"""Cycle-level single-SM GPU simulator (functional + timing).

Substitutes for the paper's AMD Radeon VII testbed (DESIGN.md §2): warps
execute the synthetic ISA functionally (NumPy-vectorized over lanes) under a
timing model with fixed ALU latencies and a bandwidth-limited memory
pipeline.  Preemption routines are *executed*, not modelled: latency and
resume measurements come from the same machinery as kernel execution.
"""

from ..faults.errors import ContextIntegrityError, SimulationHangError
from .config import GPUConfig
from .executor import ExecutionError, Executor, MemTraffic
from .gpu import (
    ExperimentResult,
    LaunchSpec,
    RunResult,
    build_launch,
    run_preemption_experiment,
    run_reference,
)
from .memory import DeviceMemory, MemoryPipeline
from .preemption import PreemptionController, WarpMeasurement
from .regfile import LDSBlock, WarpState
from .sm import SM, SMStats
from .warp import CkptSnapshot, SimWarp, WarpMode

__all__ = [
    "CkptSnapshot",
    "ContextIntegrityError",
    "DeviceMemory",
    "ExecutionError",
    "Executor",
    "ExperimentResult",
    "GPUConfig",
    "LaunchSpec",
    "LDSBlock",
    "MemTraffic",
    "MemoryPipeline",
    "PreemptionController",
    "RunResult",
    "SM",
    "SMStats",
    "SimWarp",
    "SimulationHangError",
    "WarpMeasurement",
    "WarpMode",
    "WarpState",
    "build_launch",
    "run_preemption_experiment",
    "run_reference",
]
