"""Symbolic plan verifier and ISA dataflow lint framework.

``repro.verify`` proves — by abstract interpretation over the
:mod:`repro.isa` semantics — that every mechanism's preemption/resuming
routine pair rebuilds the live context at the signal position, and lints the
generated artifacts for structural problems (slot overlap, clobbered OSRB
backups, illegal revert-table entries, ...).  Run it with
``python -m repro lint``; see DESIGN.md §"Verification" for the abstract
domain and the finding-code catalogue.
"""

from .findings import (
    CODE_REGISTRY,
    Finding,
    FindingList,
    Severity,
    errors,
    failing,
)
from .interp import CtxBufferModel, RoutineInterp
from .lint import (
    LintOptions,
    LintReport,
    lint_opcode_table,
    lint_osrb,
    lint_routine_kinds,
    run_lint,
)
from .oracle import BlockOracle, KernelOracle, RevertCandidate
from .plans import PlanVerifier, verify_prepared
from .report import (
    describe_codes,
    diff_against_baseline,
    finding_to_dict,
    load_baseline_keys,
    render_json,
    render_text,
    report_to_dict,
)

__all__ = [
    "CODE_REGISTRY",
    "Finding",
    "FindingList",
    "Severity",
    "errors",
    "failing",
    "CtxBufferModel",
    "RoutineInterp",
    "LintOptions",
    "LintReport",
    "lint_opcode_table",
    "lint_osrb",
    "lint_routine_kinds",
    "run_lint",
    "BlockOracle",
    "KernelOracle",
    "RevertCandidate",
    "PlanVerifier",
    "verify_prepared",
    "describe_codes",
    "diff_against_baseline",
    "finding_to_dict",
    "load_baseline_keys",
    "render_json",
    "render_text",
    "report_to_dict",
]
