"""Reporters and the ``--diff-baseline`` ratchet for ``python -m repro lint``.

The JSON shape is the tooling contract: a ``findings`` array of objects with
the stable key fields (``code``, ``kernel``, ``mechanism``, ``position``,
``where``) plus severity and message, and a ``summary`` block.  A baseline
file is simply a previous JSON report (or any JSON object with a
``findings`` array); the ratchet compares finding *keys*, so pre-existing
findings do not block a run while anything new does.
"""

from __future__ import annotations

import json

from .findings import CODE_REGISTRY, Finding, Severity
from .lint import LintReport

JSON_SCHEMA_VERSION = 1


def finding_to_dict(finding: Finding) -> dict:
    return {
        "code": finding.code,
        "severity": finding.severity.value,
        "kernel": finding.kernel,
        "mechanism": finding.mechanism,
        "position": finding.position,
        "where": finding.where,
        "message": finding.message,
    }


def finding_from_dict(entry: dict) -> Finding:
    """Inverse of :func:`finding_to_dict` — the JSON schema round-trip.

    ``severity`` is derived from the registry, not the dict, so a report
    edited to disagree with the registry cannot smuggle in a downgrade;
    an unregistered code raises exactly as direct construction would.
    """
    return Finding(
        code=entry["code"],
        message=entry.get("message", ""),
        kernel=entry.get("kernel", ""),
        mechanism=entry.get("mechanism", ""),
        position=entry.get("position"),
        where=entry.get("where", ""),
    )


def _key_from_dict(entry: dict) -> tuple:
    return (
        entry.get("code", ""),
        entry.get("kernel", ""),
        entry.get("mechanism", ""),
        entry.get("position"),
        entry.get("where", ""),
    )


def report_to_dict(report: LintReport) -> dict:
    by_severity = {severity.value: 0 for severity in Severity}
    for finding in report.findings:
        by_severity[finding.severity.value] += 1
    return {
        "schema": JSON_SCHEMA_VERSION,
        "summary": {
            "kernels": report.kernels,
            "mechanisms": report.mechanisms,
            "warp_size": report.options.warp_size,
            "strict": report.options.strict,
            "plans_verified": report.plans_verified,
            "routines_checked": report.routines_checked,
            "findings": len(report.findings),
            "by_severity": by_severity,
            "ok": report.ok,
        },
        "findings": [finding_to_dict(finding) for finding in report.findings],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    lines = [
        f"repro lint: {len(report.kernels)} kernel(s) × "
        f"{len(report.mechanisms)} mechanism(s), warp size "
        f"{report.options.warp_size}",
        f"  verified {report.plans_verified} plan(s), kind-checked "
        f"{report.routines_checked} routine(s)",
    ]
    if not report.findings:
        lines.append("  no findings")
    for finding in report.findings:
        lines.append("  " + finding.render())
    failing = report.failing
    if failing:
        lines.append(
            f"FAIL: {len(failing)} blocking finding(s)"
            + (" (strict)" if report.options.strict else "")
        )
    else:
        extra = len(report.findings) - len(failing)
        suffix = f" ({extra} non-blocking)" if extra else ""
        lines.append(f"OK{suffix}")
    return "\n".join(lines)


def describe_codes() -> str:
    """One line per registered finding code (for docs and --codes)."""
    lines = []
    for code in sorted(CODE_REGISTRY):
        severity, description = CODE_REGISTRY[code]
        lines.append(f"{code}  [{severity.value:7s}] {description}")
    return "\n".join(lines)


# -- baseline ratchet -------------------------------------------------------------


def load_baseline_keys(path: str) -> set[tuple]:
    """Finding keys recorded in a baseline file (a previous JSON report)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data.get("findings", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must contain a findings array")
    return {_key_from_dict(entry) for entry in entries if isinstance(entry, dict)}


def diff_against_baseline(
    findings: list[Finding], baseline_keys: set[tuple]
) -> list[Finding]:
    """Findings whose key is not in the baseline — the regressions."""
    return [f for f in findings if f.key not in baseline_keys]
