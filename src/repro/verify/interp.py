"""Abstract interpretation of preempt/resume routines over value classes.

The abstract domain is a *set of facts* per register: each fact (atom) names
something the register's concrete value provably equals —

* ``("cid", c)`` — the value of congruence class ``c`` of the block oracle;
* ``("unk", reg)`` — the (unknown but fixed) value *reg* held when the
  preemption signal arrived; produced for registers the block's value
  numbering does not track (e.g. BASELINE's dead-register saves);
* ``("full",)`` — the all-lanes-enabled exec mask a warp restarts with after
  its register file is cleared (``sim.regfile.clear``);
* ``("const", v)`` — an immediate;
* ``("opaque", n)`` — result of an instruction the verifier could not prove
  anything about (each occurrence distinct).

Sets stay singletons almost everywhere; they only grow when one routine
instruction is provably *both* a re-execution and a revert (then the result
equals both classes at once, so the union is sound).  Routine instructions
are recognised against the oracle's indices:

* ``ctx_*`` ops drive the :class:`CtxBufferModel`;
* register moves copy the fact set (the same ``COPY_MNEMONICS`` the value
  numbering propagates through);
* a verbatim kernel instruction whose operands hold their original value
  classes is a legal re-execution (flashback re-execution and CS-Defer's
  deferred window both reduce to this);
* an instruction matching a :class:`~repro.verify.oracle.RevertCandidate`
  recovers the overwritten class (Alg. 2 inverses, checked to be true
  inverses — wrong operand/immediate/mnemonic fails the match);
* anything else is unverifiable (``VER105``/``VER111``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..compiler.usedef import COPY_MNEMONICS
from ..isa.instruction import Imm, Instruction, Program
from ..isa.opcodes import MemKind, OpClass
from ..isa.registers import EXEC, Reg, RegKind
from .findings import FindingList
from .oracle import BlockOracle, KernelOracle

FULL_EXEC = ("full",)


@dataclass
class SlotRecord:
    offset: int
    nbytes: int
    is_vector: bool
    token: frozenset
    source: str
    loaded: bool = False


@dataclass
class CtxBufferModel:
    """Context-buffer usage of one plan: slots, overlap, the LDS area."""

    slots: dict[int, SlotRecord] = field(default_factory=dict)
    lds_stored: int | None = None
    lds_loaded: int | None = None

    def store(
        self,
        offset: int,
        nbytes: int,
        is_vector: bool,
        token: frozenset,
        source: str,
        fl: FindingList,
        position: int,
        where: str,
    ) -> None:
        for record in self.slots.values():
            if offset < record.offset + record.nbytes and record.offset < offset + nbytes:
                fl.add(
                    "LNT201",
                    f"store of {source} at [{offset:#x},{offset + nbytes:#x}) "
                    f"overlaps the slot of {record.source} at "
                    f"[{record.offset:#x},{record.offset + record.nbytes:#x})",
                    position,
                    where,
                )
        self.slots[offset] = SlotRecord(offset, nbytes, is_vector, token, source)

    def load(
        self,
        offset: int,
        nbytes: int,
        is_vector: bool,
        dst: Reg,
        fl: FindingList,
        position: int,
        where: str,
    ) -> frozenset | None:
        record = self.slots.get(offset)
        if record is None:
            fl.add(
                "VER103",
                f"{dst} loaded from ctx slot {offset:#x}, which the "
                f"preemption routine never stored",
                position,
                where,
            )
            return None
        record.loaded = True
        if record.is_vector != is_vector or record.nbytes != nbytes:
            fl.add(
                "VER104",
                f"slot {offset:#x} holds {record.nbytes} B of {record.source} "
                f"but is reloaded as {nbytes} B into {dst}",
                position,
                where,
            )
        return record.token

    def stored_reg_bytes(self) -> int:
        return sum(record.nbytes for record in self.slots.values())


class RoutineInterp:
    """Symbolically executes one routine against the block oracle."""

    def __init__(
        self,
        kernel_oracle: KernelOracle,
        oracle: BlockOracle,
        buffer: CtxBufferModel,
        fl: FindingList,
        position: int,
        where: str,
        warp_size: int,
        lds_share: int,
        opaque_ids: "itertools.count",
        initial: dict[Reg, frozenset] | None = None,
        implicit_unknowns: bool = False,
    ) -> None:
        self.kernel_oracle = kernel_oracle
        self.oracle = oracle
        self.buffer = buffer
        self.fl = fl
        self.position = position
        self.where = where
        self.warp_size = warp_size
        self.lds_share = lds_share
        self._opaque_ids = opaque_ids
        self.state: dict[Reg, frozenset] = dict(initial or {})
        #: preempt routines may read any physical register (BASELINE saves
        #: the whole allocation): reads outside the tracked state produce a
        #: stable "whatever it held at the signal" fact.  Resume routines run
        #: on a cleared register file, so such reads are real bugs (VER110).
        self._implicit_unknowns = implicit_unknowns
        self._reported_undef: set[Reg] = set()
        self._warned_masked_mov = False

    # -- state ------------------------------------------------------------------

    def _opaque(self) -> frozenset:
        return frozenset({("opaque", next(self._opaque_ids))})

    def read(self, reg: Reg) -> frozenset:
        token = self.state.get(reg)
        if token is not None:
            return token
        if self._implicit_unknowns:
            token = frozenset({("unk", reg)})
        else:
            if reg not in self._reported_undef:
                self._reported_undef.add(reg)
                self.fl.add(
                    "VER110",
                    f"{reg} read before the routine defines it "
                    f"(the register file is cleared on eviction)",
                    self.position,
                    self.where,
                )
            token = self._opaque()
        self.state[reg] = token
        return token

    def write(self, reg: Reg, token: frozenset) -> None:
        self.state[reg] = token

    def _holds(self, reg: Reg, cid: int) -> bool:
        return ("cid", cid) in self.read(reg)

    # -- driver -----------------------------------------------------------------

    def run(self, routine: Program) -> None:
        for instruction in routine.instructions:
            self.step(instruction)

    def step(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        if mnemonic.startswith("ctx_"):
            self._step_ctx(instruction)
            return
        spec = instruction.spec
        if spec.is_branch or spec.is_terminator:
            self.fl.add(
                "VER105",
                f"control flow inside a routine is not verifiable: "
                f"{instruction}",
                self.position,
                self.where,
            )
            return
        if mnemonic in COPY_MNEMONICS and self._is_plain_copy(instruction):
            self._step_copy(instruction)
            return
        self._step_computation(instruction)

    # -- context buffer ------------------------------------------------------------

    def _step_ctx(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        if mnemonic == "ctx_store_lds":
            nbytes = instruction.srcs[0].value
            if self.lds_share == 0 or nbytes != self.lds_share:
                self.fl.add(
                    "VER108",
                    f"ctx_store_lds of {nbytes} B but the kernel's per-warp "
                    f"LDS share is {self.lds_share} B",
                    self.position,
                    self.where,
                )
            self.buffer.lds_stored = nbytes
            return
        if mnemonic == "ctx_load_lds":
            nbytes = instruction.srcs[0].value
            if self.buffer.lds_stored != nbytes:
                self.fl.add(
                    "VER108",
                    f"ctx_load_lds of {nbytes} B but the preemption routine "
                    f"stored {self.buffer.lds_stored}",
                    self.position,
                    self.where,
                )
            self.buffer.lds_loaded = nbytes
            return
        if mnemonic in ("ctx_store_v", "ctx_store_s"):
            reg = instruction.srcs[0]
            offset = instruction.srcs[1].value
            self.buffer.store(
                offset,
                reg.context_bytes(self.warp_size),
                reg.kind is RegKind.VECTOR,
                self.read(reg),
                str(reg),
                self.fl,
                self.position,
                self.where,
            )
            return
        if mnemonic in ("ctx_load_v", "ctx_load_s"):
            offset = instruction.srcs[0].value
            dst = instruction.dsts[0]
            token = self.buffer.load(
                offset,
                dst.context_bytes(self.warp_size),
                dst.kind is RegKind.VECTOR,
                dst,
                self.fl,
                self.position,
                self.where,
            )
            self.write(dst, token if token is not None else self._opaque())
            return
        self.fl.add(  # pragma: no cover - exhaustive over ctx_* opcodes
            "VER105",
            f"unrecognised context accessor {instruction}",
            self.position,
            self.where,
        )

    # -- copies -----------------------------------------------------------------

    def _is_plain_copy(self, instruction: Instruction) -> bool:
        """A masked (partial-exec) v_mov merges lanes — not a plain copy.

        That only happens to verbatim kernel instructions re-executed in a
        routine; those are handled by the re-execution rule instead.
        """
        if not isinstance(instruction.srcs[0], Reg):
            return True  # immediate mov: still a plain write
        if instruction.mnemonic != "v_mov":
            return True
        positions = self.oracle.reexec_index.get(instruction)
        if positions and any(q in self.oracle.partial_exec for q in positions):
            return False
        return True

    def _step_copy(self, instruction: Instruction) -> None:
        dst = instruction.dsts[0]
        src = instruction.srcs[0]
        if isinstance(src, Imm):
            atoms = {("const", src.value)}
        else:
            if (
                instruction.mnemonic == "v_mov"
                and self.kernel_oracle.exec_may_be_partial
                and FULL_EXEC not in self.read(EXEC)
                and instruction not in self.oracle.reexec_index
                and not self._warned_masked_mov
            ):
                # a routine-emitted v_mov after the exec mask was restored to
                # a possibly-partial value copies only the active lanes
                self._warned_masked_mov = True
                self.fl.add(
                    "LNT204",
                    f"{instruction} executes after the exec mask may have "
                    f"been restored to a partial value; the copy is "
                    f"lane-masked",
                    self.position,
                    self.where,
                )
            atoms = set(self.read(src))
        # a verbatim kernel mov whose operands hold their original values is
        # *also* a re-execution: its destination additionally holds the
        # kernel definition's value class (which downstream re-executed
        # instructions consume — e.g. an accumulator initialised by an
        # immediate mov and rebuilt by re-running the chain)
        region = self.oracle.region
        for q in self.oracle.reexec_index.get(instruction, ()):
            pairs = zip(region.effective_uses_at(q), region.use_values_at(q))
            if all(self._holds(reg, self.oracle.cid(v)) for reg, v in pairs):
                for reg, value in zip(
                    instruction.defs(), region.def_values_at(q)
                ):
                    if reg == dst:
                        atoms.add(("cid", self.oracle.cid(value)))
        self.write(dst, frozenset(atoms))

    # -- re-execution and reverting -------------------------------------------------

    def _step_computation(self, instruction: Instruction) -> None:
        """Prove the instruction is a re-execution and/or a true revert."""
        oracle = self.oracle
        region = oracle.region
        result: dict[Reg, set] = {}
        matched_reexec = False
        reexec_positions = oracle.reexec_index.get(instruction, ())
        for q in reexec_positions:
            pairs = zip(
                region.effective_uses_at(q), region.use_values_at(q)
            )
            if all(self._holds(reg, oracle.cid(v)) for reg, v in pairs):
                matched_reexec = True
                for reg, value in zip(
                    instruction.defs(), region.def_values_at(q)
                ):
                    result.setdefault(reg, set()).add(("cid", oracle.cid(value)))

        matched_revert = False
        candidates = oracle.revert_index.get(instruction.mnemonic, ())
        if candidates and len(instruction.dsts) == 1:
            actual_srcs = [
                ("imm", src) if isinstance(src, Imm) else ("reg", src)
                for src in instruction.srcs
            ]
            for candidate in candidates:
                if len(candidate.srcs) != len(actual_srcs):
                    continue
                ok = True
                for wanted, actual in zip(candidate.srcs, actual_srcs):
                    if wanted[0] == "imm":
                        if actual != wanted:
                            ok = False
                            break
                    else:  # ("val", cid): the operand register must hold it
                        if actual[0] != "reg" or not self._holds(
                            actual[1], wanted[1]
                        ):
                            ok = False
                            break
                if ok and all(
                    self._holds(reg, cid) for reg, cid in candidate.implicit
                ):
                    matched_revert = True
                    dst = instruction.dsts[0]
                    result.setdefault(dst, set()).add(
                        ("cid", candidate.recovered_cid)
                    )

        if matched_reexec or matched_revert:
            opaque = self._opaque()
            for reg in instruction.defs():
                atoms = result.get(reg)
                self.write(reg, frozenset(atoms) if atoms else opaque)
            return

        # neither interpretation holds: the operands are still consumed
        # (surfacing undefined reads), then classify the failure
        for reg in instruction.uses():
            self.read(reg)
        opaque = self._opaque()
        for reg in instruction.defs():
            self.write(reg, opaque)
        if reexec_positions:
            self.fl.add(
                "VER105",
                f"{instruction} matches a kernel instruction at position(s) "
                f"{list(reexec_positions)} but its operands do not hold the "
                f"original values here",
                self.position,
                self.where,
            )
        elif candidates:
            self.fl.add(
                "VER111",
                f"{instruction} is shaped like a revert but is not a true "
                f"inverse of any overwrite in this block",
                self.position,
                self.where,
            )
        else:
            self.fl.add(
                "VER105",
                f"{instruction} is neither a context access, a copy, a "
                f"re-executed kernel instruction, nor a provable revert",
                self.position,
                self.where,
            )

    # -- LDS ordering -----------------------------------------------------------

    def check_lds_order(self, routine: Program) -> None:
        """LDS-class ops must run after the LDS restore (resume) and before
        the LDS save (preempt)."""
        if self.lds_share == 0:
            return
        if self.where == "resume":
            for instruction in routine.instructions:
                if instruction.mnemonic == "ctx_load_lds":
                    return
                if instruction.spec.opclass is OpClass.LDS:
                    self.fl.add(
                        "VER108",
                        f"{instruction} touches LDS before the routine "
                        f"restores the LDS allocation",
                        self.position,
                        self.where,
                    )
                    return
        else:
            seen_store = False
            for instruction in routine.instructions:
                if instruction.mnemonic == "ctx_store_lds":
                    seen_store = True
                elif seen_store and instruction.spec.mem is MemKind.LDS_WRITE:
                    self.fl.add(
                        "VER108",
                        f"{instruction} writes LDS after the routine already "
                        f"saved the LDS allocation",
                        self.position,
                        self.where,
                    )
                    return
