"""Lint passes and the ``python -m repro lint`` orchestration.

Three pass families run over the full (kernel × mechanism) matrix:

* the **symbolic plan verifier** (:mod:`repro.verify.plans`) — VER1xx;
* **structural lints** that need no plans: opcode revert-table legality
  (LNT206) and OSRB backup-register clobbering (LNT205);
* the **operand-kind audit** of every generated routine and instrumented
  kernel through :mod:`repro.isa.validator` (LNT207) — the machine-run
  version of the validator docstring's promise.

``run_lint`` is deliberately deterministic (sorted kernels, sorted
mechanisms, sorted findings) so its JSON output is diffable and usable as a
ratchet baseline in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.cfg import build_cfg
from ..ctxback.osrb import apply_osrb
from ..isa.instruction import Kernel
from ..isa.opcodes import OPCODES, ReversibilityModel
from ..isa.registers import RegisterFileSpec, RegKind
from ..isa.validator import validate_kernel, validate_program
from ..kernels.suite import SUITE
from ..mechanisms import ALL_MECHANISMS, make_mechanism
from ..mechanisms.base import PreparedKernel
from ..sim.config import GPUConfig
from .findings import Finding, FindingList, failing
from .plans import verify_prepared


# -- opcode revert-table legality (LNT206) -------------------------------------


def lint_opcode_table() -> list[Finding]:
    """Check every revert entry in the opcode table is structurally sound."""
    findings: list[Finding] = []

    def bad(mnemonic: str, src_pos: int, message: str) -> None:
        findings.append(
            Finding(
                code="LNT206",
                message=message,
                where=f"{mnemonic}/src{src_pos}",
            )
        )

    for mnemonic, spec in sorted(OPCODES.items()):
        for src_pos, revert_spec in sorted(spec.revert.items()):
            if spec.n_dst != 1:
                bad(mnemonic, src_pos, "revertible opcodes must have one dst")
            if not 0 <= src_pos < spec.n_src:
                bad(
                    mnemonic,
                    src_pos,
                    f"recovered operand position {src_pos} is outside the "
                    f"{spec.n_src} sources",
                )
                continue
            inverse = OPCODES.get(revert_spec.inv_mnemonic)
            if inverse is None:
                bad(
                    mnemonic,
                    src_pos,
                    f"inverse {revert_spec.inv_mnemonic!r} is not an opcode",
                )
                continue
            if inverse.n_dst != 1:
                bad(
                    mnemonic,
                    src_pos,
                    f"inverse {inverse.mnemonic} must have one dst",
                )
            if inverse.opclass is not spec.opclass:
                bad(
                    mnemonic,
                    src_pos,
                    f"inverse {inverse.mnemonic} runs on "
                    f"{inverse.opclass.value}, original on {spec.opclass.value}",
                )
            unknown = [t for t in revert_spec.pattern if t not in ("new", "other")]
            if unknown:
                bad(mnemonic, src_pos, f"unknown pattern token(s) {unknown}")
                continue
            if "new" not in revert_spec.pattern:
                bad(
                    mnemonic,
                    src_pos,
                    "pattern never uses the post-execution value",
                )
            if len(revert_spec.pattern) != inverse.n_src:
                bad(
                    mnemonic,
                    src_pos,
                    f"pattern has {len(revert_spec.pattern)} operands, "
                    f"inverse {inverse.mnemonic} takes {inverse.n_src}",
                )
            others = revert_spec.pattern.count("other")
            if others != spec.n_src - 1:
                bad(
                    mnemonic,
                    src_pos,
                    f"pattern consumes {others} surviving operand(s), the "
                    f"opcode has {spec.n_src - 1}",
                )
            if (inverse.reads_exec and not spec.reads_exec) or (
                inverse.reads_scc and not spec.reads_scc
            ):
                bad(
                    mnemonic,
                    src_pos,
                    f"inverse {inverse.mnemonic} reads architectural state "
                    f"the original never read",
                )
    return findings


# -- OSRB backup clobbering (LNT205) -------------------------------------------


def lint_osrb(
    kernel: Kernel,
    rf_spec: RegisterFileSpec,
    model: ReversibilityModel = ReversibilityModel.PAPER,
) -> list[Finding]:
    """Backup copies must survive to any signal inside their block.

    OSRB parks block-entry scalars in the alignment padding; if anything in
    the same block later writes a backup register, the parked value is gone
    exactly when a preemption would need it.
    """
    fl = FindingList(kernel=kernel.name, mechanism="ctxback")
    instrumented, report = apply_osrb(kernel, rf_spec, model)
    if not report.backups:
        return fl.findings
    program = instrumented.program
    cfg = build_cfg(program)
    original_sgprs = kernel.sgprs_used
    for pos, instruction in enumerate(program.instructions):
        if instruction.mnemonic != "s_mov":
            continue
        dst = instruction.dsts[0]
        if dst.kind is not RegKind.SCALAR or dst.index < original_sgprs:
            continue  # not a backup copy
        block = cfg.block_at(pos)
        for later in range(pos + 1, block.end):
            if dst in program.instructions[later].defs():
                fl.add(
                    "LNT205",
                    f"backup register {dst} (copied at {pos}) is "
                    f"overwritten at {later} in the same block",
                    pos,
                    "kernel",
                )
                break
    return fl.findings


# -- operand-kind audit (LNT207) ------------------------------------------------


def lint_routine_kinds(prepared: PreparedKernel) -> list[Finding]:
    """Run the ISA operand-kind validator over the instrumented kernel and
    every generated routine (deduplicated: plans may share Programs)."""
    fl = FindingList(kernel=prepared.kernel.name, mechanism=prepared.mechanism)
    for problem in validate_kernel(prepared.kernel):
        fl.add("LNT207", problem, None, "kernel")
    for position, where, routine in prepared.iter_routines():
        for problem in validate_program(routine):
            fl.add("LNT207", problem, position, where)
    return fl.findings


# -- orchestration ---------------------------------------------------------------


@dataclass(frozen=True)
class LintOptions:
    """What ``python -m repro lint`` should cover."""

    keys: tuple[str, ...] = ()  # () = the whole suite
    mechanisms: tuple[str, ...] = ()  # () = the six evaluated mechanisms
    warp_size: int = 64
    strict: bool = False

    def kernel_keys(self) -> list[str]:
        return list(self.keys) if self.keys else sorted(SUITE)

    def mechanism_names(self) -> list[str]:
        return list(self.mechanisms) if self.mechanisms else sorted(ALL_MECHANISMS)


@dataclass
class LintReport:
    """Findings plus the coverage statistics the reporters print."""

    options: LintOptions
    findings: list[Finding] = field(default_factory=list)
    kernels: list[str] = field(default_factory=list)
    mechanisms: list[str] = field(default_factory=list)
    plans_verified: int = 0
    routines_checked: int = 0

    @property
    def failing(self) -> list[Finding]:
        return failing(self.findings, strict=self.options.strict)

    @property
    def ok(self) -> bool:
        return not self.failing


def run_lint(options: LintOptions | None = None) -> LintReport:
    """Verify and lint every (kernel × mechanism) pair of the options."""
    options = options or LintOptions()
    report = LintReport(
        options=options,
        kernels=options.kernel_keys(),
        mechanisms=options.mechanism_names(),
    )
    findings = list(lint_opcode_table())
    rf_spec = RegisterFileSpec(warp_size=options.warp_size)
    config = GPUConfig(rf_spec=rf_spec)
    for key in report.kernels:
        kernel = SUITE[key].build(options.warp_size)
        findings.extend(lint_osrb(kernel, rf_spec))
        for name in report.mechanisms:
            prepared = make_mechanism(name).prepare(kernel, config)
            findings.extend(verify_prepared(prepared, rf_spec))
            findings.extend(lint_routine_kinds(prepared))
            report.plans_verified += len(prepared.plans)
            report.routines_checked += sum(
                1 for _ in prepared.iter_routines()
            )
    report.findings = sorted(findings, key=Finding.sort_key)
    return report
