"""Reference semantics for the plan verifier: what *should* routines compute.

The verifier never trusts the plan builder's own bookkeeping.  Instead it
re-derives, per basic block, the same copy-propagating value numbering the
compiler used (:func:`repro.ctxback.flashback.build_block_state`) and layers
three independently-derived indices on top:

* **congruence classes** — two verbatim-identical computations at different
  positions produce distinct :class:`~repro.compiler.usedef.Value` ids even
  though they are semantically equal.  A forward congruence-closure pass
  canonicalises value ids by ``(mnemonic, immediates, input classes)`` so the
  abstract interpreter can equate them.  Loads are salted by the count of
  preceding same-space stores (and barriers), which keeps the closure sound
  under aliasing;
* **re-execution index** — maps each verbatim ``Instruction`` object to the
  kernel positions where it occurs, so the interpreter can recognise a
  re-executed (or CS-Defer deferred) instruction and check its operands hold
  the *original* values;
* **revert candidates** — for every revertible overwrite (paper §III-C,
  Alg. 2) the exact inverse-instruction shape (mnemonic, operand value
  classes, implicit exec/scc values) and the value class it recovers,
  mirrored from :func:`repro.ctxback.reverting.build_revert_instruction` so a
  routine's revert op can be proven a true inverse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.cfg import CFG, BasicBlock, build_cfg
from ..compiler.execmask import partial_exec_positions
from ..compiler.liveness import LivenessInfo, analyze_liveness
from ..compiler.usedef import COPY_MNEMONICS, Value
from ..ctxback.flashback import build_block_state
from ..isa.instruction import Imm, Instruction, Label, Program
from ..isa.opcodes import MemKind, OpClass, ReversibilityModel, opspec
from ..isa.registers import EXEC, SCC, Reg
from ..ctxback.reverting import revert_opportunities


@dataclass(frozen=True)
class RevertCandidate:
    """One provable inverse: executing ``inv_mnemonic`` with sources matching
    ``srcs`` (and implicit reads matching ``implicit``) recovers the value
    class ``recovered_cid`` that position ``pos`` overwrote.

    ``srcs`` entries are ``("val", cid)`` for register operands and
    ``("imm", Imm)`` for immediates, aligned with the inverse instruction's
    source operands exactly as ``build_revert_instruction`` lays them out.
    """

    pos: int
    inv_mnemonic: str
    srcs: tuple[tuple, ...]
    implicit: tuple[tuple[Reg, int], ...]
    recovered_cid: int
    recovered_reg: Reg  # the register the value originally lived in


class BlockOracle:
    """Ground truth for one basic block: value classes and legal derivations."""

    def __init__(
        self,
        program: Program,
        block: BasicBlock,
        liveness: LivenessInfo,
        partial_exec: frozenset[int],
    ) -> None:
        state = build_block_state(program, block, liveness, partial_exec)
        self.program = program
        self.block = block
        self.region = state.region
        self._state_at = state.state_at
        self.partial_exec = partial_exec
        self._canon: dict[int, int] = {}
        self._build_congruence()
        self.reexec_index: dict[Instruction, list[int]] = {}
        for pos in block.positions():
            self.reexec_index.setdefault(
                program.instructions[pos], []
            ).append(pos)
        self.revert_index: dict[str, list[RevertCandidate]] = {}
        self._build_revert_index()

    # -- value classes -----------------------------------------------------------

    def cid(self, value: Value) -> int:
        """Canonical (congruence-class) id of a value."""
        return self._canon.get(value.vid, value.vid)

    def state_at(self, pos: int) -> dict[Reg, Value]:
        """Register file contents just before executing *pos*; the index
        ``block.end`` gives the post-block state."""
        return self._state_at[pos - self.block.start]

    def _build_congruence(self) -> None:
        """Forward congruence closure over the block's straight-line code.

        Only *fresh* definitions participate (copy-propagated defs already
        share the source's vid).  Loads key on a per-space store/barrier
        counter so that e.g. two ``global_load`` of the same address are
        merged only when no store could have changed the location between
        them.  Missing a merge is safe (the verifier just gets more
        conservative); merging wrongly is not, hence the salting.
        """
        region = self.region
        keys: dict[tuple, tuple[int, ...]] = {}
        global_stores = 0
        lds_stores = 0
        for pos in self.block.positions():
            instruction = self.program.instructions[pos]
            spec = instruction.spec
            defs = region.def_values_at(pos)
            if defs:
                imms = tuple(
                    (i, src)
                    for i, src in enumerate(instruction.srcs)
                    if isinstance(src, (Imm, Label))
                )
                inputs = tuple(
                    self.cid(v) for v in region.use_values_at(pos)
                )
                if spec.mem is MemKind.GLOBAL_LOAD:
                    salt = ("g", global_stores)
                elif spec.mem is MemKind.LDS_READ:
                    salt = ("l", lds_stores)
                elif spec.mem is MemKind.SMEM_LOAD:
                    salt = ("s", 0)  # constant memory: never written
                else:
                    salt = ()
                key = (instruction.mnemonic, imms, inputs, salt)
                previous = keys.get(key)
                fresh = tuple(v.def_pos == pos for v in defs)
                if previous is None:
                    keys[key] = tuple(self.cid(v) for v in defs)
                else:
                    for is_fresh, value, canonical in zip(fresh, defs, previous):
                        if is_fresh:
                            self._canon[value.vid] = canonical
            # advance the memory clocks *after* keying the instruction
            if spec.mem is MemKind.GLOBAL_STORE:
                global_stores += 1
            elif spec.mem is MemKind.LDS_WRITE:
                lds_stores += 1
            elif instruction.mnemonic == "s_barrier":
                # other warps of the block may publish LDS/global data here
                global_stores += 1
                lds_stores += 1

    # -- revert candidates --------------------------------------------------------

    def _build_revert_index(self) -> None:
        region = self.region
        for pos in self.block.positions():
            instruction = self.program.instructions[pos]
            # PAPER is the superset model; whether a given plan was *allowed*
            # to use paper-only inverses is checked by the opcode-table lint,
            # not here — a revert op is "a true inverse" independently of it.
            for opportunity in revert_opportunities(
                instruction, ReversibilityModel.PAPER
            ):
                old = region.pre_def_values_at(pos)[0]
                new = region.def_values_at(pos)[0]
                if old is new:
                    continue  # nothing was overwritten
                use_values = region.use_values_at(pos)
                others: list[tuple] = []
                reg_index = -1
                for i, src in enumerate(instruction.srcs):
                    if isinstance(src, Reg):
                        reg_index += 1
                    if i == opportunity.src_pos:
                        continue
                    if isinstance(src, Imm):
                        others.append(("imm", src))
                    elif isinstance(src, Reg):
                        others.append(("val", self.cid(use_values[reg_index])))
                srcs: list[tuple] = []
                other_iter = iter(others)
                try:
                    for token in opportunity.spec.pattern:
                        if token == "new":
                            srcs.append(("val", self.cid(new)))
                        else:
                            srcs.append(next(other_iter))
                except StopIteration:  # malformed table; LNT206's business
                    continue
                inverse = opspec(opportunity.spec.inv_mnemonic)
                uses = instruction.uses()
                n_src_regs = len(instruction.src_regs)
                original_implicit = dict(
                    zip(uses[n_src_regs:], use_values[n_src_regs : len(uses)])
                )
                implicit: list[tuple[Reg, int]] = []
                structural_ok = True
                for reg, needed in (
                    (EXEC, inverse.reads_exec),
                    (SCC, inverse.reads_scc),
                ):
                    if not needed:
                        continue
                    value = original_implicit.get(reg)
                    if value is None:
                        # the inverse reads state the original never read;
                        # no sound revert exists for this shape
                        structural_ok = False
                        break
                    implicit.append((reg, self.cid(value)))
                if not structural_ok:
                    continue
                self.revert_index.setdefault(inverse.mnemonic, []).append(
                    RevertCandidate(
                        pos=pos,
                        inv_mnemonic=inverse.mnemonic,
                        srcs=tuple(srcs),
                        implicit=tuple(implicit),
                        recovered_cid=self.cid(old),
                        recovered_reg=instruction.dsts[0],
                    )
                )


class KernelOracle:
    """Per-kernel front end: CFG, liveness, and lazily-built block oracles.

    Liveness is computed exactly as the mechanisms compute it
    (:func:`analyze_liveness` with the derived partial-exec set), so the
    verifier's notion of "the live context at ``I_cur``" is independent of —
    but definitionally identical to — what the plan builders targeted.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.cfg: CFG = build_cfg(program)
        self.partial_exec = partial_exec_positions(program, self.cfg)
        self.liveness = analyze_liveness(program, self.cfg, self.partial_exec)
        self._blocks: dict[int, BlockOracle] = {}
        #: whether any instruction can leave the exec mask partial — kernels
        #: that never write EXEC run with the full launch mask throughout
        self.exec_may_be_partial = bool(self.partial_exec) or any(
            EXEC in instruction.defs() for instruction in program.instructions
        )

    def block_at(self, pos: int) -> BasicBlock:
        return self.cfg.block_at(pos)

    def oracle_at(self, pos: int) -> BlockOracle:
        block = self.cfg.block_at(pos)
        oracle = self._blocks.get(block.index)
        if oracle is None:
            oracle = BlockOracle(
                self.program, block, self.liveness, self.partial_exec
            )
            self._blocks[block.index] = oracle
        return oracle

    def live_in(self, pos: int) -> frozenset[Reg]:
        return self.liveness.live_in[pos]
