"""Per-plan symbolic verification: prove routines rebuild the live context.

For every :class:`~repro.ctxback.plan.InstrPlan` of a prepared kernel the
verifier

1. derives the register-file state at the signal position ``n`` from the
   block oracle (value numbering — independent of the plan builder's own
   symbolic state);
2. abstractly executes the preemption routine from that state, modelling the
   context buffer (slots, overlap, the LDS area) and checking every
   instruction is a context store, a legal deferred-window re-execution, or a
   true revert;
3. abstractly executes the resuming routine from the *cleared* register file
   the simulator hands a resumed warp (zeroed registers, full exec mask);
4. proves that afterwards every live-in register of ``resume_pc`` — exec
   mask included — holds exactly the value class it held when the signal
   arrived, that the resume PC is consistent with the mechanism, and that
   the plan's ``context_bytes`` accounting matches the routine's stores.

Checkpoint-based mechanisms (CKPT) have no routine pairs; their probe sites
are cross-checked against an independent liveness analysis instead (VER112).
SM-draining mechanisms save nothing and are vacuously correct.
"""

from __future__ import annotations

import itertools

from ..ctxback.context import (
    META_BYTES,
    baseline_context_bytes,
    lds_share_bytes,
    regs_bytes,
)
from ..ctxback.plan import InstrPlan
from ..isa.registers import EXEC, Reg, RegisterFileSpec
from ..mechanisms.base import PreparedKernel
from .findings import Finding, FindingList
from .interp import FULL_EXEC, CtxBufferModel, RoutineInterp
from .oracle import BlockOracle, KernelOracle


class PlanVerifier:
    """Verifies every plan of one prepared kernel."""

    def __init__(
        self, prepared: PreparedKernel, rf_spec: RegisterFileSpec
    ) -> None:
        self.prepared = prepared
        self.kernel = prepared.kernel
        self.program = prepared.kernel.program
        self.rf_spec = rf_spec
        self.oracles = KernelOracle(self.program)
        self.lds_share = lds_share_bytes(self.kernel)
        self.capacity = baseline_context_bytes(self.kernel, rf_spec)

    # -- entry points ---------------------------------------------------------------

    def verify_all(self) -> list[Finding]:
        fl = FindingList(
            kernel=self.kernel.name, mechanism=self.prepared.mechanism
        )
        if self.prepared.is_drain:
            return fl.findings  # drains save nothing; nothing to prove
        if self.prepared.is_checkpoint_based:
            self._verify_ckpt_sites(fl)
            return fl.findings
        size = len(self.program.instructions)
        for n in range(size):
            if n not in self.prepared.plans:
                fl.add(
                    "VER106",
                    f"no plan for position {n}: a signal arriving there "
                    f"cannot be handled",
                    n,
                    "plan",
                )
        for n in sorted(self.prepared.plans):
            self.verify_plan(n, self.prepared.plans[n], fl)
        return fl.findings

    def verify_plan(
        self, n: int, plan: InstrPlan, fl: FindingList
    ) -> None:
        if plan.position != n:
            fl.add(
                "VER106",
                f"plan registered at position {n} says position "
                f"{plan.position}",
                n,
                "plan",
            )
        oracle = self.oracles.oracle_at(n)
        buffer = CtxBufferModel()
        opaque_ids = itertools.count()

        # -- preemption: from the signal-time register file -------------------
        initial = {
            reg: frozenset({("cid", oracle.cid(value))})
            for reg, value in oracle.state_at(n).items()
        }
        preempt = RoutineInterp(
            self.oracles,
            oracle,
            buffer,
            fl,
            n,
            "preempt",
            self.rf_spec.warp_size,
            self.lds_share,
            opaque_ids,
            initial=initial,
            implicit_unknowns=True,
        )
        preempt.run(plan.preempt_routine)
        preempt.check_lds_order(plan.preempt_routine)
        if self.lds_share and buffer.lds_stored is None:
            fl.add(
                "VER108",
                f"kernel has a {self.lds_share} B LDS share but the "
                f"preemption routine never saves it",
                n,
                "preempt",
            )

        # -- resume: from the cleared register file ---------------------------
        resume = RoutineInterp(
            self.oracles,
            oracle,
            buffer,
            fl,
            n,
            "resume",
            self.rf_spec.warp_size,
            self.lds_share,
            opaque_ids,
            initial={EXEC: frozenset({FULL_EXEC})},
            implicit_unknowns=False,
        )
        resume.run(plan.resume_routine)
        resume.check_lds_order(plan.resume_routine)
        if self.lds_share and buffer.lds_loaded is None:
            fl.add(
                "VER108",
                f"the resuming routine never restores the {self.lds_share} B "
                f"LDS share",
                n,
                "resume",
            )

        # -- resume PC, equivalence, accounting -------------------------------
        if self._check_resume_pc(fl, n, plan):
            self._check_equivalence(fl, plan, oracle, resume.state)
        self._check_accounting(fl, n, plan, buffer, resume.state)

    # -- pieces ------------------------------------------------------------------

    def _check_resume_pc(self, fl: FindingList, n: int, plan: InstrPlan) -> bool:
        """Mechanism-consistency of the resume PC; False = skip equivalence."""
        r = plan.resume_pc
        size = len(self.program.instructions)
        if not 0 <= r < size:
            fl.add(
                "VER106",
                f"resume PC {r} is outside the program [0,{size})",
                n,
                "plan",
            )
            return False
        block = self.oracles.block_at(n)
        mechanism = plan.mechanism
        if mechanism == "ctxback":
            if r != n:
                fl.add(
                    "VER106",
                    f"flashback plans resume at the signal position; "
                    f"resume PC is {r}, signal was {n}",
                    n,
                    "plan",
                )
            p = plan.flashback_pos
            if p is None or not block.start <= p <= n:
                fl.add(
                    "VER106",
                    f"flashback position {p} is not within "
                    f"[{block.start},{n}]",
                    n,
                    "plan",
                )
        elif plan.deferred_to is not None:
            if r != plan.deferred_to or r < n:
                fl.add(
                    "VER106",
                    f"deferred plan's resume PC {r} disagrees with its "
                    f"deferral target {plan.deferred_to} (signal {n})",
                    n,
                    "plan",
                )
        elif mechanism == "csdefer":
            fl.add(
                "VER106",
                f"CS-Defer plan at {n} carries no deferral target",
                n,
                "plan",
            )
        elif r != n:
            fl.add(
                "VER106",
                f"save/reload plans resume at the signal position; "
                f"resume PC is {r}, signal was {n}",
                n,
                "plan",
            )
        if not block.start <= r < block.end:
            fl.add(
                "VER106",
                f"resume PC {r} leaves the signal position's basic block "
                f"[{block.start},{block.end})",
                n,
                "plan",
            )
            return False
        return True

    def _check_equivalence(
        self,
        fl: FindingList,
        plan: InstrPlan,
        oracle: BlockOracle,
        resume_state: dict[Reg, frozenset],
    ) -> None:
        r = plan.resume_pc
        expected = oracle.state_at(r)
        for reg in sorted(self.oracles.live_in(r), key=str):
            value = expected.get(reg)
            want = (
                ("cid", oracle.cid(value)) if value is not None else ("unk", reg)
            )
            got = resume_state.get(reg)
            if got is None:
                fl.add(
                    "VER102",
                    f"{reg} is live at the resume PC ({r}) but the resume "
                    f"routine never defines it",
                    plan.position,
                    "resume",
                )
            elif want not in got:
                fl.add(
                    "VER107" if reg is EXEC else "VER101",
                    f"{reg} must hold its position-{r} value when execution "
                    f"resumes, but the routines rebuild a different value",
                    plan.position,
                    "resume",
                )

    def _check_accounting(
        self,
        fl: FindingList,
        n: int,
        plan: InstrPlan,
        buffer: CtxBufferModel,
        resume_state: dict[Reg, frozenset],
    ) -> None:
        stored = buffer.stored_reg_bytes() + self.lds_share + META_BYTES
        if plan.context_bytes != stored:
            fl.add(
                "VER109",
                f"plan declares {plan.context_bytes} B of context but the "
                f"routine stores {stored} B (registers + LDS + metadata)",
                n,
                "plan",
            )
        if plan.context_bytes > self.capacity:
            fl.add(
                "LNT202",
                f"context of {plan.context_bytes} B exceeds the BASELINE "
                f"budget of {self.capacity} B",
                n,
                "plan",
            )
        final_atoms: set = set()
        for token in resume_state.values():
            final_atoms.update(token)
        for record in buffer.slots.values():
            if not record.loaded and not (record.token & final_atoms):
                fl.add(
                    "LNT203",
                    f"slot {record.offset:#x} ({record.source}, "
                    f"{record.nbytes} B) is saved but never reloaded",
                    n,
                    "preempt",
                )

    # -- CKPT ---------------------------------------------------------------------

    def _verify_ckpt_sites(self, fl: FindingList) -> None:
        program = self.program
        probe_positions: dict[int, int] = {}
        for pos, instruction in enumerate(program.instructions):
            if instruction.mnemonic != "ckpt_probe":
                continue
            probe_id = instruction.srcs[0].value
            if probe_id in probe_positions:
                fl.add(
                    "VER112",
                    f"probe id {probe_id} appears at positions "
                    f"{probe_positions[probe_id]} and {pos}",
                    pos,
                    "kernel",
                )
            probe_positions[probe_id] = pos
        for probe_id, site in sorted(self.prepared.ckpt_sites.items()):
            actual = probe_positions.get(probe_id)
            if actual is None:
                fl.add(
                    "VER112",
                    f"site {probe_id} has no matching ckpt_probe in the "
                    f"instrumented kernel",
                    site.position,
                    "kernel",
                )
                continue
            if actual != site.position:
                fl.add(
                    "VER112",
                    f"site {probe_id} claims position {site.position} but "
                    f"the probe sits at {actual}",
                    site.position,
                    "kernel",
                )
                continue
            live = self.oracles.live_in(site.position)
            if site.live_regs != live:
                missing = sorted(live - site.live_regs, key=str)
                extra = sorted(site.live_regs - live, key=str)
                fl.add(
                    "VER112",
                    f"site {probe_id} snapshots the wrong register set "
                    f"(missing {missing}, extra {extra})",
                    site.position,
                    "kernel",
                )
            nbytes = (
                regs_bytes(site.live_regs, self.rf_spec)
                + self.lds_share
                + META_BYTES
            )
            if site.nbytes != nbytes:
                fl.add(
                    "VER112",
                    f"site {probe_id} accounts {site.nbytes} B but its "
                    f"register set plus LDS and metadata is {nbytes} B",
                    site.position,
                    "kernel",
                )
            store_ops = len(site.live_regs) + (1 if self.lds_share else 0)
            if site.store_ops != store_ops:
                fl.add(
                    "VER112",
                    f"site {probe_id} claims {site.store_ops} store ops for "
                    f"{len(site.live_regs)} registers",
                    site.position,
                    "kernel",
                )
        for probe_id, pos in sorted(probe_positions.items()):
            if probe_id not in self.prepared.ckpt_sites:
                fl.add(
                    "VER112",
                    f"ckpt_probe {probe_id} at position {pos} has no "
                    f"recorded site",
                    pos,
                    "kernel",
                )


def verify_prepared(
    prepared: PreparedKernel, rf_spec: RegisterFileSpec
) -> list[Finding]:
    """Symbolically verify every plan (or checkpoint site) of *prepared*."""
    return PlanVerifier(prepared, rf_spec).verify_all()
