"""Finding model shared by the plan verifier and the lint passes.

Every problem the ``repro.verify`` subsystem can report is a :class:`Finding`
carrying a stable *code* from the registry below.  Codes are the public
contract: tests assert on them, the CI ratchet (``--diff-baseline``) keys on
them, and DESIGN.md documents them.  Add new codes to :data:`CODE_REGISTRY`
— an unknown code raises at construction time so typos cannot silently
produce unclassifiable findings.

Severities:

* ``error``   — the plan/routine is provably wrong (or unverifiable);
  always fails ``python -m repro lint``;
* ``warning`` — suspicious but not a proven miscompile; fails only under
  ``--strict``;
* ``info``    — accounting notes, never failing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: code -> (severity, one-line description).  VER1xx come from the symbolic
#: plan verifier, LNT2xx from the dataflow/structural lint passes, MC3xx
#: from the interleaving model checker (:mod:`repro.mc`).
CODE_REGISTRY: dict[str, tuple[Severity, str]] = {
    # --- symbolic plan verifier -------------------------------------------------
    "VER101": (Severity.ERROR, "live register holds the wrong value after resume"),
    "VER102": (Severity.ERROR, "live register left undefined after resume"),
    "VER103": (Severity.ERROR, "ctx load from a slot the preemption routine never stored"),
    "VER104": (Severity.ERROR, "ctx slot reloaded with a mismatched register class"),
    "VER105": (Severity.ERROR, "routine instruction is not a provable re-execution or revert"),
    "VER106": (Severity.ERROR, "resume PC is inconsistent with the plan"),
    "VER107": (Severity.ERROR, "exec mask not reconstructed at the flashback resume"),
    "VER108": (Severity.ERROR, "LDS allocation not saved/restored consistently"),
    "VER109": (Severity.ERROR, "plan context_bytes disagrees with the routine's stores"),
    "VER110": (Severity.ERROR, "resume routine reads a register before defining it"),
    "VER111": (Severity.ERROR, "revert instruction is not a true inverse of its kill"),
    "VER112": (Severity.ERROR, "checkpoint site inconsistent with the instrumented kernel"),
    # --- dataflow / structural lints --------------------------------------------
    "LNT201": (Severity.ERROR, "context-buffer slots overlap"),
    "LNT202": (Severity.WARNING, "context buffer exceeds the per-warp budget"),
    "LNT203": (Severity.WARNING, "saved context slot never reloaded (dead save)"),
    "LNT204": (Severity.WARNING, "masked register move after a partial exec restore"),
    "LNT205": (Severity.ERROR, "OSRB backup register clobbered inside its block"),
    "LNT206": (Severity.ERROR, "opcode revert table entry is structurally illegal"),
    "LNT207": (Severity.ERROR, "generated routine fails operand-kind validation"),
    # --- interleaving model checker (:mod:`repro.mc`) -----------------------------
    "MC301": (Severity.ERROR, "terminal memory/LDS diverges from the uninterrupted reference"),
    "MC302": (Severity.ERROR, "preemption round never completed (lost resume / stuck eviction)"),
    "MC303": (Severity.ERROR, "duplicate signal reached a warp whose round was already served"),
    "MC304": (Severity.ERROR, "exec-mask/PC consistency violated across a protocol boundary"),
    "MC305": (Severity.ERROR, "preemption accounting non-monotonic or incomplete"),
    "MC306": (Severity.ERROR, "unordered conflicting accesses to a saved-context buffer (race)"),
    "MC307": (Severity.ERROR, "exploration aborted by a simulator exception"),
    "MC308": (Severity.INFO, "exploration truncated by the depth/state bound"),
}


@dataclass(frozen=True)
class Finding:
    """One verifier/lint finding, locatable and stable across runs.

    ``position`` is the plan's signal position (or instruction position for
    kernel-level findings); ``where`` narrows it to a routine ("preempt",
    "resume", "kernel", "plan", ...).
    """

    code: str
    message: str
    kernel: str = ""
    mechanism: str = ""
    position: int | None = None
    where: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODE_REGISTRY:
            raise ValueError(f"unregistered finding code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODE_REGISTRY[self.code][0]

    @property
    def key(self) -> tuple:
        """Identity used by the ``--diff-baseline`` ratchet: stable across
        runs as long as the finding itself persists."""
        return (self.code, self.kernel, self.mechanism, self.position, self.where)

    def render(self) -> str:
        location = self.kernel or "<table>"
        if self.mechanism:
            location += f"/{self.mechanism}"
        if self.position is not None:
            location += f"@{self.position}"
        if self.where:
            location += f":{self.where}"
        return f"{self.code} [{self.severity.value}] {location}: {self.message}"

    def sort_key(self) -> tuple:
        return (
            self.severity.rank,
            self.code,
            self.kernel,
            self.mechanism,
            -1 if self.position is None else self.position,
            self.where,
            self.message,
        )


@dataclass
class FindingList:
    """Accumulator with the context labels filled in automatically."""

    kernel: str = ""
    mechanism: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        position: int | None = None,
        where: str = "",
    ) -> None:
        self.findings.append(
            Finding(
                code=code,
                message=message,
                kernel=self.kernel,
                mechanism=self.mechanism,
                position=position,
                where=where,
            )
        )

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)


def errors(findings) -> list[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]


def failing(findings, strict: bool = False) -> list[Finding]:
    """Findings that should fail the run: errors, plus warnings when strict."""
    if strict:
        return [f for f in findings if f.severity is not Severity.INFO]
    return errors(findings)
