"""Register model for the synthetic SIMT ISA.

The ISA follows the AMD GCN/Vega register organisation that CTXBack was
evaluated on (Vega ISA manual [1] in the paper):

* **Scalar registers** (``s0 .. sN``) are shared by all lanes of a warp and
  occupy 4 bytes per warp.
* **Vector registers** (``v0 .. vN``) have one 4-byte copy *per lane*; with a
  64-lane warp a single vector register occupies 256 bytes of context.
* **Special registers** carry architectural state: the execution mask
  ``EXEC`` (one bit per lane), the scalar condition code ``SCC`` and the
  program counter ``PC``.

Register *allocation* on Vega-class hardware is aligned: vector registers are
granted in groups of 4 and scalar registers in groups of 16 (paper §V).  The
traditional (BASELINE) context-switch routine swaps the full aligned
allocation regardless of liveness, which is why alignment padding matters for
the evaluation.  :class:`RegisterFileSpec` captures the geometry and performs
the byte accounting used throughout the repo.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache


class RegKind(enum.Enum):
    """Architectural register classes."""

    SCALAR = "s"
    VECTOR = "v"
    SPECIAL = "x"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegKind.{self.name}"


@dataclass(frozen=True)
class Reg:
    """A single architectural register.

    Instances are interned via :func:`sreg`/:func:`vreg` so identity-heavy
    analyses (liveness sets, use-def chains) stay cheap.  Ordering is by
    (kind, index), giving deterministic iteration for routine generation.
    """

    kind: RegKind
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")

    def _sort_key(self) -> tuple[str, int]:
        return (self.kind.value, self.index)

    def __lt__(self, other: "Reg") -> bool:
        if not isinstance(other, Reg):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    @property
    def is_scalar(self) -> bool:
        return self.kind is RegKind.SCALAR

    @property
    def is_vector(self) -> bool:
        return self.kind is RegKind.VECTOR

    @property
    def is_special(self) -> bool:
        return self.kind is RegKind.SPECIAL

    def context_bytes(self, warp_size: int) -> int:
        """Bytes this register contributes to a saved warp context."""
        if self.kind is RegKind.VECTOR:
            return 4 * warp_size
        # Scalar and special registers are per-warp words.  EXEC is a
        # 64-bit mask on real hardware; we charge 8 bytes for it.
        if self.kind is RegKind.SPECIAL and self.index == _EXEC_INDEX:
            return 8
        return 4

    def __str__(self) -> str:
        if self.kind is RegKind.SPECIAL:
            return _SPECIAL_NAMES[self.index]
        return f"{self.kind.value}{self.index}"

    def __repr__(self) -> str:
        return str(self)


# Special register indices.  Kept small and stable; the executor indexes a
# dedicated special-register array with them.
_EXEC_INDEX = 0
_SCC_INDEX = 1
_PC_INDEX = 2
_SPECIAL_NAMES = {_EXEC_INDEX: "exec", _SCC_INDEX: "scc", _PC_INDEX: "pc"}
_SPECIAL_BY_NAME = {name: idx for idx, name in _SPECIAL_NAMES.items()}


@lru_cache(maxsize=None)
def sreg(index: int) -> Reg:
    """Interned scalar register ``s<index>``."""
    return Reg(RegKind.SCALAR, index)


@lru_cache(maxsize=None)
def vreg(index: int) -> Reg:
    """Interned vector register ``v<index>``."""
    return Reg(RegKind.VECTOR, index)


@lru_cache(maxsize=None)
def _special(index: int) -> Reg:
    return Reg(RegKind.SPECIAL, index)


EXEC = _special(_EXEC_INDEX)
SCC = _special(_SCC_INDEX)
PC = _special(_PC_INDEX)

SPECIAL_REGS = (EXEC, SCC, PC)


def parse_reg(text: str) -> Reg:
    """Parse a register name (``v12``, ``s3``, ``exec``, ``scc``)."""
    text = text.strip().lower()
    if text in _SPECIAL_BY_NAME:
        return _special(_SPECIAL_BY_NAME[text])
    if len(text) >= 2 and text[0] in ("s", "v") and text[1:].isdigit():
        index = int(text[1:])
        return sreg(index) if text[0] == "s" else vreg(index)
    raise ValueError(f"not a register: {text!r}")


def is_reg_name(text: str) -> bool:
    """Return True if *text* parses as a register name."""
    try:
        parse_reg(text)
        return True
    except ValueError:
        return False


def _align_up(value: int, granularity: int) -> int:
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class RegisterFileSpec:
    """Geometry of one SM's register files and allocation alignment.

    Defaults model the AMD Vega SM described in paper §II-A: 256 KB vector
    registers, 12.5 KB scalar registers and 64 KB shared memory per SM, with
    vector registers allocated in groups of 4 and scalar registers in groups
    of 16.
    """

    warp_size: int = 64
    vgpr_bytes_per_sm: int = 256 * 1024
    sgpr_bytes_per_sm: int = 12 * 1024 + 512
    lds_bytes_per_sm: int = 64 * 1024
    vgpr_align: int = 4
    sgpr_align: int = 16

    def __post_init__(self) -> None:
        if self.warp_size <= 0:
            raise ValueError("warp_size must be positive")

    @property
    def vgpr_bytes_each(self) -> int:
        """Context bytes of one vector register for one warp."""
        return 4 * self.warp_size

    def allocated_vgprs(self, used: int) -> int:
        """Vector registers granted for *used* registers (alignment incl.)."""
        if used < 0:
            raise ValueError("used must be >= 0")
        return _align_up(used, self.vgpr_align) if used else 0

    def allocated_sgprs(self, used: int) -> int:
        """Scalar registers granted for *used* registers (alignment incl.)."""
        if used < 0:
            raise ValueError("used must be >= 0")
        return _align_up(used, self.sgpr_align) if used else 0

    def warp_context_bytes(
        self, vgprs_used: int, sgprs_used: int, lds_bytes: int = 0
    ) -> int:
        """Full (BASELINE) per-warp context in bytes: aligned allocation.

        This is what the traditional Linux-driver routine swaps: every
        *occupied* on-chip resource, including alignment padding and dead
        registers (paper §II-A, §V).  ``lds_bytes`` is charged as given (LDS
        is allocated per thread block; callers apportion it per warp).
        """
        vec = self.allocated_vgprs(vgprs_used) * self.vgpr_bytes_each
        sca = self.allocated_sgprs(sgprs_used) * 4
        return vec + sca + lds_bytes

    def live_context_bytes(self, regs, lds_bytes: int = 0) -> int:
        """Context bytes for an explicit register set (LIVE-style accounting).

        Special registers (exec mask, scc, pc) are part of any preserved
        context and are charged at their architectural width.
        """
        total = lds_bytes
        for reg in regs:
            total += reg.context_bytes(self.warp_size)
        return total
