"""Opcode table for the synthetic SIMT ISA.

Each opcode carries the metadata every other layer needs:

* **class** — which pipeline executes it (scalar ALU, vector ALU, vector
  memory, LDS, scalar memory, branch), which drives the timing model;
* **operand shape** — number of destination and source operands, plus the
  implicit architectural reads/writes (``exec`` for vector ops, ``scc`` for
  compares and conditional branches) that liveness analysis must see;
* **memory behaviour** — loads/stores and the dedicated context-buffer
  accessors (``ctx_*``) used by generated preemption/resume routines, mapping
  to the paper's ``GST r0, ctx[0x0]`` notation;
* **reversibility** — for instructions of the form ``r = op(r, ...)``,
  whether and how the overwritten operand can be recovered
  (paper §III-C, Algorithm 2).

Functional semantics live in :mod:`repro.sim.executor`; this module is pure
metadata so the compiler layers do not depend on the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class OpClass(enum.Enum):
    """Execution-pipeline class; drives issue/result latency in the sim."""

    SALU = "salu"
    VALU = "valu"
    VMEM = "vmem"
    SMEM = "smem"
    LDS = "lds"
    BRANCH = "branch"
    MISC = "misc"


class MemKind(enum.Enum):
    """What kind of memory traffic an opcode produces."""

    GLOBAL_LOAD = "global_load"
    GLOBAL_STORE = "global_store"
    LDS_READ = "lds_read"
    LDS_WRITE = "lds_write"
    SMEM_LOAD = "smem_load"
    CTX_STORE = "ctx_store"
    CTX_LOAD = "ctx_load"


@dataclass(frozen=True)
class RevertSpec:
    """How to recover the overwritten operand of ``r' = op(r, others)``.

    ``inv_mnemonic`` names the inverse operation; ``pattern`` lists the source
    operands of the inverse instruction, where ``"new"`` stands for the
    (post-execution) result value and ``"other"`` for the non-recovered source
    operand.  ``paper_only`` marks inversions that are exact only under the
    paper's assumptions (left shift in address arithmetic never loses bits);
    they are enabled by ``ReversibilityModel.PAPER`` and disabled under
    ``ReversibilityModel.EXACT``.
    """

    inv_mnemonic: str
    pattern: tuple[str, ...]
    paper_only: bool = False


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    opclass: OpClass
    n_dst: int
    n_src: int
    mem: MemKind | None = None
    reads_exec: bool = False
    reads_scc: bool = False
    writes_scc: bool = False
    is_branch: bool = False
    is_terminator: bool = False
    commutative: bool = False
    # Mapping from source-operand position -> recovery recipe when the
    # destination register aliases that source (paper §III-C).
    revert: Mapping[int, RevertSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_dst < 0 or self.n_src < 0:
            raise ValueError("operand counts must be non-negative")

    @property
    def is_load(self) -> bool:
        return self.mem in (
            MemKind.GLOBAL_LOAD,
            MemKind.LDS_READ,
            MemKind.SMEM_LOAD,
            MemKind.CTX_LOAD,
        )

    @property
    def is_store(self) -> bool:
        return self.mem in (
            MemKind.GLOBAL_STORE,
            MemKind.LDS_WRITE,
            MemKind.CTX_STORE,
        )

    @property
    def touches_global_memory(self) -> bool:
        return self.mem in (
            MemKind.GLOBAL_LOAD,
            MemKind.GLOBAL_STORE,
            MemKind.SMEM_LOAD,
            MemKind.CTX_STORE,
            MemKind.CTX_LOAD,
        )


_TABLE: dict[str, OpSpec] = {}


def _op(spec: OpSpec) -> OpSpec:
    if spec.mnemonic in _TABLE:
        raise ValueError(f"duplicate opcode {spec.mnemonic}")
    _TABLE[spec.mnemonic] = spec
    return spec


def _alu_pair(
    base: str,
    *,
    n_src: int = 2,
    commutative: bool = False,
    revert: Mapping[int, RevertSpec] | None = None,
    scalar_writes_scc: bool = False,
) -> None:
    """Register both the scalar (``s_``) and vector (``v_``) variant."""

    def _prefixed(rev: Mapping[int, RevertSpec] | None, prefix: str):
        if not rev:
            return {}
        return {
            pos: RevertSpec(prefix + r.inv_mnemonic, r.pattern, r.paper_only)
            for pos, r in rev.items()
        }

    _op(
        OpSpec(
            mnemonic=f"s_{base}",
            opclass=OpClass.SALU,
            n_dst=1,
            n_src=n_src,
            commutative=commutative,
            writes_scc=scalar_writes_scc,
            revert=_prefixed(revert, "s_"),
        )
    )
    _op(
        OpSpec(
            mnemonic=f"v_{base}",
            opclass=OpClass.VALU,
            n_dst=1,
            n_src=n_src,
            reads_exec=True,
            commutative=commutative,
            revert=_prefixed(revert, "v_"),
        )
    )


# --- Moves ------------------------------------------------------------------
_alu_pair("mov", n_src=1)

# --- Integer arithmetic (u32, wrapping) --------------------------------------
# r' = a + b  =>  a = r' - b ; b = r' - a
_alu_pair(
    "add",
    commutative=True,
    revert={
        0: RevertSpec("sub", ("new", "other")),
        1: RevertSpec("sub", ("new", "other")),
    },
)
# r' = a - b  =>  a = r' + b ; b = a - r'
_alu_pair(
    "sub",
    revert={
        0: RevertSpec("add", ("new", "other")),
        1: RevertSpec("sub", ("other", "new")),
    },
)
_alu_pair("mul", commutative=True)  # low 32 bits; not generally invertible
_alu_pair("mulhi", commutative=True)
_alu_pair("mad", n_src=3)  # d = a*b + c
_alu_pair("min", commutative=True)
_alu_pair("max", commutative=True)

# --- Bitwise ------------------------------------------------------------------
_alu_pair(
    "xor",
    commutative=True,
    revert={
        0: RevertSpec("xor", ("new", "other")),
        1: RevertSpec("xor", ("new", "other")),
    },
)
_alu_pair("and", commutative=True)
_alu_pair("or", commutative=True)
_alu_pair("not", n_src=1, revert={0: RevertSpec("not", ("new",))})
# Left shift loses high bits in general; the paper treats it as reversible in
# the address-arithmetic patterns it targets.  Exact mode disables this rule.
_alu_pair(
    "lshl",
    revert={0: RevertSpec("lshr", ("new", "other"), paper_only=True)},
)
_alu_pair("lshr")

# --- f32 arithmetic (same 32-bit storage, float semantics; never reverted:
# floating-point add/sub round, so inversion is not bit-exact) ----------------
_alu_pair("addf", commutative=True)
_alu_pair("subf")
_alu_pair("mulf", commutative=True)
_alu_pair("madf", n_src=3)
_alu_pair("maxf", commutative=True)
_alu_pair("minf", commutative=True)

# --- Scalar compares (write scc) ---------------------------------------------
for _cmp in ("lt", "le", "eq", "ne", "gt", "ge"):
    _op(
        OpSpec(
            mnemonic=f"s_cmp_{_cmp}",
            opclass=OpClass.SALU,
            n_dst=0,
            n_src=2,
            writes_scc=True,
        )
    )

# --- Memory -------------------------------------------------------------------
_op(
    OpSpec(
        mnemonic="global_load",
        opclass=OpClass.VMEM,
        n_dst=1,
        n_src=2,  # v_addr, imm offset
        mem=MemKind.GLOBAL_LOAD,
        reads_exec=True,
    )
)
_op(
    OpSpec(
        mnemonic="global_store",
        opclass=OpClass.VMEM,
        n_dst=0,
        n_src=3,  # v_addr, v_data, imm offset
        mem=MemKind.GLOBAL_STORE,
        reads_exec=True,
    )
)
_op(
    OpSpec(
        mnemonic="s_load",
        opclass=OpClass.SMEM,
        n_dst=1,
        n_src=2,  # s_addr, imm offset
        mem=MemKind.SMEM_LOAD,
    )
)
_op(
    OpSpec(
        mnemonic="lds_read",
        opclass=OpClass.LDS,
        n_dst=1,
        n_src=2,  # v_addr, imm offset
        mem=MemKind.LDS_READ,
        reads_exec=True,
    )
)
_op(
    OpSpec(
        mnemonic="lds_write",
        opclass=OpClass.LDS,
        n_dst=0,
        n_src=3,  # v_addr, v_data, imm offset
        mem=MemKind.LDS_WRITE,
        reads_exec=True,
    )
)

# --- Context-buffer accessors used by generated routines ----------------------
# ``ctx_store_v v7, 0x40`` saves vector register v7 at byte offset 0x40 of the
# warp's context-save area (the paper's ``GST v7, ctx[0x40]``).  These are
# ordinary device-memory traffic for the timing model.
_op(
    OpSpec(
        mnemonic="ctx_store_v",
        opclass=OpClass.VMEM,
        n_dst=0,
        n_src=2,  # v_data, imm slot
        mem=MemKind.CTX_STORE,
    )
)
_op(
    OpSpec(
        mnemonic="ctx_load_v",
        opclass=OpClass.VMEM,
        n_dst=1,
        n_src=1,  # imm slot
        mem=MemKind.CTX_LOAD,
    )
)
_op(
    OpSpec(
        mnemonic="ctx_store_s",
        opclass=OpClass.VMEM,
        n_dst=0,
        n_src=2,
        mem=MemKind.CTX_STORE,
    )
)
_op(
    OpSpec(
        mnemonic="ctx_load_s",
        opclass=OpClass.VMEM,
        n_dst=1,
        n_src=1,
        mem=MemKind.CTX_LOAD,
    )
)
# Bulk LDS swap: one instruction moving ``imm`` bytes between the thread
# block's LDS allocation and the context buffer.  Real routines loop; a bulk
# op with the same byte count gives identical timing with less noise.
_op(
    OpSpec(
        mnemonic="ctx_store_lds",
        opclass=OpClass.VMEM,
        n_dst=0,
        n_src=1,  # imm bytes
        mem=MemKind.CTX_STORE,
    )
)
_op(
    OpSpec(
        mnemonic="ctx_load_lds",
        opclass=OpClass.VMEM,
        n_dst=0,
        n_src=1,
        mem=MemKind.CTX_LOAD,
    )
)

# --- Control flow --------------------------------------------------------------
_op(
    OpSpec(
        mnemonic="s_branch",
        opclass=OpClass.BRANCH,
        n_dst=0,
        n_src=1,  # label
        is_branch=True,
        is_terminator=True,
    )
)
for _cc in ("scc0", "scc1"):
    _op(
        OpSpec(
            mnemonic=f"s_cbranch_{_cc}",
            opclass=OpClass.BRANCH,
            n_dst=0,
            n_src=1,
            reads_scc=True,
            is_branch=True,
            is_terminator=True,
        )
    )
_op(
    OpSpec(
        mnemonic="s_endpgm",
        opclass=OpClass.BRANCH,
        n_dst=0,
        n_src=0,
        is_terminator=True,
    )
)
_op(OpSpec(mnemonic="s_nop", opclass=OpClass.MISC, n_dst=0, n_src=0))
_op(OpSpec(mnemonic="s_barrier", opclass=OpClass.MISC, n_dst=0, n_src=0))
# Checkpoint probe (CKPT instrumentation): every Nth dynamic execution the
# simulator charges the checkpoint stores.  ``imm`` is the checkpoint id.
_op(OpSpec(mnemonic="ckpt_probe", opclass=OpClass.MISC, n_dst=0, n_src=1))


OPCODES: Mapping[str, OpSpec] = dict(_TABLE)


def opspec(mnemonic: str) -> OpSpec:
    """Look up an opcode; raises ``KeyError`` with the mnemonic on miss."""
    try:
        return OPCODES[mnemonic]
    except KeyError:
        raise KeyError(f"unknown opcode {mnemonic!r}") from None


class ReversibilityModel(enum.Enum):
    """Which inversions Algorithm 2 may use (see DESIGN.md §4).

    ``EXACT`` admits only inversions that are bit-exact for *all* operand
    values (add/sub/xor/not in modular arithmetic) — this is what the
    functional round-trip property tests run under.  ``PAPER`` additionally
    admits left shift, matching the paper's address-arithmetic assumption.
    """

    EXACT = "exact"
    PAPER = "paper"

    def allows(self, spec: RevertSpec) -> bool:
        return not spec.paper_only or self is ReversibilityModel.PAPER
