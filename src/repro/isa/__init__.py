"""Synthetic GCN-flavoured SIMT ISA: registers, opcodes, programs, assembly.

This is the substrate every other layer builds on.  See DESIGN.md §2 for the
mapping from the paper's AMD Vega target to this model.
"""

from .assembler import AssemblyError, parse, serialize
from .instruction import (
    Imm,
    Instruction,
    Kernel,
    Label,
    Operand,
    Program,
    inst,
    program_from,
)
from .opcodes import (
    MemKind,
    OpClass,
    OPCODES,
    OpSpec,
    ReversibilityModel,
    RevertSpec,
    opspec,
)
from .encoder import (
    EncodingError,
    decode_program,
    encode_program,
    encoded_size,
)
from .validator import (
    assert_valid,
    validate_instruction,
    validate_kernel,
    validate_program,
)
from .registers import (
    EXEC,
    PC,
    SCC,
    SPECIAL_REGS,
    Reg,
    RegisterFileSpec,
    RegKind,
    is_reg_name,
    parse_reg,
    sreg,
    vreg,
)

__all__ = [
    "AssemblyError",
    "EXEC",
    "Imm",
    "Instruction",
    "Kernel",
    "Label",
    "MemKind",
    "OpClass",
    "OPCODES",
    "OpSpec",
    "Operand",
    "PC",
    "Program",
    "Reg",
    "RegisterFileSpec",
    "RegKind",
    "ReversibilityModel",
    "RevertSpec",
    "SCC",
    "SPECIAL_REGS",
    "inst",
    "is_reg_name",
    "opspec",
    "parse",
    "parse_reg",
    "program_from",
    "serialize",
    "sreg",
    "validate_instruction",
    "validate_kernel",
    "validate_program",
    "assert_valid",
    "EncodingError",
    "decode_program",
    "encode_program",
    "encoded_size",
    "vreg",
]
