"""Textual assembly for the synthetic ISA.

The format mirrors the listings in the paper::

    # dot-product inner loop
    LOOP:
        global_load v4, v2, 0x0
        v_madf     v8, v4, v5, v8     # acc += a*b
        s_add      s4, s4, 1
        s_cmp_lt   s4, s5
        s_cbranch_scc1 LOOP

``parse`` and ``serialize`` round-trip: ``parse(serialize(p))`` reproduces
``p`` exactly (instructions and labels), which the property tests enforce.
"""

from __future__ import annotations

from .instruction import Imm, Instruction, Label, Operand, Program
from .opcodes import opspec
from .registers import Reg, is_reg_name, parse_reg


class AssemblyError(ValueError):
    """Raised on malformed assembly, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_operand(token: str, lineno: int) -> Operand:
    token = token.strip()
    if not token:
        raise AssemblyError(lineno, "empty operand")
    if is_reg_name(token):
        return parse_reg(token)
    sign = 1
    body = token
    if body.startswith("-"):
        sign, body = -1, body[1:]
    try:
        if body.lower().startswith("0x"):
            return Imm(sign * int(body, 16))
        if body.isdigit():
            return Imm(sign * int(body))
    except ValueError:
        pass
    if token.replace("_", "").replace(".", "").isalnum() and not token[0].isdigit():
        return Label(token)
    raise AssemblyError(lineno, f"cannot parse operand {token!r}")


def parse(text: str) -> Program:
    """Parse assembly text into a validated :class:`Program`."""
    program = Program()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or (":" in line and not line.startswith(":")):
            if ":" not in line:
                break
            head, _, rest = line.partition(":")
            head = head.strip()
            if not head or " " in head or "," in head:
                raise AssemblyError(lineno, f"bad label {head!r}")
            try:
                program.add_label(head)
            except ValueError as exc:
                raise AssemblyError(lineno, str(exc)) from None
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        try:
            spec = opspec(mnemonic)
        except KeyError as exc:
            raise AssemblyError(lineno, str(exc)) from None
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t for t in (tok.strip() for tok in operand_text.split(",")) if t]
        if len(tokens) != spec.n_dst + spec.n_src:
            raise AssemblyError(
                lineno,
                f"{mnemonic}: expected {spec.n_dst + spec.n_src} operands, "
                f"got {len(tokens)}",
            )
        operands = [_parse_operand(tok, lineno) for tok in tokens]
        dsts = operands[: spec.n_dst]
        for dst in dsts:
            if not isinstance(dst, Reg):
                raise AssemblyError(lineno, f"{mnemonic}: dst must be a register")
        try:
            program.append(
                Instruction(mnemonic, tuple(dsts), tuple(operands[spec.n_dst :]))  # type: ignore[arg-type]
            )
        except (TypeError, ValueError) as exc:
            raise AssemblyError(lineno, str(exc)) from None
    try:
        program.validate()
    except (KeyError, ValueError) as exc:
        raise AssemblyError(0, str(exc)) from None
    return program


def serialize(program: Program, indent: str = "    ") -> str:
    """Render a program back to assembly text."""
    lines: list[str] = []
    for index, instruction in enumerate(program.instructions):
        for label in program.labels_at(index):
            lines.append(f"{label}:")
        lines.append(f"{indent}{instruction}")
    for label in program.labels_at(len(program.instructions)):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
