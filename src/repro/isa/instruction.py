"""Instructions, programs and kernels for the synthetic SIMT ISA."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .opcodes import MemKind, OpClass, OpSpec, opspec
from .registers import EXEC, SCC, Reg


@dataclass(frozen=True)
class Imm:
    """Immediate operand, canonicalized to its 32-bit wrapped value so that
    ``Imm(-1) == Imm(0xFFFFFFFF)`` and assembly round-trips exactly."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & 0xFFFFFFFF)

    def __str__(self) -> str:
        v = self.value
        return hex(v) if v > 9 else str(v)

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True)
class Label:
    """Branch-target operand."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return str(self)


Operand = Union[Reg, Imm, Label]


def _as_operand(value) -> Operand:
    if isinstance(value, (Reg, Imm, Label)):
        return value
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, str):
        return Label(value)
    raise TypeError(f"cannot convert {value!r} to an operand")


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``dsts`` are always registers; ``srcs`` may be registers, immediates or
    (for branches) labels.  ``uses``/``defs`` expose the *full* register
    effect including implicit architectural state, which is what liveness,
    use-def and all CTXBack analyses consume.
    """

    mnemonic: str
    dsts: tuple[Reg, ...] = ()
    srcs: tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        spec = opspec(self.mnemonic)  # validates the mnemonic
        if len(self.dsts) != spec.n_dst:
            raise ValueError(
                f"{self.mnemonic}: expected {spec.n_dst} dsts, got {len(self.dsts)}"
            )
        if len(self.srcs) != spec.n_src:
            raise ValueError(
                f"{self.mnemonic}: expected {spec.n_src} srcs, got {len(self.srcs)}"
            )
        for dst in self.dsts:
            if not isinstance(dst, Reg):
                raise TypeError(f"{self.mnemonic}: dst must be a register")

    @property
    def spec(self) -> OpSpec:
        return opspec(self.mnemonic)

    @property
    def src_regs(self) -> tuple[Reg, ...]:
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def uses(self) -> tuple[Reg, ...]:
        """Registers read, including implicit exec/scc reads."""
        spec = self.spec
        regs = list(self.src_regs)
        if spec.reads_exec:
            regs.append(EXEC)
        if spec.reads_scc:
            regs.append(SCC)
        return tuple(regs)

    def defs(self) -> tuple[Reg, ...]:
        """Registers written, including implicit scc writes."""
        spec = self.spec
        regs = list(self.dsts)
        if spec.writes_scc:
            regs.append(SCC)
        return tuple(regs)

    @property
    def branch_target(self) -> str | None:
        for s in self.srcs:
            if isinstance(s, Label):
                return s.name
        return None

    def __str__(self) -> str:
        parts = [str(d) for d in self.dsts] + [str(s) for s in self.srcs]
        if parts:
            return f"{self.mnemonic} {', '.join(parts)}"
        return self.mnemonic

    def __repr__(self) -> str:
        return f"<{self}>"


def inst(mnemonic: str, *operands) -> Instruction:
    """Convenience constructor splitting operands into dsts/srcs by arity.

    ``inst("v_add", v1, v2, 3)`` builds ``v_add v1, v2, 0x3``; integers and
    strings are promoted to immediates and labels respectively.
    """
    spec = opspec(mnemonic)
    ops = [_as_operand(o) for o in operands]
    if len(ops) != spec.n_dst + spec.n_src:
        raise ValueError(
            f"{mnemonic}: expected {spec.n_dst + spec.n_src} operands, got {len(ops)}"
        )
    dsts = tuple(ops[: spec.n_dst])
    srcs = tuple(ops[spec.n_dst :])
    return Instruction(mnemonic, dsts, srcs)  # type: ignore[arg-type]


@dataclass
class Program:
    """A flat instruction sequence with labels.

    Labels map a name to the index of the instruction they precede; a label
    at ``len(instructions)`` marks the end of the program.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def add_label(self, name: str, index: int | None = None) -> None:
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions) if index is None else index

    def target_index(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label {name!r}") from None

    def labels_at(self, index: int) -> list[str]:
        return sorted(name for name, idx in self.labels.items() if idx == index)

    def validate(self) -> None:
        """Check label integrity and operand arity; raises on problems."""
        for name, idx in self.labels.items():
            if not 0 <= idx <= len(self.instructions):
                raise ValueError(f"label {name!r} points outside the program")
        for i, instruction in enumerate(self.instructions):
            target = instruction.branch_target
            if target is not None and target not in self.labels:
                raise ValueError(
                    f"instruction {i} ({instruction}) branches to undefined "
                    f"label {target!r}"
                )

    def used_registers(self) -> set[Reg]:
        regs: set[Reg] = set()
        for instruction in self.instructions:
            regs.update(instruction.defs())
            regs.update(instruction.uses())
        return regs

    def max_reg_index(self, kind) -> int:
        """Highest register index of *kind* used, or -1 if none."""
        indices = [r.index for r in self.used_registers() if r.kind is kind]
        return max(indices, default=-1)

    def copy(self) -> "Program":
        return Program(list(self.instructions), dict(self.labels))

    def __getstate__(self) -> dict:
        # the simulator caches issue tables on the instance (see
        # repro.sim.tables); they hold callables and must not be pickled
        state = self.__dict__.copy()
        state.pop("_sim_tables", None)
        return state


@dataclass
class Kernel:
    """A compiled kernel: code plus the launch-relevant resource footprint.

    ``vgprs_used``/``sgprs_used`` are the register counts the (synthetic)
    register allocator assigned; the BASELINE mechanism additionally pays the
    alignment padding per :class:`~repro.isa.registers.RegisterFileSpec`.
    ``lds_bytes`` is the thread block's shared-memory allocation.
    ``noalias`` asserts that the kernel's loads and stores touch disjoint
    buffers (typical in/out GPU kernels), which widens idempotent regions —
    see :mod:`repro.compiler.idempotence`.
    """

    name: str
    program: Program
    vgprs_used: int
    sgprs_used: int
    lds_bytes: int = 0
    abbrev: str = ""
    provenance: str = ""
    warps_per_block: int = 4
    noalias: bool = False

    def __post_init__(self) -> None:
        self.program.validate()
        from .registers import RegKind

        max_v = self.program.max_reg_index(RegKind.VECTOR)
        max_s = self.program.max_reg_index(RegKind.SCALAR)
        if max_v >= self.vgprs_used:
            raise ValueError(
                f"{self.name}: program uses v{max_v} but only "
                f"{self.vgprs_used} vgprs declared"
            )
        if max_s >= self.sgprs_used:
            raise ValueError(
                f"{self.name}: program uses s{max_s} but only "
                f"{self.sgprs_used} sgprs declared"
            )

    @property
    def display_name(self) -> str:
        return self.abbrev or self.name


def program_from(instructions: Iterable[Instruction], labels=None) -> Program:
    """Build and validate a Program from an instruction iterable."""
    prog = Program(list(instructions), dict(labels or {}))
    prog.validate()
    return prog
