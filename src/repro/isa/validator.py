"""Operand-kind validation: the assembler's missing type checker.

The :class:`~repro.isa.instruction.Instruction` constructor checks arity;
this module checks *kinds* — scalar ALU instructions cannot read vector
registers, memory addresses live in the right file, branch operands are
labels and nothing else is.  Used by tests to audit every benchmark kernel
and every generated preemption/resume routine, and available to users as a
lint for hand-written assembly.
"""

from __future__ import annotations

from .instruction import Imm, Instruction, Kernel, Label, Program
from .opcodes import OpClass
from .registers import Reg, RegKind


def _kind_name(operand) -> str:
    if isinstance(operand, Imm):
        return "imm"
    if isinstance(operand, Label):
        return "label"
    if isinstance(operand, Reg):
        if operand.kind is RegKind.VECTOR:
            return "vreg"
        if operand.kind is RegKind.SCALAR:
            return "sreg"
        return "special"
    return "?"


#: acceptable source-operand kinds by mnemonic, position-indexed; ``None``
#: entries fall back to the class rule.
_SRC_RULES: dict[str, list[set[str]]] = {
    "global_load": [{"vreg"}, {"imm"}],
    "global_store": [{"vreg"}, {"vreg"}, {"imm"}],
    "lds_read": [{"vreg"}, {"imm"}],
    "lds_write": [{"vreg"}, {"vreg"}, {"imm"}],
    "s_load": [{"sreg"}, {"imm"}],
    "ctx_store_v": [{"vreg"}, {"imm"}],
    "ctx_load_v": [{"imm"}],
    "ctx_store_s": [{"sreg", "special"}, {"imm"}],
    "ctx_load_s": [{"imm"}],
    "ctx_store_lds": [{"imm"}],
    "ctx_load_lds": [{"imm"}],
    "ckpt_probe": [{"imm"}],
    "s_branch": [{"label"}],
    "s_cbranch_scc0": [{"label"}],
    "s_cbranch_scc1": [{"label"}],
}

_DST_RULES: dict[str, set[str]] = {
    "global_load": {"vreg"},
    "lds_read": {"vreg"},
    "s_load": {"sreg"},
    "ctx_load_v": {"vreg"},
    "ctx_load_s": {"sreg", "special"},
}

_VALU_SRC = {"vreg", "sreg", "special", "imm"}
_SALU_SRC = {"sreg", "special", "imm"}


def validate_instruction(instruction: Instruction) -> list[str]:
    """Return human-readable kind violations (empty list = well-typed)."""
    spec = instruction.spec
    mnemonic = instruction.mnemonic
    problems: list[str] = []

    src_rules = _SRC_RULES.get(mnemonic)
    if src_rules is not None:
        if len(src_rules) != len(instruction.srcs):
            # a truncating zip here would leave the extra operands unchecked
            problems.append(
                f"{mnemonic}: source rule covers {len(src_rules)} operand(s) "
                f"but the instruction has {len(instruction.srcs)} — rule/arity "
                f"mismatch"
            )
        for position, (operand, allowed) in enumerate(
            zip(instruction.srcs, src_rules)
        ):
            kind = _kind_name(operand)
            if kind not in allowed:
                problems.append(
                    f"{mnemonic}: src{position} must be "
                    f"{'/'.join(sorted(allowed))}, got {kind} ({operand})"
                )
    elif spec.opclass is OpClass.VALU:
        for position, operand in enumerate(instruction.srcs):
            kind = _kind_name(operand)
            if kind not in _VALU_SRC:
                problems.append(
                    f"{mnemonic}: src{position} invalid for a vector ALU op, "
                    f"got {kind} ({operand})"
                )
    elif spec.opclass is OpClass.SALU or mnemonic.startswith("s_cmp_"):
        for position, operand in enumerate(instruction.srcs):
            kind = _kind_name(operand)
            if kind not in _SALU_SRC:
                problems.append(
                    f"{mnemonic}: src{position} must be scalar, got {kind} "
                    f"({operand})"
                )

    dst_rule = _DST_RULES.get(mnemonic)
    for dst in instruction.dsts:
        kind = _kind_name(dst)
        if dst_rule is not None:
            if kind not in dst_rule:
                problems.append(
                    f"{mnemonic}: dst must be {'/'.join(sorted(dst_rule))}, "
                    f"got {kind}"
                )
        elif spec.opclass is OpClass.VALU and kind != "vreg":
            problems.append(f"{mnemonic}: vector ALU dst must be vreg, got {kind}")
        elif spec.opclass is OpClass.SALU and kind not in ("sreg", "special"):
            problems.append(f"{mnemonic}: scalar ALU dst must be scalar, got {kind}")

    if src_rules is None:
        for operand in instruction.srcs:
            if isinstance(operand, Label):
                problems.append(f"{mnemonic}: unexpected label operand")
    return problems


def validate_program(program: Program) -> list[str]:
    """Kind-check every instruction; prefixes findings with positions."""
    program.validate()  # labels + arity first
    problems = []
    for position, instruction in enumerate(program.instructions):
        for problem in validate_instruction(instruction):
            problems.append(f"@{position}: {problem}")
    return problems


def validate_kernel(kernel: Kernel) -> list[str]:
    """Program kind-check plus kernel-level resource sanity."""
    problems = validate_program(kernel.program)
    if kernel.lds_bytes:
        uses_lds = any(
            instruction.spec.opclass is OpClass.LDS
            for instruction in kernel.program.instructions
        )
        if not uses_lds:
            problems.append(
                f"{kernel.name}: declares {kernel.lds_bytes} B LDS but never "
                f"touches shared memory"
            )
    else:
        for position, instruction in enumerate(kernel.program.instructions):
            if instruction.spec.opclass is OpClass.LDS:
                problems.append(
                    f"{kernel.name}@{position}: LDS access without an LDS "
                    f"allocation"
                )
    return problems


def assert_valid(kernel: Kernel) -> None:
    """Raise ``ValueError`` listing every violation, if any."""
    problems = validate_kernel(kernel)
    if problems:
        raise ValueError(
            f"{kernel.name}: {len(problems)} validation problem(s):\n  "
            + "\n  ".join(problems)
        )
