"""Binary encoding of the synthetic ISA.

A fixed 10-byte word (GCN encodes most VALU/SALU/FLAT forms in 4 or 8
bytes; a uniform word keeps the decoder trivial):

====== ======= ====================================================
bytes  field   meaning
====== ======= ====================================================
0–1    opcode  index into the sorted opcode table
2      dst     destination register (kind tag << 6 | index), 0xFF if none
3–4    src0    operand slot A
5–6    src1    operand slot B
7–8    src2    operand slot C
9      pad     reserved
====== ======= ====================================================

Register operands use a 2-bit kind tag (0=scalar, 1=vector, 2=special);
immediates and label offsets spill into a trailing constant pool, one
32-bit word per reference, indexed from the operand slot.  The encoding
exists to make the §IV-A routine-storage accounting concrete (how many
bytes ship to the GPU with the kernel) and round-trips every program the
repo can express — enforced by a hypothesis property.
"""

from __future__ import annotations

import struct

from .instruction import Imm, Instruction, Label, Program
from .opcodes import OPCODES
from .registers import Reg, RegKind, sreg, vreg

_OPCODE_LIST = sorted(OPCODES)
_OPCODE_INDEX = {name: i for i, name in enumerate(_OPCODE_LIST)}

_KIND_TAGS = {RegKind.SCALAR: 0, RegKind.VECTOR: 1, RegKind.SPECIAL: 2}
_TAG_KINDS = {v: k for k, v in _KIND_TAGS.items()}

_NO_DST = 0xFF
#: operand-slot tags (high 2 bits of the 16-bit slot)
_SLOT_NONE = 0
_SLOT_REG = 1
_SLOT_POOL_IMM = 2
_SLOT_POOL_LABEL = 3

INSTRUCTION_WORD_BYTES = 10


class EncodingError(ValueError):
    """Raised when a program cannot be encoded or a blob cannot be decoded."""


def _encode_reg(reg: Reg) -> int:
    if reg.index > 0x3F:
        raise EncodingError(f"register index {reg.index} exceeds encoding range")
    return (_KIND_TAGS[reg.kind] << 6) | reg.index


def _decode_reg(byte: int) -> Reg:
    kind = _TAG_KINDS[byte >> 6]
    index = byte & 0x3F
    if kind is RegKind.SCALAR:
        return sreg(index)
    if kind is RegKind.VECTOR:
        return vreg(index)
    from .registers import _special  # architectural specials

    return _special(index)


def encode_program(program: Program) -> bytes:
    """Encode a program: header, instruction words, constant pool, labels.

    Layout: ``u32 n_instructions``, ``u32 n_pool_words``, instruction words,
    pool words, then the label table (``u32 count`` + per label:
    ``u32 index``, ``u16 name_len``, utf-8 name).
    """
    words = bytearray()
    pool: list[int] = []

    def slot_for(operand) -> int:
        if operand is None:
            return _SLOT_NONE << 14
        if isinstance(operand, Reg):
            return (_SLOT_REG << 14) | _encode_reg(operand)
        if isinstance(operand, Imm):
            pool.append(operand.value & 0xFFFFFFFF)
            return (_SLOT_POOL_IMM << 14) | (len(pool) - 1)
        if isinstance(operand, Label):
            pool.append(program.target_index(operand.name))
            return (_SLOT_POOL_LABEL << 14) | (len(pool) - 1)
        raise EncodingError(f"cannot encode operand {operand!r}")

    for instruction in program.instructions:
        if len(instruction.srcs) > 3:
            raise EncodingError(f"{instruction.mnemonic}: too many sources")
        srcs = list(instruction.srcs) + [None] * (3 - len(instruction.srcs))
        words += struct.pack(
            "<HBHHHB",
            _OPCODE_INDEX[instruction.mnemonic],
            _encode_reg(instruction.dsts[0]) if instruction.dsts else _NO_DST,
            slot_for(srcs[0]),
            slot_for(srcs[1]),
            slot_for(srcs[2]),
            0,
        )

    out = bytearray()
    out += struct.pack("<II", len(program.instructions), len(pool))
    out += words
    for word in pool:
        out += struct.pack("<I", word)
    labels = sorted(program.labels.items())
    out += struct.pack("<I", len(labels))
    for name, index in labels:
        encoded = name.encode("utf-8")
        out += struct.pack("<IH", index, len(encoded)) + encoded
    return bytes(out)


def decode_program(blob: bytes) -> Program:
    """Inverse of :func:`encode_program`."""
    n_instructions, n_pool = struct.unpack_from("<II", blob, 0)
    offset = 8
    raw = []
    for _ in range(n_instructions):
        raw.append(struct.unpack_from("<HBHHHB", blob, offset))
        offset += INSTRUCTION_WORD_BYTES
    pool = list(
        struct.unpack_from(f"<{n_pool}I", blob, offset) if n_pool else ()
    )
    offset += 4 * n_pool
    (n_labels,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    labels: dict[str, int] = {}
    for _ in range(n_labels):
        index, name_len = struct.unpack_from("<IH", blob, offset)
        offset += 6
        name = blob[offset : offset + name_len].decode("utf-8")
        offset += name_len
        labels[name] = index

    index_to_label = {index: name for name, index in labels.items()}

    def operand_from(slot: int):
        tag = slot >> 14
        payload = slot & 0x3FFF
        if tag == _SLOT_NONE:
            return None
        if tag == _SLOT_REG:
            return _decode_reg(payload & 0xFF)
        if tag == _SLOT_POOL_IMM:
            return Imm(pool[payload])
        target = pool[payload]
        if target not in index_to_label:
            raise EncodingError(f"label target {target} missing from table")
        return Label(index_to_label[target])

    instructions = []
    for opcode_index, dst_byte, s0, s1, s2, _pad in raw:
        mnemonic = _OPCODE_LIST[opcode_index]
        spec = OPCODES[mnemonic]
        dsts = () if dst_byte == _NO_DST else (_decode_reg(dst_byte),)
        srcs = [operand_from(s0), operand_from(s1), operand_from(s2)]
        srcs = tuple(s for s in srcs[: spec.n_src] if s is not None)
        if len(srcs) != spec.n_src:
            raise EncodingError(f"{mnemonic}: operand count mismatch on decode")
        instructions.append(Instruction(mnemonic, dsts, srcs))
    program = Program(instructions, labels)
    program.validate()
    return program


def encoded_size(program: Program) -> int:
    """Bytes the program occupies in the binary format."""
    return len(encode_program(program))
