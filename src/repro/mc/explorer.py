"""Systematic interleaving exploration with sleep-set partial-order
reduction and convergent-state pruning.

The explorer is a CHESS-style stateless-replay DFS: a *trace* is the tuple
of branch indices taken at each choice point, and every run rebuilds the
model from scratch and replays its trace prefix before exploring freely.
Replay keeps the simulator state live (no snapshot/restore of numpy
register files), while three reductions keep the tree tractable:

* **ample local steps** — an enabled issue that touches only warp-private
  state (no device memory, no checkpoint probe, no pending protocol
  choice) is executed without branching; interleaving it with other warps
  cannot change any reachable protocol state;
* **sleep sets** — after branching to sibling *j*, the transitions at
  indices ``< j`` that are independent of the chosen one are put to sleep
  in the sibling subtree: re-executing them first would only commute into
  an already-explored ordering.  Same-warp transitions are always
  dependent, which keeps sleep-set labels stable across the replayed
  prefix;
* **digest pruning** — at a choice point with an *empty* sleep set in the
  free (non-replay) region, a canonical timing-free state digest is
  consulted; a previously-visited digest means every continuation was
  already explored from the first visit.

Soundness note: pruning is only applied where the sleep set is empty (the
full successor set is explored from the recorded state) and never inside a
replayed prefix, so no ordering is lost to the interaction of the two
reductions.

Every run ends in one of: a *terminal* (no enabled transitions — leaf
invariants are checked), a *pruned/converged* cut, or an abort (simulator
exception → ``MC307``).  The happens-before race detector runs over every
run's event stream regardless of how it ended.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..faults.errors import FaultToleranceError
from ..sim.executor import ExecutionError
from ..verify.findings import Finding
from .model import McModel, McOptions

#: exception types a transition may legitimately raise on a protocol
#: violation; anything else is a checker bug and propagates
_RUN_ERRORS = (
    FaultToleranceError,
    ExecutionError,
    RuntimeError,
    ValueError,
    AssertionError,
    KeyError,
)


@dataclass
class McResult:
    """Merged outcome of one bounded exploration (one ``McUnit``)."""

    states: int = 0  # distinct recorded choice-point states
    terminals: int = 0  # distinct terminal-state digests
    transitions: int = 0  # transitions executed (incl. replays)
    runs: int = 0  # root-to-leaf executions
    choice_points: int = 0  # branch points encountered (incl. replays)
    max_depth: int = 0  # deepest choice-point stack
    pruned: int = 0  # runs cut by a sleep-emptied frontier
    converged: int = 0  # runs cut by a previously-visited digest
    truncated: bool = False  # a bound was hit (MC308 emitted)
    findings: list[Finding] = field(default_factory=list)
    #: order-insensitive hash of the reachable state set — the cross-core /
    #: cross-jobs equivalence witness
    reachable_digest: str = ""

    @property
    def ok(self) -> bool:
        from ..verify.findings import failing

        return not failing(self.findings)


def _reachable_digest(visited: set[str], terminals: set[str]) -> str:
    h = hashlib.sha256()
    for digest in sorted(visited):
        h.update(digest.encode())
    h.update(b"|terminals|")
    for digest in sorted(terminals):
        h.update(digest.encode())
    return h.hexdigest()


def explore(model_factory, reference: dict | None, options: McOptions,
            kernel: str = "", mechanism: str = "") -> McResult:
    """Exhaust the bounded interleaving space of ``model_factory()``.

    *model_factory* must build a fresh, identically-initialised
    :class:`McModel` on every call (determinism is what makes stateless
    replay sound).  *reference* is the clean-run oracle for MC301.
    """
    result = McResult()
    visited: set[str] = set()
    terminals: set[str] = set()
    findings: dict[tuple, Finding] = {}
    #: DFS worklist of traces (branch-index tuples) still to run
    stack: list[tuple[int, ...]] = [()]
    # a runaway backstop well above any bounded exploration that the
    # max_states cap would permit
    runs_cap = 4 * options.max_states + 64
    # seeded bugs couple warps through model-level state behind the
    # independence oracle's back, so both commutativity-based reductions
    # are unsound for them; only the (state-exact) digest pruning stays
    use_reductions = options.bug is None

    while stack:
        if result.runs >= runs_cap:
            result.truncated = True
            break
        trace = stack.pop()
        result.runs += 1
        model: McModel = model_factory()
        sleep: set = set()
        depth = 0  # choice points consumed along this run
        try:
            while True:
                enabled = model.enabled()
                if not enabled:
                    model.check_terminal(reference)
                    terminals.add(model.digest())
                    break
                if use_reductions:
                    ample = next(
                        (t for t in enabled if model.is_private(t)), None
                    )
                    if ample is not None:
                        sleep = {
                            u for u in sleep if model.independent(u, ample)
                        }
                        model.execute(ample)
                        result.transitions += 1
                        continue
                effective = [t for t in enabled if t not in sleep]
                if not effective:
                    result.pruned += 1
                    break
                if len(effective) == 1:
                    chosen = effective[0]
                    sleep = {
                        u for u in sleep if model.independent(u, chosen)
                    }
                    model.execute(chosen)
                    result.transitions += 1
                    continue
                in_replay = depth < len(trace)
                if not in_replay and not sleep:
                    digest = model.digest()
                    if digest in visited:
                        result.converged += 1
                        break
                    visited.add(digest)
                    if len(visited) > options.max_states:
                        result.truncated = True
                        stack.clear()
                        break
                result.choice_points += 1
                if in_replay:
                    j = trace[depth]
                elif depth >= options.max_choice_points:
                    result.truncated = True
                    j = 0
                else:
                    j = 0
                    prefix = trace[:depth] if depth < len(trace) else trace
                    base = prefix + (0,) * (depth - len(prefix))
                    for k in range(len(effective) - 1, 0, -1):
                        stack.append(base + (k,))
                chosen = effective[j]
                depth += 1
                result.max_depth = max(result.max_depth, depth)
                if use_reductions:
                    candidates = sleep | set(effective[:j])
                    sleep = {
                        u for u in candidates
                        if model.independent(u, chosen)
                    }
                model.execute(chosen)
                result.transitions += 1
        except _RUN_ERRORS as exc:
            model.record_exception(exc)
        model.check_races()
        for finding in model.findings:
            findings.setdefault(finding.key, finding)

    if result.truncated:
        findings.setdefault(
            ("MC308", kernel, mechanism, None, "bounds"),
            Finding(
                code="MC308",
                message=(
                    "exploration truncated at "
                    f"{options.max_choice_points} choice points / "
                    f"{options.max_states} states"
                ),
                kernel=kernel,
                mechanism=mechanism,
                where="bounds",
            ),
        )
    result.states = len(visited)
    result.terminals = len(terminals)
    result.findings = sorted(findings.values(), key=Finding.sort_key)
    result.reachable_digest = _reachable_digest(visited, terminals)
    return result
