"""Cacheable model-checking work units and their reporters.

One :class:`McUnit` explores the bounded interleaving space of one
``(kernel, mechanism)`` cell and returns a JSON-able *verdict* — counts,
the reachable-state digest, and the findings.  Units are frozen and
picklable, so ``python -m repro mc`` shards the (kernel × mechanism)
frontier across the experiment engine's process pool exactly like the
figure drivers; verdicts are cached on the full content of kernel +
config + exploration options, keyed with :data:`MC_VERSION` so checker
changes invalidate stale verdicts.

Because a unit's exploration is single-process and fully deterministic,
and the engine merges results by submission index, the merged verdicts
are bit-identical across ``--jobs`` values — the property the twin tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.cache import canonical, describe_kernel, get_cache
from ..kernels.suite import SUITE
from ..mechanisms import make_mechanism
from ..sim.config import GPUConfig
from ..verify.findings import Finding, failing
from ..verify.report import finding_from_dict, finding_to_dict
from .explorer import explore
from .model import McModel, McOptions, clean_reference

#: bump to invalidate every cached mc verdict (checker semantics change)
MC_VERSION = 1


def mc_profile_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    options: McOptions,
    iterations: int | None = None,
) -> dict:
    """Cached exploration verdict for one (kernel, mechanism) cell."""
    resolved_iterations = (
        SUITE[key].default_iterations if iterations is None else iterations
    )

    def launch():
        return SUITE[key].launch(
            warp_size=config.warp_size,
            iterations=resolved_iterations,
            num_warps=options.warps,
        )

    parts = {
        "bench": key,
        "kernel": describe_kernel(launch().kernel),
        "config": canonical(config),
        "iterations": resolved_iterations,
        "mechanism": mechanism,
        "mc_options": canonical(options),
        "mc_version": MC_VERSION,
    }

    def run() -> dict:
        bench_launch = launch()
        prepared = make_mechanism(mechanism).prepare(bench_launch.kernel, config)
        spec = bench_launch.spec()
        reference = clean_reference(prepared, spec, config)

        def factory() -> McModel:
            return McModel(
                prepared, spec, config, options,
                kernel=key, mechanism=mechanism,
            )

        result = explore(
            factory, reference, options, kernel=key, mechanism=mechanism
        )
        return {
            "kernel": key,
            "mechanism": mechanism,
            "warps": options.warps,
            "rounds": options.rounds,
            "explored_states": result.states,
            "terminals": result.terminals,
            "transitions": result.transitions,
            "runs": result.runs,
            "choice_points": result.choice_points,
            "max_depth": result.max_depth,
            "pruned": result.pruned,
            "converged": result.converged,
            "truncated": result.truncated,
            "reachable_digest": result.reachable_digest,
            "findings": [finding_to_dict(f) for f in result.findings],
            "ok": result.ok,
        }

    return get_cache().get_or_create("mc", parts, run)


@dataclass(frozen=True)
class McUnit:
    """One model-checking cell: (kernel, mechanism, exploration options)."""

    key: str
    mechanism: str
    config: GPUConfig | None = None
    options: McOptions = McOptions()
    iterations: int | None = None

    def run(self) -> dict:
        config = self.config if self.config is not None else GPUConfig.small(4)
        return mc_profile_for(
            self.key, self.mechanism, config, self.options, self.iterations
        )


def verdict_findings(verdicts: list[dict]) -> list[Finding]:
    """Reconstructed findings of every verdict, in stable report order."""
    findings = [
        finding_from_dict(entry)
        for verdict in verdicts
        for entry in verdict.get("findings", ())
    ]
    return sorted(findings, key=Finding.sort_key)


def render_mc_text(verdicts: list[dict]) -> str:
    lines = [
        f"{'kernel':8s} {'mechanism':10s} {'states':>7s} {'terminals':>9s} "
        f"{'runs':>6s} {'trans':>8s} {'depth':>5s} {'findings':>8s}"
    ]
    for verdict in verdicts:
        flags = " (truncated)" if verdict.get("truncated") else ""
        lines.append(
            f"{verdict['kernel']:8s} {verdict['mechanism']:10s} "
            f"{verdict['explored_states']:>7d} {verdict['terminals']:>9d} "
            f"{verdict['runs']:>6d} {verdict['transitions']:>8d} "
            f"{verdict['max_depth']:>5d} {len(verdict['findings']):>8d}"
            f"{flags}"
        )
    for finding in verdict_findings(verdicts):
        lines.append("  " + finding.render())
    blocking = failing(verdict_findings(verdicts))
    lines.append(
        f"FAIL: {len(blocking)} blocking finding(s)" if blocking else "OK"
    )
    return "\n".join(lines)


def render_mc_json(verdicts: list[dict]) -> dict:
    """The lint-compatible JSON report shape (schema, summary, findings) —
    the ``--write-baseline`` / ``--diff-baseline`` ratchet reads it."""
    from ..verify.findings import Severity
    from ..verify.report import JSON_SCHEMA_VERSION

    findings = verdict_findings(verdicts)
    by_severity = {severity.value: 0 for severity in Severity}
    for finding in findings:
        by_severity[finding.severity.value] += 1
    return {
        "schema": JSON_SCHEMA_VERSION,
        "summary": {
            "kernels": sorted({v["kernel"] for v in verdicts}),
            "mechanisms": sorted({v["mechanism"] for v in verdicts}),
            "explored_states": sum(v["explored_states"] for v in verdicts),
            "terminals": sum(v["terminals"] for v in verdicts),
            "transitions": sum(v["transitions"] for v in verdicts),
            "runs": sum(v["runs"] for v in verdicts),
            "truncated": any(v["truncated"] for v in verdicts),
            "findings": len(findings),
            "by_severity": by_severity,
            "ok": not failing(findings),
        },
        "verdicts": verdicts,
        "findings": [finding_to_dict(f) for f in findings],
    }
