"""Happens-before race detection over :mod:`repro.obs` event streams.

The model checker's transition driver emits one :data:`EventKind.CTX_ACCESS`
event per touch of a saved-context buffer, alongside the protocol events
the controller already traces.  This module assigns **vector clocks** over
that stream — one clock component per warp plus one for the preemption
controller — and flags *unordered conflicting* accesses to the same
``(owner warp, slot)`` location.

Synchronisation edges (the protocol's ordering guarantees):

* ``SIGNAL``        controller → warp   (delivery orders the routine after
  everything the controller observed);
* ``EVICT``         warp → controller   (the saved context is published);
* ``RESUME_START``  controller → warp   (the resume routine reads the
  buffer only after the controller hands it back).

Everything else is program order within one thread.  In a correct run
every context buffer is written only by its owner's preempt routine and
read only by its owner's resume routine, with the eviction/resume edges
ordering the two through the controller — so clean explorations are
trivially race-free, and any unordered pair is a protocol bug (``MC306``).
"""

from __future__ import annotations

from ..obs.events import EventKind, TraceEvent

#: vector-clock thread id for the preemption controller (SM_WIDE is -1)
CTRL_THREAD = -2


def find_races(events: list[TraceEvent], warp_ids) -> list[dict]:
    """Unordered conflicting CTX_ACCESS pairs, in detection order.

    Events must be in emission order (the execution's causal order), not
    ``(cycle, seq)`` order — some protocol events carry future semantic
    timestamps.  Returns one descriptor per racing *pair of threads* per
    location (deduplicated), each JSON-able.
    """
    slots = {wid: i for i, wid in enumerate(sorted(warp_ids))}
    slots[CTRL_THREAD] = len(slots)
    width = len(slots)
    clocks = {tid: [0] * width for tid in slots}

    def tick(tid: int) -> None:
        clocks[tid][slots[tid]] += 1

    def sync(src: int, dst: int) -> None:
        tick(src)
        src_clock = clocks[src]
        dst_clock = clocks[dst]
        for i in range(width):
            if src_clock[i] > dst_clock[i]:
                dst_clock[i] = src_clock[i]
        tick(dst)

    #: (owner, slot) -> list of (thread, write, clock-at-access)
    accesses: dict[tuple, list[tuple[int, bool, list[int]]]] = {}
    races: list[dict] = []
    reported: set[tuple] = set()
    for event in events:
        kind = event.kind
        if kind is EventKind.SIGNAL or kind is EventKind.RESUME_START:
            if event.warp_id in slots:
                sync(CTRL_THREAD, event.warp_id)
        elif kind is EventKind.EVICT:
            if event.warp_id in slots:
                sync(event.warp_id, CTRL_THREAD)
        elif kind is EventKind.CTX_ACCESS:
            thread = event.warp_id if event.warp_id in slots else CTRL_THREAD
            tick(thread)
            clock = list(clocks[thread])
            owner = event.data.get("owner", event.warp_id)
            location = (owner, str(event.data.get("slot")))
            write = bool(event.data.get("write"))
            history = accesses.setdefault(location, [])
            for other, other_write, other_clock in history:
                if other == thread or not (write or other_write):
                    continue
                # prior access happens-before this one iff its component
                # of its own thread is visible in the current clock
                if other_clock[slots[other]] <= clock[slots[other]]:
                    continue
                pair_key = (location, min(other, thread), max(other, thread))
                if pair_key in reported:
                    continue
                reported.add(pair_key)
                races.append(
                    {
                        "owner": owner,
                        "slot": location[1],
                        "threads": sorted((other, thread)),
                        "writes": [other_write, write],
                        "cycle": event.cycle,
                    }
                )
            history.append((thread, write, clock))
    return races
