"""Exhaustive interleaving model checker for the preemption protocol.

``repro.mc`` treats the simulator as an executable transition system:
signal-delivery timing, resume timing, and warp interleaving become
explicit transitions (:mod:`~repro.mc.model`), a replay-based DFS with
sleep-set partial-order reduction and canonical-digest pruning exhausts
the bounded state space (:mod:`~repro.mc.explorer`), and a vector-clock
happens-before detector flags unordered conflicting accesses to saved
context buffers (:mod:`~repro.mc.hb`).  Findings carry stable ``MC3xx``
codes in the :mod:`repro.verify` framework; ``python -m repro mc`` shards
cells across the experiment engine (:mod:`~repro.mc.units`).
"""

from .explorer import McResult, explore
from .hb import find_races
from .model import SEEDED_BUGS, McModel, McOptions, clean_reference
from .units import (
    MC_VERSION,
    McUnit,
    mc_profile_for,
    render_mc_json,
    render_mc_text,
    verdict_findings,
)

__all__ = [
    "MC_VERSION",
    "McModel",
    "McOptions",
    "McResult",
    "McUnit",
    "SEEDED_BUGS",
    "clean_reference",
    "explore",
    "find_races",
    "mc_profile_for",
    "render_mc_json",
    "render_mc_text",
    "verdict_findings",
]
