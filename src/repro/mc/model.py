"""Executable transition system over the simulator for model checking.

The preemption protocol's nondeterminism has three sources: *when* the
signal reaches each warp (which dynamic instruction), *when* an evicted
warp is resumed, and *how* the scheduler interleaves warps.  This module
reifies each source as an explicit labelled transition over a live
:class:`~repro.sim.sm.SM`:

* ``("signal", wid)`` — deliver the preemption signal to warp *wid* now
  (atomically: set the flag, then step the warp so the divert/eviction
  happens at a protocol boundary);
* ``("resume", wid)`` — hand the evicted warp back to the SM;
* ``("issue", wid)``  — let warp *wid* issue exactly one instruction (or
  retire at program end).

:class:`McModel` owns one configured simulation plus the per-warp *round*
bookkeeping (a signal window per round, delivery forced before the window
closes so every branch exercises the protocol), evaluates the protocol
invariants (``MC30x``), and exposes the independence/footprint oracle the
explorer's partial-order reduction needs.  The state digest deliberately
abstracts timing (``timing=False``): two interleavings that converge to
the same architectural + protocol state merge even when their cycle
counters differ, which is what makes exhaustive exploration tractable.

Seeded protocol bugs (:data:`SEEDED_BUGS`) mutate one protocol step each
and exist so the checker's findings can be regression-tested: every bug
is caught by a distinct finding code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..faults.integrity import context_checksum
from ..obs.events import EventKind, Tracer
from ..sim.digest import memory_digest, state_digest
from ..sim.gpu import build_launch
from ..sim.memory import TrackedMemory
from ..sim.preemption import PreemptionController
from ..sim.warp import WarpMode
from ..verify.findings import Finding

#: knob -> finding code its injected defect must trigger (the contract
#: tests assert; see DESIGN.md §13)
SEEDED_BUGS: dict[str, str] = {
    "drop_resume": "MC302",  # never resume the last warp
    "double_deliver": "MC303",  # re-signal a warp whose round was served
    "stale_exec": "MC304",  # corrupt the exec_all hint after a resume
    "bad_accounting": "MC305",  # preempt_done before the signal
    "racing_ctx_write": "MC306",  # foreign write into a saved context
    "silent_corruption": "MC301",  # flip saved slots, fix the checksum
}

#: a transition label: (kind, warp_id)
Transition = tuple[str, int]

_KIND_RANK = {"signal": 0, "resume": 1, "issue": 2}

#: (reads, writes) of a transition over device-memory word indices
_EMPTY_FOOTPRINT: tuple[frozenset, frozenset] = (frozenset(), frozenset())

#: mnemonics whose device-memory footprint makes cross-warp issues
#: potentially dependent; everything else touches only warp-private state
_MEM_MNEMONICS = ("global_load", "global_store", "s_load")

#: signal_dyn far beyond any bounded exploration: the controller never
#: self-arms; every delivery is an explicit ("signal", wid) transition
_NEVER = 1 << 60


def canonical_order(transitions: list[Transition]) -> list[Transition]:
    """The deterministic exploration order: signals, resumes, issues,
    each by ascending warp id."""
    return sorted(transitions, key=lambda t: (_KIND_RANK[t[0]], t[1]))


@dataclass(frozen=True)
class McOptions:
    """Bounds and knobs of one exploration (part of the unit cache key)."""

    warps: int = 2
    #: preemption rounds per warp (signal -> evict -> resume cycles)
    rounds: int = 1
    #: round r's signal window opens window_gap dynamic instructions after
    #: the warp's (re)arm point ...
    window_gap: int = 2
    #: ... and spans this many dynamic instructions; delivery is forced at
    #: the last one, so no branch escapes preemption
    window_width: int = 2
    #: hang guard: transitions per run
    max_steps: int = 20_000
    #: depth bound: branching points per run (beyond, follow index 0)
    max_choice_points: int = 2_000
    #: global bound on distinct recorded states
    max_states: int = 20_000
    #: one of :data:`SEEDED_BUGS` (None: check the real protocol)
    bug: str | None = None

    def __post_init__(self) -> None:
        if self.warps < 1 or self.rounds < 1 or self.window_width < 1:
            raise ValueError("warps/rounds/window_width must be >= 1")
        if self.bug is not None and self.bug not in SEEDED_BUGS:
            raise ValueError(
                f"unknown seeded bug {self.bug!r} (known: {sorted(SEEDED_BUGS)})"
            )


class _Round:
    """One warp's progress through one preemption round.

    Phases: ``pending`` (awaiting delivery inside ``[lo, hi)``) →
    ``signaled`` → ``evicted``/``drain`` → ``resuming`` (switch) or
    ``watching`` (checkpoint drop, waiting for the re-execution watermark)
    → completed, which either rearms into the next round or parks the
    warp at ``exhausted``.  ``expired`` means the warp finished before its
    window — a legitimate leaf, not a finding.
    """

    __slots__ = ("no", "phase", "lo", "hi", "strategy", "expected_resume_pc")

    def __init__(self, no: int, lo: int, hi: int) -> None:
        self.no = no
        self.phase = "pending"
        self.lo = lo
        self.hi = hi
        self.strategy: str | None = None
        self.expected_resume_pc: int | None = None

    #: phases in which exploration ending means the round was lost
    INCOMPLETE = ("signaled", "evicted", "resuming", "watching", "drain")


def lds_digest(warp) -> str:
    if warp.lds is None:  # kernel without an LDS allocation
        return ""
    return hashlib.sha256(warp.lds.snapshot().tobytes()).hexdigest()


def clean_reference(prepared, spec, config) -> dict:
    """Terminal architectural state of the uninterrupted run — the MC301
    oracle.  Runs through the normal launch harness (``sm.run()``), so on
    a fast-core config this exercises the compiled core: the checker's
    cross-core equivalence claim covers the reference too."""
    memory = TrackedMemory()
    sm, _, memory = build_launch(
        spec, config, kernel_override=prepared.kernel, memory=memory
    )
    PreemptionController(
        sm=sm, prepared=prepared, target_warp_ids=set(), signal_dyn=_NEVER
    )
    sm.run()
    return {
        "memory": memory_digest(memory).hex(),
        "lds": {w.warp_id: lds_digest(w) for w in sm.warps},
    }


class McModel:
    """One live simulation exposed as a labelled transition system."""

    def __init__(self, prepared, spec, config, options: McOptions,
                 kernel: str = "", mechanism: str = "") -> None:
        self.options = options
        self.prepared = prepared
        self.kernel = kernel
        self.mechanism = mechanism or prepared.mechanism
        memory = TrackedMemory()
        sm, _, _ = build_launch(
            spec, config, kernel_override=prepared.kernel, memory=memory
        )
        self.sm = sm
        self.tracer = Tracer(mechanism=self.mechanism)
        sm.tracer = self.tracer
        self.controller = PreemptionController(
            sm=sm,
            prepared=prepared,
            target_warp_ids={w.warp_id for w in sm.warps},
            signal_dyn=_NEVER,
        )
        self.warps = list(sm.warps)
        self._by_id = {w.warp_id: w for w in self.warps}
        self.rounds = {
            w.warp_id: _Round(
                0, options.window_gap, options.window_gap + options.window_width
            )
            for w in self.warps
        }
        self.findings: list[Finding] = []
        self.steps = 0
        self._bug_fired = False
        self._events_scanned = 0

    # -- findings ---------------------------------------------------------------

    def _finding(self, code: str, message: str, warp_id: int | None = None,
                 where: str = "") -> None:
        self.findings.append(
            Finding(
                code=code,
                message=message,
                kernel=self.kernel,
                mechanism=self.mechanism,
                position=warp_id,
                where=where,
            )
        )

    def record_exception(self, exc: BaseException) -> None:
        """A transition raised: the run is abandoned with an MC307."""
        self._finding(
            "MC307", f"{type(exc).__name__}: {exc}", where="exception"
        )

    # -- enabled transitions ----------------------------------------------------

    def _signal_ok(self, warp, rnd: _Round) -> bool:
        return (
            rnd.phase == "pending"
            and warp.mode is WarpMode.RUNNING
            and warp.program is warp.main_program
            and not warp.preempt_flag
            and not warp.at_program_end()
            and rnd.lo <= warp.dyn_count < rnd.hi
        )

    def enabled(self) -> list[Transition]:
        """Enabled transitions in canonical order.  Delivery is *forced*
        at the window's last dynamic instruction (the plain issue is
        withheld), so every explored branch preempts every warp whose
        window it reaches."""
        transitions: list[Transition] = []
        bug = self.options.bug
        last_wid = self.warps[-1].warp_id if self.warps else None
        for warp in self.warps:
            wid = warp.warp_id
            rnd = self.rounds[wid]
            signal_ok = self._signal_ok(warp, rnd)
            if signal_ok:
                transitions.append(("signal", wid))
            if warp.mode is WarpMode.EVICTED and rnd.phase == "evicted":
                if not (bug == "drop_resume" and wid == last_wid):
                    transitions.append(("resume", wid))
            if warp.issuable:
                forced = signal_ok and warp.dyn_count == rnd.hi - 1
                if not forced:
                    transitions.append(("issue", wid))
        return canonical_order(transitions)

    def is_private(self, t: Transition) -> bool:
        """True when *t* is an issue that touches only warp-private state
        *and* forecloses no protocol choice: the explorer may execute it
        without branching (the single-successor ample step)."""
        kind, wid = t
        if kind != "issue":
            return False
        warp = self._by_id[wid]
        if not warp.issuable or warp.at_program_end() or warp.preempt_flag:
            return False
        if self._signal_ok(warp, self.rounds[wid]):
            return False  # defer-vs-deliver must remain a branch point
        pc = warp.state.pc
        if warp.tables().is_ckpt_probe[pc]:
            return False
        return warp.program.instructions[pc].mnemonic not in _MEM_MNEMONICS

    # -- independence (for sleep sets) ------------------------------------------

    def footprint(self, t: Transition):
        """Device-memory (reads, writes) word-index sets of *t*, or None
        when they cannot be predicted (treated as conflicting with
        everything).  Signals are footprint-free except under a drain
        strategy, where delivery issues the next main instruction."""
        kind, wid = t
        warp = self._by_id[wid]
        if kind == "resume":
            return _EMPTY_FOOTPRINT
        if kind == "signal" and self.prepared.strategy_for(warp) != "drain":
            return _EMPTY_FOOTPRINT
        if not warp.issuable or warp.at_program_end():
            return _EMPTY_FOOTPRINT
        instr = warp.program.instructions[warp.state.pc]
        mnemonic = instr.mnemonic
        if mnemonic not in _MEM_MNEMONICS:
            return _EMPTY_FOOTPRINT
        state = warp.state
        executor = self.sm.executor_for(warp)
        try:
            if mnemonic == "s_load":
                addr = executor._scalar_operand(
                    state, instr.srcs[0]
                ) + executor._scalar_operand(state, instr.srcs[1])
                return (frozenset((int(addr) >> 2,)), frozenset())
            base = executor._vector_operand(state, instr.srcs[0]).astype(np.int64)
            offset_src = instr.srcs[1] if mnemonic == "global_load" else instr.srcs[2]
            offset = int(executor._scalar_operand(state, offset_src))
            words = frozenset(
                int(a) >> 2 for a in (base + offset)[state.exec_mask]
            )
            if mnemonic == "global_load":
                return (words, frozenset())
            return (frozenset(), words)
        except Exception:
            return None

    def independent(self, t: Transition, u: Transition) -> bool:
        """Commutativity oracle for the sleep sets: same-warp transitions
        always conflict; cross-warp transitions conflict only through
        overlapping device-memory footprints with at least one write."""
        if t[1] == u[1]:
            return False
        ft = self.footprint(t)
        fu = self.footprint(u)
        if ft is None or fu is None:
            return False
        reads_t, writes_t = ft
        reads_u, writes_u = fu
        return not (writes_t & (reads_u | writes_u) or writes_u & reads_t)

    # -- execution --------------------------------------------------------------

    def execute(self, t: Transition) -> None:
        kind, wid = t
        warp = self._by_id[wid]
        self.steps += 1
        if self.steps > self.options.max_steps:
            raise RuntimeError(
                f"exploration run exceeded {self.options.max_steps} transitions"
            )
        if kind == "signal":
            self._deliver_signal(warp)
        elif kind == "resume":
            self._resume(warp)
        else:
            self._issue(warp)
        self._post_step(warp)

    def _deliver_signal(self, warp) -> None:
        rnd = self.rounds[warp.warp_id]
        rnd.strategy = self.prepared.strategy_for(warp)
        if rnd.strategy == "switch":
            plan = self.prepared.plans.get(warp.state.pc)
            rnd.expected_resume_pc = plan.resume_pc if plan is not None else None
        warp.preempt_flag = True
        warp.signal_cycle = self.sm.cycle
        self.controller.delivered.add(warp.warp_id)
        rnd.phase = "signaled"
        # step the warp so delivery lands at the next protocol boundary
        # (divert/eviction) inside this same transition
        self.sm.step_warp(warp)

    def _resume(self, warp) -> None:
        rnd = self.rounds[warp.warp_id]
        # a resume request is only meaningful once the eviction's context
        # traffic has drained; model it by advancing the clock there
        if warp.preempt_done_cycle is not None:
            self.sm.cycle = max(self.sm.cycle, warp.preempt_done_cycle)
        self.controller.resume_warp(warp, self.sm.cycle)
        rnd.phase = (
            "resuming" if warp.mode is WarpMode.RESUME_ROUTINE else "watching"
        )

    def _issue(self, warp) -> None:
        self._pre_issue_bug_hooks(warp)
        issued_before = self.sm.stats.issued
        program = warp.program
        pc = warp.state.pc
        self.sm.step_warp(warp)
        if self.sm.stats.issued == issued_before + 1:
            self._note_ctx_access(warp, program.instructions[pc])

    def _note_ctx_access(self, warp, instr) -> None:
        """Emit one CTX_ACCESS event per executed context-buffer op (the
        race detector's load/store stream)."""
        mnemonic = instr.mnemonic
        if mnemonic in ("ctx_store_v", "ctx_store_s"):
            slot, write = instr.srcs[1].value, True
        elif mnemonic in ("ctx_load_v", "ctx_load_s"):
            slot, write = instr.srcs[0].value, False
        elif mnemonic in ("ctx_store_lds", "ctx_load_lds"):
            slot, write = "lds", mnemonic == "ctx_store_lds"
        else:
            return
        self.tracer.emit(
            self.sm.cycle,
            EventKind.CTX_ACCESS,
            warp.warp_id,
            owner=warp.warp_id,
            slot=slot,
            write=write,
        )

    # -- round bookkeeping and per-step invariants ------------------------------

    def _post_step(self, stepped) -> None:
        for warp in self.warps:
            rnd = self.rounds[warp.warp_id]
            if rnd.phase == "pending":
                done = warp.mode is WarpMode.DONE or (
                    warp.mode is WarpMode.RUNNING
                    and warp.program is warp.main_program
                    and warp.at_program_end()
                )
                if done or warp.dyn_count >= rnd.hi:
                    rnd.phase = "expired"
            elif rnd.phase == "signaled":
                if warp.mode is WarpMode.EVICTED:
                    rnd.phase = "evicted"
                    self._on_evicted(warp)
                elif warp.warp_id in self.controller._draining:
                    rnd.phase = "drain"
            elif rnd.phase == "drain":
                if warp.mode is WarpMode.DONE:
                    self._complete_round(warp, rnd)
            elif rnd.phase in ("resuming", "watching"):
                if warp.mode is WarpMode.DONE or (
                    warp.mode is WarpMode.RUNNING
                    and warp.program is warp.main_program
                    and warp.resume_done_cycle is not None
                ):
                    self._complete_round(warp, rnd)
        self._check_coherence(stepped)
        self._scan_events()
        self._maybe_double_deliver()

    def _check_coherence(self, warp) -> None:
        """MC304 per-transition checks on the warp that just moved."""
        state = warp.state
        rnd = self.rounds[warp.warp_id]
        where = f"round{rnd.no}"
        if bool(state.exec_mask.all()) != state.exec_all:
            self._finding(
                "MC304",
                "exec_all hint disagrees with the exec mask",
                warp.warp_id,
                where,
            )
            state.exec_all = bool(state.exec_mask.all())  # report once
        if not 0 <= state.pc <= len(warp.program.instructions):
            self._finding(
                "MC304",
                f"pc {state.pc} outside program bounds",
                warp.warp_id,
                where,
            )

    def _scan_events(self) -> None:
        """MC303: the controller absorbed a duplicate signal.  The model
        never re-delivers on its own, so any duplicate-ignored recovery is
        a protocol violation (or the double_deliver seeded bug)."""
        events = self.tracer.events
        for event in events[self._events_scanned:]:
            if (
                event.kind is EventKind.RECOVER
                and event.data.get("action") == "duplicate_ignored"
            ):
                rnd = self.rounds.get(event.warp_id)
                self._finding(
                    "MC303",
                    "duplicate preemption signal absorbed after the round "
                    "was already served",
                    event.warp_id,
                    f"round{rnd.no}" if rnd is not None else "",
                )
        self._events_scanned = len(events)

    def _complete_round(self, warp, rnd: _Round) -> None:
        wid = warp.warp_id
        where = f"round{rnd.no}"
        measurement = self.controller.measurements.get(wid)
        if measurement is None:
            self._finding(
                "MC305", "round completed without a measurement", wid, where
            )
            rnd.phase = "exhausted"
            return
        if (
            measurement.resume_cycles is None
            and warp.resume_start_cycle is not None
            and warp.resume_done_cycle is not None
        ):
            # checkpoint-drop resumes complete at the re-execution
            # watermark; fill the measurement in as the harness does
            measurement.resume_cycles = (
                warp.resume_done_cycle - warp.resume_start_cycle
            )
        if (
            rnd.phase == "resuming"
            and rnd.strategy == "switch"
            and rnd.expected_resume_pc is not None
            and not warp.degraded_save
            and warp.mode is WarpMode.RUNNING
            and warp.state.pc != rnd.expected_resume_pc
        ):
            self._finding(
                "MC304",
                f"resumed at pc {warp.state.pc}, plan says "
                f"{rnd.expected_resume_pc}",
                wid,
                where,
            )
        self._check_accounting(warp, rnd, measurement)
        if self.options.bug == "stale_exec" and not self._bug_fired and (
            rnd.strategy == "switch"
        ):
            warp.state.exec_all = not bool(warp.state.exec_mask.all())
            self._bug_fired = True
        if rnd.no + 1 < self.options.rounds and warp.mode is WarpMode.RUNNING:
            self.controller.rearm(warp)
            lo = warp.dyn_count + self.options.window_gap
            self.rounds[wid] = _Round(
                rnd.no + 1, lo, lo + self.options.window_width
            )
        else:
            rnd.phase = "exhausted"

    def _check_accounting(self, warp, rnd: _Round, measurement) -> None:
        """MC305: the measured preemption timeline must be complete and
        monotonic: signal ≤ preempt_done ≤ resume_start ≤ resume_done."""
        wid = warp.warp_id
        where = f"round{rnd.no}"
        problems: list[str] = []
        if measurement.latency_cycles is None or measurement.latency_cycles < 0:
            problems.append(
                f"latency_cycles {measurement.latency_cycles} never measured"
            )
        if rnd.phase == "drain":
            if measurement.resume_cycles != 0:
                problems.append(
                    f"drained warp has resume_cycles "
                    f"{measurement.resume_cycles}, expected 0"
                )
        else:
            done = warp.preempt_done_cycle
            start = warp.resume_start_cycle
            if done is not None and measurement.signal_cycle > done:
                problems.append(
                    f"preempt_done {done} precedes the signal at "
                    f"{measurement.signal_cycle}"
                )
            if start is None:
                problems.append("resume_start_cycle never recorded")
            elif done is not None and start < done:
                problems.append(
                    f"resume_start {start} precedes preempt_done {done}"
                )
            if warp.resume_done_cycle is not None and start is not None and (
                warp.resume_done_cycle < start
            ):
                problems.append(
                    f"resume_done {warp.resume_done_cycle} precedes "
                    f"resume_start {start}"
                )
            if measurement.resume_cycles is None or measurement.resume_cycles < 0:
                problems.append(
                    f"resume_cycles {measurement.resume_cycles} never measured"
                )
        for problem in problems:
            self._finding("MC305", problem, wid, where)

    # -- leaf / run-end checks --------------------------------------------------

    def check_terminal(self, reference: dict | None) -> None:
        """Invariants asserted when no transition is enabled: every round
        ran to completion (MC302) and, with all warps retired, the
        architectural state matches the uninterrupted reference (MC301)."""
        for warp in self.warps:
            rnd = self.rounds[warp.warp_id]
            if rnd.phase in _Round.INCOMPLETE:
                self._finding(
                    "MC302",
                    f"round stuck in phase {rnd.phase!r} at exploration end",
                    warp.warp_id,
                    f"round{rnd.no}",
                )
        if reference is None or any(
            w.mode is not WarpMode.DONE for w in self.warps
        ):
            return
        if memory_digest(self.sm.memory).hex() != reference["memory"]:
            self._finding(
                "MC301", "device memory diverges from the clean reference",
                where="memory",
            )
        for warp in self.warps:
            expected = reference["lds"].get(warp.warp_id)
            if expected is not None and lds_digest(warp) != expected:
                self._finding(
                    "MC301",
                    "LDS content diverges from the clean reference",
                    warp.warp_id,
                    "lds",
                )

    def check_races(self) -> None:
        """Run the happens-before detector over this run's event stream
        (terminal or aborted alike) and report MC306 per racing pair."""
        from .hb import find_races

        for race in find_races(
            self.tracer.events, [w.warp_id for w in self.warps]
        ):
            self._finding(
                "MC306",
                f"threads {race['threads']} race on slot {race['slot']} "
                f"of warp {race['owner']}'s context buffer",
                race["owner"],
                f"slot:{race['slot']}",
            )

    def digest(self) -> str:
        """Canonical state hash: architectural + protocol state with the
        timing dimension abstracted away, plus the round phase machine."""
        parts = [
            f"{w.warp_id}:{r.no}:{r.phase}:{r.lo}:{r.hi}"
            for w in self.warps
            for r in (self.rounds[w.warp_id],)
        ]
        parts.append(f"bug:{int(self._bug_fired)}")
        return state_digest(
            self.sm,
            self.controller,
            timing=False,
            extra="|".join(parts).encode(),
        )

    # -- seeded bugs ------------------------------------------------------------

    def _scribble(self, victim) -> object:
        """Flip one saved slot of *victim*'s context buffer; returns the
        slot touched (or None when the buffer has no integer slots)."""
        buffer = victim.state.ctx_buffer
        slots = sorted(s for s in buffer if not isinstance(s, str))
        if not slots:
            return None
        slot = slots[0]
        value = buffer[slot]
        if isinstance(value, np.ndarray):
            buffer[slot] = value ^ value.dtype.type(1)
        else:
            buffer[slot] = int(value) ^ 1
        return slot

    def _on_evicted(self, warp) -> None:
        bug = self.options.bug
        if bug == "silent_corruption" and not self._bug_fired:
            if self._scribble(warp) is not None:
                # recompute the checksum so the corruption survives the
                # integrity gate — only the MC301 oracle can see it
                warp.ctx_checksum = context_checksum(warp.state.ctx_buffer)
                self._bug_fired = True
        elif bug == "bad_accounting" and not self._bug_fired:
            signal = warp.signal_cycle if warp.signal_cycle is not None else 0
            warp.preempt_done_cycle = signal - 5
            self._bug_fired = True

    def _pre_issue_bug_hooks(self, warp) -> None:
        if self.options.bug != "racing_ctx_write" or self._bug_fired:
            return
        if warp is not self.warps[0]:
            return
        for victim in self.warps:
            if victim is warp or victim.mode is not WarpMode.EVICTED:
                continue
            slot = self._scribble(victim)
            if slot is None:
                continue
            # the foreign write is visible to the race detector but not
            # ordered by any protocol edge: a write-write race with the
            # victim's own preempt-routine store
            self.tracer.emit(
                self.sm.cycle,
                EventKind.CTX_ACCESS,
                warp.warp_id,
                owner=victim.warp_id,
                slot=slot,
                write=True,
            )
            self._bug_fired = True
            return

    def _maybe_double_deliver(self) -> None:
        if self.options.bug != "double_deliver" or self._bug_fired:
            return
        for warp in self.warps:
            rnd = self.rounds[warp.warp_id]
            if (
                rnd.phase == "exhausted"
                and warp.mode is WarpMode.RUNNING
                and not warp.preempt_flag
                and not warp.at_program_end()
                and warp.warp_id in self.controller.measurements
            ):
                warp.preempt_flag = True
                self._bug_fired = True
                return
