"""Fleet orchestration: calibrate, shard, fan out, aggregate.

The serving pipeline has four stages:

1. **Calibrate** — per mechanism, run real cycle-level preemption
   experiments on the batch kernel (through the cacheable
   :class:`~repro.analysis.engine.ExperimentUnit` grid, so repeat serve
   runs hit the artifact cache instead of the simulator) and convert the
   measured preempt/resume cycles to µs costs.
2. **Ingest** — generate the seeded arrival trace and pump it through an
   asyncio request queue that round-robins requests onto the fleet's GPUs
   (single-threaded event loop + deterministic dispatch = reproducible
   shards).
3. **Serve** — one :class:`~repro.analysis.engine.ServeUnit` per
   (mechanism, load, GPU) runs the priority scheduler over its shard;
   the engine fans units over the process pool and merges by submission
   index, so the merged results are bit-identical across ``--jobs``.
4. **Aggregate** — fold the shard records into per-mechanism-per-load
   p50/p95/p99, SLO-violation, throughput, and overhead summaries
   (:mod:`repro.serve.report`).
"""

from __future__ import annotations

import asyncio

from ..analysis.engine import ExperimentEngine, ExperimentUnit, ServeUnit
from ..sim.config import GPUConfig
from .arrivals import TraceSpec, generate_arrivals
from .migration import (
    DEFAULT_LINK_BYTES_PER_US,
    MIGRATION_VERSION,
    MigrationCosts,
    migration_costs_for,
    plan_migrations,
    shard_events,
)
from .report import summarize_cell
from .scheduler import MechanismCosts, simulate_shard
from .tenants import DEFAULT_TENANTS, Tenant, mean_service_us

#: the six evaluated mechanisms, in the paper's presentation order
SERVE_MECHANISMS = ("baseline", "live", "ckpt", "csdefer", "ctxback", "combined")

#: default batch kernel occupying the fleet (doitgen: long-running,
#: register-heavy — a credible batch tenant)
DEFAULT_BATCH_KEY = "dc"


# -- stage 1: calibration ---------------------------------------------------------


def mechanism_costs(
    mechanisms: tuple[str, ...],
    key: str,
    config: GPUConfig,
    *,
    iterations: int | None = None,
    samples: int = 2,
    resume_gap: int = 2000,
    engine: ExperimentEngine | None = None,
) -> dict[str, MechanismCosts]:
    """Calibrated preempt/resume costs per mechanism (µs).

    One :class:`ExperimentUnit` per (mechanism, signal point): a real
    cycle-level preemption of the batch kernel, averaged over *samples*
    signal points spread across the loop body.  Every unit is cached, so
    repeat serve invocations skip the simulator entirely.
    """
    from ..analysis.experiments import _signal_points

    if engine is None:
        engine = ExperimentEngine(jobs=1)
    points = _signal_points(key, config, samples, iterations)
    units = [
        ExperimentUnit(
            key=key,
            mechanism=mechanism,
            config=config,
            signal_dyn=point,
            resume_gap=resume_gap,
            iterations=iterations,
            verify=False,
        )
        for mechanism in mechanisms
        for point in points
    ]
    profiles = iter(engine.map(units))
    costs: dict[str, MechanismCosts] = {}
    for mechanism in mechanisms:
        latencies: list[float] = []
        resumes: list[float] = []
        for _ in points:
            profile = next(profiles)
            if not isinstance(profile, dict):
                continue  # FAILED cell under FailurePolicy.COLLECT
            latencies.append(profile["latency"])
            if profile["resume"] is not None:
                resumes.append(profile["resume"])
        if not latencies:
            raise RuntimeError(
                f"calibration failed for mechanism {mechanism!r} on {key!r}"
            )
        costs[mechanism] = MechanismCosts(
            mechanism=mechanism,
            preempt_us=config.cycles_to_us(sum(latencies) / len(latencies)),
            resume_us=(
                config.cycles_to_us(sum(resumes) / len(resumes))
                if resumes
                else 0.0
            ),
        )
    return costs


# -- stage 2: asyncio ingestion ---------------------------------------------------


async def _pump(
    spec: TraceSpec,
    count: int,
    rate_per_us: float,
    tenants: tuple[Tenant, ...],
    gpus: int,
    chunk_size: int,
) -> list[list[tuple[float, int]]]:
    """Producer/dispatcher pair over an asyncio request queue.

    The producer chunks the seeded trace into the queue; the dispatcher
    drains it, round-robining requests onto per-GPU shards.  Determinism
    comes for free: one event loop, one producer, one dispatcher.
    """
    queue: asyncio.Queue = asyncio.Queue(maxsize=4)
    shards: list[list[tuple[float, int]]] = [[] for _ in range(gpus)]

    async def produce() -> None:
        arrivals = generate_arrivals(spec, count, rate_per_us, tenants)
        for start in range(0, len(arrivals), chunk_size):
            await queue.put(arrivals[start : start + chunk_size])
        await queue.put(None)

    async def dispatch() -> None:
        index = 0
        while True:
            chunk = await queue.get()
            if chunk is None:
                return
            for request in chunk:
                shards[index % gpus].append((request.arrival_us, request.tenant))
                index += 1

    await asyncio.gather(produce(), dispatch())
    return shards


def shard_arrivals(
    spec: TraceSpec,
    count: int,
    rate_per_us: float,
    tenants: tuple[Tenant, ...],
    gpus: int,
    *,
    chunk_size: int = 4096,
) -> list[tuple[tuple[float, int], ...]]:
    """Seeded trace → per-GPU request shards (via the asyncio pump)."""
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    shards = asyncio.run(
        _pump(spec, count, rate_per_us, tenants, gpus, chunk_size)
    )
    return [tuple(shard) for shard in shards]


# -- stage 3: cached shard execution ---------------------------------------------


def serve_shard_profile(
    requests: tuple[tuple[float, int], ...],
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    gpu: int,
    migrations: tuple = (),
    migration: MigrationCosts | None = None,
) -> dict:
    """Cached scheduler run over one shard (artifact kind ``serve``).

    The key is the full content of the shard + tenant mix + costs, so a
    re-run with any knob changed re-simulates while identical shards hit
    the cache — including across different ``--jobs`` values.  Migration
    inputs join the key only when present, so plain serve runs keep
    their existing cache identity.
    """
    from ..analysis.cache import canonical, get_cache

    parts = {
        "requests": canonical(requests),
        "tenants": canonical(tenants),
        "costs": canonical(costs),
    }
    if migrations:
        parts["migrations"] = canonical(migrations)
        parts["migration"] = canonical(migration)
        parts["migration_version"] = MIGRATION_VERSION

    def run() -> dict:
        result = simulate_shard(
            requests, tenants, costs, gpu=gpu,
            migrations=migrations, migration=migration,
        )
        return result.as_dict()

    return get_cache().get_or_create("serve", parts, run)


# -- stage 4: the full pipeline ---------------------------------------------------


def run_serve(
    mechanisms: tuple[str, ...] = SERVE_MECHANISMS,
    *,
    trace: TraceSpec | None = None,
    loads: tuple[float, ...] = (0.8,),
    requests: int = 100_000,
    gpus: int = 4,
    tenants: tuple[Tenant, ...] = DEFAULT_TENANTS,
    key: str = DEFAULT_BATCH_KEY,
    config: GPUConfig | None = None,
    iterations: int | None = None,
    samples: int = 2,
    resume_gap: int = 2000,
    engine: ExperimentEngine | None = None,
    migrate: bool = False,
    migrate_epoch_us: float = 2000.0,
    migrate_factor: float = 1.5,
    link_bytes_per_us: float = DEFAULT_LINK_BYTES_PER_US,
) -> dict:
    """Serve *requests* requests per (mechanism, load) over the fleet.

    Returns the full serve report (plain dicts/lists/scalars, no
    wall-clock or host state): render it with
    :func:`repro.serve.report.render_serve_text` /
    :func:`~repro.serve.report.render_serve_json`.

    With *migrate*, batch jobs live-migrate across the fleet
    (:mod:`repro.serve.migration`): per-mechanism snapshot sizes come
    from cached :func:`repro.snap.units.snap_profile_for` round-trips,
    the plan is a pure function of the arrival shards, and the report
    gains a ``migration`` section plus per-cell counts — still
    bit-identical across ``--jobs``, cores, and hosts.
    """
    if trace is None:
        trace = TraceSpec()
    if config is None:
        config = GPUConfig.radeon_vii()
    if engine is None:
        engine = ExperimentEngine(jobs=1)
    costs = mechanism_costs(
        mechanisms, key, config,
        iterations=iterations, samples=samples, resume_gap=resume_gap,
        engine=engine,
    )

    snapshot_bytes: dict[str, int] = {}
    mig_costs: dict[str, MigrationCosts] = {}
    if migrate:
        from ..snap.units import snap_profile_for

        for mechanism in mechanisms:
            profile = snap_profile_for(
                key, mechanism, config,
                iterations=iterations, resume_gap=resume_gap,
            )
            if not profile.get("ok"):
                raise RuntimeError(
                    f"snapshot round-trip failed for mechanism {mechanism!r} "
                    f"on {key!r}: {profile}"
                )
            snapshot_bytes[mechanism] = profile["snapshot_bytes"]
            mig_costs[mechanism] = migration_costs_for(
                profile["snapshot_bytes"], config,
                link_bytes_per_us=link_bytes_per_us,
            )

    service_mean = mean_service_us(tenants)
    units: list[ServeUnit] = []
    cells: list[tuple[str, float]] = []
    shards_by_load: dict[float, list] = {}
    events_by_load: dict[float, list] = {}
    for load in loads:
        # load = fraction of fleet service capacity consumed by requests
        rate = load * gpus / service_mean
        shards_by_load[load] = shard_arrivals(
            trace, requests, rate, tenants, gpus
        )
        if migrate:
            # the plan depends only on the shards (pure + deterministic)
            events_by_load[load] = shard_events(
                plan_migrations(
                    shards_by_load[load], tuple(tenants),
                    epoch_us=migrate_epoch_us, factor=migrate_factor,
                ),
                gpus,
            )
    for mechanism in mechanisms:
        for load in loads:
            cells.append((mechanism, load))
            for gpu in range(gpus):
                mig = mig_costs.get(mechanism)
                events = (
                    events_by_load[load][gpu] if migrate else ()
                )
                units.append(
                    ServeUnit(
                        mechanism=mechanism,
                        load=load,
                        gpu=gpu,
                        requests=shards_by_load[load][gpu],
                        tenants=tuple(tenants),
                        preempt_us=costs[mechanism].preempt_us,
                        resume_us=costs[mechanism].resume_us,
                        migrations=events,
                        mig_snapshot_us=mig.snapshot_us if mig else 0.0,
                        mig_transfer_us=mig.transfer_us if mig else 0.0,
                        mig_restore_us=mig.restore_us if mig else 0.0,
                    )
                )
    merged = iter(engine.map(units))

    results = []
    for mechanism, load in cells:
        shard_dicts = []
        for _ in range(gpus):
            profile = next(merged)
            if isinstance(profile, dict):
                shard_dicts.append(profile)
        results.append(
            summarize_cell(
                mechanism, load, shard_dicts, tenants, costs[mechanism],
                migration=migrate,
            )
        )

    report_extra: dict = {}
    if migrate:
        report_extra["migration"] = {
            "epoch_us": migrate_epoch_us,
            "factor": migrate_factor,
            "link_bytes_per_us": link_bytes_per_us,
            "snapshot_bytes": dict(sorted(snapshot_bytes.items())),
            "costs_us": {
                name: {
                    "snapshot_us": c.snapshot_us,
                    "transfer_us": c.transfer_us,
                    "restore_us": c.restore_us,
                }
                for name, c in sorted(mig_costs.items())
            },
        }

    return {
        **report_extra,
        "trace": {
            "kind": trace.kind,
            "seed": trace.seed,
            "burst_factor": trace.burst_factor,
            "burst_fraction": trace.burst_fraction,
            "dwell_us": trace.dwell_us,
        },
        "requests_per_cell": requests,
        "gpus": gpus,
        "batch_kernel": key,
        "tenants": [
            {
                "name": t.name,
                "priority": t.priority,
                "service_us": t.service_us,
                "slo_us": t.slo_us,
                "weight": t.weight,
            }
            for t in tenants
        ],
        "costs": {
            name: {
                "preempt_us": round(c.preempt_us, 3),
                "resume_us": round(c.resume_us, 3),
            }
            for name, c in costs.items()
        },
        "results": results,
    }
