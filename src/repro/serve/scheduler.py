"""Per-GPU preemptive scheduler: admit requests, evict the batch job.

Each simulated GPU runs an always-on batch kernel.  When a request arrives
the scheduler opens a *preemption episode*: the batch job is evicted at the
active mechanism's calibrated preemption cost, queued requests are served
back-to-back in priority order, and when the queue drains the batch job
takes the GPU back at the mechanism's resume cost.  A request that lands
mid-resume waits the resume out and pays a fresh preemption — exactly the
accounting the toy multitenant example used to get wrong (it reported the
preemption latency alone and dropped the queueing delay entirely).

The simulation is a single-server discrete-event loop in event order —
requests per microsecond, not cycles — so 100k-request traces per
mechanism are cheap; the *costs* it charges come from real cycle-level
:func:`~repro.sim.gpu.run_preemption_experiment` runs (see
:func:`repro.serve.fleet.mechanism_costs`).

Everything is deterministic: same requests + costs → identical records,
regardless of worker count or host.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..obs.events import EventKind, Tracer
from .arrivals import Request
from .tenants import Tenant


@dataclass(frozen=True)
class MechanismCosts:
    """Calibrated per-episode costs of one preemption mechanism (µs)."""

    mechanism: str
    #: eviction cost: the first request of an episode waits this out
    preempt_us: float
    #: batch-resume cost: the GPU is busy this long after a drain
    resume_us: float


@dataclass
class ShardResult:
    """One GPU's serving outcome over its request shard."""

    #: per-request (tenant index, latency µs), in service-completion order
    latencies: list[tuple[int, float]]
    #: preemption + resume time charged to the mechanism (µs)
    overhead_us: float
    #: preemption episodes opened (batch evictions)
    episodes: int
    #: arrival of the first request → completion of the last (µs)
    makespan_us: float
    #: GPU time spent serving requests (µs, excludes overhead)
    service_us: float

    def as_dict(self) -> dict:
        return {
            "latencies": [[t, lat] for t, lat in self.latencies],
            "overhead_us": self.overhead_us,
            "episodes": self.episodes,
            "makespan_us": self.makespan_us,
            "service_us": self.service_us,
        }


def _ns(time_us: float) -> int:
    """Serving clock for trace events: integer nanoseconds."""
    return int(round(time_us * 1000.0))


def simulate_shard(
    requests: list[Request] | tuple,
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    gpu: int = 0,
    tracer: Tracer | None = None,
) -> ShardResult:
    """Serve one GPU's request shard under one mechanism's costs.

    *requests* must be in arrival order (tuples ``(arrival_us, tenant)``
    are accepted for cache/pool transport).  Ties in the queue resolve by
    (priority desc, arrival asc, sequence asc) — a total order, so the
    result is reproducible to the bit.
    """
    arrivals: list[Request] = [
        r if isinstance(r, Request) else Request(r[0], r[1]) for r in requests
    ]
    n = len(arrivals)
    if n == 0:
        return ShardResult([], 0.0, 0, 0.0, 0.0)

    queue: list[tuple[int, float, int, int]] = []  # (-prio, arrival, seq, idx)
    latencies: list[tuple[int, float]] = []
    overhead_us = 0.0
    service_total = 0.0
    episodes = 0
    free_at = 0.0  # when the GPU finishes its current request/resume work
    batch_running = True
    i = 0

    def admit_until(deadline: float) -> None:
        nonlocal i
        while i < n and arrivals[i].arrival_us <= deadline:
            request = arrivals[i]
            if tracer is not None:
                tracer.emit(
                    _ns(request.arrival_us), EventKind.REQ_ARRIVE, request.tenant,
                    tenant=tenants[request.tenant].name, gpu=gpu,
                )
            heapq.heappush(
                queue, (-tenants[request.tenant].priority,
                        request.arrival_us, i, request.tenant)
            )
            i += 1

    admit_until(free_at)
    while i < n or queue:
        if not queue:
            if not batch_running:
                # the queue drained: the batch job takes the GPU back
                overhead_us += costs.resume_us
                if tracer is not None:
                    tracer.emit(
                        _ns(free_at), EventKind.BATCH_RESUME, -1,
                        gpu=gpu, cost_us=costs.resume_us,
                    )
                free_at += costs.resume_us
                batch_running = True
                # requests that landed during the resume wait it out
                admit_until(free_at)
                continue
            # batch runs until the next arrival
            next_arrival = arrivals[i].arrival_us
            free_at = free_at if free_at > next_arrival else next_arrival
            admit_until(free_at)
            continue
        _, arrival_us, _, tenant_idx = heapq.heappop(queue)
        tenant = tenants[tenant_idx]
        start = free_at if free_at > arrival_us else arrival_us
        if batch_running:
            # open an episode: evict the batch before the request runs
            episodes += 1
            overhead_us += costs.preempt_us
            if tracer is not None:
                tracer.emit(
                    _ns(start), EventKind.BATCH_PREEMPT, -1,
                    gpu=gpu, cost_us=costs.preempt_us,
                )
            start += costs.preempt_us
            batch_running = False
        if tracer is not None:
            tracer.emit(
                _ns(start), EventKind.REQ_START, tenant_idx,
                tenant=tenant.name, gpu=gpu, wait_us=start - arrival_us,
            )
        finish = start + tenant.service_us
        service_total += tenant.service_us
        latencies.append((tenant_idx, finish - arrival_us))
        if tracer is not None:
            tracer.emit(
                _ns(finish), EventKind.REQ_DONE, tenant_idx,
                tenant=tenant.name, gpu=gpu, latency_us=finish - arrival_us,
            )
        free_at = finish
        admit_until(free_at)

    makespan = free_at - arrivals[0].arrival_us
    if not batch_running:
        # close the trailing episode so overhead accounting is symmetric
        overhead_us += costs.resume_us
        if tracer is not None:
            tracer.emit(
                _ns(free_at), EventKind.BATCH_RESUME, -1,
                gpu=gpu, cost_us=costs.resume_us,
            )
    return ShardResult(
        latencies=latencies,
        overhead_us=overhead_us,
        episodes=episodes,
        makespan_us=makespan,
        service_us=service_total,
    )
