"""Per-GPU preemptive scheduler: admit requests, evict the batch job.

Each simulated GPU runs an always-on batch kernel.  When a request arrives
the scheduler opens a *preemption episode*: the batch job is evicted at the
active mechanism's calibrated preemption cost, queued requests are served
back-to-back in priority order, and when the queue drains the batch job
takes the GPU back at the mechanism's resume cost.  A request that lands
mid-resume waits the resume out and pays a fresh preemption — exactly the
accounting the toy multitenant example used to get wrong (it reported the
preemption latency alone and dropped the queueing delay entirely).

The simulation is a single-server discrete-event loop in event order —
requests per microsecond, not cycles — so 100k-request traces per
mechanism are cheap; the *costs* it charges come from real cycle-level
:func:`~repro.sim.gpu.run_preemption_experiment` runs (see
:func:`repro.serve.fleet.mechanism_costs`).

Everything is deterministic: same requests + costs → identical records,
regardless of worker count or host.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..obs.events import EventKind, Tracer
from .arrivals import Request
from .tenants import Tenant


@dataclass(frozen=True)
class MechanismCosts:
    """Calibrated per-episode costs of one preemption mechanism (µs)."""

    mechanism: str
    #: eviction cost: the first request of an episode waits this out
    preempt_us: float
    #: batch-resume cost: the GPU is busy this long after a drain
    resume_us: float


@dataclass(frozen=True)
class AdmissionPolicy:
    """Token-bucket / queue-depth admission control for one GPU's shard.

    A request needs one token at arrival (the bucket refills at
    *rate_per_us*, capped at *burst*) and a queue slot (depth below
    *max_queue_depth*; tenants at or above *bypass_priority* skip the
    depth cap — the per-tenant-priority part of the policy).  A refused
    request retries after a deterministic exponential backoff —
    *retry_backoff_us* doubled per attempt by *retry_factor*, plus a
    jitter fraction derived from the shard seed and the request id (never
    wall clock) — and is **shed** once *retry_max* retries are spent.
    Everything is a pure function of the policy + shard content, so
    refusals, retries and sheds are bit-identical across ``--jobs``,
    execution cores and hosts.
    """

    #: token refill rate (tokens per µs of serving-clock time)
    rate_per_us: float = 0.05
    #: bucket capacity (burst tolerance, tokens)
    burst: float = 16.0
    #: queued requests beyond which new arrivals are refused
    max_queue_depth: int = 64
    #: tenants at/above this priority skip the queue-depth cap
    bypass_priority: int = 3
    #: base backoff before the first retry (µs)
    retry_backoff_us: float = 200.0
    #: backoff multiplier per additional attempt
    retry_factor: float = 2.0
    #: retries before a refused request is shed for good
    retry_max: int = 3

    def __post_init__(self) -> None:
        if self.rate_per_us <= 0:
            raise ValueError("rate_per_us must be > 0")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.retry_backoff_us <= 0:
            raise ValueError("retry_backoff_us must be > 0")
        if self.retry_factor < 1.0:
            raise ValueError("retry_factor must be >= 1")
        if self.retry_max < 0:
            raise ValueError("retry_max must be >= 0")

    def as_tuple(self) -> tuple:
        """Flat scalar form (work units carry this so the engine module
        does not import the serve layer at module scope)."""
        return (
            self.rate_per_us,
            self.burst,
            self.max_queue_depth,
            self.bypass_priority,
            self.retry_backoff_us,
            self.retry_factor,
            self.retry_max,
        )

    @staticmethod
    def from_tuple(values: tuple) -> "AdmissionPolicy":
        rate, burst, depth, bypass, backoff, factor, retry_max = values
        return AdmissionPolicy(
            rate_per_us=rate,
            burst=burst,
            max_queue_depth=int(depth),
            bypass_priority=int(bypass),
            retry_backoff_us=backoff,
            retry_factor=factor,
            retry_max=int(retry_max),
        )


@dataclass
class ShardResult:
    """One GPU's serving outcome over its request shard."""

    #: per-request (tenant index, latency µs), in service-completion order
    latencies: list[tuple[int, float]]
    #: preemption + resume time charged to the mechanism (µs)
    overhead_us: float
    #: preemption episodes opened (batch evictions)
    episodes: int
    #: arrival of the first request → completion of the last (µs)
    makespan_us: float
    #: GPU time spent serving requests (µs, excludes overhead)
    service_us: float
    #: batch jobs migrated away from / restored onto this GPU
    migrations_out: int = 0
    migrations_in: int = 0
    #: GPU time the migrations charged here (snapshot + restore pauses, µs)
    migration_us: float = 0.0

    def as_dict(self) -> dict:
        return {
            "latencies": [[t, lat] for t, lat in self.latencies],
            "overhead_us": self.overhead_us,
            "episodes": self.episodes,
            "makespan_us": self.makespan_us,
            "service_us": self.service_us,
            "migrations_out": self.migrations_out,
            "migrations_in": self.migrations_in,
            "migration_us": self.migration_us,
        }


def _ns(time_us: float) -> int:
    """Serving clock for trace events: integer nanoseconds."""
    return int(round(time_us * 1000.0))


def simulate_shard(
    requests: list[Request] | tuple,
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    gpu: int = 0,
    tracer: Tracer | None = None,
    migrations: tuple = (),
    migration=None,
) -> ShardResult:
    """Serve one GPU's request shard under one mechanism's costs.

    *requests* must be in arrival order (tuples ``(arrival_us, tenant)``
    are accepted for cache/pool transport).  Ties in the queue resolve by
    (priority desc, arrival asc, sequence asc) — a total order, so the
    result is reproducible to the bit.

    *migrations* is this GPU's ordered ``(time_us, "out"|"in")`` stream
    (see :func:`repro.serve.migration.shard_events`) with *migration*
    carrying its :class:`~repro.serve.migration.MigrationCosts`.  An
    ``"out"`` charges the stop-the-world snapshot pause and removes one
    hosted batch job — once none remain, episodes stop paying
    preempt/resume; an ``"in"`` restores a batch job after the link
    transfer, charging the restore pause (a GPU may host several after
    consolidation).  Events are applied when the shard clock first reaches them;
    events past the shard's last work are dropped (the planner's epochs
    can outrun a short shard).
    """
    arrivals: list[Request] = [
        r if isinstance(r, Request) else Request(r[0], r[1]) for r in requests
    ]
    n = len(arrivals)
    if n == 0:
        return ShardResult([], 0.0, 0, 0.0, 0.0)
    if migrations and migration is None:
        raise ValueError("migrations given without MigrationCosts")

    queue: list[tuple[int, float, int, int]] = []  # (-prio, arrival, seq, idx)
    latencies: list[tuple[int, float]] = []
    overhead_us = 0.0
    service_total = 0.0
    episodes = 0
    free_at = 0.0  # when the GPU finishes its current request/resume work
    batch_running = True
    hosted = 1  # batch jobs hosted here (migration moves them; may exceed 1)
    migrations_out = 0
    migrations_in = 0
    migration_total = 0.0
    mig_i = 0
    i = 0

    def admit_until(deadline: float) -> None:
        nonlocal i
        while i < n and arrivals[i].arrival_us <= deadline:
            request = arrivals[i]
            if tracer is not None:
                tracer.emit(
                    _ns(request.arrival_us), EventKind.REQ_ARRIVE, request.tenant,
                    tenant=tenants[request.tenant].name, gpu=gpu,
                )
            heapq.heappush(
                queue, (-tenants[request.tenant].priority,
                        request.arrival_us, i, request.tenant)
            )
            i += 1

    def apply_migrations(now: float) -> None:
        """Apply migration events whose time the clock has reached."""
        nonlocal mig_i, free_at, batch_running, hosted
        nonlocal migrations_out, migrations_in, migration_total
        while mig_i < len(migrations) and migrations[mig_i][0] <= now:
            time_us, kind = migrations[mig_i]
            mig_i += 1
            if kind == "out":
                if hosted == 0:
                    continue  # already migrated away; nothing to snapshot
                start = free_at if free_at > time_us else time_us
                if tracer is not None:
                    tracer.emit(
                        _ns(start), EventKind.MIGRATE_OUT, -1,
                        gpu=gpu, cost_us=migration.snapshot_us,
                    )
                free_at = start + migration.snapshot_us
                migration_total += migration.snapshot_us
                migrations_out += 1
                hosted -= 1
                if hosted == 0:
                    batch_running = False
            else:
                arrive = time_us + migration.transfer_us
                start = free_at if free_at > arrive else arrive
                if tracer is not None:
                    tracer.emit(
                        _ns(start), EventKind.MIGRATE_IN, -1,
                        gpu=gpu, cost_us=migration.restore_us,
                    )
                free_at = start + migration.restore_us
                migration_total += migration.restore_us
                migrations_in += 1
                if hosted == 0:
                    batch_running = True
                hosted += 1
            admit_until(free_at)

    admit_until(free_at)
    while i < n or queue:
        apply_migrations(free_at)
        if not queue:
            if not batch_running and hosted > 0:
                # the queue drained: the batch job takes the GPU back
                overhead_us += costs.resume_us
                if tracer is not None:
                    tracer.emit(
                        _ns(free_at), EventKind.BATCH_RESUME, -1,
                        gpu=gpu, cost_us=costs.resume_us,
                    )
                free_at += costs.resume_us
                batch_running = True
                # requests that landed during the resume wait it out
                admit_until(free_at)
                continue
            # idle of requests until the next arrival — but stop at a
            # pending migration event so it applies at its own time
            next_arrival = arrivals[i].arrival_us
            if (
                mig_i < len(migrations)
                and migrations[mig_i][0] < next_arrival
            ):
                pending = migrations[mig_i][0]
                free_at = free_at if free_at > pending else pending
                apply_migrations(free_at)
                continue
            free_at = free_at if free_at > next_arrival else next_arrival
            admit_until(free_at)
            continue
        _, arrival_us, _, tenant_idx = heapq.heappop(queue)
        tenant = tenants[tenant_idx]
        start = free_at if free_at > arrival_us else arrival_us
        if batch_running:
            # open an episode: evict the batch before the request runs
            episodes += 1
            overhead_us += costs.preempt_us
            if tracer is not None:
                tracer.emit(
                    _ns(start), EventKind.BATCH_PREEMPT, -1,
                    gpu=gpu, cost_us=costs.preempt_us,
                )
            start += costs.preempt_us
            batch_running = False
        if tracer is not None:
            tracer.emit(
                _ns(start), EventKind.REQ_START, tenant_idx,
                tenant=tenant.name, gpu=gpu, wait_us=start - arrival_us,
            )
        finish = start + tenant.service_us
        service_total += tenant.service_us
        latencies.append((tenant_idx, finish - arrival_us))
        if tracer is not None:
            tracer.emit(
                _ns(finish), EventKind.REQ_DONE, tenant_idx,
                tenant=tenant.name, gpu=gpu, latency_us=finish - arrival_us,
            )
        free_at = finish
        admit_until(free_at)

    makespan = free_at - arrivals[0].arrival_us
    if not batch_running and hosted > 0:
        # close the trailing episode so overhead accounting is symmetric
        overhead_us += costs.resume_us
        if tracer is not None:
            tracer.emit(
                _ns(free_at), EventKind.BATCH_RESUME, -1,
                gpu=gpu, cost_us=costs.resume_us,
            )
    return ShardResult(
        latencies=latencies,
        overhead_us=overhead_us,
        episodes=episodes,
        makespan_us=makespan,
        service_us=service_total,
        migrations_out=migrations_out,
        migrations_in=migrations_in,
        migration_us=migration_total,
    )
