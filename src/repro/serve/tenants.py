"""Tenants of the simulated GPU cloud: priorities, SLOs, traffic shares.

The serving layer models the paper's cloud scenario (§I): latency-sensitive
inference tenants share a fleet of GPUs with an always-on batch job.  Each
tenant carries a scheduling priority (higher preempts lower in the request
queue), a per-request GPU service time, an end-to-end latency SLO, and a
weight — its share of the arrival traffic.

Everything is a frozen dataclass so tenant mixes feed straight into the
content-addressed artifact cache (see :func:`repro.analysis.cache.canonical`)
and traverse the process pool unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tenant:
    """One traffic class sharing the fleet."""

    name: str
    #: request-queue priority; higher is served first
    priority: int
    #: per-request GPU service time (µs of exclusive SM time)
    service_us: float
    #: end-to-end latency SLO (arrival → completion, µs)
    slo_us: float
    #: share of the arrival traffic (normalized over the tenant mix)
    weight: float

    def __post_init__(self) -> None:
        if self.service_us <= 0:
            raise ValueError(f"tenant {self.name}: service_us must be > 0")
        if self.slo_us <= 0:
            raise ValueError(f"tenant {self.name}: slo_us must be > 0")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: weight must be > 0")


#: the default three-class mix: interactive inference, standard serving,
#: and a latency-tolerant analytics class — all of them preempt the batch
#: job, and they preempt each other only in the queue (by priority)
DEFAULT_TENANTS: tuple[Tenant, ...] = (
    Tenant("interactive", priority=3, service_us=40.0, slo_us=250.0, weight=0.5),
    Tenant("standard", priority=2, service_us=80.0, slo_us=600.0, weight=0.3),
    Tenant("analytics", priority=1, service_us=160.0, slo_us=1500.0, weight=0.2),
)


def mean_service_us(tenants: tuple[Tenant, ...]) -> float:
    """Traffic-weighted mean service time of the mix (capacity planning)."""
    total_weight = sum(t.weight for t in tenants)
    return sum(t.weight * t.service_us for t in tenants) / total_weight
