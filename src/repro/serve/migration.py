"""Live migration of batch jobs across the serving fleet.

Wires :mod:`repro.snap` into the serving layer: when the arrival trace
leaves the fleet imbalanced, the batch job on the busiest GPU is
snapshotted (a stop-the-world pause on the source), its image moves over
the inter-GPU link, and it restores on the least-busy GPU.  While a GPU
hosts no batch job its requests run free of preempt/resume overhead —
that is the serving win live migration buys; the price is the snapshot
and restore pauses plus the transfer delay.

The cost model is grounded in the same snapshot machinery the rest of
the repo uses: *snapshot_bytes* comes from a cached
:func:`repro.snap.units.snap_profile_for` round-trip of the batch kernel
under the active mechanism — mechanisms with smaller contexts (CTXBack)
migrate cheaper, which is exactly the paper's argument carried into the
serving regime.  Planning is a pure function of the arrival shards, so
serve reports with migration enabled stay bit-identical across
``--jobs`` values, execution cores, and hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import GPUConfig
from .tenants import Tenant

__all__ = [
    "MIGRATION_VERSION",
    "MigrationCosts",
    "MigrationEvent",
    "migration_costs_for",
    "plan_migrations",
    "shard_events",
]

#: bump when the scheduler's migration semantics change — joins the
#: serve-shard cache key so stale migration-enabled artifacts re-run
MIGRATION_VERSION = 2

#: default inter-GPU link bandwidth for snapshot transfer (bytes/µs);
#: 64 B/µs keeps the transfer visible at simulated-kernel scale
DEFAULT_LINK_BYTES_PER_US = 64.0


@dataclass(frozen=True)
class MigrationCosts:
    """Per-migration costs of one mechanism (µs), derived from its
    snapshot size through the device's context-traffic model."""

    #: stop-the-world pause on the source GPU (context store path)
    snapshot_us: float
    #: snapshot bytes over the inter-GPU link (delay, not GPU time)
    transfer_us: float
    #: restore pause on the destination GPU (context load path)
    restore_us: float


def migration_costs_for(
    snapshot_bytes: int,
    config: GPUConfig,
    *,
    link_bytes_per_us: float = DEFAULT_LINK_BYTES_PER_US,
) -> MigrationCosts:
    """Derive migration costs from a snapshot's byte size.

    The snapshot/restore pauses go through the same context-traffic
    rates the preemption routines pay (:class:`GPUConfig`'s
    ``ctx_bytes_per_cycle`` store path, sped up by ``ctx_load_speedup``
    on the load path), so migration cost scales with context size the
    same way preemption cost does.
    """
    if link_bytes_per_us <= 0:
        raise ValueError(
            f"link_bytes_per_us must be > 0, got {link_bytes_per_us!r}"
        )
    ctx_rate = (
        config.ctx_bytes_per_cycle
        if config.ctx_bytes_per_cycle is not None
        else config.mem_bytes_per_cycle
    )
    snapshot_cycles = snapshot_bytes / ctx_rate + config.ctx_request_overhead
    restore_cycles = (
        snapshot_bytes / (ctx_rate * config.ctx_load_speedup)
        + config.ctx_request_overhead
    )
    return MigrationCosts(
        snapshot_us=round(config.cycles_to_us(snapshot_cycles), 3),
        transfer_us=round(snapshot_bytes / link_bytes_per_us, 3),
        restore_us=round(config.cycles_to_us(restore_cycles), 3),
    )


@dataclass(frozen=True)
class MigrationEvent:
    """One planned migration: the batch job leaves *src* at *time_us* and
    (after the transfer) restores onto *dst*."""

    time_us: float
    src: int
    dst: int


def plan_migrations(
    shards: list,
    tenants: tuple[Tenant, ...],
    *,
    epoch_us: float,
    factor: float = 2.0,
) -> list[MigrationEvent]:
    """Plan batch-job migrations from the fleet's arrival shards.

    Pure and deterministic: the trace is cut into *epoch_us* windows; at
    each epoch boundary the per-GPU request service demand of the closed
    window is compared, and when the busiest batch-hosting GPU's demand
    reaches *factor* × the least-busy GPU's, that batch job migrates to
    the least-busy GPU.  Ties break toward the lowest GPU index, so the
    plan is a total function of (shards, tenants, epoch_us, factor).
    """
    if epoch_us <= 0:
        raise ValueError(f"epoch_us must be > 0, got {epoch_us!r}")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor!r}")
    gpus = len(shards)
    if gpus < 2:
        return []
    last_arrival = 0.0
    for shard in shards:
        for arrival_us, _tenant in shard:
            if arrival_us > last_arrival:
                last_arrival = arrival_us
    epochs = int(last_arrival // epoch_us) + 1
    # batch jobs currently hosted per GPU (each GPU starts with one)
    hosted = [1] * gpus
    events: list[MigrationEvent] = []
    for k in range(1, epochs + 1):
        lo = (k - 1) * epoch_us
        hi = k * epoch_us
        demand = [0.0] * gpus
        for gpu, shard in enumerate(shards):
            for arrival_us, tenant in shard:
                if lo <= arrival_us < hi:
                    demand[gpu] += tenants[tenant].service_us
        src = -1
        for gpu in range(gpus):
            if hosted[gpu] and (src < 0 or demand[gpu] > demand[src]):
                src = gpu
        dst = min(range(gpus), key=lambda gpu: (demand[gpu], gpu))
        if src < 0 or src == dst:
            continue
        if demand[src] > 0 and demand[src] >= factor * demand[dst]:
            events.append(MigrationEvent(time_us=hi, src=src, dst=dst))
            hosted[src] -= 1
            hosted[dst] += 1
    return events


def shard_events(
    events: list[MigrationEvent], gpus: int
) -> list[tuple[tuple[float, str], ...]]:
    """Split a fleet migration plan into per-GPU event streams.

    Each GPU sees its own ordered ``(time_us, "out"|"in")`` stream —
    the shape :func:`repro.serve.scheduler.simulate_shard` consumes.
    The destination's ``"in"`` is stamped with the *departure* time; the
    scheduler adds the transfer delay when it applies the event.
    """
    per_gpu: list[list[tuple[float, str]]] = [[] for _ in range(gpus)]
    for event in events:
        per_gpu[event.src].append((event.time_us, "out"))
        per_gpu[event.dst].append((event.time_us, "in"))
    return [tuple(sorted(stream)) for stream in per_gpu]
