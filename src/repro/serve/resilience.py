"""Fleet-level fault tolerance: failure injection, failover, admission.

The serving layer of PR 7 assumed a failure-free fleet; this module makes
the fleet survivable.  Four pieces, all deterministic:

1. **Failure injection** — :func:`build_fleet_schedule` turns a seeded
   :class:`~repro.faults.plan.FaultPlan` of fleet-scoped kinds
   (``gpu_crash``, ``gpu_degrade``, ``shard_stall``, ``queue_drop``) into
   a concrete event schedule: one ``random.Random(seed)`` stream draws
   firing times and target GPUs, so the same plan always yields the
   byte-identical schedule — the same discipline the PR 5 injector uses
   at cycle level.
2. **Snapshot failover** — :func:`plan_resilience` is a pure fleet-level
   planner: when a GPU crashes, its batch job restores from its last
   cadence checkpoint onto the least-loaded survivor (costs derived from
   the mechanism's real :mod:`repro.snap` snapshot size through
   :func:`repro.serve.migration.migration_costs_for`), its un-served
   requests re-queue onto the survivors, and the lost progress + re-queue
   delay is charged into the latency report.  Smaller contexts (CTXBack)
   mean cheaper checkpoints, cheaper transfers, and therefore faster
   failover — the paper's argument carried into the failure regime.
3. **Admission control and shedding** —
   :func:`simulate_resilient_shard` extends the PR 7 discrete-event
   scheduler with the token-bucket/queue-depth
   :class:`~repro.serve.scheduler.AdmissionPolicy`, deterministic
   retry-with-backoff for refused/dropped requests, degrade windows the
   health watchdog reacts to with observed-load migration, stall
   windows, and cadence checkpointing of the hosted batch job.
4. **Oracle** — :func:`chaos_oracle` audits every cell: request
   conservation (every request completes or is an accounted shed,
   exactly once), every injected crash matched by a failover or an
   accounted loss, the batch-job ledger free of double-execution, and
   the snapshot round-trip digest-clean (terminal kernel memory of a
   restored job bit-identical to a clean run, via the cached
   :func:`repro.snap.units.snap_profile_for` verdict).

Everything downstream of the plan seed is a pure function of its inputs,
so chaos reports are bit-identical across ``--jobs``, execution cores
and hosts; ``--chaos none`` never enters this module at all (the
zero-overhead guard).
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass, field

from ..faults.errors import SimulationHangError
from ..faults.plan import FLEET_KINDS, FaultKind, FaultPlan, fleet_scenario
from ..obs.events import EventKind, Tracer
from .scheduler import AdmissionPolicy, MechanismCosts, _ns
from .tenants import Tenant

__all__ = [
    "RESILIENCE_VERSION",
    "DEFAULT_ADMISSION",
    "ResilienceKnobs",
    "FleetEvent",
    "FailoverRecord",
    "ResiliencePlan",
    "ResilientShardResult",
    "build_fleet_schedule",
    "plan_resilience",
    "simulate_resilient_shard",
    "resilient_shard_profile",
    "run_serve_chaos",
    "chaos_oracle",
]

#: bump when the resilient scheduler's semantics change — joins the
#: serve-chaos cache key so stale shard artifacts re-run
RESILIENCE_VERSION = 1

#: the default admission policy of the chaos pipeline (loose enough that
#: a healthy fleet sheds nothing; overload and failure re-queues hit it)
DEFAULT_ADMISSION = AdmissionPolicy()


@dataclass(frozen=True)
class ResilienceKnobs:
    """Fleet-level recovery tuning (pure data; part of cache identity)."""

    #: crash detection delay: the front-end learns of a dead GPU this
    #: long after the crash (health-probe interval)
    detect_us: float = 500.0
    #: health-watchdog sampling period for degrade detection
    watchdog_us: float = 1000.0
    #: cadence of batch-job checkpoints (µs); 0 disables cadence
    #: checkpointing — a crash then loses all progress since launch
    ckpt_cadence_us: float = 5000.0

    def __post_init__(self) -> None:
        if self.detect_us < 0:
            raise ValueError("detect_us must be >= 0")
        if self.watchdog_us <= 0:
            raise ValueError("watchdog_us must be > 0")
        if self.ckpt_cadence_us < 0:
            raise ValueError("ckpt_cadence_us must be >= 0")


# -- stage 1: the seeded fleet fault schedule -------------------------------------


@dataclass(frozen=True)
class FleetEvent:
    """One concrete fleet fault (a spec with its seeded draws resolved)."""

    kind: str  # FaultKind value
    time_us: float
    gpu: int
    #: GPU_DEGRADE / SHARD_STALL window length (0 on a degrade: until the
    #: watchdog reacts — the window then runs to the horizon)
    duration_us: float = 0.0
    #: GPU_DEGRADE slowdown multiplier
    factor: float = 1.0
    #: QUEUE_DROP drop count
    count: int = 0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time_us": self.time_us,
            "gpu": self.gpu,
            "duration_us": self.duration_us,
            "factor": self.factor,
            "count": self.count,
        }


def build_fleet_schedule(
    plan: FaultPlan, gpus: int, horizon_us: float
) -> tuple[FleetEvent, ...]:
    """Resolve a fleet fault plan into a concrete event schedule.

    One ``random.Random(plan.seed)`` stream, consumed in spec order,
    draws each fault's firing time (uniform over ``[at_us, horizon_us]``)
    and target GPU — the same seeded-RNG discipline the cycle-level
    injector uses, so two runs of the same plan see byte-identical fleet
    faults.  A crash never targets an already-crashed GPU (the draw
    retargets cyclically) and is skipped outright when it would kill the
    last survivor — the fleet model injects failures, not extinction.
    """
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    foreign = [s.kind.value for s in plan.specs if s.kind not in FLEET_KINDS]
    if foreign:
        raise ValueError(
            f"non-fleet fault kinds {foreign} in fleet plan {plan.name!r}; "
            f"use python -m repro chaos for cycle-level scenarios"
        )
    rng = random.Random(plan.seed)
    crashed: set[int] = set()
    events: list[FleetEvent] = []
    for spec in plan.specs:
        lo = min(spec.at_us, horizon_us)
        time_us = round(lo + rng.random() * max(horizon_us - lo, 0.0), 3)
        gpu = spec.gpu % gpus if spec.gpu is not None else rng.randrange(gpus)
        if spec.kind is FaultKind.GPU_CRASH:
            alive = [g for g in range(gpus) if g not in crashed]
            if len(alive) <= 1:
                continue  # never kill the last survivor
            if gpu in crashed:
                gpu = alive[gpu % len(alive)]
            crashed.add(gpu)
            events.append(FleetEvent("gpu_crash", time_us, gpu))
        elif spec.kind is FaultKind.GPU_DEGRADE:
            events.append(
                FleetEvent(
                    "gpu_degrade", time_us, gpu,
                    duration_us=spec.duration_us, factor=spec.clock_factor,
                )
            )
        elif spec.kind is FaultKind.SHARD_STALL:
            events.append(
                FleetEvent(
                    "shard_stall", time_us, gpu, duration_us=spec.duration_us
                )
            )
        else:  # QUEUE_DROP
            events.append(
                FleetEvent("queue_drop", time_us, gpu, count=spec.drop_count)
            )
    return tuple(sorted(events, key=lambda e: (e.time_us, e.kind, e.gpu)))


# -- the resilient per-GPU scheduler ----------------------------------------------


@dataclass
class ResilientShardResult:
    """One GPU's serving outcome under the fleet fault model."""

    #: per-request (tenant index, latency µs, request id) in completion
    #: order; latency is measured from the request's ORIGINAL arrival, so
    #: failover re-queue delay and lost progress land in the report
    latencies: list[tuple[int, float, int]]
    overhead_us: float
    episodes: int
    makespan_us: float
    service_us: float
    #: requests refused/dropped past their retry budget: (tenant, rid,
    #: attempts), in shed order
    shed: list[tuple[int, int, int]] = field(default_factory=list)
    #: retry re-entries scheduled (all causes)
    retries: int = 0
    #: crash only — work this GPU held at death: (rid, tenant,
    #: original_arrival_us, attempts), in rid order
    orphans: list[tuple[int, int, float, int]] = field(default_factory=list)
    #: crash only — arrivals landing after death: (arrival_us, tenant,
    #: rid, original_arrival_us, attempts)
    redirects: list[tuple[float, int, int, float, int]] = field(default_factory=list)
    #: cadence checkpoints taken / their charged pause / the free ones
    #: (job sat evicted — context already saved)
    checkpoints: int = 0
    checkpoint_us: float = 0.0
    free_checkpoints: int = 0
    #: serving-clock time of the last checkpoint (lost-progress basis)
    last_ckpt_us: float = 0.0
    #: batch jobs hosted when the shard ended
    hosted_end: int = 1
    #: batch jobs restored here (failover or observed-load migration in)
    restores_in: int = 0
    #: batch jobs snapshotted away (observed-load migration out)
    migrations_out: int = 0
    #: restore/out pauses charged here (µs)
    migration_us: float = 0.0
    #: stall windows applied / their total length
    stalls: int = 0
    stall_us: float = 0.0
    #: queued requests dropped by QUEUE_DROP events
    dropped: int = 0
    crashed: bool = False

    def as_dict(self) -> dict:
        return {
            "latencies": [[t, lat, rid] for t, lat, rid in self.latencies],
            "overhead_us": self.overhead_us,
            "episodes": self.episodes,
            "makespan_us": self.makespan_us,
            "service_us": self.service_us,
            "shed": [[t, rid, a] for t, rid, a in self.shed],
            "retries": self.retries,
            "orphans": [[r, t, o, a] for r, t, o, a in self.orphans],
            "redirects": [list(r) for r in self.redirects],
            "checkpoints": self.checkpoints,
            "checkpoint_us": self.checkpoint_us,
            "free_checkpoints": self.free_checkpoints,
            "last_ckpt_us": self.last_ckpt_us,
            "hosted_end": self.hosted_end,
            "restores_in": self.restores_in,
            "migrations_out": self.migrations_out,
            "migration_us": self.migration_us,
            "stalls": self.stalls,
            "stall_us": self.stall_us,
            "dropped": self.dropped,
            "crashed": self.crashed,
        }


def _retry_jitter(seed: int, rid: int, attempt: int) -> float:
    """Deterministic jitter fraction in [0, 0.5): derived from the shard
    seed + request id + attempt — never from wall clock — so retried
    runs stay bit-identical."""
    blob = f"{seed}:{rid}:{attempt}".encode("ascii")
    word = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return (word / 2**64) * 0.5


def _normalize(requests) -> list[tuple[float, int, int, float, int]]:
    """Accept plain ``(arrival, tenant)`` pairs (direct tests, plain
    serve shards) or full 5-tuples from the planner; returns
    ``(arrival_us, tenant, rid, original_arrival_us, attempts)``."""
    entries = []
    for index, request in enumerate(requests):
        if len(request) == 2:
            arrival, tenant = request
            entries.append((float(arrival), int(tenant), index, float(arrival), 0))
        else:
            arrival, tenant, rid, original, attempts = request
            entries.append(
                (float(arrival), int(tenant), int(rid), float(original),
                 int(attempts))
            )
    return entries


def simulate_resilient_shard(
    requests,
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    gpu: int = 0,
    admission: AdmissionPolicy | None = None,
    crash_at: float | None = None,
    ops: tuple = (),
    ckpt_cadence_us: float = 0.0,
    ckpt_snapshot_us: float = 0.0,
    seed: int = 0,
    hosted: int = 1,
    tracer: Tracer | None = None,
    max_steps: int | None = None,
) -> ResilientShardResult:
    """Serve one GPU's shard under the fleet fault model.

    Extends :func:`~repro.serve.scheduler.simulate_shard` with admission
    control, deterministic retry/shed, a crash cutoff, degrade and stall
    windows, queue drops, batch restores/evictions, and cadence
    checkpointing.  *ops* is this GPU's ordered ``(time_us, kind, value)``
    stream from the planner — kinds: ``stall`` (GPU frozen *value* µs),
    ``drop`` (drop *value* queued requests, lowest priority first, into
    the retry path), ``restore`` (a batch job restores here, *value* =
    restore pause; the planner pre-adds the transfer delay to the time),
    ``out`` (a batch job is snapshotted away, *value* = snapshot pause),
    ``degrade_on`` / ``degrade_off`` (*value* = slowdown factor).

    With *crash_at*, the GPU stops dead at that time: a request in
    flight is killed, queued and not-yet-arrived work is returned as
    ``orphans`` / ``redirects`` for the planner to re-queue, and ops at
    or past the crash never apply.  Latency is always measured from the
    request's *original* arrival, so re-queued work carries its full
    recovery delay into the report.

    The loop carries a forward-progress watchdog: exceeding the step cap
    raises :class:`~repro.faults.errors.SimulationHangError` whose
    diagnostic includes the fleet context (GPU id, tenant, request id,
    queue depth) — not just the per-warp dump the cycle-level watchdog
    produces.
    """
    entries = _normalize(requests)
    n = len(entries)
    result = ResilientShardResult(
        latencies=[], overhead_us=0.0, episodes=0, makespan_us=0.0,
        service_us=0.0, hosted_end=hosted,
    )
    # arrival stream: original entries plus retry re-entries
    arrival_heap: list[tuple[float, int, tuple]] = []
    seq = 0
    for entry in entries:
        heapq.heappush(arrival_heap, (entry[0], seq, entry))
        seq += 1

    queue: list[tuple[int, float, int, int, int, float, int]] = []
    # (-prio, arrival, seq, tenant, rid, original, attempts)
    first_arrival = entries[0][0] if entries else 0.0
    free_at = 0.0
    batch_running = hosted > 0
    tokens = admission.burst if admission is not None else 0.0
    token_time = 0.0
    factors: list[float] = []  # active degrade factors (max applies)
    op_i = 0
    next_ckpt = ckpt_cadence_us if (ckpt_cadence_us > 0 and hosted > 0) else None
    last_completion = 0.0

    retry_max = admission.retry_max if admission is not None else 0
    cap = (
        max_steps
        if max_steps is not None
        else 64 * (n * (retry_max + 2) + len(ops) + 16)
    )
    steps = 0

    def current_factor() -> float:
        return max(factors) if factors else 1.0

    def charge(start: float, cost: float) -> float:
        """GPU busy [start, start+cost]; returns the new free_at."""
        return start + cost

    def refill(now: float) -> None:
        nonlocal tokens, token_time
        if admission is None:
            return
        tokens = min(
            admission.burst, tokens + (now - token_time) * admission.rate_per_us
        )
        token_time = now

    def shed_or_retry(now: float, entry: tuple, reason: str) -> None:
        """Refused/dropped request: deterministic backoff retry or shed."""
        nonlocal seq
        _arrival, tenant_idx, rid, original, attempts = entry
        attempts += 1
        if admission is None or attempts > admission.retry_max:
            result.shed.append((tenant_idx, rid, attempts))
            if tracer is not None:
                tracer.emit(
                    _ns(now), EventKind.REQ_SHED, tenant_idx,
                    tenant=tenants[tenant_idx].name, gpu=gpu,
                    attempts=attempts, reason=reason,
                )
            return
        delay = (
            admission.retry_backoff_us
            * admission.retry_factor ** (attempts - 1)
            * (1.0 + _retry_jitter(seed, rid, attempts))
        )
        retry_at = round(now + delay, 3)
        result.retries += 1
        if tracer is not None:
            tracer.emit(
                _ns(now), EventKind.REQ_RETRY, tenant_idx,
                tenant=tenants[tenant_idx].name, gpu=gpu,
                attempt=attempts, delay_us=round(delay, 3),
            )
        heapq.heappush(
            arrival_heap,
            (retry_at, seq, (retry_at, tenant_idx, rid, original, attempts)),
        )
        seq += 1

    def admit_until(deadline: float) -> None:
        """Pull arrivals up to *deadline* through admission control."""
        nonlocal tokens
        bound = deadline
        if crash_at is not None:
            bound = min(bound, crash_at)
        while arrival_heap and arrival_heap[0][0] <= bound:
            if crash_at is not None and arrival_heap[0][0] >= crash_at:
                break
            now, sq, entry = heapq.heappop(arrival_heap)
            _arrival, tenant_idx, rid, original, attempts = entry
            tenant = tenants[tenant_idx]
            if tracer is not None:
                tracer.emit(
                    _ns(now), EventKind.REQ_ARRIVE, tenant_idx,
                    tenant=tenant.name, gpu=gpu,
                )
            if admission is not None:
                refill(now)
                if tokens < 1.0:
                    shed_or_retry(now, entry, "tokens")
                    continue
                if (
                    len(queue) >= admission.max_queue_depth
                    and tenant.priority < admission.bypass_priority
                ):
                    shed_or_retry(now, entry, "depth")
                    continue
                tokens -= 1.0
            heapq.heappush(
                queue,
                (-tenant.priority, now, sq, tenant_idx, rid, original, attempts),
            )

    def drop_queued(now: float, count: int) -> None:
        """QUEUE_DROP: evict *count* queued requests, lowest priority
        first (latest arrival first within a class), into the retry path."""
        if not queue or count <= 0:
            return
        entries_now = sorted(queue)  # (-prio, arrival, seq, ...)
        kept, dropped = entries_now[:-count], entries_now[-count:]
        queue.clear()
        for item in kept:
            heapq.heappush(queue, item)
        for item in reversed(dropped):
            _np, arrival, _sq, tenant_idx, rid, original, attempts = item
            result.dropped += 1
            shed_or_retry(now, (arrival, tenant_idx, rid, original, attempts),
                          "dropped")

    def apply_housekeeping(now: float) -> None:
        """Apply ops and cadence checkpoints whose time the clock reached."""
        nonlocal op_i, free_at, batch_running, next_ckpt
        while True:
            op_time = ops[op_i][0] if op_i < len(ops) else None
            ckpt_time = next_ckpt
            candidates = [t for t in (op_time, ckpt_time) if t is not None]
            if not candidates:
                return
            when = min(candidates)
            if when > now or (crash_at is not None and when >= crash_at):
                return
            if ckpt_time is not None and ckpt_time == when and (
                op_time is None or ckpt_time <= op_time
            ):
                # cadence checkpoint of the hosted batch job; free when
                # the job sits evicted (its context is already saved)
                hosted_now = result.hosted_end
                if hosted_now > 0:
                    result.checkpoints += 1
                    result.last_ckpt_us = when
                    cost = ckpt_snapshot_us if batch_running else 0.0
                    if cost > 0.0:
                        start = free_at if free_at > when else when
                        free_at = charge(start, cost)
                        result.checkpoint_us += cost
                    else:
                        result.free_checkpoints += 1
                    if tracer is not None:
                        tracer.emit(
                            _ns(when), EventKind.BATCH_CKPT, -1,
                            gpu=gpu, cost_us=cost,
                        )
                next_ckpt = when + ckpt_cadence_us
                admit_until(free_at)
                continue
            time_us, kind, value = ops[op_i]
            op_i += 1
            if kind == "stall":
                start = free_at if free_at > time_us else time_us
                free_at = charge(start, value)
                result.stalls += 1
                result.stall_us += value
            elif kind == "drop":
                drop_queued(time_us, int(value))
            elif kind == "restore":
                start = free_at if free_at > time_us else time_us
                free_at = charge(start, value)
                result.migration_us += value
                result.restores_in += 1
                result.hosted_end += 1
                if result.hosted_end == 1:
                    batch_running = True
                if tracer is not None:
                    tracer.emit(
                        _ns(start), EventKind.FAILOVER_IN, -1,
                        gpu=gpu, cost_us=value,
                    )
            elif kind == "out":
                if result.hosted_end > 0:
                    start = free_at if free_at > time_us else time_us
                    free_at = charge(start, value)
                    result.migration_us += value
                    result.migrations_out += 1
                    result.hosted_end -= 1
                    if result.hosted_end == 0:
                        batch_running = False
                    if tracer is not None:
                        tracer.emit(
                            _ns(start), EventKind.MIGRATE_OUT, -1,
                            gpu=gpu, cost_us=value,
                        )
            elif kind == "degrade_on":
                factors.append(value)
                if tracer is not None:
                    tracer.emit(
                        _ns(time_us), EventKind.GPU_DEGRADE, -1,
                        gpu=gpu, factor=value,
                    )
            elif kind == "degrade_off":
                if value in factors:
                    factors.remove(value)
            else:
                raise ValueError(f"unknown resilience op kind {kind!r}")
            admit_until(free_at)

    def orphan_everything(now: float) -> None:
        """Crash: queued + in-flight work becomes orphans, later arrivals
        become redirects; both keep rid/original for re-queueing."""
        # ops and cadence checkpoints that precede the crash happened,
        # even if the clock never reached them — a migration that left
        # the GPU before death completed, and the last checkpoint bounds
        # the batch job's lost progress
        apply_housekeeping(now)
        # arrivals that landed before death were queued at the GPU even if
        # the clock hadn't reached them yet — admit them so they orphan
        admit_until(now)
        for item in sorted(queue, key=lambda q: q[4]):  # rid order
            _np, _arrival, _sq, tenant_idx, rid, original, attempts = item
            result.orphans.append((rid, tenant_idx, original, attempts))
        queue.clear()
        while arrival_heap:
            _t, _sq, entry = heapq.heappop(arrival_heap)
            arrival, tenant_idx, rid, original, attempts = entry
            result.redirects.append(
                (arrival, tenant_idx, rid, original, attempts)
            )
        result.redirects.sort(key=lambda r: (r[0], r[2]))
        result.crashed = True
        if tracer is not None:
            tracer.emit(_ns(now), EventKind.GPU_CRASH, -1, gpu=gpu)

    admit_until(free_at)
    while arrival_heap or queue:
        steps += 1
        if steps > cap:
            head = min(queue) if queue else None
            fleet = {
                "gpu": gpu,
                "queue_depth": len(queue),
                "clock_us": round(free_at, 3),
            }
            if head is not None:
                fleet["tenant"] = tenants[head[3]].name
                fleet["request_id"] = head[4]
            raise SimulationHangError(
                f"serving shard exceeded {cap} scheduling steps "
                f"(livelock?)",
                fleet=fleet,
            )
        apply_housekeeping(free_at)
        if crash_at is not None and free_at >= crash_at:
            orphan_everything(crash_at)
            break
        if not queue:
            if not batch_running and result.hosted_end > 0:
                cost = costs.resume_us * current_factor()
                result.overhead_us += cost
                if tracer is not None:
                    tracer.emit(
                        _ns(free_at), EventKind.BATCH_RESUME, -1,
                        gpu=gpu, cost_us=cost,
                    )
                free_at = charge(free_at, cost)
                batch_running = True
                admit_until(free_at)
                continue
            if not arrival_heap:
                break
            next_arrival = arrival_heap[0][0]
            if crash_at is not None and next_arrival >= crash_at:
                orphan_everything(crash_at)
                break
            pending: list[float] = []
            if op_i < len(ops):
                pending.append(ops[op_i][0])
            if next_ckpt is not None:
                pending.append(next_ckpt)
            ahead = min(pending) if pending else None
            if ahead is not None and ahead < next_arrival and (
                crash_at is None or ahead < crash_at
            ):
                free_at = free_at if free_at > ahead else ahead
                apply_housekeeping(free_at)
                continue
            free_at = free_at if free_at > next_arrival else next_arrival
            admit_until(free_at)
            continue
        _np, arrival_us, _sq, tenant_idx, rid, original, attempts = heapq.heappop(
            queue
        )
        tenant = tenants[tenant_idx]
        # ops between the current clock and this request's start apply
        # first (a stall can push the start past further ops)
        while True:
            start = free_at if free_at > arrival_us else arrival_us
            pending = []
            if op_i < len(ops):
                pending.append(ops[op_i][0])
            if next_ckpt is not None:
                pending.append(next_ckpt)
            ahead = min(pending) if pending else None
            if ahead is None or ahead > start or (
                crash_at is not None and ahead >= crash_at
            ):
                break
            apply_housekeeping(start)
        if crash_at is not None and start >= crash_at:
            result.orphans.append((rid, tenant_idx, original, attempts))
            result.orphans.sort(key=lambda o: o[0])
            orphan_everything(crash_at)
            break
        if batch_running:
            result.episodes += 1
            cost = costs.preempt_us * current_factor()
            result.overhead_us += cost
            if tracer is not None:
                tracer.emit(
                    _ns(start), EventKind.BATCH_PREEMPT, -1,
                    gpu=gpu, cost_us=cost,
                )
            start = charge(start, cost)
            batch_running = False
        if crash_at is not None and start >= crash_at:
            result.orphans.append((rid, tenant_idx, original, attempts))
            result.orphans.sort(key=lambda o: o[0])
            orphan_everything(crash_at)
            break
        service = tenant.service_us * current_factor()
        finish = start + service
        if crash_at is not None and finish > crash_at:
            # killed in flight: the slot burned the GPU until the crash
            result.orphans.append((rid, tenant_idx, original, attempts))
            result.orphans.sort(key=lambda o: o[0])
            free_at = crash_at
            orphan_everything(crash_at)
            break
        if tracer is not None:
            tracer.emit(
                _ns(start), EventKind.REQ_START, tenant_idx,
                tenant=tenant.name, gpu=gpu, wait_us=start - original,
            )
        result.service_us += service
        result.latencies.append((tenant_idx, finish - original, rid))
        last_completion = finish
        if tracer is not None:
            tracer.emit(
                _ns(finish), EventKind.REQ_DONE, tenant_idx,
                tenant=tenant.name, gpu=gpu, latency_us=finish - original,
            )
        free_at = finish
        admit_until(free_at)

    if not result.crashed:
        # cadence checkpoints (and ops) the clock already passed fire
        # before the batch job resumes — they happened while it sat
        # evicted, so they are free
        apply_housekeeping(free_at)
        # the queue drained: the batch job takes the GPU back before the
        # quiet tail (trailing ops, cadence checkpoints) runs
        if not batch_running and result.hosted_end > 0:
            cost = costs.resume_us * current_factor()
            result.overhead_us += cost
            if tracer is not None:
                tracer.emit(
                    _ns(free_at), EventKind.BATCH_RESUME, -1,
                    gpu=gpu, cost_us=cost,
                )
            free_at = charge(free_at, cost)
            batch_running = True
        # trailing ops (e.g. a failover restore landing after the last
        # local request) still apply so the batch-job ledger balances;
        # they charge overhead but never extend the request makespan
        while op_i < len(ops) and (
            crash_at is None or ops[op_i][0] < crash_at
        ):
            apply_housekeeping(ops[op_i][0])
        if crash_at is not None:
            # every local request finished before the GPU died, but the
            # crash still fires: cadence checkpoints on the quiet tail
            # keep running up to the crash (they bound the batch job's
            # lost progress), then the GPU is gone
            while (
                next_ckpt is not None
                and next_ckpt < crash_at
                and result.hosted_end > 0
            ):
                apply_housekeeping(next_ckpt)
            result.crashed = True
            if tracer is not None:
                tracer.emit(_ns(crash_at), EventKind.GPU_CRASH, -1, gpu=gpu)
    if result.latencies:
        result.makespan_us = max(last_completion - first_arrival, 0.0)
    return result

# -- stage 2: the fleet failover planner ------------------------------------------


@dataclass(frozen=True)
class FailoverRecord:
    """One batch-job move the fault model forced.

    *kind* is ``failover`` (crash → restore from the last checkpoint on a
    survivor), ``watchdog`` (observed-load migration off a degraded GPU),
    or ``rerouted`` (the failover target itself died before the restore
    applied; the snapshot re-transfers to another survivor — the job is
    never executed twice).
    """

    kind: str
    src: int
    dst: int
    at_us: float
    #: batch progress rolled back to the last checkpoint (µs; 0 for
    #: watchdog moves and reroutes — their snapshot is current)
    lost_progress_us: float
    #: end-to-end recovery latency: detection + transfer + restore +
    #: lost progress (µs)
    recovery_us: float

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "at_us": self.at_us,
            "lost_progress_us": self.lost_progress_us,
            "recovery_us": self.recovery_us,
        }


@dataclass
class ResiliencePlan:
    """Per-GPU execution inputs derived from one fleet fault schedule.

    Pure data: the per-GPU request streams (with crash re-queues
    applied), op streams, crash cutoffs, the batch-job ledger's final
    hosting counts, and the failover records.  Each GPU's entry is a
    self-contained input to :func:`simulate_resilient_shard`, so the
    fan-out stays embarrassingly parallel and cacheable even though
    failures couple the GPUs.
    """

    streams: list[tuple]
    ops: list[tuple]
    crash_at: list[float | None]
    hosted: list[int]
    failovers: list[FailoverRecord]


def plan_resilience(
    shards,
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    schedule: tuple[FleetEvent, ...],
    mig,
    *,
    knobs: ResilienceKnobs | None = None,
    admission: AdmissionPolicy | None = None,
    seed: int = 0,
) -> ResiliencePlan:
    """Turn a fleet fault schedule into independent per-GPU inputs.

    Failures couple GPUs — a crash re-queues work and restores a batch
    job elsewhere — but everything cross-GPU is resolved *here*, in the
    parent, as a pure function of the shards + schedule: events are
    processed chronologically, and each ``gpu_crash`` runs a phase-1
    simulation of the dying GPU (same code, same seed as the final run,
    so the outcome is identical) to learn exactly which requests died
    with it and where its batch job's last checkpoint was.  The final
    per-GPU units then run (or hit the cache) with no knowledge of each
    other.

    The batch-job ledger lives here too: ``hosted`` tracks every job
    across watchdog migrations, failovers and reroutes, so a job is
    restored exactly once no matter how failures interleave with
    migrations — a crash of the *source* after its snapshot left means
    the restore proceeds on the target; a crash of the *target* before
    the restore applied re-routes the existing snapshot to another
    survivor.
    """
    if knobs is None:
        knobs = ResilienceKnobs()
    if admission is None:
        admission = DEFAULT_ADMISSION
    gpus = len(shards)
    streams: list[list[tuple]] = []
    for g, shard in enumerate(shards):
        streams.append(
            [
                (float(a), int(t), j * gpus + g, float(a), 0)
                for j, (a, t) in enumerate(shard)
            ]
        )
    ops: list[list[tuple]] = [[] for _ in range(gpus)]
    crash_at: list[float | None] = [None] * gpus
    hosted = [1] * gpus
    failovers: list[FailoverRecord] = []
    alive = set(range(gpus))

    def planned_load(g: int) -> float:
        return sum(tenants[t].service_us for _a, t, _r, _o, _at in streams[g])

    def pick_dst(exclude: set[int]) -> int | None:
        candidates = sorted(g for g in alive if g not in exclude)
        if not candidates:
            return None
        return min(candidates, key=lambda g: (planned_load(g), g))

    for event in schedule:
        g = event.gpu
        if g not in alive:
            continue  # the target already died; the fault has nothing to hit
        if event.kind == "shard_stall":
            ops[g].append((event.time_us, "stall", event.duration_us))
        elif event.kind == "queue_drop":
            ops[g].append((event.time_us, "drop", float(event.count)))
        elif event.kind == "gpu_degrade":
            ops[g].append((event.time_us, "degrade_on", event.factor))
            if event.duration_us > 0:
                ops[g].append(
                    (
                        round(event.time_us + event.duration_us, 3),
                        "degrade_off",
                        event.factor,
                    )
                )
            else:
                # a persistent degrade: the health watchdog notices at its
                # first sampling tick strictly after onset and migrates the
                # batch job to a healthy GPU (the snapshot runs slowed by
                # the degrade factor; requests stay — hardware is sick, but
                # the long-running job escapes)
                tick = (
                    int(event.time_us / knobs.watchdog_us) + 1
                ) * knobs.watchdog_us
                dst = pick_dst({g})
                if dst is not None and hosted[g] > 0:
                    out_t = round(tick, 3)
                    snap_cost = round(mig.snapshot_us * event.factor, 3)
                    ops[g].append((out_t, "out", snap_cost))
                    in_t = round(out_t + snap_cost + mig.transfer_us, 3)
                    ops[dst].append((in_t, "restore", mig.restore_us))
                    hosted[g] -= 1
                    hosted[dst] += 1
                    failovers.append(
                        FailoverRecord(
                            "watchdog", g, dst, out_t, 0.0,
                            round(
                                snap_cost + mig.transfer_us + mig.restore_us,
                                3,
                            ),
                        )
                    )
        elif event.kind == "gpu_crash":
            t = event.time_us
            crash_at[g] = t
            alive.discard(g)
            # 1. restores routed at this GPU but not yet applied re-route:
            #    the snapshot exists off-GPU, so only the transfer re-runs —
            #    the job completes exactly once, on the new target
            kept: list[tuple] = []
            for op in ops[g]:
                if op[1] == "restore" and op[0] >= t:
                    dst = pick_dst(set())
                    re_t = round(t + knobs.detect_us + mig.transfer_us, 3)
                    ops[dst].append((max(op[0], re_t), "restore", mig.restore_us))
                    hosted[g] -= 1
                    hosted[dst] += 1
                    failovers.append(
                        FailoverRecord(
                            "rerouted", g, dst, t, 0.0,
                            round(
                                knobs.detect_us + mig.transfer_us
                                + mig.restore_us,
                                3,
                            ),
                        )
                    )
                else:
                    kept.append(op)
            ops[g] = kept
            # 2. phase-1 probe of the dying GPU: which requests died with
            #    it, and where was the batch job's last cadence checkpoint
            streams[g].sort(key=lambda e: (e[0], e[2]))
            ops[g].sort()
            probe = simulate_resilient_shard(
                tuple(streams[g]), tenants, costs, gpu=g,
                admission=admission, crash_at=t, ops=tuple(ops[g]),
                ckpt_cadence_us=knobs.ckpt_cadence_us,
                ckpt_snapshot_us=mig.snapshot_us, seed=seed,
            )
            # 3. failover: every batch job hosted at death restores from
            #    its last checkpoint onto the least-loaded survivor; the
            #    progress since that checkpoint is lost and charged into
            #    the recovery latency
            lost = round(max(t - probe.last_ckpt_us, 0.0), 3)
            for _ in range(hosted[g]):
                dst = pick_dst(set())
                in_t = round(t + knobs.detect_us + mig.transfer_us, 3)
                ops[dst].append((in_t, "restore", mig.restore_us))
                hosted[dst] += 1
                failovers.append(
                    FailoverRecord(
                        "failover", g, dst, t, lost,
                        round(
                            knobs.detect_us + mig.transfer_us
                            + mig.restore_us + lost,
                            3,
                        ),
                    )
                )
            hosted[g] = 0
            # 4. re-queue the dead GPU's unserved requests onto the
            #    survivors (round-robin by request id): queued/in-flight
            #    work restarts after crash detection, later arrivals
            #    redirect on landing — either way latency keeps counting
            #    from the ORIGINAL arrival, so the report pays the full
            #    recovery delay
            requeue = [
                (round(t + knobs.detect_us, 3), tn, rid, orig, att)
                for rid, tn, orig, att in probe.orphans
            ] + [
                (round(max(a, t + knobs.detect_us), 3), tn, rid, orig, att)
                for a, tn, rid, orig, att in probe.redirects
            ]
            requeue.sort(key=lambda r: (r[0], r[2]))
            survivors = sorted(alive)
            for entry in requeue:
                streams[survivors[entry[2] % len(survivors)]].append(entry)
        else:
            raise ValueError(f"unknown fleet event kind {event.kind!r}")

    for g in range(gpus):
        streams[g].sort(key=lambda e: (e[0], e[2]))
        ops[g].sort()
    return ResiliencePlan(
        streams=[tuple(s) for s in streams],
        ops=[tuple(o) for o in ops],
        crash_at=crash_at,
        hosted=hosted,
        failovers=failovers,
    )


# -- stage 3: cached shard execution ----------------------------------------------


def resilient_shard_profile(
    requests: tuple,
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    gpu: int,
    *,
    ops: tuple = (),
    crash_at: float | None = None,
    admission: AdmissionPolicy | None = None,
    ckpt_cadence_us: float = 0.0,
    ckpt_snapshot_us: float = 0.0,
    seed: int = 0,
) -> dict:
    """Cached resilient-scheduler run (artifact kind ``serve_chaos``).

    Keyed on the full shard content plus every fault input — ops, crash
    cutoff, admission policy, checkpoint cadence, seed — and
    :data:`RESILIENCE_VERSION`, so identical shards hit the cache across
    ``--jobs`` values and sessions while any semantic change re-runs.
    """
    from ..analysis.cache import canonical, get_cache

    parts = {
        "requests": canonical(requests),
        "tenants": canonical(tenants),
        "costs": canonical(costs),
        "ops": canonical(ops),
        "crash_at": crash_at,
        "admission": canonical(admission) if admission is not None else None,
        "ckpt_cadence_us": ckpt_cadence_us,
        "ckpt_snapshot_us": ckpt_snapshot_us,
        "seed": seed,
        "resilience_version": RESILIENCE_VERSION,
    }

    def run() -> dict:
        result = simulate_resilient_shard(
            requests, tenants, costs, gpu=gpu,
            admission=admission, crash_at=crash_at, ops=ops,
            ckpt_cadence_us=ckpt_cadence_us,
            ckpt_snapshot_us=ckpt_snapshot_us, seed=seed,
        )
        return result.as_dict()

    return get_cache().get_or_create("serve_chaos", parts, run)


# -- stage 4: the chaos-serve pipeline --------------------------------------------


def run_serve_chaos(
    mechanisms: tuple[str, ...] | None = None,
    *,
    scenario: str | FaultPlan = "crash",
    trace=None,
    loads: tuple[float, ...] = (0.8,),
    requests: int = 100_000,
    gpus: int = 4,
    tenants=None,
    key: str | None = None,
    config=None,
    iterations: int | None = None,
    samples: int = 2,
    resume_gap: int = 2000,
    engine=None,
    knobs: ResilienceKnobs | None = None,
    admission: AdmissionPolicy | None = None,
    link_bytes_per_us: float | None = None,
) -> dict:
    """Serve the fleet under a seeded fleet fault scenario.

    The clean-path twin of :func:`repro.serve.fleet.run_serve`: same
    calibration, same asyncio sharding, same engine fan-out — plus the
    fault schedule, the failover planner, and the resilient per-GPU
    scheduler.  Failover costs per mechanism come from its real
    :mod:`repro.snap` snapshot size, so CTXBack's smaller contexts show
    up directly as cheaper checkpoints and faster recovery.  The report
    gains availability, shed/retry counts and recovery-latency
    percentiles per cell, a ``chaos`` section with the resolved
    schedule, and the chaos-serve oracle's verdict — all bit-identical
    across ``--jobs``, execution cores and hosts.
    """
    from ..analysis.engine import ExperimentEngine, ServeChaosUnit
    from ..sim.config import GPUConfig
    from ..snap.units import snap_profile_for
    from .arrivals import TraceSpec
    from .fleet import (
        DEFAULT_BATCH_KEY,
        SERVE_MECHANISMS,
        mechanism_costs,
        shard_arrivals,
    )
    from .migration import (
        DEFAULT_LINK_BYTES_PER_US,
        migration_costs_for,
    )
    from .report import summarize_chaos_cell
    from .tenants import DEFAULT_TENANTS, mean_service_us

    if mechanisms is None:
        mechanisms = SERVE_MECHANISMS
    if trace is None:
        trace = TraceSpec()
    if tenants is None:
        tenants = DEFAULT_TENANTS
    if key is None:
        key = DEFAULT_BATCH_KEY
    if config is None:
        config = GPUConfig.radeon_vii()
    if engine is None:
        engine = ExperimentEngine(jobs=1)
    if knobs is None:
        knobs = ResilienceKnobs()
    if admission is None:
        admission = DEFAULT_ADMISSION
    if link_bytes_per_us is None:
        link_bytes_per_us = DEFAULT_LINK_BYTES_PER_US
    plan = (
        fleet_scenario(scenario) if isinstance(scenario, str) else scenario
    )

    costs = mechanism_costs(
        mechanisms, key, config,
        iterations=iterations, samples=samples, resume_gap=resume_gap,
        engine=engine,
    )

    # failover cost model: the mechanism's REAL snapshot round-trip (the
    # same cached artifact the migration and snap layers use); its verdict
    # doubles as the oracle's digest check — a restored job's memory and
    # registers are bit-identical to the clean run
    snapshot_bytes: dict[str, int] = {}
    mig_costs: dict = {}
    snap_ok: dict[str, bool] = {}
    for mechanism in mechanisms:
        profile = snap_profile_for(
            key, mechanism, config,
            iterations=iterations, resume_gap=resume_gap,
        )
        snap_ok[mechanism] = bool(
            profile.get("ok")
            and profile.get("memory_ok")
            and profile.get("registers_ok")
        )
        snapshot_bytes[mechanism] = profile["snapshot_bytes"]
        mig_costs[mechanism] = migration_costs_for(
            profile["snapshot_bytes"], config,
            link_bytes_per_us=link_bytes_per_us,
        )

    service_mean = mean_service_us(tenants)
    shards_by_load: dict[float, list] = {}
    schedule_by_load: dict[float, tuple[FleetEvent, ...]] = {}
    for load in loads:
        rate = load * gpus / service_mean
        shards = shard_arrivals(trace, requests, rate, tenants, gpus)
        shards_by_load[load] = shards
        horizon = max(
            (shard[-1][0] for shard in shards if shard), default=0.0
        )
        schedule_by_load[load] = build_fleet_schedule(plan, gpus, horizon)

    units: list = []
    cells: list[tuple[str, float]] = []
    plans: dict[tuple[str, float], ResiliencePlan] = {}
    for mechanism in mechanisms:
        for load in loads:
            cells.append((mechanism, load))
            rplan = plan_resilience(
                shards_by_load[load], tuple(tenants), costs[mechanism],
                schedule_by_load[load], mig_costs[mechanism],
                knobs=knobs, admission=admission, seed=plan.seed,
            )
            plans[(mechanism, load)] = rplan
            for gpu in range(gpus):
                units.append(
                    ServeChaosUnit(
                        mechanism=mechanism,
                        load=load,
                        gpu=gpu,
                        requests=rplan.streams[gpu],
                        tenants=tuple(tenants),
                        preempt_us=costs[mechanism].preempt_us,
                        resume_us=costs[mechanism].resume_us,
                        ops=rplan.ops[gpu],
                        crash_at_us=(
                            rplan.crash_at[gpu]
                            if rplan.crash_at[gpu] is not None
                            else -1.0
                        ),
                        admission=admission.as_tuple(),
                        ckpt_cadence_us=knobs.ckpt_cadence_us,
                        ckpt_snapshot_us=mig_costs[mechanism].snapshot_us,
                        seed=plan.seed,
                    )
                )
    merged = iter(engine.map(units))

    results = []
    oracle_cells = []
    for mechanism, load in cells:
        shard_dicts = []
        for _ in range(gpus):
            profile = next(merged)
            if isinstance(profile, dict):
                shard_dicts.append(profile)
        rplan = plans[(mechanism, load)]
        failover_dicts = [f.as_dict() for f in rplan.failovers]
        results.append(
            summarize_chaos_cell(
                mechanism, load, shard_dicts, tenants, costs[mechanism],
                failovers=failover_dicts,
            )
        )
        oracle_cells.append(
            _oracle_cell(
                mechanism, load, rplan, shard_dicts,
                schedule_by_load[load], snap_ok[mechanism], gpus,
            )
        )

    oracle = {
        "ok": all(cell["ok"] for cell in oracle_cells),
        "cells": oracle_cells,
    }
    return {
        "chaos": {
            "scenario": plan.name,
            "seed": plan.seed,
            "knobs": {
                "detect_us": knobs.detect_us,
                "watchdog_us": knobs.watchdog_us,
                "ckpt_cadence_us": knobs.ckpt_cadence_us,
            },
            "admission": {
                "rate_per_us": admission.rate_per_us,
                "burst": admission.burst,
                "max_queue_depth": admission.max_queue_depth,
                "bypass_priority": admission.bypass_priority,
                "retry_backoff_us": admission.retry_backoff_us,
                "retry_factor": admission.retry_factor,
                "retry_max": admission.retry_max,
            },
            "schedule": {
                f"{load:g}": [e.as_dict() for e in schedule_by_load[load]]
                for load in loads
            },
            "snapshot_bytes": dict(sorted(snapshot_bytes.items())),
            "costs_us": {
                name: {
                    "snapshot_us": c.snapshot_us,
                    "transfer_us": c.transfer_us,
                    "restore_us": c.restore_us,
                }
                for name, c in sorted(mig_costs.items())
            },
        },
        "oracle": oracle,
        "trace": {
            "kind": trace.kind,
            "seed": trace.seed,
            "burst_factor": trace.burst_factor,
            "burst_fraction": trace.burst_fraction,
            "dwell_us": trace.dwell_us,
        },
        "requests_per_cell": requests,
        "gpus": gpus,
        "batch_kernel": key,
        "tenants": [
            {
                "name": t.name,
                "priority": t.priority,
                "service_us": t.service_us,
                "slo_us": t.slo_us,
                "weight": t.weight,
            }
            for t in tenants
        ],
        "costs": {
            name: {
                "preempt_us": round(c.preempt_us, 3),
                "resume_us": round(c.resume_us, 3),
            }
            for name, c in costs.items()
        },
        "results": results,
    }


# -- the chaos-serve oracle -------------------------------------------------------


def _oracle_cell(
    mechanism: str,
    load: float,
    rplan: ResiliencePlan,
    shard_dicts: list[dict],
    schedule: tuple[FleetEvent, ...],
    snap_ok: bool,
    gpus: int,
) -> dict:
    """Audit one (mechanism, load) cell of a chaos-serve run."""
    violations: list[str] = []

    # request conservation: every request id completes or is shed exactly
    # once across the whole fleet — crash re-queues must neither lose nor
    # duplicate work
    all_rids: set[int] = set()
    for stream in rplan.streams:
        for entry in stream:
            all_rids.add(entry[2])
    completed: list[int] = []
    shed: list[int] = []
    for shard in shard_dicts:
        completed.extend(rid for _t, _lat, rid in shard["latencies"])
        shed.extend(rid for _t, rid, _a in shard["shed"])
    seen: set[int] = set()
    for rid in completed + shed:
        if rid in seen:
            violations.append(f"request {rid} accounted twice")
        seen.add(rid)
    missing = all_rids - seen
    if missing:
        violations.append(
            f"{len(missing)} requests lost (neither completed nor shed), "
            f"e.g. {sorted(missing)[:5]}"
        )
    extra = seen - all_rids
    if extra:
        violations.append(f"unknown request ids {sorted(extra)[:5]}")

    # crash accounting: every injected crash fired in its shard and has a
    # matching failover (or the GPU verifiably hosted nothing to fail over)
    crashes = [e for e in schedule if e.kind == "gpu_crash"]
    for event in crashes:
        g = event.gpu
        if rplan.crash_at[g] is None:
            violations.append(f"crash on gpu {g} missing from the plan")
            continue
        if g < len(shard_dicts) and not shard_dicts[g].get("crashed"):
            violations.append(f"gpu {g} did not observe its crash")
        moved = [
            f for f in rplan.failovers
            if f.src == g and f.kind in ("failover", "rerouted")
        ]
        hosted_at_death = (
            shard_dicts[g]["hosted_end"] if g < len(shard_dicts) else 0
        )
        if hosted_at_death > 0 and not moved:
            violations.append(
                f"gpu {g} died hosting {hosted_at_death} job(s) with no "
                f"failover"
            )

    # batch-job ledger: the fleet started with one job per GPU; after all
    # moves the survivors must host exactly that many — a lost job or a
    # double-executed restore both break the sum
    alive_hosted = sum(
        shard_dicts[g]["hosted_end"]
        for g in range(min(gpus, len(shard_dicts)))
        if rplan.crash_at[g] is None
    )
    if len(shard_dicts) == gpus and alive_hosted != gpus:
        violations.append(
            f"batch-job ledger unbalanced: {alive_hosted} hosted across "
            f"survivors, expected {gpus}"
        )
    if rplan.hosted != [
        shard_dicts[g]["hosted_end"] if rplan.crash_at[g] is None else 0
        for g in range(min(gpus, len(shard_dicts)))
    ]:
        violations.append("planner ledger disagrees with simulated hosting")

    # snapshot integrity: the failover path restores from a repro.snap
    # image whose round-trip must be digest-clean (terminal memory and
    # registers bit-identical to the clean run)
    if not snap_ok:
        violations.append(
            f"snapshot round-trip for {mechanism!r} is not digest-clean"
        )

    return {
        "mechanism": mechanism,
        "load": load,
        "ok": not violations,
        "requests": len(all_rids),
        "completed": len(completed),
        "shed": len(shed),
        "crashes": len(crashes),
        "failovers": len(
            [f for f in rplan.failovers if f.kind == "failover"]
        ),
        "violations": violations,
    }


def chaos_oracle(report: dict) -> dict:
    """The oracle section of a chaos-serve report (for external callers)."""
    return report["oracle"]
