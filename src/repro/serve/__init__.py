"""Multi-tenant preemptive serving layer over the simulated GPU fleet.

The paper's motivating scenario (§I) is a GPU cloud: latency-sensitive
inference requests share hardware with batch jobs, and the preemption
mechanism decides how much tail latency the sharing costs.  This package
closes the loop from the cycle-level simulator to that scenario:

- :mod:`~repro.serve.tenants` — traffic classes with priorities and SLOs;
- :mod:`~repro.serve.arrivals` — seeded Poisson / bursty arrival traces;
- :mod:`~repro.serve.scheduler` — the per-GPU preemptive request scheduler;
- :mod:`~repro.serve.migration` — live migration of batch jobs via
  :mod:`repro.snap` snapshots (plan + cost model);
- :mod:`~repro.serve.fleet` — calibration, asyncio ingestion, fan-out over
  the experiment engine, and :func:`run_serve`, the whole pipeline;
- :mod:`~repro.serve.resilience` — the fleet fault model: seeded GPU
  crash/degrade/stall/drop injection, snapshot-based failover with
  cadence checkpointing, admission control with deterministic
  retry/shed, and the chaos-serve oracle (:func:`run_serve_chaos`);
- :mod:`~repro.serve.report` — p50/p95/p99, SLO, throughput, overhead
  aggregation plus text/JSON renderers.

Everything downstream of :class:`~repro.serve.arrivals.TraceSpec` is
deterministic: the same trace + seed yields a bit-identical report across
reruns, ``--jobs`` values, and execution cores.
"""

from .arrivals import TRACE_KINDS, Request, TraceSpec, generate_arrivals
from .fleet import (
    DEFAULT_BATCH_KEY,
    SERVE_MECHANISMS,
    mechanism_costs,
    run_serve,
    serve_shard_profile,
    shard_arrivals,
)
from .migration import (
    DEFAULT_LINK_BYTES_PER_US,
    MigrationCosts,
    MigrationEvent,
    migration_costs_for,
    plan_migrations,
    shard_events,
)
from .report import (
    PERCENTILES,
    REPORT_VERSION,
    nearest_rank,
    render_chaos_text,
    render_serve_json,
    render_serve_text,
    summarize_cell,
    summarize_chaos_cell,
)
from .resilience import (
    DEFAULT_ADMISSION,
    RESILIENCE_VERSION,
    FailoverRecord,
    FleetEvent,
    ResilienceKnobs,
    ResiliencePlan,
    ResilientShardResult,
    build_fleet_schedule,
    plan_resilience,
    resilient_shard_profile,
    run_serve_chaos,
    simulate_resilient_shard,
)
from .scheduler import (
    AdmissionPolicy,
    MechanismCosts,
    ShardResult,
    simulate_shard,
)
from .tenants import DEFAULT_TENANTS, Tenant, mean_service_us

__all__ = [
    "TRACE_KINDS",
    "Request",
    "TraceSpec",
    "generate_arrivals",
    "DEFAULT_BATCH_KEY",
    "SERVE_MECHANISMS",
    "mechanism_costs",
    "run_serve",
    "serve_shard_profile",
    "shard_arrivals",
    "PERCENTILES",
    "REPORT_VERSION",
    "nearest_rank",
    "render_chaos_text",
    "render_serve_json",
    "render_serve_text",
    "summarize_cell",
    "summarize_chaos_cell",
    "DEFAULT_ADMISSION",
    "RESILIENCE_VERSION",
    "FailoverRecord",
    "FleetEvent",
    "ResilienceKnobs",
    "ResiliencePlan",
    "ResilientShardResult",
    "build_fleet_schedule",
    "plan_resilience",
    "resilient_shard_profile",
    "run_serve_chaos",
    "simulate_resilient_shard",
    "AdmissionPolicy",
    "MechanismCosts",
    "ShardResult",
    "simulate_shard",
    "DEFAULT_LINK_BYTES_PER_US",
    "MigrationCosts",
    "MigrationEvent",
    "migration_costs_for",
    "plan_migrations",
    "shard_events",
    "DEFAULT_TENANTS",
    "Tenant",
    "mean_service_us",
]
