"""Serve-report aggregation and rendering.

One *cell* of the report is (mechanism, load): the fleet's GPUs each serve
their shard under that mechanism's calibrated costs, and this module folds
the shard records into the numbers the paper's serving argument needs —
tail latency (p50/p95/p99), SLO-violation rate (overall and per tenant),
throughput, and the preemption overhead the mechanism charged.

Determinism rules: percentiles are nearest-rank over the sorted
concatenation of all shard latencies (no interpolation, no float
averaging across orderings), every emitted float is rounded to 3
decimals, and the JSON renderer sorts keys — so a report is bit-identical
across reruns, ``--jobs`` values, and hosts.
"""

from __future__ import annotations

import json

from .scheduler import MechanismCosts
from .tenants import Tenant

#: report schema version (bump when the report shape changes)
REPORT_VERSION = 1

PERCENTILES = (50, 95, 99)


def nearest_rank(sorted_values: list[float], q: int) -> float:
    """Nearest-rank percentile (q in 1..100) over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = -(-q * len(sorted_values) // 100)  # ceil without float
    return sorted_values[rank - 1]


def _round3(value: float) -> float:
    return round(value, 3)


def summarize_cell(
    mechanism: str,
    load: float,
    shard_dicts: list[dict],
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    migration: bool = False,
) -> dict:
    """Fold one (mechanism, load) cell's shard records into its summary.

    The ``migrations`` block is added only when *migration* is set, so
    plain serve reports keep their exact historical shape (the golden
    byte-drift gate compares them verbatim)."""
    pairs: list[tuple[int, float]] = []
    overhead = 0.0
    episodes = 0
    service = 0.0
    makespan = 0.0
    migrations_out = 0
    migrations_in = 0
    migration_us = 0.0
    for shard in shard_dicts:
        pairs.extend((int(t), float(lat)) for t, lat in shard["latencies"])
        overhead += shard["overhead_us"]
        episodes += shard["episodes"]
        service += shard["service_us"]
        # tolerant of pre-migration cached shard dicts (no such keys)
        migrations_out += shard.get("migrations_out", 0)
        migrations_in += shard.get("migrations_in", 0)
        migration_us += shard.get("migration_us", 0.0)
        # fleet makespan: the slowest GPU bounds the cell
        if shard["makespan_us"] > makespan:
            makespan = shard["makespan_us"]

    latencies = sorted(lat for _, lat in pairs)
    n = len(latencies)
    summary: dict = {
        "mechanism": mechanism,
        "load": load,
        "requests": n,
        "episodes": episodes,
        "latency_us": {
            "mean": _round3(sum(latencies) / n) if n else 0.0,
            **{
                f"p{q}": _round3(nearest_rank(latencies, q))
                for q in PERCENTILES
            },
        },
        "overhead_us": _round3(overhead),
        # share of GPU busy time the mechanism burned on preempt/resume
        "overhead_frac": _round3(
            overhead / (overhead + service) if overhead + service > 0 else 0.0
        ),
        # fleet throughput over the cell's makespan (requests/second)
        "throughput_rps": _round3(n / makespan * 1e6) if makespan > 0 else 0.0,
    }
    if migration:
        summary["migrations"] = {
            "out": migrations_out,
            "in": migrations_in,
            "migration_us": _round3(migration_us),
        }

    violations_total = 0
    per_tenant: dict[str, dict] = {}
    for idx, tenant in enumerate(tenants):
        t_lats = [lat for t, lat in pairs if t == idx]
        t_viol = sum(1 for lat in t_lats if lat > tenant.slo_us)
        violations_total += t_viol
        per_tenant[tenant.name] = {
            "requests": len(t_lats),
            "slo_us": tenant.slo_us,
            "violations": t_viol,
            "violation_rate": _round3(t_viol / len(t_lats)) if t_lats else 0.0,
            "p99_us": _round3(nearest_rank(sorted(t_lats), 99)),
        }
    summary["slo_violation_rate"] = _round3(violations_total / n) if n else 0.0
    summary["tenants"] = per_tenant
    return summary


# -- rendering -------------------------------------------------------------------


def render_serve_json(report: dict) -> str:
    """Canonical JSON form: sorted keys, stable separators, no wall-clock."""
    return json.dumps(
        {"version": REPORT_VERSION, **report},
        indent=2,
        sort_keys=True,
        separators=(",", ": "),
    )


def render_serve_text(report: dict) -> str:
    """Human-readable table, one row per (mechanism, load) cell."""
    lines: list[str] = []
    trace = report["trace"]
    lines.append(
        f"serving {report['requests_per_cell']} requests/cell over "
        f"{report['gpus']} GPUs — {trace['kind']} trace (seed {trace['seed']}), "
        f"batch kernel {report['batch_kernel']!r}"
    )
    lines.append("")
    lines.append("calibrated costs (us):")
    for name, cost in report["costs"].items():
        lines.append(
            f"  {name:<10} preempt {cost['preempt_us']:>10.3f}   "
            f"resume {cost['resume_us']:>10.3f}"
        )
    lines.append("")
    header = (
        f"{'mechanism':<10} {'load':>5} {'p50 us':>10} {'p95 us':>10} "
        f"{'p99 us':>10} {'mean us':>10} {'SLO viol':>9} {'thru rps':>10} "
        f"{'ovh %':>7} {'episodes':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in report["results"]:
        lat = cell["latency_us"]
        lines.append(
            f"{cell['mechanism']:<10} {cell['load']:>5.2f} "
            f"{lat['p50']:>10.1f} {lat['p95']:>10.1f} {lat['p99']:>10.1f} "
            f"{lat['mean']:>10.1f} "
            f"{cell['slo_violation_rate'] * 100:>8.2f}% "
            f"{cell['throughput_rps']:>10.0f} "
            f"{cell['overhead_frac'] * 100:>6.2f}% "
            f"{cell['episodes']:>9}"
        )
    lines.append("")
    lines.append("per-tenant p99 / SLO-violation rate:")
    for cell in report["results"]:
        parts = []
        for name, t in cell["tenants"].items():
            parts.append(
                f"{name} p99={t['p99_us']:.1f}us "
                f"viol={t['violation_rate'] * 100:.2f}%"
            )
        lines.append(
            f"  {cell['mechanism']:<10} load {cell['load']:.2f}: "
            + "; ".join(parts)
        )
    return "\n".join(lines)
