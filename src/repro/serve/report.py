"""Serve-report aggregation and rendering.

One *cell* of the report is (mechanism, load): the fleet's GPUs each serve
their shard under that mechanism's calibrated costs, and this module folds
the shard records into the numbers the paper's serving argument needs —
tail latency (p50/p95/p99), SLO-violation rate (overall and per tenant),
throughput, and the preemption overhead the mechanism charged.

Determinism rules: percentiles are nearest-rank over the sorted
concatenation of all shard latencies (no interpolation, no float
averaging across orderings), every emitted float is rounded to 3
decimals, and the JSON renderer sorts keys — so a report is bit-identical
across reruns, ``--jobs`` values, and hosts.
"""

from __future__ import annotations

import json

from .scheduler import MechanismCosts
from .tenants import Tenant

#: report schema version (bump when the report shape changes)
REPORT_VERSION = 1

PERCENTILES = (50, 95, 99)


def nearest_rank(sorted_values: list[float], q: int) -> float:
    """Nearest-rank percentile (q in 1..100) over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = -(-q * len(sorted_values) // 100)  # ceil without float
    return sorted_values[rank - 1]


def _round3(value: float) -> float:
    return round(value, 3)


def summarize_cell(
    mechanism: str,
    load: float,
    shard_dicts: list[dict],
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    migration: bool = False,
) -> dict:
    """Fold one (mechanism, load) cell's shard records into its summary.

    The ``migrations`` block is added only when *migration* is set, so
    plain serve reports keep their exact historical shape (the golden
    byte-drift gate compares them verbatim)."""
    pairs: list[tuple[int, float]] = []
    overhead = 0.0
    episodes = 0
    service = 0.0
    makespan = 0.0
    migrations_out = 0
    migrations_in = 0
    migration_us = 0.0
    for shard in shard_dicts:
        pairs.extend((int(t), float(lat)) for t, lat in shard["latencies"])
        overhead += shard["overhead_us"]
        episodes += shard["episodes"]
        service += shard["service_us"]
        # tolerant of pre-migration cached shard dicts (no such keys)
        migrations_out += shard.get("migrations_out", 0)
        migrations_in += shard.get("migrations_in", 0)
        migration_us += shard.get("migration_us", 0.0)
        # fleet makespan: the slowest GPU bounds the cell
        if shard["makespan_us"] > makespan:
            makespan = shard["makespan_us"]

    latencies = sorted(lat for _, lat in pairs)
    n = len(latencies)
    summary: dict = {
        "mechanism": mechanism,
        "load": load,
        "requests": n,
        "episodes": episodes,
        "latency_us": {
            "mean": _round3(sum(latencies) / n) if n else 0.0,
            **{
                f"p{q}": _round3(nearest_rank(latencies, q))
                for q in PERCENTILES
            },
        },
        "overhead_us": _round3(overhead),
        # share of GPU busy time the mechanism burned on preempt/resume
        "overhead_frac": _round3(
            overhead / (overhead + service) if overhead + service > 0 else 0.0
        ),
        # fleet throughput over the cell's makespan (requests/second)
        "throughput_rps": _round3(n / makespan * 1e6) if makespan > 0 else 0.0,
    }
    if migration:
        summary["migrations"] = {
            "out": migrations_out,
            "in": migrations_in,
            "migration_us": _round3(migration_us),
        }

    violations_total = 0
    per_tenant: dict[str, dict] = {}
    for idx, tenant in enumerate(tenants):
        t_lats = [lat for t, lat in pairs if t == idx]
        t_viol = sum(1 for lat in t_lats if lat > tenant.slo_us)
        violations_total += t_viol
        per_tenant[tenant.name] = {
            "requests": len(t_lats),
            "slo_us": tenant.slo_us,
            "violations": t_viol,
            "violation_rate": _round3(t_viol / len(t_lats)) if t_lats else 0.0,
            "p99_us": _round3(nearest_rank(sorted(t_lats), 99)),
        }
    summary["slo_violation_rate"] = _round3(violations_total / n) if n else 0.0
    summary["tenants"] = per_tenant
    return summary


def summarize_chaos_cell(
    mechanism: str,
    load: float,
    shard_dicts: list[dict],
    tenants: tuple[Tenant, ...],
    costs: MechanismCosts,
    *,
    failovers: list[dict],
) -> dict:
    """Fold one (mechanism, load) cell of a chaos-serve run.

    On top of the clean-path summary the cell reports **availability**
    (completed / offered requests), the shed/retry/drop traffic the
    admission policy and fault model generated, the checkpoint cadence's
    overhead, and the recovery-latency percentiles over the cell's
    failover records — the headline number the checkpoint-cadence
    tradeoff moves (CTXBack's smaller contexts ⇒ cheaper cadence ⇒
    faster failover).  Same determinism rules as
    :func:`summarize_cell`: nearest-rank percentiles, 3-decimal
    rounding, no wall clock.
    """
    pairs: list[tuple[int, float]] = []
    overhead = 0.0
    episodes = 0
    service = 0.0
    makespan = 0.0
    shed_total = 0
    retries = 0
    dropped = 0
    stalls = 0
    stall_us = 0.0
    checkpoints = 0
    free_checkpoints = 0
    checkpoint_us = 0.0
    migration_us = 0.0
    restores_in = 0
    crashes = 0
    shed_by_tenant: dict[int, int] = {}
    for shard in shard_dicts:
        pairs.extend(
            (int(t), float(lat)) for t, lat, _rid in shard["latencies"]
        )
        overhead += shard["overhead_us"]
        episodes += shard["episodes"]
        service += shard["service_us"]
        shed_total += len(shard["shed"])
        for t, _rid, _attempts in shard["shed"]:
            shed_by_tenant[int(t)] = shed_by_tenant.get(int(t), 0) + 1
        retries += shard["retries"]
        dropped += shard["dropped"]
        stalls += shard["stalls"]
        stall_us += shard["stall_us"]
        checkpoints += shard["checkpoints"]
        free_checkpoints += shard["free_checkpoints"]
        checkpoint_us += shard["checkpoint_us"]
        migration_us += shard["migration_us"]
        restores_in += shard["restores_in"]
        crashes += 1 if shard["crashed"] else 0
        if shard["makespan_us"] > makespan:
            makespan = shard["makespan_us"]

    latencies = sorted(lat for _, lat in pairs)
    n = len(latencies)
    offered = n + shed_total
    recovery = sorted(
        f["recovery_us"] for f in failovers if f["kind"] == "failover"
    )
    lost_progress = sum(
        f["lost_progress_us"] for f in failovers if f["kind"] == "failover"
    )
    summary: dict = {
        "mechanism": mechanism,
        "load": load,
        "requests": n,
        "episodes": episodes,
        "latency_us": {
            "mean": _round3(sum(latencies) / n) if n else 0.0,
            **{
                f"p{q}": _round3(nearest_rank(latencies, q))
                for q in PERCENTILES
            },
        },
        "overhead_us": _round3(overhead),
        "overhead_frac": _round3(
            overhead / (overhead + service) if overhead + service > 0 else 0.0
        ),
        "throughput_rps": _round3(n / makespan * 1e6) if makespan > 0 else 0.0,
        # -- the resilience block
        "availability": _round3(n / offered) if offered else 1.0,
        "crashes": crashes,
        "failovers": len(recovery),
        "watchdog_migrations": len(
            [f for f in failovers if f["kind"] == "watchdog"]
        ),
        "rerouted_restores": len(
            [f for f in failovers if f["kind"] == "rerouted"]
        ),
        "restores_in": restores_in,
        "shed": shed_total,
        "retries": retries,
        "dropped": dropped,
        "stalls": stalls,
        "stall_us": _round3(stall_us),
        "checkpoints": {
            "taken": checkpoints,
            "free": free_checkpoints,
            "overhead_us": _round3(checkpoint_us),
        },
        "migration_us": _round3(migration_us),
        "recovery_us": {
            "lost_progress": _round3(lost_progress),
            **{
                f"p{q}": _round3(nearest_rank(recovery, q))
                for q in PERCENTILES
            },
        },
    }

    violations_total = 0
    per_tenant: dict[str, dict] = {}
    for idx, tenant in enumerate(tenants):
        t_lats = [lat for t, lat in pairs if t == idx]
        t_viol = sum(1 for lat in t_lats if lat > tenant.slo_us)
        violations_total += t_viol
        per_tenant[tenant.name] = {
            "requests": len(t_lats),
            "slo_us": tenant.slo_us,
            "violations": t_viol,
            "violation_rate": _round3(t_viol / len(t_lats)) if t_lats else 0.0,
            "p99_us": _round3(nearest_rank(sorted(t_lats), 99)),
            "shed": shed_by_tenant.get(idx, 0),
        }
    summary["slo_violation_rate"] = _round3(violations_total / n) if n else 0.0
    summary["tenants"] = per_tenant
    return summary


# -- rendering -------------------------------------------------------------------


def render_serve_json(report: dict) -> str:
    """Canonical JSON form: sorted keys, stable separators, no wall-clock."""
    return json.dumps(
        {"version": REPORT_VERSION, **report},
        indent=2,
        sort_keys=True,
        separators=(",", ": "),
    )


def render_chaos_text(report: dict) -> str:
    """Human-readable chaos-serve report: one row per cell, with the
    availability/failover/recovery columns and the oracle verdict."""
    lines: list[str] = []
    chaos = report["chaos"]
    trace = report["trace"]
    lines.append(
        f"chaos-serving {report['requests_per_cell']} requests/cell over "
        f"{report['gpus']} GPUs — scenario {chaos['scenario']!r} "
        f"(seed {chaos['seed']}), {trace['kind']} trace, "
        f"batch kernel {report['batch_kernel']!r}"
    )
    for load, events in sorted(chaos["schedule"].items()):
        parts = [
            f"{e['kind']}@{e['time_us']:.0f}us→gpu{e['gpu']}" for e in events
        ]
        lines.append(f"  load {load}: " + (", ".join(parts) or "no events"))
    lines.append(
        f"  knobs: detect {chaos['knobs']['detect_us']:.0f}us, watchdog "
        f"{chaos['knobs']['watchdog_us']:.0f}us, checkpoint cadence "
        f"{chaos['knobs']['ckpt_cadence_us']:.0f}us"
    )
    lines.append("")
    header = (
        f"{'mechanism':<10} {'load':>5} {'avail':>7} {'p99 us':>10} "
        f"{'failover':>9} {'rec p99':>10} {'shed':>6} {'retry':>6} "
        f"{'ckpt us':>9} {'SLO viol':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in report["results"]:
        lines.append(
            f"{cell['mechanism']:<10} {cell['load']:>5.2f} "
            f"{cell['availability'] * 100:>6.2f}% "
            f"{cell['latency_us']['p99']:>10.1f} "
            f"{cell['failovers']:>9} "
            f"{cell['recovery_us']['p99']:>10.1f} "
            f"{cell['shed']:>6} {cell['retries']:>6} "
            f"{cell['checkpoints']['overhead_us']:>9.1f} "
            f"{cell['slo_violation_rate'] * 100:>8.2f}%"
        )
    lines.append("")
    oracle = report["oracle"]
    lines.append(
        f"chaos-serve oracle: {'OK' if oracle['ok'] else 'VIOLATIONS'} "
        f"({len(oracle['cells'])} cells audited)"
    )
    for cell in oracle["cells"]:
        if not cell["ok"]:
            for violation in cell["violations"]:
                lines.append(
                    f"  {cell['mechanism']} load {cell['load']}: {violation}"
                )
    return "\n".join(lines)


def render_serve_text(report: dict) -> str:
    """Human-readable table, one row per (mechanism, load) cell."""
    lines: list[str] = []
    trace = report["trace"]
    lines.append(
        f"serving {report['requests_per_cell']} requests/cell over "
        f"{report['gpus']} GPUs — {trace['kind']} trace (seed {trace['seed']}), "
        f"batch kernel {report['batch_kernel']!r}"
    )
    lines.append("")
    lines.append("calibrated costs (us):")
    for name, cost in report["costs"].items():
        lines.append(
            f"  {name:<10} preempt {cost['preempt_us']:>10.3f}   "
            f"resume {cost['resume_us']:>10.3f}"
        )
    lines.append("")
    header = (
        f"{'mechanism':<10} {'load':>5} {'p50 us':>10} {'p95 us':>10} "
        f"{'p99 us':>10} {'mean us':>10} {'SLO viol':>9} {'thru rps':>10} "
        f"{'ovh %':>7} {'episodes':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in report["results"]:
        lat = cell["latency_us"]
        lines.append(
            f"{cell['mechanism']:<10} {cell['load']:>5.2f} "
            f"{lat['p50']:>10.1f} {lat['p95']:>10.1f} {lat['p99']:>10.1f} "
            f"{lat['mean']:>10.1f} "
            f"{cell['slo_violation_rate'] * 100:>8.2f}% "
            f"{cell['throughput_rps']:>10.0f} "
            f"{cell['overhead_frac'] * 100:>6.2f}% "
            f"{cell['episodes']:>9}"
        )
    lines.append("")
    lines.append("per-tenant p99 / SLO-violation rate:")
    for cell in report["results"]:
        parts = []
        for name, t in cell["tenants"].items():
            parts.append(
                f"{name} p99={t['p99_us']:.1f}us "
                f"viol={t['violation_rate'] * 100:.2f}%"
            )
        lines.append(
            f"  {cell['mechanism']:<10} load {cell['load']:.2f}: "
            + "; ".join(parts)
        )
    return "\n".join(lines)
