"""Seeded arrival traces: Poisson and bursty (two-state MMPP) request flows.

Arrival generation is the only randomness in the serving layer, and it is
fully determined by :class:`TraceSpec` + the request count: one
``random.Random(seed)`` stream drives inter-arrival gaps, tenant selection,
and (for bursty traces) the ON/OFF modulation, so the same spec always
yields the byte-identical trace — the foundation of the serve report's
bit-identical-across-``--jobs`` guarantee.

The bursty trace is a Markov-modulated Poisson process with two states:
an OFF state at a calm rate and an ON state ``burst_factor`` times hotter,
normalized so the long-run mean rate equals the requested rate.  Burstiness
changes *when* requests cluster, not how many arrive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .tenants import Tenant

TRACE_KINDS = ("poisson", "bursty")


@dataclass(frozen=True)
class TraceSpec:
    """Shape of one arrival trace (cache-key friendly: frozen, scalar)."""

    kind: str = "poisson"
    seed: int = 0
    #: bursty only: ON-state rate multiplier relative to the OFF state
    burst_factor: float = 8.0
    #: bursty only: long-run fraction of time spent in the ON state
    burst_fraction: float = 0.1
    #: bursty only: mean dwell time of one ON+OFF cycle (µs)
    dwell_us: float = 4000.0

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r} (known: {TRACE_KINDS})"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")


@dataclass(frozen=True)
class Request:
    """One request of the trace (tenant by index into the tenant mix)."""

    arrival_us: float
    tenant: int


def _pick_tenant(rng: random.Random, cumulative: list[float]) -> int:
    draw = rng.random() * cumulative[-1]
    for index, edge in enumerate(cumulative):
        if draw < edge:
            return index
    return len(cumulative) - 1


def generate_arrivals(
    spec: TraceSpec,
    count: int,
    rate_per_us: float,
    tenants: tuple[Tenant, ...],
) -> list[Request]:
    """Generate *count* requests at long-run mean rate *rate_per_us*."""
    if rate_per_us <= 0:
        raise ValueError("rate_per_us must be > 0")
    rng = random.Random(spec.seed)
    cumulative: list[float] = []
    total = 0.0
    for tenant in tenants:
        total += tenant.weight
        cumulative.append(total)

    requests: list[Request] = []
    clock = 0.0
    if spec.kind == "poisson":
        for _ in range(count):
            clock += rng.expovariate(rate_per_us)
            requests.append(Request(clock, _pick_tenant(rng, cumulative)))
        return requests

    # bursty: two-state MMPP.  Solve the OFF rate so the time-weighted mean
    # equals rate_per_us, then alternate exponentially-dwelled states.
    on_frac = spec.burst_fraction
    rate_off = rate_per_us / (on_frac * spec.burst_factor + (1.0 - on_frac))
    rate_on = rate_off * spec.burst_factor
    on = False  # start calm; the first burst arrives stochastically
    state_end = clock + rng.expovariate(1.0 / (spec.dwell_us * (1.0 - on_frac)))
    while len(requests) < count:
        rate = rate_on if on else rate_off
        gap = rng.expovariate(rate)
        if clock + gap >= state_end:
            # no arrival before the state flips: advance to the flip and
            # redraw in the new state (memorylessness makes this exact)
            clock = state_end
            on = not on
            dwell_mean = spec.dwell_us * (on_frac if on else 1.0 - on_frac)
            state_end = clock + rng.expovariate(1.0 / dwell_mean)
            continue
        clock += gap
        requests.append(Request(clock, _pick_tenant(rng, cumulative)))
    return requests
