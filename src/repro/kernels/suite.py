"""The benchmark suite: registry + the paper's Table I reference data.

Each entry couples a kernel factory with the paper's measured numbers so
the benchmark harness can print paper-vs-measured side by side
(EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..isa.instruction import Kernel
from .blas import (
    build_dot,
    build_mm,
    build_mv,
    build_va,
    launch_dot,
    launch_mm,
    launch_mv,
    launch_va,
)
from .builder import StandardLaunch
from .dl import (
    build_ap,
    build_dc,
    build_lrn,
    build_relu,
    launch_ap,
    launch_dc,
    launch_lrn,
    launch_relu,
)
from .rodinia import (
    build_ge,
    build_hs,
    build_km,
    build_ms,
    launch_ge,
    launch_hs,
    launch_km,
    launch_ms,
)


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I (per-warp resources, BASELINE times)."""

    abbrev: str
    name: str
    provenance: str
    vector_kb: float
    scalar_kb: float
    shared_kb: float
    preempt_us: float
    resume_us: float


@dataclass(frozen=True)
class Benchmark:
    key: str
    build: Callable[[int], Kernel]  # warp_size -> Kernel
    launch: Callable[..., StandardLaunch]  # (warp_size, iterations, num_warps)
    table1: Table1Row
    default_iterations: int


#: Paper Table I, verbatim.
TABLE1 = {
    "ap": Table1Row("AP", "Average Pooling", "Caffe", 7.0, 0.188, 0.0, 103.4, 87.1),
    "dc": Table1Row("DC", "Direct Convolution", "Caffe", 8.0, 0.141, 0.0, 153.0, 114.2),
    "dot": Table1Row("DOT", "Dot Product", "Caffe/CLBlast", 6.0, 0.141, 1.0, 138.6, 101.0),
    "ge": Table1Row("GE", "Gaussian Elimination", "Rodinia", 8.0, 0.141, 0.0, 92.3, 74.0),
    "hs": Table1Row("HS", "Hybrid Sort", "Rodinia", 7.0, 0.141, 12.0, 304.0, 280.7),
    "km": Table1Row("KM", "K-Means", "Rodinia", 13.0, 0.141, 0.0, 327.4, 283.1),
    "lrn": Table1Row("LRN", "Local Response Norm", "Caffe", 4.0, 0.141, 0.0, 74.9, 57.8),
    "mm": Table1Row("MM", "Matrix-Matrix Multiply", "Caffe/CLBlast", 13.0, 0.141, 0.5, 214.6, 152.7),
    "ms": Table1Row("MS", "Merge Sort", "Rodinia", 10.5, 0.141, 0.0, 119.0, 93.8),
    "mv": Table1Row("MV", "Matrix-Vector Multiply", "Caffe/CLBlast", 13.0, 0.141, 0.25, 254.7, 217.5),
    "relu": Table1Row("RELU", "ReLU Activation", "Caffe", 4.0, 0.141, 0.0, 93.8, 75.5),
    "va": Table1Row("VA", "Vector Addition", "Caffe/CLBlast", 3.0, 0.141, 0.0, 102.2, 81.1),
}

SUITE: dict[str, Benchmark] = {
    "ap": Benchmark("ap", build_ap, launch_ap, TABLE1["ap"], 32),
    "dc": Benchmark("dc", build_dc, launch_dc, TABLE1["dc"], 28),
    "dot": Benchmark("dot", build_dot, launch_dot, TABLE1["dot"], 40),
    "ge": Benchmark("ge", build_ge, launch_ge, TABLE1["ge"], 30),
    "hs": Benchmark("hs", build_hs, launch_hs, TABLE1["hs"], 36),
    "km": Benchmark("km", build_km, launch_km, TABLE1["km"], 30),
    "lrn": Benchmark("lrn", build_lrn, launch_lrn, TABLE1["lrn"], 40),
    "mm": Benchmark("mm", build_mm, launch_mm, TABLE1["mm"], 24),
    "ms": Benchmark("ms", build_ms, launch_ms, TABLE1["ms"], 26),
    "mv": Benchmark("mv", build_mv, launch_mv, TABLE1["mv"], 28),
    "relu": Benchmark("relu", build_relu, launch_relu, TABLE1["relu"], 36),
    "va": Benchmark("va", build_va, launch_va, TABLE1["va"], 48),
}

#: the paper's "kernels from BLAS and deep learning libraries" subset
BLAS_DL_KEYS = ("ap", "dc", "dot", "lrn", "mm", "mv", "relu", "va")


def benchmark(key: str) -> Benchmark:
    """Look up one benchmark by key, with a helpful error on miss."""
    try:
        return SUITE[key]
    except KeyError:
        raise KeyError(f"unknown benchmark {key!r}; choose from {sorted(SUITE)}") from None


def all_keys() -> list[str]:
    """Sorted benchmark keys."""
    return sorted(SUITE)
