"""Deep-learning kernel analogs (Caffe [14]): AP, DC, LRN, RELU.

Table I budgets: AP 28 VGPRs (7 KB), DC 32 (8 KB), LRN 16 (4 KB),
RELU 16 (4 KB).  See :mod:`.blas` for the live-range shaping rationale.
"""

from __future__ import annotations

from ..isa.instruction import Kernel
from .builder import KernelBuilder, StandardLaunch, fbits, s, v


def build_ap(warp_size: int = 64) -> Kernel:
    """Average pooling 2×2, four windows per iteration: out = 0.25 · Σ."""
    w4 = warp_size * 4
    quarter = fbits(0.25)
    b = KernelBuilder(
        "average_pooling", abbrev="AP", provenance="Caffe", vgprs=28, sgprs=18,
        warps_per_block=3
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_mov", v(23), quarter)  # window scale, persistent
    for u in range(4):  # running per-channel statistics, persistent
        b.i("v_mov", v(24 + u), 0)
    b.loop_begin()
    for k in range(12):  # three 2x2 windows
        b.i("global_load", v(4 + k), v(2), k * w4)
    for u in range(3):  # pairwise sums keep all loads live to this point
        b.i("v_addf", v(16 + u), v(4 + u * 4), v(5 + u * 4))
    for u in range(3):
        b.i("v_addf", v(19 + u), v(6 + u * 4), v(7 + u * 4))
    for u in range(3):
        b.i("v_addf", v(16 + u), v(16 + u), v(19 + u))
    for u in range(3):
        b.i("v_mulf", v(16 + u), v(16 + u), v(23))
    for u in range(3):  # accumulate channel statistics (persistent)
        b.i("v_addf", v(24 + u), v(24 + u), v(16 + u))
    # window id tag; s7's multiply-update is irreversible -> OSRB candidate
    b.i("v_xor", v(16), v(16), s(7))
    b.i("s_mul", s(7), s(7), 7)
    for u in range(3):
        b.i("global_store", v(3), v(16 + u), u * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(6))
    b.loop_end()
    for u in range(4):
        b.i("global_store", v(3), v(24 + u), u * w4)
    b.end()
    return b.build()


def launch_ap(warp_size: int = 64, iterations: int = 24, num_warps=None) -> StandardLaunch:
    kernel = build_ap(warp_size)
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=iterations * 12 * warp_size,
        out_words_per_warp=(iterations + 2) * 3 * warp_size + 4 * warp_size,
        stride_bytes=lambda w: 12 * w * 4,
        extra_sregs={6: 3 * warp_size * 4},
        num_warps=num_warps,
    )


def build_dc(warp_size: int = 64) -> Kernel:
    """Direct convolution, 3-tap filter × 2 output channels, unroll 4.

    The filter weights load once in the preamble and stay live for the whole
    kernel — the persistent-weights profile of convolution layers.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "direct_convolution", abbrev="DC", provenance="Caffe", vgprs=32, sgprs=18
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # input
    b.pointer(v(3), v(1), s(1))  # weights
    b.pointer(v(4), v(1), s(2))  # output
    for k in range(8):  # two 4-tap filters, persistent
        b.i("global_load", v(24 + k), v(3), k * w4)
    b.loop_begin()
    for k in range(12):  # three input windows of 4 taps
        b.i("global_load", v(5 + k), v(2), k * w4)
    for u in range(3):  # channel 0
        base = 5 + u * 4
        b.i("v_mulf", v(17 + u), v(base), v(24))
        b.i("v_madf", v(17 + u), v(base + 1), v(25), v(17 + u))
        b.i("v_madf", v(17 + u), v(base + 2), v(26), v(17 + u))
        b.i("v_madf", v(17 + u), v(base + 3), v(27), v(17 + u))
    for u in range(3):  # channel 1
        base = 5 + u * 4
        b.i("v_mulf", v(20 + u), v(base), v(28))
        b.i("v_madf", v(20 + u), v(base + 1), v(29), v(20 + u))
        b.i("v_madf", v(20 + u), v(base + 2), v(30), v(20 + u))
        b.i("v_madf", v(20 + u), v(base + 3), v(31), v(20 + u))
    for u in range(3):
        b.i("global_store", v(4), v(17 + u), (u * 2) * w4)
        b.i("global_store", v(4), v(20 + u), (u * 2 + 1) * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(4), v(4), s(6))
    b.loop_end()
    b.end()
    return b.build()


def launch_dc(warp_size: int = 64, iterations: int = 22, num_warps=None) -> StandardLaunch:
    kernel = build_dc(warp_size)
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=iterations * 12 * warp_size,
        b_words_per_warp=8 * warp_size,
        out_words_per_warp=iterations * 6 * warp_size,
        stride_bytes=lambda w: 12 * w * 4,
        extra_sregs={6: 6 * warp_size * 4},
        num_warps=num_warps,
    )


def build_lrn(warp_size: int = 64) -> Kernel:
    """Local response normalisation (3-neighbour window, simplified), unroll 2:
    out = x · (2 − (1 + α·Σ x²)) — one Newton-step reciprocal surrogate."""
    w4 = warp_size * 4
    alpha = fbits(0.1)
    b = KernelBuilder(
        "local_response_norm", abbrev="LRN", provenance="Caffe", vgprs=16, sgprs=18
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_mov", v(13), alpha)  # α, persistent
    b.i("v_mov", v(14), fbits(1.0))  # k, persistent
    b.i("v_mov", v(15), fbits(2.0))  # Newton constant, persistent
    b.loop_begin()
    for k in range(6):  # two windows of 3 neighbours
        b.i("global_load", v(4 + k), v(2), k * w4)
    for u in range(2):
        base = 4 + u * 3
        b.i("v_mulf", v(10 + u), v(base), v(base))
        b.i("v_madf", v(10 + u), v(base + 1), v(base + 1), v(10 + u))
        b.i("v_madf", v(10 + u), v(base + 2), v(base + 2), v(10 + u))
    for u in range(2):
        b.i("v_madf", v(10 + u), v(10 + u), v(13), v(14))
        b.i("v_subf", v(12 + u), v(15), v(10 + u))
    for u in range(2):
        b.i("v_mulf", v(12 + u), v(5 + u * 3), v(12 + u))
        b.i("global_store", v(3), v(12 + u), u * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(6))
    b.loop_end()
    b.end()
    return b.build()


def launch_lrn(warp_size: int = 64, iterations: int = 32, num_warps=None) -> StandardLaunch:
    kernel = build_lrn(warp_size)
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=iterations * 6 * warp_size,
        out_words_per_warp=iterations * 2 * warp_size,
        stride_bytes=lambda w: 6 * w * 4,
        extra_sregs={6: 2 * warp_size * 4},
        num_warps=num_warps,
    )


def build_relu(warp_size: int = 64) -> Kernel:
    """Leaky-ReLU activation, unroll 5: out = max(x, α·x).

    Only the pointers and two broadcast constants persist across
    iterations; the live set collapses at the loop boundary — the maximal
    live-range variety the paper credits for RELU's large reduction.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "relu_activation", abbrev="RELU", provenance="Caffe", vgprs=16, sgprs=18,
        warps_per_block=6
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_mov", v(14), fbits(0.01))  # leaky slope, persistent
    b.i("v_mov", v(15), fbits(1.0))  # output scale, persistent
    b.loop_begin()
    for u in range(5):
        b.i("global_load", v(4 + u), v(2), u * w4)
    for u in range(5):
        b.i("v_mulf", v(9 + u), v(4 + u), v(14))
    for u in range(5):
        b.i("v_maxf", v(4 + u), v(4 + u), v(9 + u))
    for u in range(5):
        b.i("v_mulf", v(4 + u), v(4 + u), v(15))
    for u in range(5):
        b.i("global_store", v(3), v(4 + u), u * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_relu(warp_size: int = 64, iterations: int = 30, num_warps=None) -> StandardLaunch:
    kernel = build_relu(warp_size)
    span = iterations * 5 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        out_words_per_warp=span,
        stride_bytes=lambda w: 5 * w * 4,
        num_warps=num_warps,
    )
