"""Benchmark kernels: synthetic analogs of the paper's Table I suite.

See DESIGN.md §2 for the substitution argument and :mod:`.builder` for the
shared launch ABI.
"""

from .builder import (
    A_BASE,
    B_BASE,
    OUT_BASE,
    KernelBuilder,
    StandardLaunch,
    fbits,
    input_pattern,
    s,
    v,
)
from .suite import (
    BLAS_DL_KEYS,
    Benchmark,
    SUITE,
    TABLE1,
    Table1Row,
    all_keys,
    benchmark,
)

__all__ = [
    "A_BASE",
    "B_BASE",
    "BLAS_DL_KEYS",
    "Benchmark",
    "KernelBuilder",
    "OUT_BASE",
    "SUITE",
    "StandardLaunch",
    "TABLE1",
    "Table1Row",
    "all_keys",
    "benchmark",
    "fbits",
    "input_pattern",
    "s",
    "v",
]
