"""Kernel construction DSL and the shared launch ABI.

The benchmark kernels are synthetic analogs of the paper's Table I suite
(CLBlast BLAS, Caffe deep-learning kernels, Rodinia), calibrated to the same
per-warp resource usage (VGPR/SGPR/LDS), loop structure (persistent-thread
loops with unrolling) and instruction mix.  See DESIGN.md §2 for why this
substitution preserves the evaluation: the mechanisms only see register
pressure, live-range variety, memory-op density and block shape.

Launch ABI (every benchmark):

====  ==========================================
s0    base address of input A
s1    base address of input B (0 if unused)
s2    base address of the output buffer
s3    iteration count
s4    pointer stride per iteration, bytes
s5    loop counter (kernel-initialised to 0)
s6+   kernel-specific constants
v0    lane id
====  ==========================================

Inputs are deterministic float32 patterns; every buffer is per-warp
disjoint, so kernels are ``noalias`` and whole basic blocks are idempotent,
matching the paper's in/out-buffer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..isa.instruction import Instruction, Kernel, Program, inst
from ..isa.registers import Reg, sreg, vreg
from ..sim.gpu import LaunchSpec
from ..sim.memory import DeviceMemory
from ..sim.regfile import WarpState

A_BASE = 0x0010_0000
B_BASE = 0x0040_0000
OUT_BASE = 0x0080_0000


def v(index: int) -> Reg:
    """Shorthand for a vector register in kernel definitions."""
    return vreg(index)


def s(index: int) -> Reg:
    """Shorthand for a scalar register in kernel definitions."""
    return sreg(index)


class KernelBuilder:
    """Imperative assembly builder with the shared benchmark metadata."""

    def __init__(
        self,
        name: str,
        *,
        abbrev: str,
        provenance: str,
        vgprs: int,
        sgprs: int,
        lds_bytes: int = 0,
        warps_per_block: int = 4,
        noalias: bool = True,
    ) -> None:
        self.name = name
        self.abbrev = abbrev
        self.provenance = provenance
        self.vgprs = vgprs
        self.sgprs = sgprs
        self.lds_bytes = lds_bytes
        self.warps_per_block = warps_per_block
        self.noalias = noalias
        self._program = Program()

    def i(self, mnemonic: str, *operands) -> "KernelBuilder":
        self._program.append(inst(mnemonic, *operands))
        return self

    def label(self, name: str) -> "KernelBuilder":
        self._program.add_label(name)
        return self

    # -- common fragments ---------------------------------------------------------

    def lane_byte_offset(self, dst: Reg, shift: int = 2) -> "KernelBuilder":
        """dst = lane_id * 4 (byte offset of this lane's word)."""
        return self.i("v_lshl", dst, v(0), shift)

    def pointer(self, dst: Reg, lane_off: Reg, base_sreg: Reg) -> "KernelBuilder":
        """dst = base + per-lane byte offset."""
        return self.i("v_add", dst, lane_off, base_sreg)

    def loop_begin(self, label: str = "LOOP", counter: Reg = None) -> "KernelBuilder":
        counter = counter or s(5)
        self.i("s_mov", counter, 0)
        return self.label(label)

    def loop_end(
        self, label: str = "LOOP", counter: Reg = None, bound: Reg = None
    ) -> "KernelBuilder":
        counter = counter or s(5)
        bound = bound or s(3)
        self.i("s_add", counter, counter, 1)
        self.i("s_cmp_lt", counter, bound)
        self.i("s_cbranch_scc1", label)
        return self

    def end(self) -> "KernelBuilder":
        return self.i("s_endpgm")

    def build(self) -> Kernel:
        return Kernel(
            name=self.name,
            program=self._program,
            vgprs_used=self.vgprs,
            sgprs_used=self.sgprs,
            lds_bytes=self.lds_bytes,
            abbrev=self.abbrev,
            provenance=self.provenance,
            warps_per_block=self.warps_per_block,
            noalias=self.noalias,
        )


def fbits(value: float) -> int:
    """Raw 32-bit encoding of a float immediate (for ``*f`` opcodes)."""
    return int(np.float32(value).view(np.uint32))


def input_pattern(words: int, seed: int) -> np.ndarray:
    """Deterministic float32 input data as raw uint32 words."""
    idx = np.arange(words, dtype=np.float64)
    values = ((idx * (seed * 2 + 1)) % 97).astype(np.float32) * 0.25 + 1.0
    return values.view(np.uint32)


@dataclass
class StandardLaunch:
    """Per-warp-disjoint buffer layout + register initialisation."""

    kernel: Kernel
    iterations: int
    a_words_per_warp: int
    b_words_per_warp: int = 0
    out_words_per_warp: int = 0
    stride_bytes: Callable[[int], int] = None  # type: ignore[assignment]
    extra_sregs: dict[int, int] = field(default_factory=dict)
    num_warps: int | None = None

    def spec(self) -> LaunchSpec:
        kernel = self.kernel
        num_warps = self.num_warps or kernel.warps_per_block
        a_span = self.a_words_per_warp * 4
        b_span = self.b_words_per_warp * 4
        out_span = max(self.out_words_per_warp, 1) * 4

        def setup_memory(memory: DeviceMemory) -> None:
            for warp in range(num_warps):
                if self.a_words_per_warp:
                    memory.store_array(
                        A_BASE + warp * a_span,
                        input_pattern(self.a_words_per_warp, seed=warp + 1),
                    )
                if self.b_words_per_warp:
                    memory.store_array(
                        B_BASE + warp * b_span,
                        input_pattern(self.b_words_per_warp, seed=warp + 101),
                    )

        def setup_warp(state: WarpState, index: int) -> None:
            warp_size = state.warp_size
            state.vregs[0, :] = np.arange(warp_size, dtype=np.uint32)
            state.sregs[0] = A_BASE + index * a_span
            state.sregs[1] = B_BASE + index * b_span if b_span else 0
            state.sregs[2] = OUT_BASE + index * out_span
            state.sregs[3] = self.iterations
            stride = (
                self.stride_bytes(warp_size)
                if self.stride_bytes is not None
                else warp_size * 4
            )
            state.sregs[4] = stride
            state.sregs[7] = 0x9E37  # scalar parameter seed (see OSRB kernels)
            for reg_index, value in self.extra_sregs.items():
                state.sregs[reg_index] = value

        return LaunchSpec(
            kernel=kernel,
            setup_memory=setup_memory,
            setup_warp=setup_warp,
            num_warps=num_warps,
        )
