"""Extension workloads with divergent control: exec-masked kernels.

The Table I suite runs with a full exec mask (as the paper's benchmarks
effectively do inside their hot loops).  These two extra kernels exercise
the masked path — the save/narrow/restore idiom around predicated vector
writes — which stresses the read-modify-write handling in liveness, value
numbering and the generated routines (see
:mod:`repro.compiler.execmask`).  They are not part of the paper's
evaluation; the extension tests preempt them at every loop offset.

The lane predicate comes from a precomputed mask in ``s6`` (real kernels
produce it with vector compares into a mask register; our scalar-set ISA
models the resulting architectural state).  A single 32-bit scalar holds the
mask, so these workloads support warp sizes up to 32 (real GCN uses 64-bit
scalar *pairs* for the same job); launches default to 32 lanes.
"""

from __future__ import annotations

from ..isa.instruction import Kernel
from ..isa.registers import EXEC
from .builder import KernelBuilder, StandardLaunch, fbits, s, v


def build_sparse_relu(warp_size: int = 32) -> Kernel:
    """Predicated (sparse) leaky ReLU: only flagged lanes are rewritten.

    Per iteration: load x, narrow exec to the sparse lanes, rewrite them
    with the damped value, restore exec, store the merged register — the
    inactive lanes must carry the original x through the masked section,
    across any preemption point.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "sparse_relu",
        abbrev="SPR",
        provenance="extension",
        vgprs=12,
        sgprs=18,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_mov", v(10), fbits(0.125))  # damping factor, persistent
    b.loop_begin()
    for u in range(2):
        b.i("global_load", v(4 + u), v(2), u * w4)
    b.i("s_mov", s(8), EXEC)  # save the full mask
    b.i("s_mov", EXEC, s(6))  # narrow to the sparse lanes
    for u in range(2):
        b.i("v_mulf", v(6 + u), v(4 + u), v(10))  # masked damped values
    for u in range(2):
        b.i("v_mov", v(4 + u), v(6 + u))  # masked rewrite (RMW merge!)
    b.i("s_mov", EXEC, s(8))  # restore
    for u in range(2):
        b.i("global_store", v(3), v(4 + u), u * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_sparse_relu(
    warp_size: int = 32, iterations: int = 16, num_warps=None
) -> StandardLaunch:
    """Launch with lanes 0, 2, 4, ... flagged sparse (mask in s6)."""
    if warp_size > 32:
        raise ValueError("divergent workloads hold the mask in one 32-bit sreg")
    kernel = build_sparse_relu(warp_size)
    span = iterations * 2 * warp_size
    mask = sum(1 << lane for lane in range(0, warp_size, 2))
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        out_words_per_warp=span,
        stride_bytes=lambda w: 2 * w * 4,
        extra_sregs={6: mask & 0xFFFFFFFF},
        num_warps=num_warps,
    )


def build_masked_accumulate(warp_size: int = 32) -> Kernel:
    """Conditional accumulation: flagged lanes add into a running sum.

    The accumulator is written under the mask every iteration, so its value
    interleaves masked and unmasked history — the hardest case for a
    context switch that replays instructions.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "masked_accumulate",
        abbrev="MAC",
        provenance="extension",
        vgprs=10,
        sgprs=18,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_mov", v(8), 0)  # accumulator, persistent, partially rewritten
    b.loop_begin()
    b.i("global_load", v(4), v(2), 0)
    b.i("s_mov", s(8), EXEC)
    b.i("s_mov", EXEC, s(6))
    b.i("v_add", v(8), v(8), v(4))  # masked integer accumulation
    b.i("s_mov", EXEC, s(8))
    b.i("global_store", v(3), v(8), 0)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_masked_accumulate(
    warp_size: int = 32, iterations: int = 16, num_warps=None
) -> StandardLaunch:
    """Launch with the low half of the warp flagged."""
    if warp_size > 32:
        raise ValueError("divergent workloads hold the mask in one 32-bit sreg")
    kernel = build_masked_accumulate(warp_size)
    span = iterations * warp_size
    mask = (1 << (warp_size // 2)) - 1
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        out_words_per_warp=span,
        stride_bytes=lambda w: w * 4,
        extra_sregs={6: mask & 0xFFFFFFFF},
        num_warps=num_warps,
    )


DIVERGENT_WORKLOADS = {
    "sparse_relu": (build_sparse_relu, launch_sparse_relu),
    "masked_accumulate": (build_masked_accumulate, launch_masked_accumulate),
}
