"""BLAS-library kernel analogs (CLBlast [15]): VA, DOT, MM, MV.

Register budgets follow Table I (1 vector register = warp-size × 4 bytes):
VA 12 VGPRs (3 KB), DOT 24 (6 KB, 1 KB LDS), MM 52 (13 KB, 0.5 KB LDS),
MV 52 (13 KB, 0.25 KB LDS).

The loop bodies are shaped like ``-O3`` output on these kernels: a long
load phase fills most of the allocation (ILP scheduling keeps many values
in flight), a compute phase consumes it, and the live set collapses to the
loop-carried state at the iteration boundary.  That oscillation is the
live-register *variety* CTXBack exploits (paper §V-A).
"""

from __future__ import annotations

from ..isa.instruction import Kernel
from .builder import KernelBuilder, StandardLaunch, s, v


def build_va(warp_size: int = 64) -> Kernel:
    """Vector addition, unroll 3: out[i] = a[i] + b[i].

    Low pressure, nothing loop-carried but the pointers — the live set
    collapses between iterations, which is why the paper reports VA's
    largest context reductions (−78.2 % with CTXBack).
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "vector_add", abbrev="VA", provenance="CLBlast/Caffe", vgprs=12, sgprs=18,
        warps_per_block=6
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # a
    b.pointer(v(3), v(1), s(1))  # b
    b.pointer(v(4), v(1), s(2))  # out
    b.loop_begin()
    for u in range(3):
        b.i("global_load", v(5 + u), v(2), u * w4)
    for u in range(3):
        b.i("global_load", v(8 + u), v(3), u * w4)
    # early pointer increments (address generation ahead of the stores);
    # reverting recovers the pre-increment values when flashing back
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    for u in range(3):
        b.i("v_addf", v(5 + u), v(5 + u), v(8 + u))
    for u in range(3):
        b.i("global_store", v(4), v(5 + u), u * w4)
    b.i("v_add", v(4), v(4), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_va(warp_size: int = 64, iterations: int = 48, num_warps=None) -> StandardLaunch:
    kernel = build_va(warp_size)
    span = iterations * 3 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        b_words_per_warp=span,
        out_words_per_warp=span,
        stride_bytes=lambda w: 3 * w * 4,
        num_warps=num_warps,
    )


def build_dot(warp_size: int = 64) -> Kernel:
    """Dot product, unroll 8 with four accumulators + LDS tree step."""
    w4 = warp_size * 4
    b = KernelBuilder(
        "dot_product",
        abbrev="DOT",
        provenance="CLBlast/Caffe",
        vgprs=24,
        sgprs=18,
        lds_bytes=1024,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(1))
    for acc in range(6):
        b.i("v_mov", v(18 + acc), 0)
    b.loop_begin()
    for u in range(7):
        b.i("global_load", v(4 + u), v(2), u * w4)
    for u in range(7):
        b.i("global_load", v(11 + u), v(3), u * w4)
    # early pointer increments: overwritten before the MACs, recoverable by
    # instruction reverting when flashing back into the load phase
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    for u in range(7):
        b.i("v_madf", v(18 + (u % 6)), v(4 + u), v(11 + u), v(18 + (u % 6)))
    b.loop_end()
    # warp-level partial reduction through LDS (per-warp share, lane-indexed)
    b.i("v_addf", v(4), v(18), v(19))
    b.i("v_addf", v(5), v(20), v(21))
    b.i("v_addf", v(6), v(22), v(23))
    b.i("v_addf", v(4), v(4), v(5))
    b.i("v_addf", v(4), v(4), v(6))
    b.i("lds_write", v(1), v(4), 0)
    b.i("v_xor", v(7), v(1), 4)  # partner lane's slot
    b.i("lds_read", v(8), v(7), 0)
    b.i("v_addf", v(4), v(4), v(8))
    b.pointer(v(9), v(1), s(2))
    b.i("global_store", v(9), v(4), 0)
    b.end()
    return b.build()


def launch_dot(warp_size: int = 64, iterations: int = 30, num_warps=None) -> StandardLaunch:
    kernel = build_dot(warp_size)
    span = iterations * 7 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        b_words_per_warp=span,
        out_words_per_warp=warp_size,
        stride_bytes=lambda w: 7 * w * 4,
        num_warps=num_warps,
    )


def build_mm(warp_size: int = 64) -> Kernel:
    """Tiled matrix-matrix multiply: 12 accumulators, 24-register tile loads,
    LDS-staged B value — the paper's high-pressure BLAS/DL profile."""
    w4 = warp_size * 4
    share_words = max(1, 512 // 4)  # 0.5 KB per warp, in words
    mask = share_words - 1
    b = KernelBuilder(
        "matrix_multiply",
        abbrev="MM",
        provenance="CLBlast/Caffe",
        vgprs=52,
        sgprs=18,
        lds_bytes=512,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # A tile pointer
    b.pointer(v(3), v(1), s(1))  # B tile pointer
    b.pointer(v(4), v(1), s(2))  # C pointer
    b.i("v_and", v(25), v(0), mask)  # lane slot within the LDS share
    b.i("v_lshl", v(25), v(25), 2)
    for acc in range(16):
        b.i("v_mov", v(36 + acc), 0)
    b.loop_begin()
    for u in range(10):  # A tile column
        b.i("global_load", v(5 + u), v(2), u * w4)
    for u in range(10):  # B tile row
        b.i("global_load", v(15 + u), v(3), u * w4)
    # stage one B value through LDS (double-buffered tile in the real kernel)
    b.i("lds_write", v(25), v(15), 0)
    b.i("lds_read", v(26), v(25), 0)
    # rank-1 update of the accumulator tile
    for i in range(10):
        b.i("v_madf", v(36 + i), v(5 + i), v(15 + i), v(36 + i))
    b.i("v_add", v(2), v(2), s(4))  # early tile-pointer advance
    b.i("v_add", v(3), v(3), s(4))
    for i in range(8):
        b.i("v_mulf", v(27 + i), v(5 + (i % 10)), v(26))
    for i in range(8):
        b.i("v_addf", v(36 + 8 + i), v(36 + 8 + i), v(27 + i))
    b.loop_end()
    for i in range(16):
        b.i("global_store", v(4), v(36 + i), i * w4)
    b.end()
    return b.build()


def launch_mm(warp_size: int = 64, iterations: int = 20, num_warps=None) -> StandardLaunch:
    kernel = build_mm(warp_size)
    span = iterations * 10 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        b_words_per_warp=span,
        out_words_per_warp=16 * warp_size,
        stride_bytes=lambda w: 10 * w * 4,
        num_warps=num_warps,
    )


def build_mv(warp_size: int = 64) -> Kernel:
    """Matrix-vector multiply: x cached in registers, row-streamed matrix.

    Sixteen registers (x-cache + accumulators) stay live through the whole
    loop, so the live floor is high — a profile where flashing back buys
    less than on VA/RELU.
    """
    w4 = warp_size * 4
    share_words = max(1, 256 // 4)
    mask = share_words - 1
    b = KernelBuilder(
        "matrix_vector",
        abbrev="MV",
        provenance="CLBlast/Caffe",
        vgprs=52,
        sgprs=18,
        lds_bytes=256,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # matrix rows
    b.pointer(v(3), v(1), s(1))  # x vector
    b.pointer(v(4), v(1), s(2))  # y out
    b.i("v_and", v(29), v(0), mask)
    b.i("v_lshl", v(29), v(29), 2)
    for u in range(8):  # cache x in registers (persistent)
        b.i("global_load", v(36 + u), v(3), u * w4)
    for acc in range(8):
        b.i("v_mov", v(44 + acc), 0)
    b.i("v_mov", v(34), 0)  # running row norm, persistent
    b.i("v_mov", v(35), 0)  # running residual, persistent
    b.loop_begin()
    for u in range(16):
        b.i("global_load", v(5 + u), v(2), u * w4)
    for u in range(4):  # partial products with longer live ranges
        b.i("v_mulf", v(21 + u), v(5 + u), v(36 + u))
    for u in range(4):
        b.i("v_addf", v(44 + u), v(44 + u), v(21 + u))
    for u in range(4, 16):
        b.i("v_madf", v(44 + (u % 8)), v(5 + u), v(36 + (u % 8)), v(44 + (u % 8)))
    b.i("v_madf", v(34), v(5), v(5), v(34))
    b.i("v_addf", v(35), v(35), v(21))
    # stage a partial through LDS every iteration (vector gather pattern)
    b.i("lds_write", v(29), v(44), 0)
    b.i("lds_read", v(25), v(29), 0)
    b.i("v_addf", v(45), v(45), v(25))
    b.i("v_add", v(2), v(2), s(4))
    b.loop_end()
    for u in range(8):
        b.i("global_store", v(4), v(44 + u), u * w4)
    b.i("global_store", v(4), v(34), 8 * w4)
    b.i("global_store", v(4), v(35), 9 * w4)
    b.end()
    return b.build()


def launch_mv(warp_size: int = 64, iterations: int = 22, num_warps=None) -> StandardLaunch:
    kernel = build_mv(warp_size)
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=iterations * 16 * warp_size,
        b_words_per_warp=8 * warp_size,
        out_words_per_warp=10 * warp_size,
        stride_bytes=lambda w: 16 * w * 4,
        num_warps=num_warps,
    )
