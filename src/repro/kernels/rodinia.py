"""Rodinia benchmark analogs [16]: GE, HS, KM, MS.

Table I budgets: GE 32 VGPRs (8 KB), HS 28 (7 KB) + 12 KB LDS,
KM 52 (13 KB), MS 42 (10.5 KB).
"""

from __future__ import annotations

from ..isa.instruction import Kernel
from .builder import KernelBuilder, StandardLaunch, s, v


def build_ge(warp_size: int = 64) -> Kernel:
    """Gaussian elimination row update, unroll 6: row -= f · pivot_row."""
    w4 = warp_size * 4
    b = KernelBuilder(
        "gaussian_elimination", abbrev="GE", provenance="Rodinia", vgprs=32, sgprs=18,
        warps_per_block=2
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # row being eliminated
    b.pointer(v(3), v(1), s(1))  # pivot row
    b.pointer(v(4), v(1), s(2))  # output row
    b.i("global_load", v(31), v(3), 0)  # multiplier column (persistent)
    for u in range(8):  # pivot row cached across all row updates, persistent
        b.i("global_load", v(23 + u), v(3), (u + 1) * w4)
    b.loop_begin()
    for u in range(6):
        b.i("global_load", v(5 + u), v(2), u * w4)
    b.i("v_add", v(2), v(2), s(4))  # early row-pointer advance (revertible)
    for u in range(6):
        b.i("v_mulf", v(11 + u), v(23 + u), v(31))
    for u in range(6):
        b.i("v_subf", v(17 + u), v(5 + u), v(11 + u))
    for u in range(6):
        b.i("global_store", v(4), v(17 + u), u * w4)
    b.i("v_add", v(4), v(4), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_ge(warp_size: int = 64, iterations: int = 24, num_warps=None) -> StandardLaunch:
    kernel = build_ge(warp_size)
    span = iterations * 6 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        b_words_per_warp=9 * warp_size,
        out_words_per_warp=span,
        stride_bytes=lambda w: 6 * w * 4,
        num_warps=num_warps,
    )


def build_hs(warp_size: int = 64) -> Kernel:
    """Hybrid sort's LDS bucket stage: compare-exchange inside shared memory.

    12 KB of LDS per block dominates the occupied resources (>65 %, paper
    §V-A) — no mechanism reduces it, so every normalized context stays high
    for HS.
    """
    w4 = warp_size * 4
    share_words = 12 * 1024 // 4  # 12 KB per warp (Table I)
    lane_mask = min(share_words, warp_size) - 1
    b = KernelBuilder(
        "hybrid_sort",
        abbrev="HS",
        provenance="Rodinia",
        vgprs=28,
        sgprs=18,
        lds_bytes=12 * 1024,
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))
    b.pointer(v(3), v(1), s(2))
    b.i("v_and", v(20), v(0), lane_mask)
    b.i("v_lshl", v(20), v(20), 2)  # this lane's LDS slot
    b.i("v_xor", v(21), v(20), 4)  # partner slot
    b.loop_begin()
    for u in range(4):
        b.i("global_load", v(4 + u), v(2), u * w4)
    b.i("lds_write", v(20), v(4), 0)
    b.i("lds_write", v(21), v(5), 0)
    b.i("lds_read", v(8), v(20), 0)
    b.i("lds_read", v(9), v(21), 0)
    b.i("v_min", v(10), v(8), v(9))
    b.i("v_max", v(11), v(8), v(9))
    b.i("v_xor", v(10), v(10), s(7))  # bucket salt (scalar, updated below)
    b.i("v_xor", v(11), v(11), s(7))
    b.i("s_mul", s(7), s(7), 9)
    b.i("v_min", v(12), v(6), v(7))
    b.i("v_max", v(13), v(6), v(7))
    b.i("lds_write", v(20), v(10), 0)
    b.i("lds_write", v(21), v(11), 0)
    b.i("lds_read", v(14), v(20), 0)
    b.i("global_store", v(3), v(14), 0)
    b.i("global_store", v(3), v(11), w4)
    b.i("global_store", v(3), v(12), 2 * w4)
    b.i("global_store", v(3), v(13), 3 * w4)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_hs(warp_size: int = 64, iterations: int = 28, num_warps=None) -> StandardLaunch:
    kernel = build_hs(warp_size)
    span = iterations * 4 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        out_words_per_warp=span,
        stride_bytes=lambda w: 4 * w * 4,
        num_warps=num_warps,
    )


def build_km(warp_size: int = 64) -> Kernel:
    """K-means assignment step: 8 centroids × 2 dims cached in registers.

    Nineteen registers stay live through the whole loop (centroids, best
    distance, pointers), so the live floor is high and CTXBack decays
    towards LIVE — the paper singles KM out as the one kernel where LIVE's
    resuming time beats CTXBack's.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "kmeans", abbrev="KM", provenance="Rodinia", vgprs=52, sgprs=18,
        warps_per_block=5
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # points
    b.pointer(v(3), v(1), s(1))  # centroids
    b.pointer(v(4), v(1), s(2))  # best-distance out
    for k in range(16):  # 8 centroids × (x, y), persistent
        b.i("global_load", v(34 + k), v(3), k * w4)
    b.loop_begin()
    b.i("global_load", v(5), v(2), 0)  # point x
    b.i("global_load", v(6), v(2), w4)  # point y
    for c in range(8):  # all deltas first: long live ranges, as -O3 schedules
        b.i("v_subf", v(7 + c * 2), v(5), v(34 + c * 2))
        b.i("v_subf", v(8 + c * 2), v(6), v(35 + c * 2))
    for c in range(8):
        b.i("v_mulf", v(23 + c), v(7 + c * 2), v(7 + c * 2))
        b.i("v_madf", v(23 + c), v(8 + c * 2), v(8 + c * 2), v(23 + c))
    b.i("v_mov", v(51), 0x7F7FFFFF)  # best = +FLT_MAX
    for c in range(8):
        b.i("v_minf", v(51), v(51), v(23 + c))
    # epoch tag folded into the stored word; s7 advances irreversibly, an
    # OSRB candidate (paper: "mainly the iteration induction variable")
    b.i("v_xor", v(51), v(51), s(7))
    b.i("s_mul", s(7), s(7), 3)
    b.i("global_store", v(4), v(51), 0)
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(4), v(4), s(6))
    b.loop_end()
    b.end()
    return b.build()


def launch_km(warp_size: int = 64, iterations: int = 26, num_warps=None) -> StandardLaunch:
    kernel = build_km(warp_size)
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=(iterations + 1) * 2 * warp_size,
        b_words_per_warp=16 * warp_size,
        out_words_per_warp=iterations * warp_size,
        stride_bytes=lambda w: 2 * w * 4,
        extra_sregs={6: warp_size * 4},
        num_warps=num_warps,
    )


def build_ms(warp_size: int = 64) -> Kernel:
    """Merge sort pass, unroll 6: compare-exchange two sorted streams.

    The rank/index arithmetic uses integer adds and shifts — the
    address-calculation pattern the paper's reverting pass targets.
    """
    w4 = warp_size * 4
    b = KernelBuilder(
        "merge_sort", abbrev="MS", provenance="Rodinia", vgprs=42, sgprs=18,
        warps_per_block=3
    )
    b.lane_byte_offset(v(1))
    b.pointer(v(2), v(1), s(0))  # stream A
    b.pointer(v(3), v(1), s(1))  # stream B
    b.pointer(v(4), v(1), s(2))  # merged out
    b.i("v_lshl", v(36), v(1), 1)  # doubled lane offset, persistent
    for u in range(5):  # per-unit rank bases, persistent across iterations
        b.i("v_add", v(37 + u), v(36), v(4))
    b.loop_begin()
    for u in range(5):
        b.i("global_load", v(5 + u), v(2), u * w4)
    for u in range(5):
        b.i("global_load", v(10 + u), v(3), u * w4)
    for u in range(5):
        b.i("v_min", v(15 + u), v(5 + u), v(10 + u))
    for u in range(5):
        b.i("v_max", v(20 + u), v(5 + u), v(10 + u))
    # sequence tag mixed into the keys; s7 advances irreversibly (multiply),
    # making it an on-chip scalar-register-backup candidate (paper §III-D)
    b.i("v_xor", v(15), v(15), s(7))
    b.i("v_xor", v(20), v(20), s(7))
    b.i("s_mul", s(7), s(7), 5)
    b.i("s_add", s(7), s(7), 1)
    for u in range(5):  # rank arithmetic (integer adds/shifts: revertible)
        b.i("v_lshl", v(25 + u), v(1), 1)
        b.i("v_add", v(25 + u), v(25 + u), v(37 + u))
    for u in range(5):
        b.i("global_store", v(25 + u), v(15 + u), (u * 2) * w4)
        b.i("global_store", v(25 + u), v(20 + u), (u * 2 + 1) * w4)
    for u in range(5):  # advance rank bases (revertible integer adds)
        b.i("v_add", v(37 + u), v(37 + u), s(6))
    b.i("v_add", v(2), v(2), s(4))
    b.i("v_add", v(3), v(3), s(4))
    b.loop_end()
    b.end()
    return b.build()


def launch_ms(warp_size: int = 64, iterations: int = 20, num_warps=None) -> StandardLaunch:
    kernel = build_ms(warp_size)
    span = iterations * 5 * warp_size
    return StandardLaunch(
        kernel=kernel,
        iterations=iterations,
        a_words_per_warp=span,
        b_words_per_warp=span,
        out_words_per_warp=iterations * 10 * warp_size + 12 * warp_size,
        stride_bytes=lambda w: 5 * w * 4,
        extra_sregs={6: 10 * warp_size * 4},
        num_warps=num_warps,
    )
