"""Backward dataflow liveness analysis.

"An instruction's register context is just its live-in registers"
(paper §III-A).  Everything downstream — LIVE's context, CTXBack's
flashback-point ranking, CS-Defer's deferral target, CKPT's checkpoint
placement — consumes the per-instruction live sets computed here.

Implicit architectural reads/writes (``exec`` for vector ops, ``scc`` for
compares/conditional branches) are part of ``Instruction.uses``/``defs`` and
therefore flow through liveness like ordinary registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Program
from ..isa.registers import Reg, RegKind
from .cfg import CFG, build_cfg
from .execmask import partial_exec_positions


@dataclass
class LivenessInfo:
    """Per-instruction live sets for one program.

    ``live_in[i]`` is the register context of instruction ``i``: the set of
    registers whose values are needed at the moment the preemption signal is
    processed before executing ``i``.
    """

    program: Program
    cfg: CFG
    live_in: list[frozenset[Reg]]
    live_out: list[frozenset[Reg]]

    def context_regs(self, position: int) -> frozenset[Reg]:
        """Register context of the instruction at *position* (= live-in)."""
        return self.live_in[position]

    def block_live_in(self, block_index: int) -> frozenset[Reg]:
        block = self.cfg.blocks[block_index]
        if len(block) == 0:
            return frozenset()
        return self.live_in[block.start]

    def block_live_out(self, block_index: int) -> frozenset[Reg]:
        block = self.cfg.blocks[block_index]
        if len(block) == 0:
            return frozenset()
        return self.live_out[block.end - 1]


def analyze_liveness(
    program: Program,
    cfg: CFG | None = None,
    partial_exec: frozenset[int] | None = None,
) -> LivenessInfo:
    """Compute live-in/live-out per instruction with a block-level worklist.

    Standard backward may-analysis:
    ``out[B] = union(in[S] for S in succ(B))``,
    ``in[B] = use[B] | (out[B] - def[B])`` computed instruction-wise.

    Vector writes at *partial_exec* positions (see
    :mod:`repro.compiler.execmask`) are read-modify-write: the destination
    is also a use, and the write does not kill liveness upward — the
    inactive lanes flow through.  ``partial_exec=None`` computes the set.
    """
    cfg = cfg or build_cfg(program)
    if partial_exec is None:
        partial_exec = partial_exec_positions(program, cfg)
    num_blocks = len(cfg.blocks)

    def effective(position: int):
        """(uses, killing_defs) with RMW semantics applied."""
        instruction = program.instructions[position]
        uses = list(instruction.uses())
        defs = list(instruction.defs())
        if position in partial_exec:
            rmw = [d for d in defs if d.kind is RegKind.VECTOR]
            uses.extend(rmw)
            defs = [d for d in defs if d.kind is not RegKind.VECTOR]
        return uses, defs

    # Block-local use/def summaries.
    block_use: list[set[Reg]] = []
    block_def: list[set[Reg]] = []
    for block in cfg.blocks:
        use: set[Reg] = set()
        defs: set[Reg] = set()
        for position in block.positions():
            uses, killing = effective(position)
            for reg in uses:
                if reg not in defs:
                    use.add(reg)
            defs.update(killing)
        block_use.append(use)
        block_def.append(defs)

    block_in: list[frozenset[Reg]] = [frozenset()] * num_blocks
    block_out: list[frozenset[Reg]] = [frozenset()] * num_blocks

    worklist = list(range(num_blocks))
    in_worklist = [True] * num_blocks
    while worklist:
        block_index = worklist.pop()
        in_worklist[block_index] = False
        block = cfg.blocks[block_index]
        out: set[Reg] = set()
        for succ in block.successors:
            out.update(block_in[succ])
        new_in = frozenset(block_use[block_index] | (out - block_def[block_index]))
        block_out[block_index] = frozenset(out)
        if new_in != block_in[block_index]:
            block_in[block_index] = new_in
            for pred in block.predecessors:
                if not in_worklist[pred]:
                    worklist.append(pred)
                    in_worklist[pred] = True

    # Instruction-level sets by a backward sweep inside each block.
    n = len(program.instructions)
    live_in: list[frozenset[Reg]] = [frozenset()] * n
    live_out: list[frozenset[Reg]] = [frozenset()] * n
    for block in cfg.blocks:
        live: set[Reg] = set(block_out[block.index])
        for position in reversed(block.positions()):
            uses, killing = effective(position)
            live_out[position] = frozenset(live)
            live.difference_update(killing)
            live.update(uses)
            live_in[position] = frozenset(live)
    return LivenessInfo(program, cfg, live_in, live_out)
