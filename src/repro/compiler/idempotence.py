"""Idempotent-region analysis.

Flashback-points must lie inside an idempotent region (paper §III-E): the
in-between instructions are re-executed during resume, which is only safe if
executing them again has the same effect (de Kruijf et al. [13]).

For a straight-line range the hazard is the *load-before-store* (WAR through
memory) pattern: if a load at position ``i`` may alias a store at a later
position ``j``, then after the store has executed, re-running the load reads
the new value instead of the one the original execution saw.  Stores
themselves are harmless to re-execute (they rewrite the same bytes), and a
load *after* an aliasing store re-reads exactly the committed value.

GPUs kernels overwhelmingly read input buffers and write disjoint output
buffers; the benchmark kernels carry a ``noalias`` annotation reflecting
that, under which whole basic blocks are idempotent — matching the paper's
observation that basic-block-sized regions are "sufficient for finding a good
enough flashback-point".
"""

from __future__ import annotations

import enum

from ..isa.instruction import Program
from ..isa.opcodes import MemKind


class AliasModel(enum.Enum):
    """How conservatively *global* loads and stores are assumed to overlap.

    LDS reads and writes within one thread block hit the same small buffer
    by construction (that is what shared memory is for), so LDS
    read-before-write hazards are enforced under *both* models; the flag
    only waives global-buffer aliasing (disjoint in/out arrays).
    """

    #: Global loads and stores never alias (annotated disjoint buffers).
    NO_ALIAS = "no_alias"
    #: Any global load may alias any global store.  Scalar (SMEM) loads read
    #: read-only launch constants under both models.
    MAY_ALIAS = "may_alias"


_GLOBAL = {MemKind.GLOBAL_LOAD: "load", MemKind.GLOBAL_STORE: "store"}
_LDS = {MemKind.LDS_READ: "load", MemKind.LDS_WRITE: "store"}


def idempotent_region_start(
    program: Program,
    block_start: int,
    position: int,
    alias_model: AliasModel = AliasModel.MAY_ALIAS,
) -> int:
    """Earliest region start ``p`` so that ``[p, position)`` is idempotent.

    Scans backwards from *position*; once a store has been seen (scanning
    backwards), the first potentially-aliasing load encountered breaks the
    region: the region must begin after that load.
    """
    if not block_start <= position:
        raise ValueError("position must not precede block_start")
    track_global = alias_model is AliasModel.MAY_ALIAS

    seen_global_store = False
    seen_lds_store = False
    for pos in range(position - 1, block_start - 1, -1):
        mem = program.instructions[pos].spec.mem
        if mem is None:
            continue
        if track_global:
            role = _GLOBAL.get(mem)
            if role == "store":
                seen_global_store = True
                continue
            if role == "load" and seen_global_store:
                return pos + 1
        role = _LDS.get(mem)
        if role == "store":
            seen_lds_store = True
            continue
        if role == "load" and seen_lds_store:
            return pos + 1
    return block_start


def region_is_idempotent(
    program: Program,
    start: int,
    end: int,
    alias_model: AliasModel = AliasModel.MAY_ALIAS,
) -> bool:
    """True if re-executing ``[start, end)`` is safe under *alias_model*."""
    return idempotent_region_start(program, start, end, alias_model) == start
