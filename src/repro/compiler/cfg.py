"""Control-flow graph construction.

CTXBack restricts flashback-points to the basic block of the preempted
instruction (paper §III-E): the control flow between the flashback-point and
``I_cur`` must be statically determinable.  GPU kernels have large basic
blocks (simple control logic), which is what makes this restriction cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Program


@dataclass
class BasicBlock:
    """Half-open instruction range ``[start, end)`` of a program."""

    index: int
    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start

    def __contains__(self, position: int) -> bool:
        return self.start <= position < self.end

    def positions(self) -> range:
        return range(self.start, self.end)


@dataclass
class CFG:
    """Basic blocks plus a position -> block lookup."""

    program: Program
    blocks: list[BasicBlock]
    block_of: list[int]  # instruction position -> block index

    def block_at(self, position: int) -> BasicBlock:
        return self.blocks[self.block_of[position]]

    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def __len__(self) -> int:
        return len(self.blocks)


def build_cfg(program: Program) -> CFG:
    """Split *program* into basic blocks and wire successor edges.

    Leaders are: position 0, every branch target, and every instruction
    following a terminator.  ``s_endpgm`` has no successors; a conditional
    branch falls through to the next block and jumps to its target.
    """
    program.validate()
    n = len(program.instructions)
    if n == 0:
        return CFG(program, [BasicBlock(0, 0, 0)], [])

    leaders = {0}
    for position, instruction in enumerate(program.instructions):
        target = instruction.branch_target
        if target is not None:
            leaders.add(program.target_index(target))
        if instruction.spec.is_terminator and position + 1 < n:
            leaders.add(position + 1)
    starts = sorted(leader for leader in leaders if leader < n)

    blocks: list[BasicBlock] = []
    for block_index, start in enumerate(starts):
        end = starts[block_index + 1] if block_index + 1 < len(starts) else n
        blocks.append(BasicBlock(block_index, start, end))

    block_of = [0] * n
    for block in blocks:
        for position in block.positions():
            block_of[position] = block.index

    start_to_block = {block.start: block.index for block in blocks}
    for block in blocks:
        last = program.instructions[block.end - 1]
        spec = last.spec
        succs: list[int] = []
        target = last.branch_target
        if target is not None:
            target_pos = program.target_index(target)
            if target_pos < n:
                succs.append(start_to_block[target_pos])
        if spec.mnemonic == "s_endpgm":
            pass  # program exit
        elif spec.mnemonic == "s_branch":
            pass  # unconditional: target only
        elif block.end < n:
            succs.append(start_to_block[block.end])
        # dedupe while keeping order (cond branch to fallthrough)
        seen: set[int] = set()
        block.successors = [s for s in succs if not (s in seen or seen.add(s))]

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)
    return CFG(program, blocks, block_of)
