"""Exec-mask state analysis: where are vector writes *partial*?

Under a full exec mask a vector write defines the whole register; under a
partial mask it is a read-modify-write — the inactive lanes keep their old
values, so the "new" value depends on the old one.  Liveness and value
numbering must know the difference: treating a masked write as a full kill
loses the inactive lanes across a preemption (the exec-divergence regression
suite pins this down).

The analysis is a small symbolic pass tracking whether ``exec`` holds the
kernel's entry (full) mask:

* at kernel entry ``exec`` is FULL;
* ``s_mov sX, exec`` records that ``sX`` holds the current mask token;
* ``s_mov exec, sX`` restores whatever token ``sX`` holds (the common
  save/narrow/restore idiom becomes precise);
* any other write to ``exec`` — or to a tracked ``sX`` — degrades to UNKNOWN.

Kernels that never write ``exec`` (all twelve benchmarks) get an empty
partial set and zero precision loss.  When ``exec`` is written anywhere,
non-entry basic blocks conservatively start UNKNOWN.
"""

from __future__ import annotations

from ..isa.instruction import Program
from ..isa.registers import EXEC, RegKind
from .cfg import CFG, build_cfg

_FULL = "full"
_UNKNOWN = "unknown"


def partial_exec_positions(program: Program, cfg: CFG | None = None) -> frozenset[int]:
    """Positions whose vector writes may execute under a partial exec mask."""
    instructions = program.instructions
    if not any(EXEC in i.defs() for i in instructions):
        return frozenset()

    cfg = cfg or build_cfg(program)
    partial: set[int] = set()
    for block in cfg.blocks:
        exec_token = _FULL if block.index == 0 else _UNKNOWN
        holders: dict[int, str] = {}  # sreg index -> token it holds
        for pos in block.positions():
            instruction = instructions[pos]
            if exec_token is not _FULL and any(
                d.kind is RegKind.VECTOR for d in instruction.defs()
            ):
                partial.add(pos)
            # transfer function
            if instruction.mnemonic == "s_mov":
                dst = instruction.dsts[0]
                src = instruction.srcs[0]
                if dst == EXEC:
                    if (
                        hasattr(src, "kind")
                        and getattr(src, "kind", None) is RegKind.SCALAR
                        and src.index in holders
                    ):
                        exec_token = holders[src.index]
                    else:
                        exec_token = _UNKNOWN
                    continue
                if dst.kind is RegKind.SCALAR:
                    if src == EXEC:
                        holders[dst.index] = exec_token
                    else:
                        holders.pop(dst.index, None)
                    continue
            for reg in instruction.defs():
                if reg == EXEC:
                    exec_token = _UNKNOWN
                elif reg.kind is RegKind.SCALAR:
                    holders.pop(reg.index, None)
    return frozenset(partial)


def rmw_dsts(program: Program, pos: int, partial: frozenset[int]):
    """Destination registers with read-modify-write semantics at *pos*."""
    if pos not in partial:
        return ()
    return tuple(
        d
        for d in program.instructions[pos].defs()
        if d.kind is RegKind.VECTOR
    )
