"""Classic compiler analyses the CTXBack pass builds on.

* :mod:`.cfg` — basic blocks / control-flow graph;
* :mod:`.liveness` — per-instruction live register sets (= register
  contexts, paper §III-A);
* :mod:`.usedef` — copy-propagating local value numbering (use-define
  chains over *values*, not register names);
* :mod:`.idempotence` — idempotent-region boundaries (paper §III-E).
"""

from .cfg import CFG, BasicBlock, build_cfg
from .execmask import partial_exec_positions, rmw_dsts
from .idempotence import (
    AliasModel,
    idempotent_region_start,
    region_is_idempotent,
)
from .liveness import LivenessInfo, analyze_liveness
from .usedef import Kill, RegionValues, Value, number_region

__all__ = [
    "AliasModel",
    "BasicBlock",
    "CFG",
    "Kill",
    "LivenessInfo",
    "RegionValues",
    "Value",
    "analyze_liveness",
    "build_cfg",
    "idempotent_region_start",
    "number_region",
    "partial_exec_positions",
    "rmw_dsts",
    "region_is_idempotent",
]
