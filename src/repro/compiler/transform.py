"""Program editing: label-safe instruction insertion.

Used by the two instrumentation passes — on-chip scalar register backup
(``s_mov`` copies at block entries, paper §III-D) and CKPT probes.  Labels at
an insertion point end up pointing *at* the inserted instruction, so an
instruction inserted at a loop header executes on every iteration.
"""

from __future__ import annotations

from bisect import bisect_left

from ..isa.instruction import Instruction, Program


def insert_instructions(
    program: Program, insertions: list[tuple[int, Instruction]]
) -> tuple[Program, list[int]]:
    """Insert instructions before the given original positions.

    Returns the new program and the new index of each inserted instruction
    (in the order given).  Multiple insertions at the same position keep
    their relative order.  Branch targets shift automatically because labels
    are index-based.
    """
    ordered = sorted(range(len(insertions)), key=lambda i: insertions[i][0])
    positions = [insertions[i][0] for i in ordered]
    n = len(program.instructions)
    for pos in positions:
        if not 0 <= pos <= n:
            raise ValueError(f"insertion position {pos} outside program")

    new_instructions: list[Instruction] = []
    new_positions_ordered: list[int] = []
    take = 0
    for old_pos in range(n + 1):
        while take < len(ordered) and positions[take] == old_pos:
            new_positions_ordered.append(len(new_instructions))
            new_instructions.append(insertions[ordered[take]][1])
            take += 1
        if old_pos < n:
            new_instructions.append(program.instructions[old_pos])

    new_labels = {
        name: idx + bisect_left(positions, idx)
        for name, idx in program.labels.items()
    }
    new_program = Program(new_instructions, new_labels)
    new_program.validate()

    new_positions = [0] * len(insertions)
    for rank, original_index in enumerate(ordered):
        new_positions[original_index] = new_positions_ordered[rank]
    return new_program, new_positions


def shifted_position(
    insertion_positions: list[int], original_position: int
) -> int:
    """Where an original instruction lands after the insertions.

    An insertion *at* the original position goes before it, shifting it.
    """
    from bisect import bisect_right

    ordered = sorted(insertion_positions)
    return original_position + bisect_right(ordered, original_position)
