"""Use-define chains via copy-propagating local value numbering.

Paper §III-A identifies flashback-points with "the use-define chains analyzed
from the assembly code".  Registers are heavily reused on GPUs, so
"available" is really a property of a *value* — one particular definition —
not of a register name.  This module numbers every value produced in a
straight-line block prefix and records, per instruction, which values it
reads and writes, plus which value each write *kills*.  The CTXBack layers
(availability, reverting, OSRB) are all phrased over these values.

Copy propagation is what makes on-chip scalar register backup (paper §III-D)
fall out of the general machinery: after ``s_mov s11, s4`` both registers
hold the *same* value, so if ``s4`` is later overwritten the value survives
in ``s11`` and is directly saveable from there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Imm, Instruction, Program
from ..isa.registers import Reg


@dataclass(frozen=True)
class Value:
    """One dynamic value of the region: a register definition or entry state.

    ``home`` is the register that first received the value; ``def_pos`` the
    program position of the defining instruction, or -1 for values that flow
    into the region (block-entry register state).
    """

    vid: int
    home: Reg
    def_pos: int

    @property
    def is_entry(self) -> bool:
        return self.def_pos < 0

    def __repr__(self) -> str:
        origin = "entry" if self.is_entry else f"@{self.def_pos}"
        return f"Value({self.home}:{origin}#{self.vid})"


#: register-to-register move mnemonics through which values copy-propagate.
#: Public: the plan verifier (repro.verify) interprets the same set of
#: mnemonics as exact copies, so the two must never diverge.
COPY_MNEMONICS = frozenset({"s_mov", "v_mov"})
_COPY_MNEMONICS = COPY_MNEMONICS  # backwards-compatible alias


@dataclass
class Kill:
    """Record that executing *pos* overwrote *old* in destination slot *slot*."""

    pos: int
    slot: int
    old: Value


@dataclass
class RegionValues:
    """Value numbering of the straight-line range ``[start, end)``.

    Exposes:

    * ``use_values[pos]`` — values read by the instruction (aligned with
      ``Instruction.uses()``, implicit reads included);
    * ``def_values[pos]`` — values written (aligned with ``defs()``);
    * ``pre_def_values[pos]`` — the values the destination registers held
      *before* the instruction executed (what reverting recovers);
    * ``end_state`` — register -> value at the end of the range (the physical
      register file contents when a preemption signal arrives at ``end``);
    * ``kills_of[value]`` — where a value was overwritten (used to find
      revert opportunities).
    """

    start: int
    end: int
    entry: dict[Reg, Value] = field(default_factory=dict)
    #: positions whose vector writes are read-modify-write (partial exec)
    partial_exec: frozenset[int] = frozenset()
    #: per position, the registers read — instruction uses plus, at RMW
    #: positions, the vector destinations (pre-values appended to use_values)
    effective_uses: list[tuple[Reg, ...]] = field(default_factory=list)
    use_values: list[tuple[Value, ...]] = field(default_factory=list)
    def_values: list[tuple[Value, ...]] = field(default_factory=list)
    pre_def_values: list[tuple[Value, ...]] = field(default_factory=list)
    end_state: dict[Reg, Value] = field(default_factory=dict)
    kills_of: dict[Value, list[Kill]] = field(default_factory=dict)
    _values: list[Value] = field(default_factory=list)

    def value_count(self) -> int:
        return len(self._values)

    def use_values_at(self, pos: int) -> tuple[Value, ...]:
        return self.use_values[pos - self.start]

    def effective_uses_at(self, pos: int) -> tuple[Reg, ...]:
        """Registers read at *pos*, aligned with ``use_values_at``."""
        return self.effective_uses[pos - self.start]

    def def_values_at(self, pos: int) -> tuple[Value, ...]:
        return self.def_values[pos - self.start]

    def pre_def_values_at(self, pos: int) -> tuple[Value, ...]:
        return self.pre_def_values[pos - self.start]

    def live_regs_holding(self, value: Value) -> list[Reg]:
        """Registers that hold *value* in the end state (may be several)."""
        return [reg for reg, v in self.end_state.items() if v is value]


def number_region(
    program: Program,
    start: int,
    end: int,
    entry_regs=None,
    partial_exec: frozenset[int] = frozenset(),
) -> RegionValues:
    """Run local value numbering over ``program[start:end)``.

    ``entry_regs`` optionally seeds which registers get entry values;
    by default every register read before being written gets one, as do the
    registers named in the seed (useful to give live-in registers identities
    even if first access in the range is a write).

    At *partial_exec* positions (see :mod:`repro.compiler.execmask`) a
    vector write merges with the old register contents, so the destination's
    pre-value is appended to the instruction's use values: re-executing such
    an instruction requires the old value to be back in the register.
    """
    region = RegionValues(start=start, end=end, partial_exec=partial_exec)
    next_vid = 0

    def fresh(home: Reg, def_pos: int) -> Value:
        nonlocal next_vid
        value = Value(next_vid, home, def_pos)
        next_vid += 1
        region._values.append(value)
        return value

    state: dict[Reg, Value] = {}

    def value_of(reg: Reg) -> Value:
        value = state.get(reg)
        if value is None:
            value = fresh(reg, -1)
            state[reg] = value
            region.entry[reg] = value
        return value

    for reg in entry_regs or ():
        value_of(reg)

    for pos in range(start, end):
        instruction: Instruction = program.instructions[pos]
        use_regs = list(instruction.uses())
        if pos in partial_exec:
            from ..isa.registers import RegKind

            use_regs.extend(
                d for d in instruction.defs() if d.kind is RegKind.VECTOR
            )
        region.effective_uses.append(tuple(use_regs))
        uses = tuple(value_of(reg) for reg in use_regs)
        region.use_values.append(uses)

        defs = instruction.defs()
        pre = tuple(value_of(reg) for reg in defs)
        region.pre_def_values.append(pre)

        new_values: list[Value] = []
        # a masked v_mov merges with the inactive lanes: it is NOT a copy,
        # so the destination must get a fresh value identity
        copied = (
            None
            if pos in partial_exec
            else _copy_source_value(instruction, state, value_of)
        )
        for slot, reg in enumerate(defs):
            old = pre[slot]
            if copied is not None and slot == 0:
                new = copied
            else:
                new = fresh(reg, pos)
            if old is not new:
                region.kills_of.setdefault(old, []).append(Kill(pos, slot, old))
            state[reg] = new
            new_values.append(new)
        region.def_values.append(tuple(new_values))

    region.end_state = dict(state)
    return region


def _copy_source_value(instruction: Instruction, state, value_of):
    """For register-to-register moves, return the propagated source value."""
    if instruction.mnemonic not in _COPY_MNEMONICS:
        return None
    src = instruction.srcs[0]
    if isinstance(src, Imm):
        return None
    if isinstance(src, Reg):
        return value_of(src)
    return None
