"""Human-readable timelines of preemption experiments.

Turns an :class:`~repro.sim.gpu.ExperimentResult` into the event sequence a
systems person wants to see: per warp, when the signal hit, how long the
dedicated routine ran, when the warp came back, and what it cost — the
textual form of the paper's latency/overhead story.
"""

from __future__ import annotations

from ..sim.config import GPUConfig
from ..sim.gpu import ExperimentResult


def render_timeline(result: ExperimentResult, config: GPUConfig) -> str:
    """One line per warp event, cycles and µs."""
    lines = [
        f"mechanism {result.mechanism}: {len(result.measurements)} warps "
        f"preempted, total {result.total_cycles} cycles "
        f"({config.cycles_to_us(result.total_cycles):.1f} µs)"
    ]
    # tie-break same-cycle signals on warp id — a bare signal_cycle key
    # leaves the order at the mercy of list order, and the timeline must
    # be deterministic for identical runs
    for measurement in sorted(
        result.measurements, key=lambda m: (m.signal_cycle, m.warp_id)
    ):
        evicted = measurement.signal_cycle + measurement.latency_cycles
        lines.append(
            f"  warp {measurement.warp_id}: signal @ {measurement.signal_cycle} "
            f"(pc {measurement.signal_pc}"
            + (
                f", flashback {measurement.flashback_pos}"
                if measurement.flashback_pos is not None
                else ""
            )
            + f") -> evicted @ {evicted} "
            f"[latency {measurement.latency_cycles} cyc = "
            f"{config.cycles_to_us(measurement.latency_cycles):.1f} µs, "
            f"context {measurement.context_bytes} B]"
        )
        if measurement.resume_cycles is not None:
            lines.append(
                f"           resume cost {measurement.resume_cycles} cyc = "
                f"{config.cycles_to_us(measurement.resume_cycles):.1f} µs"
            )
    # `is not None`, not truthiness: a 0-cycle reference (degenerate
    # launch) is a real measurement and must still be reported — just
    # without a slowdown ratio, which would divide by zero
    if result.reference_cycles is not None:
        line = f"  uninterrupted reference: {result.reference_cycles} cycles"
        if result.reference_cycles > 0:
            slowdown = result.total_cycles / result.reference_cycles
            line += f" (this run: {slowdown:.2f}x)"
        lines.append(line)
    lines.append(f"  memory verified: {result.verified}")
    return "\n".join(lines)
