"""Measurement helpers shared by the experiment drivers.

Static context statistics are weighted by *dynamic execution counts* (a
reference-run PC histogram): the paper's kernels spend essentially all of
their time in the persistent-thread main loop, so a uniform static mean
would over-weight preamble/epilogue instructions that almost never host a
preemption signal.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field

from ..compiler.cfg import build_cfg
from ..ctxback.context import baseline_context_bytes
from ..kernels.builder import StandardLaunch
from ..mechanisms.base import PreparedKernel
from ..sim.config import GPUConfig
from ..sim.gpu import run_reference


def _launch_parts(launch: StandardLaunch, config: GPUConfig) -> dict:
    """Content description of a (launch, config) pair for the weights cache.

    Everything the PC histogram can depend on: the kernel's assembly and
    resources, the full config, and the launch shape (iteration count,
    warp count, buffer spans, extra ABI registers, resolved stride).  The
    ``stride_bytes`` callable is canonicalized by its *resolved* value at
    this warp size — the only form the simulation ever observes.
    """
    from .cache import canonical, describe_kernel

    warp_size = config.warp_size
    return {
        "kernel": describe_kernel(launch.kernel),
        "config": canonical(config),
        "iterations": launch.iterations,
        "num_warps": launch.num_warps or launch.kernel.warps_per_block,
        "a_words": launch.a_words_per_warp,
        "b_words": launch.b_words_per_warp,
        "out_words": launch.out_words_per_warp,
        "extra_sregs": canonical(launch.extra_sregs),
        "stride": launch.stride_bytes(warp_size)
        if launch.stride_bytes is not None
        else warp_size * 4,
    }


def dynamic_pc_weights(launch: StandardLaunch, config: GPUConfig) -> dict[int, int]:
    """Execution count per program counter from one reference run.

    Cached in the content-addressed artifact store keyed on the launch
    spec + config, so repeated figure drivers (and anything else asking
    for the same histogram) pay the reference simulation once instead of
    on every call.
    """
    from .cache import get_cache

    def build() -> dict[int, int]:
        result = run_reference(launch.spec(), config)
        return dict(result.sm.stats.pc_hist)

    return get_cache().get_or_create(
        "weights", _launch_parts(launch, config), build
    )


def weighted_context_bytes(
    prepared: PreparedKernel, weights: dict[int, int]
) -> float:
    """Execution-weighted mean context size of a prepared kernel.

    For CKPT the "context" of a position is the checkpoint its basic block
    saves (the paper's minimum-possible-size line in Fig. 7).
    """
    total = sum(weights.values())
    if total == 0:
        raise ValueError("empty pc histogram")
    if prepared.is_checkpoint_based:
        cfg = build_cfg(prepared.kernel.program)
        by_block = {site.probe_id: site.nbytes for site in prepared.ckpt_sites.values()}
        return (
            sum(by_block.get(cfg.block_of[pc], 0) * w for pc, w in weights.items())
            / total
        )
    return (
        sum(prepared.plans[pc].context_bytes * w for pc, w in weights.items()) / total
    )


@dataclass
class KernelRow:
    """One benchmark's values across mechanisms (normalized to BASELINE).

    A ``None`` value marks a cell whose work unit failed permanently under
    ``FailurePolicy.COLLECT`` — rendered as an explicit FAILED cell and
    skipped by the cross-kernel means.
    """

    key: str
    abbrev: str
    baseline_value: float | None
    normalized: dict[str, float | None] = field(default_factory=dict)


@dataclass
class FigureData:
    """One figure's full data: per-kernel rows plus cross-kernel means."""

    title: str
    rows: list[KernelRow]
    #: free-form notes carried into the report (calibration caveats etc.)
    notes: list[str] = field(default_factory=list)

    def mean(self, mechanism: str) -> float:
        """Cross-kernel mean, skipping FAILED (None) cells; NaN when every
        cell failed (keeps partial reports renderable)."""
        values = [
            row.normalized[mechanism]
            for row in self.rows
            if row.normalized[mechanism] is not None
        ]
        return statistics.mean(values) if values else float("nan")

    def mean_reduction_pct(self, mechanism: str) -> float:
        return 100.0 * (1.0 - self.mean(mechanism))

    def subset_mean(self, mechanism: str, keys) -> float | None:
        """Mean over the given kernel subset; None when no row matches
        (e.g. a ``--keys`` selection that excludes the whole subset)."""
        wanted = set(keys)
        values = [
            row.normalized[mechanism]
            for row in self.rows
            if row.key in wanted and row.normalized[mechanism] is not None
        ]
        return statistics.mean(values) if values else None

    def mechanisms(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for name in row.normalized:
                if name not in names:
                    names.append(name)
        return names

    def to_dict(self) -> dict:
        """JSON-ready structure (for artifacts / downstream plotting)."""
        return {
            "title": self.title,
            "rows": [
                {
                    "key": row.key,
                    "abbrev": row.abbrev,
                    "baseline": row.baseline_value,
                    "normalized": dict(row.normalized),
                }
                for row in self.rows
            ],
            "means": {m: self.mean(m) for m in self.mechanisms()},
            "notes": list(self.notes),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), indent=2, **kwargs)


def kernel_baseline_bytes(launch: StandardLaunch, config: GPUConfig) -> int:
    return baseline_context_bytes(launch.kernel, config.rf_spec)
