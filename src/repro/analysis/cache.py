"""Persistent, content-addressed artifact cache for experiment work.

Every figure driver needs the same expensive intermediates — prepared
kernels (the CTXBack compiler pass), dynamic-PC weight histograms, reference
run profiles and preemption-experiment measurements.  All of them are
deterministic functions of their inputs, so they are stored on disk keyed by
a **content hash** of everything the computation depends on: the kernel's
assembly text and resource declaration, the full :class:`GPUConfig`, the
mechanism (and its :class:`CtxBackConfig`, where applicable), iteration
count and a schema version.  Two presets that differ in *any* field — e.g.
``radeon_vii`` vs ``radeon_vii_contended``, which share a warp size — can
therefore never alias (the bug the old per-process dict keys had).

Layout (default root ``~/.cache/repro``, override ``REPRO_CACHE_DIR``)::

    <root>/<kind>/<sha256>.pkl     pickled artifact + integrity footer
    <root>/stats.json              cumulative hit/miss counters
    <root>/stats.lock              fcntl lockfile guarding stats.json merges

Entry format (schema 2): the pickled payload followed by a fixed-size
footer — a 4-byte magic (``RCK2``) and the sha256 digest of the payload.
The footer catches *both* truncated and bit-flipped entries, where the old
format only detected payloads that failed to unpickle.  Entries are written
atomically (temp file + ``os.replace``), so concurrent engine workers may
race to create the same key but never corrupt it.  Unreadable, truncated or
checksum-mismatching entries are deleted on access and counted as
*invalidations*.

Capacity: set ``REPRO_CACHE_MAX_BYTES`` to cap the on-disk size; after
every store the least-recently-used entries (by mtime — hits refresh it)
are evicted until the store fits, counted as *evictions*.  Set
``REPRO_CACHE=0`` to disable persistence (an in-memory layer still dedups
within the process).

``python -m repro cache`` prints the inventory and counters;
``python -m repro cache --clear`` empties the store.
"""

from __future__ import annotations

import atexit
import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX only; the lock degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-posix
    fcntl = None  # type: ignore[assignment]

#: bump when the pickled artifact representation or key layout changes;
#: part of every content hash, so old entries are simply never hit again.
#: 2: integrity footer (payload sha256) appended to every entry.
#: 3: resume delivered exactly at resume_at (experiment timings changed)
#:    and experiment profiles carry ``resume: None`` for absent data.
#: 4: ``recovery_cycles`` is Optional (``None`` = no recovery data, 0 = a
#:    legitimate zero-cost fallback); cached experiment/chaos profiles sum
#:    it with an ``is None`` filter instead of coercing absent to 0.
SCHEMA_VERSION = 4

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_CACHE"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: entry footer: magic + sha256(payload); appended after the pickled payload
_FOOTER_MAGIC = b"RCK2"
_FOOTER_LEN = len(_FOOTER_MAGIC) + 32


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def cache_max_bytes_by_env() -> int:
    """On-disk size cap from ``REPRO_CACHE_MAX_BYTES`` (0 = unlimited)."""
    raw = os.environ.get(_ENV_MAX_BYTES, "").strip()
    try:
        return max(0, int(raw)) if raw else 0
    except ValueError:
        return 0


# -- canonical content description ---------------------------------------------


def canonical(value):
    """JSON-representable canonical form of *value* for content hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache key")


def describe_kernel(kernel) -> dict:
    """Content description of a kernel: assembly text + resource footprint."""
    from ..isa.assembler import serialize

    return {
        "asm": serialize(kernel.program),
        "vgprs_used": kernel.vgprs_used,
        "sgprs_used": kernel.sgprs_used,
        "lds_bytes": kernel.lds_bytes,
        "noalias": kernel.noalias,
        "warps_per_block": kernel.warps_per_block,
    }


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.stores, self.invalidations, self.evictions
        )

    def delta(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - before.hits,
            self.misses - before.misses,
            self.stores - before.stores,
            self.invalidations - before.invalidations,
            self.evictions - before.evictions,
        )


_COUNTER_KEYS = ("hits", "misses", "stores", "invalidations", "evictions")


@contextlib.contextmanager
def _stats_lock(root: Path):
    """Exclusive fcntl lock on ``<root>/stats.lock`` (no-op without fcntl)."""
    if fcntl is None:  # pragma: no cover - non-posix
        yield
        return
    root.mkdir(parents=True, exist_ok=True)
    with open(root / "stats.lock", "a+") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class ArtifactCache:
    """Content-addressed pickle store with an in-memory front."""

    def __init__(
        self,
        root: Path | str | None = None,
        enabled: bool | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = cache_enabled_by_env() if enabled is None else enabled
        self.max_bytes = cache_max_bytes_by_env() if max_bytes is None else max_bytes
        self.stats = CacheStats()
        self._memory: dict[tuple[str, str], object] = {}

    # -- keys -----------------------------------------------------------------

    def key_for(self, kind: str, parts: dict) -> str:
        payload = json.dumps(
            {"schema": SCHEMA_VERSION, "kind": kind, "parts": canonical(parts)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    # -- entry encoding --------------------------------------------------------

    @staticmethod
    def encode_entry(value) -> bytes:
        """Pickled payload + integrity footer (magic + payload sha256)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return payload + _FOOTER_MAGIC + hashlib.sha256(payload).digest()

    @staticmethod
    def decode_entry(blob: bytes):
        """Inverse of :meth:`encode_entry`; raises ``ValueError`` on a
        missing footer or checksum mismatch (truncation, bit flips)."""
        if len(blob) <= _FOOTER_LEN or blob[-_FOOTER_LEN:-32] != _FOOTER_MAGIC:
            raise ValueError("cache entry missing integrity footer")
        payload = blob[:-_FOOTER_LEN]
        if hashlib.sha256(payload).digest() != blob[-32:]:
            raise ValueError("cache entry checksum mismatch")
        return pickle.loads(payload)

    # -- store ----------------------------------------------------------------

    def get(self, kind: str, digest: str):
        """Returns (hit, value); the in-memory layer fronts the disk store."""
        memory_key = (kind, digest)
        if memory_key in self._memory:
            self.stats.hits += 1
            return True, self._memory[memory_key]
        if self.enabled:
            path = self._path(kind, digest)
            try:
                value = self.decode_entry(path.read_bytes())
            except FileNotFoundError:
                pass
            except Exception:
                # truncated/bit-flipped/incompatible entry: drop and recompute
                self.stats.invalidations += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self.stats.hits += 1
                self._memory[memory_key] = value
                try:  # refresh recency so LRU eviction spares hot entries
                    os.utime(path)
                except OSError:
                    pass
                return True, value
        self.stats.misses += 1
        return False, None

    def put(self, kind: str, digest: str, value) -> None:
        self._memory[(kind, digest)] = value
        self.stats.stores += 1
        if not self.enabled:
            return
        path = self._path(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(self.encode_entry(value))
            os.replace(tmp, path)  # atomic: racing workers write identical bytes
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.evict_to_cap()

    def get_or_create(self, kind: str, parts: dict, factory):
        """The cache's main entry point: lookup by content, else compute."""
        digest = self.key_for(kind, parts)
        hit, value = self.get(kind, digest)
        if hit:
            return value
        value = factory()
        self.put(kind, digest, value)
        return value

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> dict[str, dict]:
        """On-disk inventory: per-kind entry count and byte size."""
        inventory: dict[str, dict] = {}
        if not self.root.is_dir():
            return inventory
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            files = list(kind_dir.glob("*.pkl"))
            inventory[kind_dir.name] = {
                "entries": len(files),
                "bytes": sum(f.stat().st_size for f in files),
            }
        return inventory

    def _on_disk(self) -> list[tuple[float, int, str, Path]]:
        """Every entry as (mtime, size, kind, path), oldest first."""
        found: list[tuple[float, int, str, Path]] = []
        if not self.root.is_dir():
            return found
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir():
                continue
            for entry in kind_dir.glob("*.pkl"):
                try:
                    stat = entry.stat()
                except OSError:  # racing eviction/invalidation elsewhere
                    continue
                found.append((stat.st_mtime, stat.st_size, kind_dir.name, entry))
        found.sort(key=lambda item: (item[0], item[3].name))
        return found

    def evict_to_cap(self) -> int:
        """LRU-by-mtime eviction until the store fits ``max_bytes``.

        Returns the number of entries removed (0 with no cap configured).
        """
        if not self.enabled or not self.max_bytes:
            return 0
        entries = self._on_disk()
        total = sum(size for _, size, _, _ in entries)
        evicted = 0
        for _, size, kind, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # a concurrent run evicted/invalidated it first
                continue
            total -= size
            evicted += 1
            self._memory.pop((kind, path.stem), None)
        self.stats.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        self._memory.clear()
        if self.root.is_dir():
            for kind_dir in self.root.iterdir():
                if not kind_dir.is_dir():
                    continue
                for entry in kind_dir.glob("*.pkl"):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        self.stats.invalidations += removed
        return removed

    # -- cumulative counters ----------------------------------------------------

    def flush_stats(self) -> None:
        """Merge this process's counters into ``<root>/stats.json``, under
        the ``stats.lock`` fcntl lock so concurrent engine runs cannot lose
        each other's read-modify-write (used for the CLI's totals)."""
        if not self.enabled:
            return
        current = self.stats
        if not any(getattr(current, key) for key in _COUNTER_KEYS):
            return
        path = self.root / "stats.json"
        totals = dict.fromkeys(_COUNTER_KEYS, 0)
        try:
            with _stats_lock(self.root):
                try:
                    stored = json.loads(path.read_text())
                except (OSError, ValueError):
                    stored = {}
                for key in _COUNTER_KEYS:
                    totals[key] = stored.get(key, 0) + getattr(current, key)
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                with os.fdopen(fd, "w") as handle:
                    json.dump(totals, handle)
                os.replace(tmp, path)
        except OSError:
            return
        self.stats = CacheStats()

    def persisted_stats(self) -> dict:
        totals = dict.fromkeys(_COUNTER_KEYS, 0)
        path = self.root / "stats.json"
        try:
            stored = json.loads(path.read_text())
        except (OSError, ValueError):
            return totals
        for key in _COUNTER_KEYS:
            totals[key] = stored.get(key, 0)
        return totals


# -- process-wide singleton ------------------------------------------------------

_CACHE: ArtifactCache | None = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created on first use; stats flushed atexit)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = ArtifactCache()
        atexit.register(_CACHE.flush_stats)
    return _CACHE


def configure_cache(
    root: Path | str | None = None,
    enabled: bool | None = None,
    max_bytes: int | None = None,
    flush_previous: bool = True,
) -> ArtifactCache:
    """Point the process at a different cache (tests, CLI, engine workers).

    The replaced cache's atexit hook is unregistered and its counters are
    flushed immediately (they used to flush at exit against a cache object
    nothing referenced anymore, silently dropping the active cache's
    counters).  Engine workers pass ``flush_previous=False``: a forked
    worker inherits the parent's cache object, and flushing it from every
    worker would multiply the parent's counters into ``stats.json``.
    """
    global _CACHE
    previous = _CACHE
    if previous is not None:
        atexit.unregister(previous.flush_stats)
        if flush_previous:
            previous.flush_stats()
    _CACHE = ArtifactCache(root=root, enabled=enabled, max_bytes=max_bytes)
    atexit.register(_CACHE.flush_stats)
    return _CACHE
