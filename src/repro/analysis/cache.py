"""Persistent, content-addressed artifact cache for experiment work.

Every figure driver needs the same expensive intermediates — prepared
kernels (the CTXBack compiler pass), dynamic-PC weight histograms, reference
run profiles and preemption-experiment measurements.  All of them are
deterministic functions of their inputs, so they are stored on disk keyed by
a **content hash** of everything the computation depends on: the kernel's
assembly text and resource declaration, the full :class:`GPUConfig`, the
mechanism (and its :class:`CtxBackConfig`, where applicable), iteration
count and a schema version.  Two presets that differ in *any* field — e.g.
``radeon_vii`` vs ``radeon_vii_contended``, which share a warp size — can
therefore never alias (the bug the old per-process dict keys had).

Layout (default root ``~/.cache/repro``, override ``REPRO_CACHE_DIR``)::

    <root>/<kind>/<sha256>.pkl     pickled artifact
    <root>/stats.json              cumulative hit/miss counters (best effort)

Entries are written atomically (temp file + ``os.replace``), so concurrent
engine workers may race to create the same key but never corrupt it.
Unreadable or truncated entries are deleted on access and counted as
*invalidations*.  Set ``REPRO_CACHE=0`` to disable persistence (an
in-memory layer still dedups within the process).

``python -m repro cache`` prints the inventory and counters;
``python -m repro cache --clear`` empties the store.
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

#: bump when the pickled artifact representation or key layout changes;
#: part of every content hash, so old entries are simply never hit again
SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


# -- canonical content description ---------------------------------------------


def canonical(value):
    """JSON-representable canonical form of *value* for content hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache key")


def describe_kernel(kernel) -> dict:
    """Content description of a kernel: assembly text + resource footprint."""
    from ..isa.assembler import serialize

    return {
        "asm": serialize(kernel.program),
        "vgprs_used": kernel.vgprs_used,
        "sgprs_used": kernel.sgprs_used,
        "lds_bytes": kernel.lds_bytes,
        "noalias": kernel.noalias,
        "warps_per_block": kernel.warps_per_block,
    }


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores, self.invalidations)

    def delta(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - before.hits,
            self.misses - before.misses,
            self.stores - before.stores,
            self.invalidations - before.invalidations,
        )


class ArtifactCache:
    """Content-addressed pickle store with an in-memory front."""

    def __init__(
        self, root: Path | str | None = None, enabled: bool | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = cache_enabled_by_env() if enabled is None else enabled
        self.stats = CacheStats()
        self._memory: dict[tuple[str, str], object] = {}

    # -- keys -----------------------------------------------------------------

    def key_for(self, kind: str, parts: dict) -> str:
        payload = json.dumps(
            {"schema": SCHEMA_VERSION, "kind": kind, "parts": canonical(parts)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    # -- store ----------------------------------------------------------------

    def get(self, kind: str, digest: str):
        """Returns (hit, value); the in-memory layer fronts the disk store."""
        memory_key = (kind, digest)
        if memory_key in self._memory:
            self.stats.hits += 1
            return True, self._memory[memory_key]
        if self.enabled:
            path = self._path(kind, digest)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                pass
            except Exception:
                # truncated/corrupt/incompatible entry: drop and recompute
                self.stats.invalidations += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self.stats.hits += 1
                self._memory[memory_key] = value
                return True, value
        self.stats.misses += 1
        return False, None

    def put(self, kind: str, digest: str, value) -> None:
        self._memory[(kind, digest)] = value
        self.stats.stores += 1
        if not self.enabled:
            return
        path = self._path(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: racing workers write identical bytes
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_create(self, kind: str, parts: dict, factory):
        """The cache's main entry point: lookup by content, else compute."""
        digest = self.key_for(kind, parts)
        hit, value = self.get(kind, digest)
        if hit:
            return value
        value = factory()
        self.put(kind, digest, value)
        return value

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> dict[str, dict]:
        """On-disk inventory: per-kind entry count and byte size."""
        inventory: dict[str, dict] = {}
        if not self.root.is_dir():
            return inventory
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            files = list(kind_dir.glob("*.pkl"))
            inventory[kind_dir.name] = {
                "entries": len(files),
                "bytes": sum(f.stat().st_size for f in files),
            }
        return inventory

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        self._memory.clear()
        if self.root.is_dir():
            for kind_dir in self.root.iterdir():
                if not kind_dir.is_dir():
                    continue
                for entry in kind_dir.glob("*.pkl"):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        self.stats.invalidations += removed
        return removed

    # -- cumulative counters ----------------------------------------------------

    def flush_stats(self) -> None:
        """Merge this process's counters into ``<root>/stats.json`` (best
        effort: unlocked read-modify-write; used for the CLI's totals)."""
        if not self.enabled:
            return
        current = self.stats
        if not (current.hits or current.misses or current.stores):
            return
        path = self.root / "stats.json"
        totals = {"hits": 0, "misses": 0, "stores": 0, "invalidations": 0}
        try:
            totals.update(json.loads(path.read_text()))
        except (OSError, ValueError):
            pass
        totals["hits"] += current.hits
        totals["misses"] += current.misses
        totals["stores"] += current.stores
        totals["invalidations"] += current.invalidations
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle)
            os.replace(tmp, path)
        except OSError:
            return
        self.stats = CacheStats()

    def persisted_stats(self) -> dict:
        path = self.root / "stats.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0, "stores": 0, "invalidations": 0}


# -- process-wide singleton ------------------------------------------------------

_CACHE: ArtifactCache | None = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created on first use; stats flushed atexit)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = ArtifactCache()
        atexit.register(_CACHE.flush_stats)
    return _CACHE


def configure_cache(
    root: Path | str | None = None, enabled: bool | None = None
) -> ArtifactCache:
    """Point the process at a different cache (tests, CLI, engine workers)."""
    global _CACHE
    _CACHE = ArtifactCache(root=root, enabled=enabled)
    return _CACHE
