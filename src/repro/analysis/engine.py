"""Parallel experiment engine: independent work units over the figure grid.

Every figure/table of the evaluation decomposes into work units over
``(kernel, mechanism, config, signal sample)`` — each unit prepares (or
cache-loads) one kernel under one mechanism and runs one deterministic
simulation.  Units share *no* mutable state: all cross-unit reuse flows
through the content-addressed :mod:`~repro.analysis.cache`, so they are
embarrassingly parallel (the PhoenixOS observation: independent
checkpoint-style work units overlap freely).

:class:`ExperimentEngine` fans units out with a
``concurrent.futures.ProcessPoolExecutor``, one future per unit, and merges
results **by submission index** — every unit is a pure function of its
content-hashed inputs, so the merged results are bit-identical regardless
of worker count, cache temperature, retries or completion order; the
figure drivers in :mod:`~repro.analysis.experiments` rely on that for the
serial-vs-parallel equivalence guarantee.

Fault tolerance: each future carries a configurable timeout
(``REPRO_UNIT_TIMEOUT`` / ``--unit-timeout``); units whose workers crash
(``BrokenProcessPool``), hang past the timeout, raise, or return
unpicklable results are retried with exponential backoff up to
``REPRO_UNIT_RETRIES`` times in a fresh pool.  Units that exhaust their
retries fall back to a serial in-process run (except pure timeouts, which
cannot be bounded in-process); units that still fail are handled per the
:class:`FailurePolicy` — ``FAIL_FAST`` aborts the run with an
:class:`EngineFailure`, ``COLLECT`` substitutes a :class:`UnitFailure`
marker so figure drivers can emit partial tables with explicit FAILED
cells.  All failure traffic is counted in :class:`EngineReport`.

Worker count resolution: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial, in-process).  The CLI
exposes ``--jobs`` on every experiment command.

Artifact accessors (:func:`prepared_for`, :func:`weights_for`,
:func:`reference_cycles_for`, :func:`experiment_profile_for`) live here and
replace the per-process dict caches ``experiments.py`` used to keep: they
key on the *full* content of kernel + configs, so presets sharing a warp
size (``radeon_vii`` vs ``radeon_vii_contended``) can no longer alias.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import signal
import time
from pathlib import Path
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..ctxback.flashback import CtxBackConfig
from ..kernels.suite import SUITE
from ..mechanisms import make_mechanism
from ..mechanisms.base import PreparedKernel
from ..mechanisms.ctxback import CtxBack
from ..sim.config import GPUConfig
from ..sim.gpu import run_preemption_experiment, run_reference
from .cache import canonical, describe_kernel, get_cache
from .metrics import dynamic_pc_weights, weighted_context_bytes

JOBS_ENV = "REPRO_JOBS"
UNIT_TIMEOUT_ENV = "REPRO_UNIT_TIMEOUT"
UNIT_RETRIES_ENV = "REPRO_UNIT_RETRIES"
FAILURE_POLICY_ENV = "REPRO_FAILURE_POLICY"
#: test-only failpoint: a marker-file path; the first pool worker to find
#: the file missing creates it and SIGKILLs itself (fault-injection tests)
FAULT_KILL_ENV = "REPRO_FAULT_KILL_MARKER"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (1 — serial — if unset/garbage)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: the explicit argument wins over the env."""
    return max(1, jobs) if jobs is not None else default_jobs()


class FailurePolicy(enum.Enum):
    """What to do with a unit that failed every retry *and* the serial
    fallback: abort the whole run, or keep going and mark the cell."""

    FAIL_FAST = "fail-fast"
    COLLECT = "collect"


class EngineFailure(RuntimeError):
    """A work unit failed permanently under ``FailurePolicy.FAIL_FAST``."""


@dataclass(frozen=True)
class UnitFailure:
    """Placeholder result for a permanently-failed unit (``COLLECT``);
    figure drivers render these as explicit FAILED cells."""

    unit: str  # repr of the failed work unit
    error: str  # last error observed ("KindOfError: message")
    attempts: int  # pool attempts consumed before giving up


@dataclass(frozen=True)
class EngineOptions:
    """GPUConfig-independent fault-tolerance knobs of one engine."""

    #: seconds a unit may run in the pool before its wave is aborted and it
    #: is retried (None: wait forever — the pre-fault-tolerance behaviour)
    unit_timeout: float | None = None
    #: pool re-attempts per unit before the serial in-process fallback
    retries: int = 2
    failure_policy: FailurePolicy = FailurePolicy.FAIL_FAST
    #: base of the exponential backoff between retry waves (doubles per
    #: attempt, capped at 2 s); kept tiny so tests stay fast
    retry_backoff_s: float = 0.05

    @staticmethod
    def from_env(
        unit_timeout: float | None = None,
        retries: int | None = None,
        failure_policy: FailurePolicy | str | None = None,
    ) -> "EngineOptions":
        """Environment-driven defaults, overridden by explicit arguments."""
        if unit_timeout is None:
            raw = os.environ.get(UNIT_TIMEOUT_ENV, "").strip()
            try:
                unit_timeout = float(raw) if raw else None
            except ValueError:
                unit_timeout = None
            if unit_timeout is not None and unit_timeout <= 0:
                unit_timeout = None
        if retries is None:
            raw = os.environ.get(UNIT_RETRIES_ENV, "").strip()
            try:
                retries = max(0, int(raw)) if raw else 2
            except ValueError:
                retries = 2
        if failure_policy is None:
            failure_policy = os.environ.get(FAILURE_POLICY_ENV, "").strip() or (
                FailurePolicy.FAIL_FAST
            )
        if isinstance(failure_policy, str):
            try:
                failure_policy = FailurePolicy(failure_policy.lower())
            except ValueError:
                failure_policy = FailurePolicy.FAIL_FAST
        return EngineOptions(
            unit_timeout=unit_timeout,
            retries=retries,
            failure_policy=failure_policy,
        )


# -- artifact accessors (cache-backed) -------------------------------------------


def _resolved_iterations(key: str, iterations: int | None) -> int:
    # `is None`, not truthiness: an explicit iterations=0 is a legitimate
    # request (degenerate launch), not "use the suite default"
    return SUITE[key].default_iterations if iterations is None else iterations


def _launch(key: str, config: GPUConfig, iterations: int | None):
    return SUITE[key].launch(
        warp_size=config.warp_size,
        iterations=_resolved_iterations(key, iterations),
    )


def _base_parts(key: str, config: GPUConfig, iterations: int | None) -> dict:
    launch = _launch(key, config, iterations)
    return {
        "bench": key,
        "kernel": describe_kernel(launch.kernel),
        "config": canonical(config),
        "iterations": _resolved_iterations(key, iterations),
    }


def _mechanism_parts(mechanism: str, ctx_config: CtxBackConfig | None) -> dict:
    return {
        "mechanism": mechanism,
        "pass_config": canonical(ctx_config or CtxBackConfig()),
    }


def prepared_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    iterations: int | None = None,
    ctx_config: CtxBackConfig | None = None,
) -> PreparedKernel:
    """Cached mechanism preparation for one benchmark kernel.

    With *ctx_config* given, the CTXBack pass runs under that variant
    configuration (the ablation study) instead of the mechanism registry's
    defaults.
    """
    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, ctx_config))

    def build() -> PreparedKernel:
        launch = _launch(key, config, iterations)
        if ctx_config is not None:
            return CtxBack(ctx_config).prepare(launch.kernel, config)
        return make_mechanism(mechanism).prepare(launch.kernel, config)

    return get_cache().get_or_create("prepared", parts, build)


def weights_for(
    key: str, config: GPUConfig, iterations: int | None = None
) -> dict[int, int]:
    """Cached dynamic PC histogram for one benchmark kernel.

    Delegates to :func:`~repro.analysis.metrics.dynamic_pc_weights`, which
    owns the cache entry (keyed on launch content + config) — a single
    cache layer, so the engine and ad-hoc figure drivers hit the same
    artifact instead of each maintaining their own copy.
    """
    return dynamic_pc_weights(_launch(key, config, iterations), config)


def reference_cycles_for(
    key: str,
    config: GPUConfig,
    iterations: int | None = None,
    mechanism: str | None = None,
) -> int:
    """Cached reference-run profile: cycles to completion, clean
    (*mechanism* None) or with a mechanism's instrumentation active."""
    parts = _base_parts(key, config, iterations)
    parts["instrumented"] = (
        _mechanism_parts(mechanism, None) if mechanism is not None else None
    )

    def build() -> int:
        launch = _launch(key, config, iterations)
        prepared = (
            prepared_for(key, mechanism, config, iterations)
            if mechanism is not None
            else None
        )
        return run_reference(launch.spec(), config, prepared=prepared).cycles

    return get_cache().get_or_create("reference", parts, build)


def experiment_profile_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    iterations: int | None,
    signal_dyn: int,
    resume_gap: int,
    verify: bool,
    trace: bool = False,
    faults=None,
) -> dict:
    """Cached preemption-experiment profile for one signal sample.

    With ``trace=True`` the simulation runs under the structured tracer
    (:mod:`repro.obs`) and the profile carries the per-warp latency
    breakdown aggregate plus the event count; the trace flag is part of
    the cache key, so traced and untraced profiles never alias.  Tracing
    cannot change the measured cycles (the observer-effect guard in CI).

    With *faults* (a :class:`~repro.faults.plan.FaultPlan`) the run is
    fault-injected and the profile carries the recovery counters and
    degraded-warp list; the plan content is part of the cache key, so
    faulted and clean profiles never alias either.
    """
    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, None))
    parts.update(
        {"signal_dyn": signal_dyn, "resume_gap": resume_gap, "verify": verify}
    )
    if trace:
        parts["trace"] = True
    if faults is not None:
        parts["faults"] = canonical(faults)

    def run() -> dict:
        from ..obs import aggregate_breakdowns

        launch = _launch(key, config, iterations)
        prepared = prepared_for(key, mechanism, config, iterations)
        run_config = (
            dataclasses.replace(config, trace_events=True) if trace else config
        )
        result = run_preemption_experiment(
            launch.spec(),
            prepared,
            run_config,
            signal_dyn=signal_dyn,
            resume_gap=resume_gap,
            verify=verify,
            faults=faults,
        )
        profile = {
            "latency": result.mean_latency,
            "resume": result.mean_resume,
            "context_bytes": result.mean_context_bytes,
            "verified": result.verified,
        }
        if trace:
            profile["total_cycles"] = result.total_cycles
            profile["events"] = len(result.trace.events)
            profile["breakdown"] = aggregate_breakdowns(result.breakdowns)
        if result.faults is not None:
            profile["recovery"] = result.faults.stats.as_dict()
            profile["degraded_warps"] = [
                m.warp_id for m in result.measurements if m.degraded
            ]
            # None means "no recovery data" and is excluded from the sum;
            # a genuine 0 (zero-cost fallback) still counts as a sample
            profile["recovery_cycles"] = sum(
                m.recovery_cycles
                for m in result.measurements
                if m.recovery_cycles is not None
            )
        return profile

    return get_cache().get_or_create("experiment", parts, run)


# -- work units ------------------------------------------------------------------


@dataclass(frozen=True)
class PrepareUnit:
    """Warm the prepared-kernel (and optionally weights) cache entries."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> bool:
        prepared_for(self.key, self.mechanism, self.config, self.iterations)
        return True


@dataclass(frozen=True)
class WeightsUnit:
    key: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> dict[int, int]:
        return weights_for(self.key, self.config, self.iterations)


@dataclass(frozen=True)
class ReferenceUnit:
    key: str
    config: GPUConfig
    iterations: int | None = None
    mechanism: str | None = None

    def run(self) -> int:
        return reference_cycles_for(
            self.key, self.config, self.iterations, self.mechanism
        )


@dataclass(frozen=True)
class ContextUnit:
    """Execution-weighted context bytes of one (kernel, mechanism)."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None
    ctx_config: CtxBackConfig | None = None

    def run(self) -> float:
        prepared = prepared_for(
            self.key, self.mechanism, self.config, self.iterations, self.ctx_config
        )
        weights = weights_for(self.key, self.config, self.iterations)
        return weighted_context_bytes(prepared, weights)


@dataclass(frozen=True)
class ExperimentUnit:
    """One preemption experiment: (kernel, mechanism, signal sample).

    ``trace=True`` collects the per-unit latency-breakdown aggregate
    through the artifact cache (see :func:`experiment_profile_for`); the
    engine folds the aggregates of every traced unit into its report.
    """

    key: str
    mechanism: str
    config: GPUConfig
    signal_dyn: int
    resume_gap: int = 2000
    iterations: int | None = None
    verify: bool = False
    trace: bool = False
    #: optional :class:`~repro.faults.plan.FaultPlan`; part of the unit's
    #: cache identity (frozen + picklable, so it pools like everything else)
    faults: object | None = None

    def run(self) -> dict:
        return experiment_profile_for(
            self.key,
            self.mechanism,
            self.config,
            self.iterations,
            self.signal_dyn,
            self.resume_gap,
            self.verify,
            self.trace,
            self.faults,
        )


@dataclass(frozen=True)
class ServeUnit:
    """One GPU's serving shard under one mechanism at one load level.

    The costs are pre-calibrated (µs) so workers never re-run cycle-level
    experiments; the shard itself travels as a tuple of
    ``(arrival_us, tenant_index)`` pairs — hashable, picklable, and
    directly canonicalizable into the ``serve`` cache key.  ``load`` and
    ``gpu`` ride along for reporting; the cache identity is the shard
    content + tenant mix + costs (see
    :func:`repro.serve.fleet.serve_shard_profile`).
    """

    mechanism: str
    load: float
    gpu: int
    requests: tuple  # ((arrival_us, tenant_index), ...)
    tenants: tuple  # (repro.serve.Tenant, ...)
    preempt_us: float
    resume_us: float
    #: live-migration inputs (``()`` disables migration for this shard);
    #: costs travel flattened so the frozen unit stays picklable without
    #: importing the serve layer at module scope
    migrations: tuple = ()  # ((time_us, "out"|"in"), ...)
    mig_snapshot_us: float = 0.0
    mig_transfer_us: float = 0.0
    mig_restore_us: float = 0.0

    def run(self) -> dict:
        # lazy: repro.serve.fleet imports this module at its top level
        from ..serve.fleet import serve_shard_profile
        from ..serve.migration import MigrationCosts
        from ..serve.scheduler import MechanismCosts

        costs = MechanismCosts(
            mechanism=self.mechanism,
            preempt_us=self.preempt_us,
            resume_us=self.resume_us,
        )
        migration = (
            MigrationCosts(
                snapshot_us=self.mig_snapshot_us,
                transfer_us=self.mig_transfer_us,
                restore_us=self.mig_restore_us,
            )
            if self.migrations
            else None
        )
        return serve_shard_profile(
            self.requests, self.tenants, costs, self.gpu,
            migrations=self.migrations, migration=migration,
        )


@dataclass(frozen=True)
class ServeChaosUnit:
    """One GPU's shard under the fleet fault model (chaos serving).

    The fleet-coupled planning — crash re-queues, failover restores,
    watchdog migrations — already happened in the parent
    (:func:`repro.serve.resilience.plan_resilience`), so this unit is a
    pure function of its own fields: the 5-tuple request stream
    ``(arrival_us, tenant, rid, original_arrival_us, attempts)``, the op
    stream, the crash cutoff, and the admission/checkpoint knobs.  The
    admission policy travels as its flat tuple and ``crash_at_us < 0``
    means "no crash", keeping the frozen unit picklable and
    canonicalizable without importing the serve layer at module scope.
    """

    mechanism: str
    load: float
    gpu: int
    requests: tuple  # ((arrival_us, tenant, rid, original, attempts), ...)
    tenants: tuple  # (repro.serve.Tenant, ...)
    preempt_us: float
    resume_us: float
    ops: tuple = ()  # ((time_us, kind, value), ...)
    crash_at_us: float = -1.0  # < 0: this GPU never crashes
    admission: tuple = ()  # AdmissionPolicy.as_tuple()
    ckpt_cadence_us: float = 0.0
    ckpt_snapshot_us: float = 0.0
    seed: int = 0

    def run(self) -> dict:
        # lazy: repro.serve imports this module at its top level
        from ..serve.resilience import resilient_shard_profile
        from ..serve.scheduler import AdmissionPolicy, MechanismCosts

        return resilient_shard_profile(
            self.requests,
            self.tenants,
            MechanismCosts(
                mechanism=self.mechanism,
                preempt_us=self.preempt_us,
                resume_us=self.resume_us,
            ),
            self.gpu,
            ops=self.ops,
            crash_at=self.crash_at_us if self.crash_at_us >= 0 else None,
            admission=(
                AdmissionPolicy.from_tuple(self.admission)
                if self.admission
                else None
            ),
            ckpt_cadence_us=self.ckpt_cadence_us,
            ckpt_snapshot_us=self.ckpt_snapshot_us,
            seed=self.seed,
        )


@dataclass(frozen=True)
class OverheadUnit:
    """Instrumentation overhead fraction of one (kernel, mechanism)."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> float:
        clean = reference_cycles_for(self.key, self.config, self.iterations)
        instrumented = reference_cycles_for(
            self.key, self.config, self.iterations, self.mechanism
        )
        return (instrumented - clean) / clean


def run_unit(unit):
    """Module-level trampoline so units traverse the process pool."""
    return unit.run()


def _maybe_inject_fault() -> None:
    """Test-only failpoint: SIGKILL this worker once per marker file."""
    marker = os.environ.get(FAULT_KILL_ENV, "")
    if not marker:
        return
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:  # marker exists: the fault already fired
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_unit_counted(unit):
    """Pool-side trampoline: ship the worker's cache traffic back with the
    result (workers exit via ``os._exit``, so counters cannot be flushed
    from an atexit hook)."""
    _maybe_inject_fault()
    stats = get_cache().stats
    before = stats.snapshot()
    result = unit.run()
    delta = stats.delta(before)
    return result, (
        delta.hits,
        delta.misses,
        delta.stores,
        delta.invalidations,
        delta.evictions,
    )


# -- the engine ------------------------------------------------------------------


def _worker_init(cache_root, cache_enabled, cache_max_bytes) -> None:
    from .cache import configure_cache

    # flush_previous=False: a forked worker inherits the parent's cache
    # object; flushing it here would multiply the parent's counters
    configure_cache(
        root=cache_root,
        enabled=cache_enabled,
        max_bytes=cache_max_bytes,
        flush_previous=False,
    )


@dataclass
class EngineReport:
    """Bookkeeping of one engine run (for BENCH_engine.json)."""

    jobs: int = 1
    units: int = 0
    waves: int = 0
    wall_s: float = 0.0
    cache: dict = field(default_factory=dict)
    # fault-tolerance traffic
    retries: int = 0  # pool re-attempts (all causes)
    timeouts: int = 0  # unit attempts abandoned at the unit timeout
    crashes: int = 0  # attempts lost to worker death (BrokenProcessPool)
    fallbacks: int = 0  # units run serially in-process after retry exhaustion
    failures: int = 0  # units that failed permanently
    failed_units: list = field(default_factory=list)
    #: units answered straight from a ``map(checkpoint=...)`` file
    checkpoint_hits: int = 0
    #: latency-breakdown aggregate folded from every traced ExperimentUnit
    #: (``trace=True``); empty when no unit ran under the tracer
    trace: dict = field(default_factory=dict)
    #: recovery-counter aggregate folded from every fault-injected unit
    #: (``faults=...`` / ChaosUnit); empty when no unit injected faults
    recovery: dict = field(default_factory=dict)
    #: exploration aggregate folded from every model-checking unit
    #: (:class:`repro.mc.McUnit`); empty when no unit model-checked
    mc: dict = field(default_factory=dict)

    def record_recovery_profile(self, profile: dict) -> None:
        """Fold one fault-injected unit's recovery counters into the report."""
        counters = profile.get("recovery")
        if not counters:
            return
        recovery = self.recovery
        recovery["faulted_units"] = recovery.get("faulted_units", 0) + 1
        if profile.get("ok") is False:
            recovery["oracle_failures"] = recovery.get("oracle_failures", 0) + 1
        recovery["recovery_cycles"] = recovery.get("recovery_cycles", 0) + (
            profile.get("recovery_cycles", 0)
        )
        for name, value in counters.items():
            recovery[name] = recovery.get(name, 0) + value

    def record_mc_profile(self, profile: dict) -> None:
        """Fold one model-checking unit's exploration counters in."""
        mc = self.mc
        mc["mc_units"] = mc.get("mc_units", 0) + 1
        if profile.get("ok") is False:
            mc["failed_units"] = mc.get("failed_units", 0) + 1
        if profile.get("truncated"):
            mc["truncated_units"] = mc.get("truncated_units", 0) + 1
        for counter in (
            "explored_states", "terminals", "transitions", "runs",
            "choice_points",
        ):
            mc[counter] = mc.get(counter, 0) + profile.get(counter, 0)
        mc["findings"] = mc.get("findings", 0) + len(
            profile.get("findings", ())
        )

    def record_trace_profile(self, profile: dict) -> None:
        """Fold one traced unit's breakdown aggregate into the report."""
        breakdown = profile.get("breakdown")
        if not breakdown:
            return
        trace = self.trace
        trace["traced_units"] = trace.get("traced_units", 0) + 1
        trace["events"] = trace.get("events", 0) + profile.get("events", 0)
        trace["warps"] = trace.get("warps", 0) + breakdown.get("warps", 0)
        for bucket in ("preempt_phase_cycles", "resume_phase_cycles"):
            totals = trace.setdefault(bucket, {})
            for phase, cycles in breakdown.get(bucket, {}).items():
                totals[phase] = totals.get(phase, 0) + cycles

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "units": self.units,
            "waves": self.waves,
            "wall_s": round(self.wall_s, 3),
            "cache": dict(self.cache),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "fallbacks": self.fallbacks,
            "failures": self.failures,
            "failed_units": list(self.failed_units),
            "checkpoint_hits": self.checkpoint_hits,
            "trace": dict(self.trace),
            "recovery": dict(self.recovery),
            "mc": dict(self.mc),
        }


#: bump when the checkpoint file layout changes (stale files recompute)
CHECKPOINT_VERSION = 1


def unit_key(unit) -> str:
    """Content hash of a work unit — stable across processes and sessions.

    Keyed on the unit's type name plus its canonical field tree, so the
    same sweep re-launched after a crash maps each unit back to its saved
    result while any spec change (config, seed, iterations) re-runs."""
    blob = json.dumps(
        [type(unit).__name__, canonical(unit)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def retry_delay(base_s: float, attempt: int, keys: list[str]) -> float:
    """Backoff before a pool retry wave (seconds).

    Exponential in the worst attempt count, with a jitter fraction
    derived from the retried units' content keys — **not** wall clock —
    so two runs of the same sweep back off identically (the engine stays
    deterministic end to end) while distinct sweeps decorrelate instead
    of thundering-herding a shared cache.  Capped at 2 s like the
    pre-jitter behaviour.
    """
    digest = hashlib.sha256("\n".join(sorted(keys)).encode("ascii")).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
    return min(base_s * (2 ** (attempt - 1)) * (1.0 + 0.5 * jitter), 2.0)


def _load_checkpoint(path: Path) -> dict:
    """Read a sweep checkpoint; any corruption means recompute-all (the
    snap framing's checksum makes a torn write indistinguishable from no
    file, which is the safe direction)."""
    from ..snap.format import SnapshotError, decode_snapshot

    try:
        data = path.read_bytes()
    except OSError:
        return {}
    try:
        payload = decode_snapshot(data)
    except SnapshotError:
        return {}
    if payload.get("version") != CHECKPOINT_VERSION:
        return {}
    results = payload.get("results")
    return dict(results) if isinstance(results, dict) else {}


def _write_checkpoint(path: Path, saved: dict) -> None:
    """Atomically persist the completed units (write-then-rename, so a
    crash mid-write leaves the previous checkpoint intact)."""
    from ..snap.format import encode_snapshot

    data = encode_snapshot(
        {"version": CHECKPOINT_VERSION, "results": saved}
    )
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: hung or crashed workers are terminated so a
    fresh pool can take over the retry wave."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:
            pass


class ExperimentEngine:
    """Fans independent work units out over a process pool.

    ``jobs <= 1`` runs serially in-process; any other count uses a
    ``ProcessPoolExecutor`` whose workers attach to the same on-disk
    artifact cache.  Results always come back keyed by submission index, so
    the drivers' merges are deterministic and identical across worker
    counts, cache temperature and retries.  See the module docstring for
    the failure model; *options* (or the ``REPRO_UNIT_TIMEOUT`` /
    ``REPRO_UNIT_RETRIES`` / ``REPRO_FAILURE_POLICY`` environment) controls
    timeout, retry budget and the failure policy.
    """

    def __init__(
        self, jobs: int | None = None, options: EngineOptions | None = None
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.options = options if options is not None else EngineOptions.from_env()
        self.report = EngineReport(jobs=self.jobs)

    def map(self, units: list, *, checkpoint: str | Path | None = None) -> list:
        """Run *units* and return their results in submission order.

        With *checkpoint*, completed results persist to that file after
        every chunk (atomic rewrite, snap-framed): re-running the same
        sweep after a crash or interrupt skips every unit whose content
        key is already saved and finishes the rest.  Permanently-failed
        units are never checkpointed, so a resume retries them.
        """
        started = time.perf_counter()
        cache = get_cache()
        stats_before = cache.stats.snapshot()
        try:
            if checkpoint is None:
                results = self._map_all(units)
            else:
                results = self._map_checkpointed(units, Path(checkpoint))
            for result in results:
                if not isinstance(result, dict):
                    continue
                if "breakdown" in result:
                    self.report.record_trace_profile(result)
                if "recovery" in result:
                    self.report.record_recovery_profile(result)
                if "explored_states" in result:
                    self.report.record_mc_profile(result)
            return results
        finally:
            report = self.report
            report.units += len(units)
            report.waves += 1
            report.wall_s += time.perf_counter() - started
            report.cache = cache.stats.delta(stats_before).as_dict()

    def _map_all(self, units: list) -> list:
        if self.jobs <= 1 or len(units) <= 1:
            return self._map_serial(units)
        return self._map_pool(units)

    # -- crash-resume ----------------------------------------------------------

    def _map_checkpointed(self, units: list, path: Path) -> list:
        saved = _load_checkpoint(path)
        keys = [unit_key(unit) for unit in units]
        results: list = [None] * len(units)
        todo: list[int] = []
        for index, key in enumerate(keys):
            if key in saved:
                results[index] = saved[key]
            else:
                todo.append(index)
        self.report.checkpoint_hits += len(units) - len(todo)
        chunk = max(self.jobs * 4, 8)
        for start in range(0, len(todo), chunk):
            wave = todo[start:start + chunk]
            wave_results = self._map_all([units[i] for i in wave])
            for index, result in zip(wave, wave_results):
                results[index] = result
                if not isinstance(result, UnitFailure):
                    saved[keys[index]] = result
            _write_checkpoint(path, saved)
        return results

    # -- serial ----------------------------------------------------------------

    def _map_serial(self, units: list) -> list:
        """In-process execution; the failure policy still applies (the unit
        timeout cannot be enforced without a pool and is ignored)."""
        results = []
        for unit in units:
            try:
                results.append(unit.run())
            except Exception as exc:
                results.append(self._permanent_failure(unit, exc, attempts=1))
        return results

    # -- pooled ----------------------------------------------------------------

    def _map_pool(self, units: list) -> list:
        opts = self.options
        results: list = [None] * len(units)
        done = [False] * len(units)
        attempts = [0] * len(units)
        last_error: dict[int, tuple[str, str]] = {}
        pending = list(range(len(units)))

        while pending:
            retry_wave = [i for i in pending if 0 < attempts[i] <= opts.retries]
            exhausted = [i for i in pending if attempts[i] > opts.retries]
            for i in exhausted:
                kind, message = last_error.get(i, ("error", "unknown failure"))
                if kind == "timeout":
                    # an in-process rerun cannot be bounded; fail per policy
                    results[i] = self._permanent_failure(
                        units[i], TimeoutError(message), attempts=attempts[i]
                    )
                else:
                    results[i] = self._fallback_serial(units[i], attempts[i])
                done[i] = True
            pending = [i for i in pending if not done[i]]
            if not pending:
                break
            if retry_wave:
                self.report.retries += len(retry_wave)
                worst = max(attempts[i] for i in retry_wave)
                time.sleep(
                    retry_delay(
                        opts.retry_backoff_s, worst,
                        [unit_key(units[i]) for i in retry_wave],
                    )
                )
            self._pool_wave(pending, units, results, done, attempts, last_error)
            pending = [i for i in pending if not done[i]]
        return results

    def _pool_wave(
        self,
        indices: list[int],
        units: list,
        results: list,
        done: list[bool],
        attempts: list[int],
        last_error: dict[int, tuple[str, str]],
    ) -> None:
        """One pool pass over *indices*; aborts (and tears the pool down) on
        the first crash or timeout, leaving the survivors for the next wave."""
        cache = get_cache()
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(indices)),
            initializer=_worker_init,
            initargs=(cache.root, cache.enabled, cache.max_bytes),
        )
        aborted = False
        try:
            futures = {i: pool.submit(_run_unit_counted, units[i]) for i in indices}
            harvested = set()
            for i in indices:
                try:
                    payload = futures[i].result(timeout=self.options.unit_timeout)
                except FuturesTimeout:
                    attempts[i] += 1
                    last_error[i] = ("timeout", f"unit timed out after "
                                                f"{self.options.unit_timeout}s")
                    self.report.timeouts += 1
                    aborted = True
                except BrokenProcessPool as exc:
                    # a worker died; the culprit is unknowable, so the unit
                    # we were waiting on takes the blame (bounded either way)
                    attempts[i] += 1
                    last_error[i] = ("crash", f"{type(exc).__name__}: {exc}")
                    self.report.crashes += 1
                    aborted = True
                except Exception as exc:
                    # the unit raised, or its result did not survive pickling
                    attempts[i] += 1
                    last_error[i] = ("error", f"{type(exc).__name__}: {exc}")
                else:
                    self._harvest(i, payload, results, done)
                harvested.add(i)
                if aborted:
                    break
            if aborted:
                # pick up whatever already finished before tearing down
                for i in indices:
                    if i in harvested or not futures[i].done():
                        continue
                    try:
                        payload = futures[i].result(timeout=0)
                    except Exception:
                        continue  # retried next wave, uncharged
                    self._harvest(i, payload, results, done)
        finally:
            if aborted:
                _abort_pool(pool)
            else:
                pool.shutdown(wait=True)

    def _harvest(self, index: int, payload, results: list, done: list[bool]) -> None:
        result, (hits, misses, stores, invalidations, evictions) = payload
        results[index] = result
        done[index] = True
        # fold worker-side cache traffic into the parent's counters
        stats = get_cache().stats
        stats.hits += hits
        stats.misses += misses
        stats.stores += stores
        stats.invalidations += invalidations
        stats.evictions += evictions

    # -- last resorts ----------------------------------------------------------

    def _fallback_serial(self, unit, attempts: int):
        """Retry-exhausted unit: one in-process attempt (immune to worker
        crashes and pickling), then the failure policy."""
        self.report.fallbacks += 1
        try:
            return unit.run()
        except Exception as exc:
            return self._permanent_failure(unit, exc, attempts=attempts + 1)

    def _permanent_failure(self, unit, exc: BaseException, attempts: int):
        failure = UnitFailure(
            unit=repr(unit),
            error=f"{type(exc).__name__}: {exc}",
            attempts=attempts,
        )
        self.report.failures += 1
        self.report.failed_units.append(failure.unit)
        if self.options.failure_policy is FailurePolicy.FAIL_FAST:
            raise EngineFailure(
                f"work unit failed permanently after {attempts} attempt(s): "
                f"{failure.unit} ({failure.error})"
            ) from (exc if isinstance(exc, Exception) else None)
        return failure
