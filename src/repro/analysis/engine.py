"""Parallel experiment engine: independent work units over the figure grid.

Every figure/table of the evaluation decomposes into work units over
``(kernel, mechanism, config, signal sample)`` — each unit prepares (or
cache-loads) one kernel under one mechanism and runs one deterministic
simulation.  Units share *no* mutable state: all cross-unit reuse flows
through the content-addressed :mod:`~repro.analysis.cache`, so they are
embarrassingly parallel (the PhoenixOS observation: independent
checkpoint-style work units overlap freely).

:class:`ExperimentEngine` fans units out with a
``concurrent.futures.ProcessPoolExecutor``.  ``executor.map`` preserves
input order and every unit is a pure function of its content-hashed inputs,
so the merged results are **bit-identical** regardless of worker count or
cache temperature; the figure drivers in
:mod:`~repro.analysis.experiments` rely on that for the serial-vs-parallel
equivalence guarantee.

Worker count resolution: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial, in-process).  The CLI
exposes ``--jobs`` on every experiment command.

Artifact accessors (:func:`prepared_for`, :func:`weights_for`,
:func:`reference_cycles_for`, :func:`experiment_profile_for`) live here and
replace the per-process dict caches ``experiments.py`` used to keep: they
key on the *full* content of kernel + configs, so presets sharing a warp
size (``radeon_vii`` vs ``radeon_vii_contended``) can no longer alias.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..ctxback.flashback import CtxBackConfig
from ..kernels.suite import SUITE
from ..mechanisms import make_mechanism
from ..mechanisms.base import PreparedKernel
from ..mechanisms.ctxback import CtxBack
from ..sim.config import GPUConfig
from ..sim.gpu import run_preemption_experiment, run_reference
from .cache import canonical, describe_kernel, get_cache
from .metrics import dynamic_pc_weights, weighted_context_bytes

JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (1 — serial — if unset/garbage)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: the explicit argument wins over the env."""
    return max(1, jobs) if jobs is not None else default_jobs()


# -- artifact accessors (cache-backed) -------------------------------------------


def _resolved_iterations(key: str, iterations: int | None) -> int:
    return iterations or SUITE[key].default_iterations


def _launch(key: str, config: GPUConfig, iterations: int | None):
    return SUITE[key].launch(
        warp_size=config.warp_size,
        iterations=_resolved_iterations(key, iterations),
    )


def _base_parts(key: str, config: GPUConfig, iterations: int | None) -> dict:
    launch = _launch(key, config, iterations)
    return {
        "bench": key,
        "kernel": describe_kernel(launch.kernel),
        "config": canonical(config),
        "iterations": _resolved_iterations(key, iterations),
    }


def _mechanism_parts(mechanism: str, ctx_config: CtxBackConfig | None) -> dict:
    return {
        "mechanism": mechanism,
        "pass_config": canonical(ctx_config or CtxBackConfig()),
    }


def prepared_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    iterations: int | None = None,
    ctx_config: CtxBackConfig | None = None,
) -> PreparedKernel:
    """Cached mechanism preparation for one benchmark kernel.

    With *ctx_config* given, the CTXBack pass runs under that variant
    configuration (the ablation study) instead of the mechanism registry's
    defaults.
    """
    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, ctx_config))

    def build() -> PreparedKernel:
        launch = _launch(key, config, iterations)
        if ctx_config is not None:
            return CtxBack(ctx_config).prepare(launch.kernel, config)
        return make_mechanism(mechanism).prepare(launch.kernel, config)

    return get_cache().get_or_create("prepared", parts, build)


def weights_for(
    key: str, config: GPUConfig, iterations: int | None = None
) -> dict[int, int]:
    """Cached dynamic PC histogram for one benchmark kernel."""
    parts = _base_parts(key, config, iterations)

    def build() -> dict[int, int]:
        launch = _launch(key, config, iterations)
        return dynamic_pc_weights(launch, config)

    return get_cache().get_or_create("weights", parts, build)


def reference_cycles_for(
    key: str,
    config: GPUConfig,
    iterations: int | None = None,
    mechanism: str | None = None,
) -> int:
    """Cached reference-run profile: cycles to completion, clean
    (*mechanism* None) or with a mechanism's instrumentation active."""
    parts = _base_parts(key, config, iterations)
    parts["instrumented"] = (
        _mechanism_parts(mechanism, None) if mechanism is not None else None
    )

    def build() -> int:
        launch = _launch(key, config, iterations)
        prepared = (
            prepared_for(key, mechanism, config, iterations)
            if mechanism is not None
            else None
        )
        return run_reference(launch.spec(), config, prepared=prepared).cycles

    return get_cache().get_or_create("reference", parts, build)


def experiment_profile_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    iterations: int | None,
    signal_dyn: int,
    resume_gap: int,
    verify: bool,
) -> dict:
    """Cached preemption-experiment profile for one signal sample."""
    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, None))
    parts.update(
        {"signal_dyn": signal_dyn, "resume_gap": resume_gap, "verify": verify}
    )

    def run() -> dict:
        launch = _launch(key, config, iterations)
        prepared = prepared_for(key, mechanism, config, iterations)
        result = run_preemption_experiment(
            launch.spec(),
            prepared,
            config,
            signal_dyn=signal_dyn,
            resume_gap=resume_gap,
            verify=verify,
        )
        return {
            "latency": result.mean_latency,
            "resume": result.mean_resume,
            "context_bytes": result.mean_context_bytes,
            "verified": result.verified,
        }

    return get_cache().get_or_create("experiment", parts, run)


# -- work units ------------------------------------------------------------------


@dataclass(frozen=True)
class PrepareUnit:
    """Warm the prepared-kernel (and optionally weights) cache entries."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> bool:
        prepared_for(self.key, self.mechanism, self.config, self.iterations)
        return True


@dataclass(frozen=True)
class WeightsUnit:
    key: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> dict[int, int]:
        return weights_for(self.key, self.config, self.iterations)


@dataclass(frozen=True)
class ReferenceUnit:
    key: str
    config: GPUConfig
    iterations: int | None = None
    mechanism: str | None = None

    def run(self) -> int:
        return reference_cycles_for(
            self.key, self.config, self.iterations, self.mechanism
        )


@dataclass(frozen=True)
class ContextUnit:
    """Execution-weighted context bytes of one (kernel, mechanism)."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None
    ctx_config: CtxBackConfig | None = None

    def run(self) -> float:
        prepared = prepared_for(
            self.key, self.mechanism, self.config, self.iterations, self.ctx_config
        )
        weights = weights_for(self.key, self.config, self.iterations)
        return weighted_context_bytes(prepared, weights)


@dataclass(frozen=True)
class ExperimentUnit:
    """One preemption experiment: (kernel, mechanism, signal sample)."""

    key: str
    mechanism: str
    config: GPUConfig
    signal_dyn: int
    resume_gap: int = 2000
    iterations: int | None = None
    verify: bool = False

    def run(self) -> dict:
        return experiment_profile_for(
            self.key,
            self.mechanism,
            self.config,
            self.iterations,
            self.signal_dyn,
            self.resume_gap,
            self.verify,
        )


@dataclass(frozen=True)
class OverheadUnit:
    """Instrumentation overhead fraction of one (kernel, mechanism)."""

    key: str
    mechanism: str
    config: GPUConfig
    iterations: int | None = None

    def run(self) -> float:
        clean = reference_cycles_for(self.key, self.config, self.iterations)
        instrumented = reference_cycles_for(
            self.key, self.config, self.iterations, self.mechanism
        )
        return (instrumented - clean) / clean


def run_unit(unit):
    """Module-level trampoline so units traverse the process pool."""
    return unit.run()


def _run_unit_counted(unit):
    """Pool-side trampoline: ship the worker's cache traffic back with the
    result (workers exit via ``os._exit``, so counters cannot be flushed
    from an atexit hook)."""
    stats = get_cache().stats
    before = stats.snapshot()
    result = unit.run()
    delta = stats.delta(before)
    return result, (delta.hits, delta.misses, delta.stores, delta.invalidations)


# -- the engine ------------------------------------------------------------------


def _worker_init(cache_root, cache_enabled) -> None:
    from .cache import configure_cache

    configure_cache(root=cache_root, enabled=cache_enabled)


@dataclass
class EngineReport:
    """Bookkeeping of one engine run (for BENCH_engine.json)."""

    jobs: int = 1
    units: int = 0
    waves: int = 0
    wall_s: float = 0.0
    cache: dict = field(default_factory=dict)


class ExperimentEngine:
    """Fans independent work units out over a process pool.

    ``jobs <= 1`` runs serially in-process; any other count uses a
    ``ProcessPoolExecutor`` whose workers attach to the same on-disk
    artifact cache.  Results always come back in submission order, so the
    drivers' merges are deterministic and identical across worker counts.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.report = EngineReport(jobs=self.jobs)

    def map(self, units: list) -> list:
        started = time.perf_counter()
        cache = get_cache()
        stats_before = cache.stats.snapshot()
        try:
            if self.jobs <= 1 or len(units) <= 1:
                return [unit.run() for unit in units]
            workers = min(self.jobs, len(units))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(cache.root, cache.enabled),
            ) as pool:
                results = []
                stats = cache.stats
                for result, (hits, misses, stores, invalidations) in pool.map(
                    _run_unit_counted, units, chunksize=1
                ):
                    results.append(result)
                    # fold worker-side traffic into the parent's counters
                    stats.hits += hits
                    stats.misses += misses
                    stats.stores += stores
                    stats.invalidations += invalidations
                return results
        finally:
            report = self.report
            report.units += len(units)
            report.waves += 1
            report.wall_s += time.perf_counter() - started
            report.cache = cache.stats.delta(stats_before).as_dict()
