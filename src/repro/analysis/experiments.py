"""One driver per table/figure of the paper's evaluation (§V).

Every driver returns a :class:`~repro.analysis.metrics.FigureData` (or a
table-specific structure) so the report layer and the benchmark harness can
render the same rows the paper plots.  Prepared kernels and reference
profiles are cached per process — the CTXBack compiler pass is deterministic,
so re-running a figure costs only the simulation sweeps.

Configurations:

* Table I / Fig. 7 run under :meth:`GPUConfig.radeon_vii` (calibrated so
  BASELINE lands in the paper's 75-330 µs band);
* Figs. 8-10 run under :meth:`GPUConfig.radeon_vii_contended`, which scales
  streaming bandwidth to a fully-occupied SM's per-warp share (see the
  preset's docstring and EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..ctxback.flashback import CtxBackConfig
from ..kernels.suite import SUITE, Benchmark
from ..mechanisms import make_mechanism
from ..mechanisms.base import PreparedKernel
from ..mechanisms.ctxback import CtxBack
from ..sim.config import GPUConfig
from ..sim.gpu import run_preemption_experiment, run_reference
from .metrics import (
    FigureData,
    KernelRow,
    dynamic_pc_weights,
    kernel_baseline_bytes,
    weighted_context_bytes,
)

MECHANISMS = ("baseline", "live", "ckpt", "csdefer", "ctxback", "combined")

_prepared_cache: dict = {}
_weights_cache: dict = {}
_reference_cache: dict = {}


def _launch(bench: Benchmark, config: GPUConfig, iterations: int | None):
    return bench.launch(
        warp_size=config.warp_size,
        iterations=iterations or bench.default_iterations,
    )


def prepared_for(
    key: str, mechanism: str, config: GPUConfig, iterations: int | None = None
) -> PreparedKernel:
    """Cached mechanism preparation for one benchmark kernel."""
    cache_key = (key, mechanism, config.warp_size, iterations)
    if cache_key not in _prepared_cache:
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        _prepared_cache[cache_key] = make_mechanism(mechanism).prepare(
            launch.kernel, config
        )
    return _prepared_cache[cache_key]


def weights_for(key: str, config: GPUConfig, iterations: int | None = None):
    """Cached dynamic PC histogram for one benchmark kernel."""
    cache_key = (key, config.warp_size, iterations)
    if cache_key not in _weights_cache:
        bench = SUITE[key]
        _weights_cache[cache_key] = dynamic_pc_weights(
            _launch(bench, config, iterations), config
        )
    return _weights_cache[cache_key]


def _signal_points(key: str, config: GPUConfig, samples: int, iterations=None):
    """Dynamic-instruction triggers spread across different loop offsets.

    Starting a few iterations in, successive points step by a stride coprime
    to nothing in particular so the signal lands on a variety of loop-body
    positions — the paper preempts at arbitrary execution points.
    """
    bench = SUITE[key]
    launch = _launch(bench, config, iterations)
    n = len(launch.kernel.program.instructions)
    total = n * (iterations or bench.default_iterations) // 2
    base = 3 * n
    span = max(n, int(total * 0.8) - base)
    stride = max(1, span // max(1, samples)) + 1
    return [base + i * stride for i in range(samples)]


# ---------------------------------------------------------------- Table I --


@dataclass
class Table1Result:
    rows: list[dict] = field(default_factory=list)


def table1_experiment(
    config: GPUConfig | None = None,
    keys=None,
    iterations: int | None = None,
) -> Table1Result:
    """Per-kernel resources + BASELINE preemption/resume times (µs)."""
    config = config or GPUConfig.radeon_vii()
    result = Table1Result()
    for key in keys or sorted(SUITE):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        kernel = launch.kernel
        spec = config.rf_spec
        prepared = prepared_for(key, "baseline", config, iterations)
        n = len(kernel.program.instructions)
        run = run_preemption_experiment(
            launch.spec(),
            prepared,
            config,
            signal_dyn=3 * n + 7,
            resume_gap=1000,
            verify=False,
        )
        result.rows.append(
            {
                "key": key,
                "abbrev": bench.table1.abbrev,
                "vector_kb": spec.allocated_vgprs(kernel.vgprs_used)
                * spec.vgpr_bytes_each
                / 1024,
                "scalar_kb": spec.allocated_sgprs(kernel.sgprs_used) * 4 / 1024,
                "shared_kb": kernel.lds_bytes / 1024,
                "preempt_us": config.cycles_to_us(run.mean_latency),
                "resume_us": config.cycles_to_us(run.mean_resume),
                "paper": bench.table1,
            }
        )
    return result


# ----------------------------------------------------------------- Fig. 7 --


def fig7_context_size(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=("live", "ckpt", "csdefer", "ctxback", "combined"),
    iterations: int | None = None,
) -> FigureData:
    """Normalized context size per kernel (BASELINE = 1); CKPT row is the
    paper's minimum-possible-size dash line."""
    config = config or GPUConfig.radeon_vii()
    rows = []
    for key in keys or sorted(SUITE):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        weights = weights_for(key, config, iterations)
        base = kernel_baseline_bytes(launch, config)
        row = KernelRow(key=key, abbrev=bench.table1.abbrev, baseline_value=base)
        for mechanism in mechanisms:
            prepared = prepared_for(key, mechanism, config, iterations)
            row.normalized[mechanism] = (
                weighted_context_bytes(prepared, weights) / base
            )
        rows.append(row)
    return FigureData(title="Fig. 7: normalized context size", rows=rows)


# ------------------------------------------------------------- Figs. 8, 9 --


def preemption_timing(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=MECHANISMS,
    samples: int = 3,
    iterations: int | None = None,
    verify: bool = False,
):
    """Run the preemption sweeps once; returns (fig8, fig9) FigureData."""
    config = config or GPUConfig.radeon_vii_contended()
    lat_rows, res_rows = [], []
    for key in keys or sorted(SUITE):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        spec = launch.spec()
        points = _signal_points(key, config, samples, iterations)
        lat: dict[str, float] = {}
        res: dict[str, float] = {}
        for mechanism in mechanisms:
            prepared = prepared_for(key, mechanism, config, iterations)
            lats, ress = [], []
            for dyn in points:
                run = run_preemption_experiment(
                    spec,
                    prepared,
                    config,
                    signal_dyn=dyn,
                    resume_gap=2000,
                    verify=verify,
                )
                if verify and not run.verified:
                    raise AssertionError(
                        f"{key}/{mechanism}: functional verification failed"
                    )
                lats.append(run.mean_latency)
                ress.append(run.mean_resume)
            lat[mechanism] = statistics.mean(lats)
            res[mechanism] = statistics.mean(ress)
        lat_row = KernelRow(key, bench.table1.abbrev, lat["baseline"])
        res_row = KernelRow(key, bench.table1.abbrev, res["baseline"])
        for mechanism in mechanisms:
            lat_row.normalized[mechanism] = lat[mechanism] / lat["baseline"]
            res_row.normalized[mechanism] = res[mechanism] / res["baseline"]
        lat_rows.append(lat_row)
        res_rows.append(res_row)
    fig8 = FigureData(
        title="Fig. 8: normalized preemption-routine execution time",
        rows=lat_rows,
    )
    fig9 = FigureData(
        title="Fig. 9: normalized resuming-routine execution time", rows=res_rows
    )
    return fig8, fig9


def fig8_preemption_time(**kwargs) -> FigureData:
    """Fig. 8 alone (runs the shared sweep; prefer preemption_timing)."""
    return preemption_timing(**kwargs)[0]


def fig9_resume_time(**kwargs) -> FigureData:
    """Fig. 9 alone (runs the shared sweep; prefer preemption_timing)."""
    return preemption_timing(**kwargs)[1]


# ---------------------------------------------------------------- Fig. 10 --


def fig10_runtime_overhead(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=("ckpt", "ctxback"),
    iterations: int | None = None,
) -> FigureData:
    """Runtime overhead of the instrumentation (no preemption delivered):
    CKPT's periodic checkpoint stores vs CTXBack's OSRB copies."""
    config = config or GPUConfig.radeon_vii_contended()
    rows = []
    for key in keys or sorted(SUITE):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        spec = launch.spec()
        cache_key = (key, config.warp_size, iterations, "clean")
        if cache_key not in _reference_cache:
            _reference_cache[cache_key] = run_reference(spec, config).cycles
        clean = _reference_cache[cache_key]
        row = KernelRow(key=key, abbrev=bench.table1.abbrev, baseline_value=clean)
        for mechanism in mechanisms:
            prepared = prepared_for(key, mechanism, config, iterations)
            instrumented = run_reference(spec, config, prepared=prepared).cycles
            row.normalized[mechanism] = (instrumented - clean) / clean
        rows.append(row)
    return FigureData(
        title="Fig. 10: runtime overhead (fraction of clean runtime)", rows=rows
    )


# ------------------------------------------------------------- Headline ----


@dataclass
class HeadlineResult:
    context_reduction_pct: float
    context_vs_min: float
    preempt_reduction_pct: float
    resume_reduction_pct: float
    overhead_pct: float
    csdefer_latency_vs_ctxback: float
    csdefer_resume_reduction_pct: float


def headline(
    keys=None, samples: int = 2, iterations: int | None = None
) -> HeadlineResult:
    """The abstract's numbers: context −61.0 % (1.09× min), preemption
    −63.1 %, resume −50.0 %, overhead 0.41 %."""
    fig7 = fig7_context_size(keys=keys, iterations=iterations)
    fig8, fig9 = preemption_timing(keys=keys, samples=samples, iterations=iterations)
    fig10 = fig10_runtime_overhead(keys=keys, iterations=iterations)
    return HeadlineResult(
        context_reduction_pct=fig7.mean_reduction_pct("ctxback"),
        context_vs_min=fig7.mean("ctxback") / fig7.mean("ckpt"),
        preempt_reduction_pct=fig8.mean_reduction_pct("ctxback"),
        resume_reduction_pct=fig9.mean_reduction_pct("ctxback"),
        overhead_pct=100.0 * fig10.mean("ctxback"),
        csdefer_latency_vs_ctxback=fig8.mean("csdefer") / fig8.mean("ctxback"),
        csdefer_resume_reduction_pct=fig9.mean_reduction_pct("csdefer"),
    )


# -------------------------------------------------------------- Ablation ----


ABLATION_VARIANTS = {
    "full": CtxBackConfig(),
    "no_relaxed": CtxBackConfig(enable_relaxed=False),
    "no_reverting": CtxBackConfig(enable_reverting=False),
    "no_osrb": CtxBackConfig(enable_osrb=False),
    "none": CtxBackConfig(
        enable_relaxed=False, enable_reverting=False, enable_osrb=False
    ),
}


def ablation_techniques(
    config: GPUConfig | None = None,
    keys=None,
    iterations: int | None = None,
) -> FigureData:
    """Contribution of the three techniques (§III-B/C/D) to context size."""
    config = config or GPUConfig.radeon_vii()
    rows = []
    for key in keys or sorted(SUITE):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        weights = weights_for(key, config, iterations)
        base = kernel_baseline_bytes(launch, config)
        row = KernelRow(key=key, abbrev=bench.table1.abbrev, baseline_value=base)
        for variant, analysis_config in ABLATION_VARIANTS.items():
            prepared = CtxBack(analysis_config).prepare(launch.kernel, config)
            row.normalized[variant] = (
                weighted_context_bytes(prepared, weights) / base
            )
        rows.append(row)
    return FigureData(
        title="Ablation: CTXBack context size by technique set", rows=rows
    )
