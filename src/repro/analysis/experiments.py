"""One driver per table/figure of the paper's evaluation (§V).

Every driver returns a :class:`~repro.analysis.metrics.FigureData` (or a
table-specific structure) so the report layer and the benchmark harness can
render the same rows the paper plots.

Execution model: each driver decomposes into independent work units over
``(kernel, mechanism, config, signal sample)`` and hands them to the
:class:`~repro.analysis.engine.ExperimentEngine` (``jobs=`` argument,
``REPRO_JOBS`` env, CLI ``--jobs``).  Expensive intermediates — prepared
kernels, dynamic-PC weights, reference profiles, experiment measurements —
persist in the content-addressed :mod:`~repro.analysis.cache`, so re-running
a figure (or the CLI after the benchmarks) costs only cache loads.  Unit
results are merged in a fixed (sorted-key × mechanism × sample) order, so
figure rows are bit-identical across worker counts and cache temperature.

Configurations:

* Table I / Fig. 7 run under :meth:`GPUConfig.radeon_vii` (calibrated so
  BASELINE lands in the paper's 75-330 µs band);
* Figs. 8-10 run under :meth:`GPUConfig.radeon_vii_contended`, which scales
  streaming bandwidth to a fully-occupied SM's per-warp share (see the
  preset's docstring and EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..ctxback.flashback import CtxBackConfig
from ..kernels.suite import SUITE, Benchmark
from ..sim.config import GPUConfig
from .engine import (
    ContextUnit,
    ExperimentEngine,
    ExperimentUnit,
    OverheadUnit,
    PrepareUnit,
    ReferenceUnit,
    UnitFailure,
    WeightsUnit,
    prepared_for,
    weights_for,
)
from .metrics import FigureData, KernelRow, kernel_baseline_bytes

MECHANISMS = ("baseline", "live", "ckpt", "csdefer", "ctxback", "combined")


def _engine(jobs: int | None, engine: ExperimentEngine | None) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine(jobs)


def _failed(value) -> bool:
    """Permanently-failed unit under ``FailurePolicy.COLLECT``; the figure
    renders it as an explicit FAILED cell (a ``None`` value)."""
    return isinstance(value, UnitFailure)


def _launch(bench: Benchmark, config: GPUConfig, iterations: int | None):
    return bench.launch(
        warp_size=config.warp_size,
        iterations=bench.default_iterations if iterations is None else iterations,
    )


def _signal_points(key: str, config: GPUConfig, samples: int, iterations=None):
    """Dynamic-instruction triggers spread across different loop offsets.

    Starting a few iterations in, successive points step by a stride coprime
    to nothing in particular so the signal lands on a variety of loop-body
    positions — the paper preempts at arbitrary execution points.
    """
    bench = SUITE[key]
    launch = _launch(bench, config, iterations)
    n = len(launch.kernel.program.instructions)
    resolved = bench.default_iterations if iterations is None else iterations
    total = n * resolved // 2
    base = 3 * n
    span = max(n, int(total * 0.8) - base)
    stride = max(1, span // max(1, samples)) + 1
    return [base + i * stride for i in range(samples)]


# ---------------------------------------------------------------- Table I --


@dataclass
class Table1Result:
    rows: list[dict] = field(default_factory=list)


def table1_experiment(
    config: GPUConfig | None = None,
    keys=None,
    iterations: int | None = None,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
) -> Table1Result:
    """Per-kernel resources + BASELINE preemption/resume times (µs)."""
    config = config or GPUConfig.radeon_vii()
    engine = _engine(jobs, engine)
    keys = list(keys or sorted(SUITE))

    engine.map(
        [PrepareUnit(key, "baseline", config, iterations) for key in keys]
    )
    profiles = engine.map(
        [
            ExperimentUnit(
                key,
                "baseline",
                config,
                signal_dyn=3 * len(_launch(SUITE[key], config, iterations).kernel.program.instructions) + 7,
                resume_gap=1000,
                iterations=iterations,
            )
            for key in keys
        ]
    )

    result = Table1Result()
    for key, profile in zip(keys, profiles):
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        kernel = launch.kernel
        spec = config.rf_spec
        failed = _failed(profile)
        result.rows.append(
            {
                "key": key,
                "abbrev": bench.table1.abbrev,
                "vector_kb": spec.allocated_vgprs(kernel.vgprs_used)
                * spec.vgpr_bytes_each
                / 1024,
                "scalar_kb": spec.allocated_sgprs(kernel.sgprs_used) * 4 / 1024,
                "shared_kb": kernel.lds_bytes / 1024,
                "preempt_us": None if failed else config.cycles_to_us(profile["latency"]),
                "resume_us": (
                    None
                    if failed or profile["resume"] is None
                    else config.cycles_to_us(profile["resume"])
                ),
                "paper": bench.table1,
            }
        )
    return result


# ----------------------------------------------------------------- Fig. 7 --


def fig7_context_size(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=("live", "ckpt", "csdefer", "ctxback", "combined"),
    iterations: int | None = None,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
) -> FigureData:
    """Normalized context size per kernel (BASELINE = 1); CKPT row is the
    paper's minimum-possible-size dash line."""
    config = config or GPUConfig.radeon_vii()
    engine = _engine(jobs, engine)
    keys = list(keys or sorted(SUITE))

    # wave 1: one reference simulation per kernel (the PC histograms)
    engine.map([WeightsUnit(key, config, iterations) for key in keys])
    # wave 2: one compiler pass + weighting per (kernel, mechanism)
    units = [
        ContextUnit(key, mechanism, config, iterations)
        for key in keys
        for mechanism in mechanisms
    ]
    values = iter(engine.map(units))

    rows = []
    for key in keys:
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        base = kernel_baseline_bytes(launch, config)
        row = KernelRow(key=key, abbrev=bench.table1.abbrev, baseline_value=base)
        for mechanism in mechanisms:
            value = next(values)
            row.normalized[mechanism] = None if _failed(value) else value / base
        rows.append(row)
    return FigureData(title="Fig. 7: normalized context size", rows=rows)


# ------------------------------------------------------------- Figs. 8, 9 --


def preemption_timing(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=MECHANISMS,
    samples: int = 3,
    iterations: int | None = None,
    verify: bool = False,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
):
    """Run the preemption sweeps once; returns (fig8, fig9) FigureData."""
    config = config or GPUConfig.radeon_vii_contended()
    engine = _engine(jobs, engine)
    keys = list(keys or sorted(SUITE))
    points = {key: _signal_points(key, config, samples, iterations) for key in keys}

    # wave 1: the compiler passes, one per (kernel, mechanism)
    engine.map(
        [
            PrepareUnit(key, mechanism, config, iterations)
            for key in keys
            for mechanism in mechanisms
        ]
    )
    # wave 2: one preemption experiment per (kernel, mechanism, sample)
    units = [
        ExperimentUnit(
            key,
            mechanism,
            config,
            signal_dyn=dyn,
            resume_gap=2000,
            iterations=iterations,
            verify=verify,
        )
        for key in keys
        for mechanism in mechanisms
        for dyn in points[key]
    ]
    profiles = iter(engine.map(units))

    lat_rows, res_rows = [], []
    for key in keys:
        bench = SUITE[key]
        lat: dict[str, float | None] = {}
        res: dict[str, float | None] = {}
        for mechanism in mechanisms:
            lats, ress = [], []
            for dyn in points[key]:
                profile = next(profiles)
                if _failed(profile):
                    continue  # FAILED cell under FailurePolicy.COLLECT
                if verify and not profile["verified"]:
                    raise AssertionError(
                        f"{key}/{mechanism}: functional verification failed"
                    )
                lats.append(profile["latency"])
                if profile["resume"] is not None:
                    # absent resume data (not a 0-cycle resume) must not
                    # fold into the mean as a phantom zero
                    ress.append(profile["resume"])
            lat[mechanism] = statistics.mean(lats) if lats else None
            res[mechanism] = statistics.mean(ress) if ress else None
        lat_row = KernelRow(key, bench.table1.abbrev, lat["baseline"])
        res_row = KernelRow(key, bench.table1.abbrev, res["baseline"])
        for mechanism in mechanisms:
            lat_row.normalized[mechanism] = (
                lat[mechanism] / lat["baseline"]
                if lat[mechanism] is not None and lat["baseline"]
                else None
            )
            res_row.normalized[mechanism] = (
                res[mechanism] / res["baseline"]
                if res[mechanism] is not None and res["baseline"]
                else None
            )
        lat_rows.append(lat_row)
        res_rows.append(res_row)
    fig8 = FigureData(
        title="Fig. 8: normalized preemption-routine execution time",
        rows=lat_rows,
    )
    fig9 = FigureData(
        title="Fig. 9: normalized resuming-routine execution time", rows=res_rows
    )
    return fig8, fig9


def fig8_preemption_time(**kwargs) -> FigureData:
    """Fig. 8 alone (runs the shared sweep; prefer preemption_timing)."""
    return preemption_timing(**kwargs)[0]


def fig9_resume_time(**kwargs) -> FigureData:
    """Fig. 9 alone (runs the shared sweep; prefer preemption_timing)."""
    return preemption_timing(**kwargs)[1]


# ---------------------------------------------------------------- Fig. 10 --


def fig10_runtime_overhead(
    config: GPUConfig | None = None,
    keys=None,
    mechanisms=("ckpt", "ctxback"),
    iterations: int | None = None,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
) -> FigureData:
    """Runtime overhead of the instrumentation (no preemption delivered):
    CKPT's periodic checkpoint stores vs CTXBack's OSRB copies."""
    config = config or GPUConfig.radeon_vii_contended()
    engine = _engine(jobs, engine)
    keys = list(keys or sorted(SUITE))

    # wave 1: clean reference profiles, one per kernel
    cleans = engine.map([ReferenceUnit(key, config, iterations) for key in keys])
    # wave 2: instrumented references, one per (kernel, mechanism)
    units = [
        OverheadUnit(key, mechanism, config, iterations)
        for key in keys
        for mechanism in mechanisms
    ]
    overheads = iter(engine.map(units))

    rows = []
    for key, clean in zip(keys, cleans):
        bench = SUITE[key]
        row = KernelRow(
            key=key,
            abbrev=bench.table1.abbrev,
            baseline_value=None if _failed(clean) else clean,
        )
        for mechanism in mechanisms:
            overhead = next(overheads)
            row.normalized[mechanism] = None if _failed(overhead) else overhead
        rows.append(row)
    return FigureData(
        title="Fig. 10: runtime overhead (fraction of clean runtime)", rows=rows
    )


# ------------------------------------------------------------- Headline ----


@dataclass
class HeadlineResult:
    context_reduction_pct: float
    context_vs_min: float
    preempt_reduction_pct: float
    resume_reduction_pct: float
    overhead_pct: float
    csdefer_latency_vs_ctxback: float
    csdefer_resume_reduction_pct: float


def headline(
    keys=None,
    samples: int = 2,
    iterations: int | None = None,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
) -> HeadlineResult:
    """The abstract's numbers: context −61.0 % (1.09× min), preemption
    −63.1 %, resume −50.0 %, overhead 0.41 %."""
    engine = _engine(jobs, engine)
    fig7 = fig7_context_size(keys=keys, iterations=iterations, engine=engine)
    fig8, fig9 = preemption_timing(
        keys=keys, samples=samples, iterations=iterations, engine=engine
    )
    fig10 = fig10_runtime_overhead(keys=keys, iterations=iterations, engine=engine)
    return HeadlineResult(
        context_reduction_pct=fig7.mean_reduction_pct("ctxback"),
        context_vs_min=fig7.mean("ctxback") / fig7.mean("ckpt"),
        preempt_reduction_pct=fig8.mean_reduction_pct("ctxback"),
        resume_reduction_pct=fig9.mean_reduction_pct("ctxback"),
        overhead_pct=100.0 * fig10.mean("ctxback"),
        csdefer_latency_vs_ctxback=fig8.mean("csdefer") / fig8.mean("ctxback"),
        csdefer_resume_reduction_pct=fig9.mean_reduction_pct("csdefer"),
    )


# -------------------------------------------------------------- Ablation ----


ABLATION_VARIANTS = {
    "full": CtxBackConfig(),
    "no_relaxed": CtxBackConfig(enable_relaxed=False),
    "no_reverting": CtxBackConfig(enable_reverting=False),
    "no_osrb": CtxBackConfig(enable_osrb=False),
    "none": CtxBackConfig(
        enable_relaxed=False, enable_reverting=False, enable_osrb=False
    ),
}


def ablation_techniques(
    config: GPUConfig | None = None,
    keys=None,
    iterations: int | None = None,
    jobs: int | None = None,
    engine: ExperimentEngine | None = None,
) -> FigureData:
    """Contribution of the three techniques (§III-B/C/D) to context size."""
    config = config or GPUConfig.radeon_vii()
    engine = _engine(jobs, engine)
    keys = list(keys or sorted(SUITE))

    engine.map([WeightsUnit(key, config, iterations) for key in keys])
    units = [
        ContextUnit(key, "ctxback", config, iterations, ctx_config=variant_config)
        for key in keys
        for variant_config in ABLATION_VARIANTS.values()
    ]
    values = iter(engine.map(units))

    rows = []
    for key in keys:
        bench = SUITE[key]
        launch = _launch(bench, config, iterations)
        base = kernel_baseline_bytes(launch, config)
        row = KernelRow(key=key, abbrev=bench.table1.abbrev, baseline_value=base)
        for variant in ABLATION_VARIANTS:
            value = next(values)
            row.normalized[variant] = None if _failed(value) else value / base
        rows.append(row)
    return FigureData(
        title="Ablation: CTXBack context size by technique set", rows=rows
    )


__all__ = [
    "ABLATION_VARIANTS",
    "HeadlineResult",
    "MECHANISMS",
    "Table1Result",
    "ablation_techniques",
    "fig7_context_size",
    "fig8_preemption_time",
    "fig9_resume_time",
    "fig10_runtime_overhead",
    "headline",
    "preemption_timing",
    "prepared_for",
    "table1_experiment",
    "weights_for",
]
