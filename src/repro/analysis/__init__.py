"""Experiment drivers and reporting for the paper's evaluation (§V)."""

from .cache import ArtifactCache, configure_cache, get_cache
from .engine import (
    EngineReport,
    ExperimentEngine,
    default_jobs,
    experiment_profile_for,
    reference_cycles_for,
    resolve_jobs,
)
from .experiments import (
    ABLATION_VARIANTS,
    HeadlineResult,
    MECHANISMS,
    Table1Result,
    ablation_techniques,
    fig7_context_size,
    fig8_preemption_time,
    fig9_resume_time,
    fig10_runtime_overhead,
    headline,
    preemption_timing,
    prepared_for,
    table1_experiment,
    weights_for,
)
from .metrics import (
    FigureData,
    KernelRow,
    dynamic_pc_weights,
    weighted_context_bytes,
)
from .trace import render_timeline
from .report import (
    render_fig7_summary,
    render_figure,
    render_headline,
    render_table1,
)

__all__ = [
    "ABLATION_VARIANTS",
    "ArtifactCache",
    "EngineReport",
    "ExperimentEngine",
    "FigureData",
    "HeadlineResult",
    "KernelRow",
    "MECHANISMS",
    "Table1Result",
    "ablation_techniques",
    "configure_cache",
    "default_jobs",
    "dynamic_pc_weights",
    "experiment_profile_for",
    "get_cache",
    "reference_cycles_for",
    "resolve_jobs",
    "fig7_context_size",
    "fig8_preemption_time",
    "fig9_resume_time",
    "fig10_runtime_overhead",
    "headline",
    "preemption_timing",
    "prepared_for",
    "render_fig7_summary",
    "render_figure",
    "render_headline",
    "render_table1",
    "render_timeline",
    "table1_experiment",
    "weights_for",
]
