"""Text rendering of experiment results — the same rows the paper reports."""

from __future__ import annotations

from ..kernels.suite import BLAS_DL_KEYS
from .experiments import HeadlineResult, Table1Result
from .metrics import FigureData


def _us_cell(value: float | None) -> str:
    """One µs cell; a failed measurement renders as an explicit marker."""
    return f"{'FAILED':>8s} " if value is None else f"{value:8.1f}µ"


def render_table1(result: Table1Result) -> str:
    """Text table of Table I with the paper's numbers alongside."""
    header = (
        f"{'':5s} {'VRegs':>7s} {'SRegs':>7s} {'LDS':>6s} "
        f"{'Preempt':>9s} {'(paper)':>9s} {'Resume':>9s} {'(paper)':>9s}"
    )
    lines = ["Table I: benchmark specification (per warp; times in µs)", header]
    for row in result.rows:
        paper = row["paper"]
        lines.append(
            f"{row['abbrev']:5s} {row['vector_kb']:5.1f}KB {row['scalar_kb']:5.2f}KB "
            f"{row['shared_kb']:4.1f}KB {_us_cell(row['preempt_us'])} {paper.preempt_us:8.1f}µ "
            f"{_us_cell(row['resume_us'])} {paper.resume_us:8.1f}µ"
        )
    return "\n".join(lines)


def _cell(value: float | None, *, percent: bool, width: int) -> str:
    """One figure cell; a permanently-failed unit renders as FAILED."""
    if value is None:
        return f"{'FAILED':>{width}s}"
    if percent:
        return f"{100 * value:>{width - 1}.1f}%"
    return f"{value:>{width}.3f}"


def render_figure(data: FigureData, *, percent: bool = False) -> str:
    """Generic per-kernel/mechanism table with a MEAN row."""
    mechanisms = data.mechanisms()
    width = max(9, max(len(m) for m in mechanisms) + 1)
    header = f"{'':6s}" + "".join(f"{m:>{width}s}" for m in mechanisms)
    lines = [data.title, header]
    for row in data.rows:
        cells = "".join(
            _cell(row.normalized[m], percent=percent, width=width)
            for m in mechanisms
        )
        lines.append(f"{row.abbrev:6s}" + cells)
    means = "".join(
        _cell(data.mean(m), percent=percent, width=width) for m in mechanisms
    )
    lines.append(f"{'MEAN':6s}" + means)
    for note in data.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_fig7_summary(data: FigureData) -> str:
    """Fig. 7 table plus the paper's headline comparisons."""
    lines = [render_figure(data)]
    lines.append(
        f"CTXBack context reduction: {data.mean_reduction_pct('ctxback'):.1f}% "
        f"(paper 61.0%)"
    )
    if "ckpt" in data.mechanisms():
        ratio = data.mean("ctxback") / data.mean("ckpt")
        lines.append(f"CTXBack vs minimum possible: {ratio:.2f}x (paper 1.09x)")
    blas_dl = data.subset_mean("ctxback", BLAS_DL_KEYS)
    if blas_dl is not None:
        lines.append(
            f"CTXBack BLAS+DL reduction: {100 * (1 - blas_dl):.1f}% (paper 68.8%)"
        )
    return "\n".join(lines)


def render_headline(result: HeadlineResult) -> str:
    """The abstract's numbers, measured vs paper."""
    rows = [
        ("context size reduction", f"{result.context_reduction_pct:.1f}%", "61.0%"),
        ("context vs minimum possible", f"{result.context_vs_min:.2f}x", "1.09x"),
        ("preemption latency reduction", f"{result.preempt_reduction_pct:.1f}%", "63.1%"),
        ("resuming time reduction", f"{result.resume_reduction_pct:.1f}%", "50.0%"),
        ("runtime overhead", f"{result.overhead_pct:.3f}%", "0.41%"),
        (
            "CS-Defer latency vs CTXBack",
            f"{result.csdefer_latency_vs_ctxback:.2f}x",
            "1.35x",
        ),
        (
            "CS-Defer resume reduction",
            f"{result.csdefer_resume_reduction_pct:.1f}%",
            "65.6%",
        ),
    ]
    width = max(len(r[0]) for r in rows)
    lines = ["Headline results (measured vs paper):"]
    for name, measured, paper in rows:
        lines.append(f"  {name:{width}s}  {measured:>8s}  (paper {paper})")
    return "\n".join(lines)
