"""Whole-device snapshot/restore (``RSNP``) and live migration support.

PhoenixOS-style concurrent checkpoint/restore for the simulated GPU:
versioned, checksummed snapshots of the *entire* device state —
register files, exec masks, LDS, device memory, scoreboards, in-flight
preemption/recovery state — restorable onto a differently-configured
simulated GPU, on either execution core, with ``arch_digest``-verified
equivalence.  :mod:`repro.snap.speculative` adds concurrent
(checkpoint-while-running) capture with validate-then-degrade fallback;
:mod:`repro.snap.units` the cacheable engine units; and
:mod:`repro.serve.migration` wires snapshots into the serving layer as
live migration.
"""

from .capture import (
    RestoredExperiment,
    capture_snapshot,
    complete_experiment,
    describe_snapshot,
    load_snapshot,
    memory_payload,
    restore_experiment,
    restore_memory,
    restore_snapshot,
    run_snapshot_experiment,
    save_snapshot,
)
from .format import (
    SNAP_MAGIC,
    SNAP_VERSION,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    snapshot_sha256,
)
from .speculative import (
    SpeculativeCheckpoint,
    SpeculativeReport,
    speculative_snapshot,
)
from .units import SnapUnit, snap_profile_for

__all__ = [
    "SNAP_MAGIC",
    "SNAP_VERSION",
    "SnapshotError",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_sha256",
    "capture_snapshot",
    "memory_payload",
    "restore_memory",
    "restore_snapshot",
    "run_snapshot_experiment",
    "RestoredExperiment",
    "restore_experiment",
    "complete_experiment",
    "save_snapshot",
    "load_snapshot",
    "describe_snapshot",
    "SpeculativeCheckpoint",
    "SpeculativeReport",
    "speculative_snapshot",
    "SnapUnit",
    "snap_profile_for",
]
