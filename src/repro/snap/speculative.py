"""Speculative (concurrent) checkpointing with validate-then-degrade.

The blocking snapshot path stops the world: execution halts while the
full device memory is sparsely extracted and every warp serialized.
PhoenixOS-style speculative checkpointing instead splits the capture:

1. **begin** — copy the memory image at a base point (modelling the
   background copy a real driver overlaps with execution) and open a
   :class:`~repro.sim.memory.TrackedMemory` write epoch;
2. execution *runs ahead* while the base copy is notionally in flight;
3. **commit** — a short critical section that extracts only the words
   the epoch dirtied (the patch), captures the cheap warp/SM state, and
   *validates* the speculation: every word that differs from the base
   must be covered by the epoch's dirty set.  Writes that bypassed the
   tracked store path (e.g. an injected corruption poking raw words)
   break that invariant, and the commit **degrades** to a stop-the-world
   recapture rather than emitting a snapshot that would restore stale
   bytes.

The simulator is single-threaded, so the overlap is modelled rather
than real: the begin-point base copy is excluded from the reported
stop-the-world pause, which times only the commit critical section.
``benchmarks/bench_snap.py`` compares that pause against the blocking
path's.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..sim.memory import TrackedMemory
from ..sim.preemption import PreemptionController
from .capture import _flush_fast, capture_snapshot, memory_payload
from .format import SnapshotError

__all__ = ["SpeculativeCheckpoint", "SpeculativeReport", "speculative_snapshot"]


@dataclass
class SpeculativeReport:
    """Outcome of one speculative checkpoint attempt."""

    #: ``"speculative"`` — validation passed, payload carries base+patch;
    #: ``"fallback"`` — validation failed, payload is a stop-the-world capture
    mode: str
    validated: bool
    #: stop-the-world pause (seconds): the commit critical section only
    pause_s: float
    #: words the run-ahead epoch dirtied (patch size)
    patch_words: int
    #: nonzero words in the base image
    base_words: int
    payload: dict


class SpeculativeCheckpoint:
    """Two-phase concurrent capture: :meth:`begin`, run ahead, :meth:`commit`."""

    def __init__(
        self,
        sm,
        controller: PreemptionController | None = None,
        *,
        label: str = "",
    ) -> None:
        self.sm = sm
        self.controller = controller
        self.label = label
        self._tracked = isinstance(sm.memory, TrackedMemory)
        self._base: np.ndarray | None = None
        self._base_idx: np.ndarray | None = None
        self._base_val: np.ndarray | None = None

    def begin(self) -> None:
        """Take the base memory image and start recording run-ahead writes.

        Models the background copy (and its sparse serialization): their
        cost is *not* part of the stop-the-world pause reported by
        :meth:`commit` — overlapping exactly this work with execution is
        what the concurrent checkpoint buys.
        """
        _flush_fast(self.sm)
        memory = self.sm.memory
        self._base = memory._words.copy()
        self._base_idx = np.flatnonzero(self._base).astype(np.int64)
        self._base_val = self._base[self._base_idx].copy()
        if self._tracked:
            memory.begin_epoch()

    def _validate(self, memory, patch: list[int]) -> bool:
        """Every word that differs from the base must be epoch-dirtied.

        O(dirty) instead of a full two-array diff: legitimate writes all
        go through the tracked store path, so (a) dirty words outside the
        epoch must still hold their base value, and (b) every nonzero
        word must lie inside the dirty set — checked with one cheap
        ``count_nonzero`` pass.  A raw ``_words`` poke lands outside one
        of the two.
        """
        if not self._tracked:
            return False
        current = memory._words
        dirty = np.fromiter(
            memory._dirty, dtype=np.int64, count=len(memory._dirty)
        )
        patch_idx = np.asarray(patch, dtype=np.int64)
        stable = (
            dirty[~np.isin(dirty, patch_idx)] if len(dirty) else dirty
        )
        if len(stable) and not np.array_equal(
            current[stable], self._base[stable]
        ):
            return False
        inside = int(np.count_nonzero(current[dirty])) if len(dirty) else 0
        return int(np.count_nonzero(current)) == inside

    def commit(self, *, loop: dict | None = None) -> SpeculativeReport:
        """The critical section: patch extraction + validation + warp capture."""
        if self._base is None:
            raise SnapshotError("commit() before begin()")
        start = perf_counter()
        _flush_fast(self.sm)
        memory = self.sm.memory
        patch = memory.end_epoch() if self._tracked else []
        current = memory._words
        validated = self._validate(memory, patch)
        if validated:
            patch_idx = np.asarray(patch, dtype=np.int64)
            image = {
                "size_bytes": memory.size_bytes,
                "base_idx": self._base_idx,
                "base_val": self._base_val,
                "idx": patch_idx,
                "val": current[patch_idx].copy(),
                "dirty": memory.dirty_words(),
            }
            payload = capture_snapshot(
                self.sm, self.controller, loop=loop, label=self.label,
                memory=image,
            )
            mode = "speculative"
        else:
            # validate-then-degrade: something wrote outside the tracked
            # path; a base+patch restore would resurrect stale bytes, so
            # recapture everything stop-the-world instead
            payload = capture_snapshot(
                self.sm, self.controller, loop=loop, label=self.label,
                memory=memory_payload(memory),
            )
            mode = "fallback"
        pause = perf_counter() - start
        base_words = int(len(self._base_idx))
        self._base = None
        self._base_idx = None
        self._base_val = None
        return SpeculativeReport(
            mode=mode,
            validated=validated,
            pause_s=pause,
            patch_words=len(patch),
            base_words=base_words,
            payload=payload,
        )


def speculative_snapshot(
    sm,
    controller: PreemptionController | None = None,
    run_ahead=None,
    *,
    loop: dict | None = None,
    label: str = "",
) -> SpeculativeReport:
    """Convenience wrapper: begin, call *run_ahead* (advances execution
    while the base copy is notionally in flight), then commit."""
    ckpt = SpeculativeCheckpoint(sm, controller, label=label)
    ckpt.begin()
    if run_ahead is not None:
        run_ahead()
    return ckpt.commit(loop=loop)
