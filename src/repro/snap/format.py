"""Versioned, checksummed on-disk snapshot format (``RSNP``).

A snapshot is a plain payload tree (dicts/lists/scalars plus NumPy
arrays, bytes, tuples, sets and int-keyed dicts) encoded as canonical
JSON, zlib-compressed, and framed as::

    RSNP | version (u32 LE) | sha256(compressed payload) | compressed payload

The frame mirrors the artifact cache's integrity discipline
(:mod:`repro.analysis.cache`): the checksum covers every payload byte, so
a truncated or bit-flipped snapshot is rejected *before* any state is
rebuilt from it — a corrupt restore must fail closed, never restore
garbage.  Canonical JSON (sorted keys, fixed separators) makes equal
payloads byte-identical, which the determinism gates and the serve
migration cost model rely on.

Non-JSON values are carried by tagged wrappers (``~nd`` NumPy array,
``~b`` bytes, ``~t`` tuple, ``~s`` set, ``~m`` mapping with non-string
keys); a plain dict that happens to use a tag-like key is encoded through
the ``~m`` form, so the tagging is unambiguous.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib

import numpy as np

__all__ = [
    "SNAP_MAGIC",
    "SNAP_VERSION",
    "SnapshotError",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_sha256",
]

SNAP_MAGIC = b"RSNP"

#: bump when the payload layout changes; old snapshots are rejected with
#: a typed error instead of being misinterpreted.
SNAP_VERSION = 1

_TAGS = ("~nd", "~b", "~t", "~s", "~m")


class SnapshotError(Exception):
    """A snapshot could not be encoded, decoded, or restored."""


def _enc(obj):
    """Payload tree -> JSON-able tree with tagged wrappers."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise SnapshotError(f"non-finite float {obj!r} in snapshot payload")
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return _enc(float(obj))
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        contiguous = np.ascontiguousarray(obj)
        return {
            "~nd": [
                str(contiguous.dtype),
                list(contiguous.shape),
                base64.b64encode(contiguous.tobytes()).decode("ascii"),
            ]
        }
    if isinstance(obj, bytes):
        return {"~b": base64.b64encode(obj).decode("ascii")}
    if isinstance(obj, tuple):
        return {"~t": [_enc(v) for v in obj]}
    if isinstance(obj, (set, frozenset)):
        return {"~s": [_enc(v) for v in sorted(obj)]}
    if isinstance(obj, list):
        return [_enc(v) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and not any(
            k in _TAGS for k in obj
        ):
            return {k: _enc(v) for k, v in obj.items()}
        # non-string (or tag-colliding) keys: explicit pair list, sorted by
        # the encoded key's JSON so equal mappings encode identically
        pairs = [[_enc(k), _enc(v)] for k, v in obj.items()]
        pairs.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"~m": pairs}
    raise SnapshotError(
        f"cannot encode {type(obj).__name__} in a snapshot payload"
    )


def _dec(obj):
    """Inverse of :func:`_enc`."""
    if isinstance(obj, list):
        return [_dec(v) for v in obj]
    if not isinstance(obj, dict):
        return obj
    if "~nd" in obj:
        dtype, shape, data = obj["~nd"]
        array = np.frombuffer(
            base64.b64decode(data), dtype=np.dtype(dtype)
        ).reshape(shape)
        return array.copy()  # frombuffer views are read-only
    if "~b" in obj:
        return base64.b64decode(obj["~b"])
    if "~t" in obj:
        return tuple(_dec(v) for v in obj["~t"])
    if "~s" in obj:
        return set(_dec(v) for v in obj["~s"])
    if "~m" in obj:
        return {_make_key(_dec(k)): _dec(v) for k, v in obj["~m"]}
    return {k: _dec(v) for k, v in obj.items()}


def _make_key(key):
    # decoded tuple keys come back as tuples (hashable); lists are not
    return tuple(key) if isinstance(key, list) else key


def encode_snapshot(payload: dict) -> bytes:
    """Payload tree -> framed, checksummed snapshot bytes."""
    text = json.dumps(
        _enc(payload), sort_keys=True, separators=(",", ":")
    )
    compressed = zlib.compress(text.encode("utf-8"), 6)
    digest = hashlib.sha256(compressed).digest()
    return (
        SNAP_MAGIC
        + SNAP_VERSION.to_bytes(4, "little")
        + digest
        + compressed
    )


def decode_snapshot(data: bytes) -> dict:
    """Framed snapshot bytes -> payload tree; fails closed on any damage."""
    header = len(SNAP_MAGIC) + 4 + 32
    if len(data) < header or data[: len(SNAP_MAGIC)] != SNAP_MAGIC:
        raise SnapshotError("not a snapshot (bad magic)")
    version = int.from_bytes(data[len(SNAP_MAGIC) : len(SNAP_MAGIC) + 4], "little")
    if version != SNAP_VERSION:
        raise SnapshotError(
            f"snapshot version {version} unsupported (expected {SNAP_VERSION})"
        )
    digest = data[len(SNAP_MAGIC) + 4 : header]
    compressed = data[header:]
    if hashlib.sha256(compressed).digest() != digest:
        raise SnapshotError("snapshot checksum mismatch (corrupt or truncated)")
    try:
        payload = json.loads(zlib.decompress(compressed).decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise SnapshotError(f"snapshot payload undecodable: {exc}") from exc
    return _dec(payload)


def snapshot_sha256(data: bytes) -> str:
    """Hex content digest of an encoded snapshot (frame included)."""
    return hashlib.sha256(data).hexdigest()
