"""Whole-device snapshot capture and restore.

:func:`capture_snapshot` serializes the *entire* simulated device into a
payload tree: register files, exec masks, LDS, device memory, per-warp
scoreboards, and the in-flight preemption/recovery state (pending
signals, measurements, saved contexts, CKPT checkpoints, armed fault
state) — everything :func:`repro.sim.gpu.drive_experiment_loop` needs to
re-enter an experiment mid-flight.  :func:`restore_snapshot` rebuilds
that state onto a freshly-built launch, which may use a *differently
configured* GPU (other timing parameters, other execution core) as long
as the functional shape — kernel, warp geometry, register allocation —
matches.

Capture is functional-only: every array is copied, nothing on the
simulator is mutated (the fast core's deferred vector queue is flushed
first, exactly as :meth:`repro.sim.sm.SM.step` does at its consistency
boundary), so snapshotting cannot change a single simulated cycle — the
same zero-observer-effect contract as :mod:`repro.obs`.

Cross-process portability: per-warp scoreboards key on *process-local*
interned register ids (:func:`repro.sim.tables.reg_id`); the payload
stores stable ``(kind, index)`` descriptors instead and re-interns on
restore, so a snapshot written by one worker restores in any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..faults.injector import FaultInjector, InjectedFault
from ..faults.plan import FaultKind
from ..isa.registers import Reg, RegKind
from ..obs import make_tracer
from ..sim.gpu import (
    ExperimentResult,
    LaunchSpec,
    _initializer_for,
    build_launch,
    drive_experiment_loop,
    finalize_measurements,
)
from ..sim.memory import TrackedMemory
from ..sim.preemption import PreemptionController, WarpMeasurement
from ..sim.tables import reg_id, reg_of
from ..sim.warp import CkptSnapshot, SimWarp, WarpMode
from .format import (
    SNAP_VERSION,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "capture_snapshot",
    "restore_snapshot",
    "run_snapshot_experiment",
    "RestoredExperiment",
    "restore_experiment",
    "complete_experiment",
    "save_snapshot",
    "load_snapshot",
    "describe_snapshot",
]


def _flush_fast(sm) -> None:
    """Bring the fast core to its consistency boundary (same guard as
    ``SM.step``): deferred vector work must land before state is read."""
    fast = sm._fast
    if fast is not None and fast.queue:
        fast.flush()


# -- capture ---------------------------------------------------------------------


def _reg_descr(rid: int) -> list:
    reg = reg_of(rid)
    return [reg.kind.value, reg.index]


def _ckpt_payload(snapshot: CkptSnapshot | None):
    if snapshot is None:
        return None
    vregs, sregs, exec_mask, scc, pc = snapshot.regs
    return {
        "vregs": vregs.copy(),
        "sregs": sregs.copy(),
        "exec_mask": exec_mask.copy(),
        "scc": int(scc),
        "pc": int(pc),
        "lds": snapshot.lds.copy() if snapshot.lds is not None else None,
        "dyn_count": snapshot.dyn_count,
        "probe_counts": dict(snapshot.probe_counts),
        "nbytes": snapshot.nbytes,
        "pc_after_probe": snapshot.pc_after_probe,
    }


def _program_ref(warp: SimWarp) -> dict:
    if warp.program is warp.main_program:
        return {"where": "main", "plan": None}
    plan = warp.active_plan
    if plan is not None:
        if warp.program is plan.preempt_routine:
            return {"where": "preempt", "plan": plan.position}
        if warp.program is plan.resume_routine:
            return {"where": "resume", "plan": plan.position}
    raise SnapshotError(
        f"warp {warp.warp_id}: executing a program the snapshot cannot "
        f"identify (mode {warp.mode.value}, no matching plan routine)"
    )


def _warp_payload(warp: SimWarp) -> dict:
    state = warp.state
    return {
        "warp_id": warp.warp_id,
        "block_id": warp.block_id,
        "mode": warp.mode.value,
        "program": _program_ref(warp),
        "vregs": state.vregs.copy(),
        "sregs": state.sregs.copy(),
        "exec_mask": state.exec_mask.copy(),
        "scc": int(state.scc),
        "pc": int(state.pc),
        "ctx_buffer": {
            slot: (value.copy() if isinstance(value, np.ndarray) else int(value))
            for slot, value in state.ctx_buffer.items()
        },
        "lds": warp.lds.words.copy() if warp.lds is not None else None,
        "lds_nbytes": warp.lds.nbytes if warp.lds is not None else None,
        # sorted by the *stable* (kind, index) descriptor — interned ids
        # are assigned in first-seen order per process, so sorting by id
        # would make the byte order worker-dependent
        "pending": sorted(
            [*_reg_descr(rid), completion]
            for rid, completion in warp.pending.items()
        ),
        # canonical tight watermark, not the raw monotone one: the cores
        # advance pending_max differently (the fast core batches), but any
        # value >= every outstanding completion is sound — storing the
        # tight bound keeps snapshot bytes core-independent
        "pending_max": max(warp.pending.values(), default=0),
        "next_free": warp.next_free,
        "dyn_count": warp.dyn_count,
        "dyn_break": warp.dyn_break,
        "preempt_flag": warp.preempt_flag,
        "active_strategy": warp.active_strategy,
        "active_plan": (
            warp.active_plan.position if warp.active_plan is not None else None
        ),
        "signal_cycle": warp.signal_cycle,
        "preempt_done_cycle": warp.preempt_done_cycle,
        "resume_start_cycle": warp.resume_start_cycle,
        "resume_done_cycle": warp.resume_done_cycle,
        "routine_last_mem_completion": warp.routine_last_mem_completion,
        "resume_watch_dyn": warp.resume_watch_dyn,
        "probe_counts": dict(warp.probe_counts),
        "last_checkpoint": _ckpt_payload(warp.last_checkpoint),
        "ctx_checksum": warp.ctx_checksum,
        "arch_image": _ckpt_payload(warp.arch_image),
        "degraded_save": warp.degraded_save,
    }


def _measurement_payload(m: WarpMeasurement) -> dict:
    return {
        "warp_id": m.warp_id,
        "signal_pc": m.signal_pc,
        "signal_cycle": m.signal_cycle,
        "latency_cycles": m.latency_cycles,
        "resume_cycles": m.resume_cycles,
        "context_bytes": m.context_bytes,
        "flashback_pos": m.flashback_pos,
        "degraded": m.degraded,
        "recovery_cycles": m.recovery_cycles,
    }


def memory_payload(memory) -> dict:
    """Sparse (nonzero) image of device memory + dirty set when tracked."""
    words = memory._words
    idx = np.flatnonzero(words)
    payload = {
        "size_bytes": memory.size_bytes,
        "idx": idx.astype(np.int64),
        "val": words[idx].copy(),
    }
    if isinstance(memory, TrackedMemory):
        payload["dirty"] = memory.dirty_words()
    return payload


def _controller_payload(controller: PreemptionController) -> dict:
    return {
        "signal_dyn": controller.signal_dyn,
        "armed": controller.armed,
        "target": sorted(controller.target_warp_ids),
        "delivered": sorted(controller.delivered),
        "draining": sorted(controller._draining),
        "measurements": {
            wid: _measurement_payload(m)
            for wid, m in sorted(controller.measurements.items())
        },
        "history": [_measurement_payload(m) for m in controller.history],
    }


def _injector_payload(injector: FaultInjector) -> dict:
    return {
        "seed": injector.plan.seed,
        "rng": injector.rng.getstate(),
        "stats": {
            name: getattr(injector.stats, name)
            for name in (
                "injected", "integrity_failures", "degraded_saves",
                "degraded_resumes", "restarts", "duplicates_ignored",
                "redelivered", "stalls",
            )
        },
        "injected": [
            {
                "kind": fault.kind.value,
                "warp_id": fault.warp_id,
                "cycle": fault.cycle,
                "detail": dict(fault.detail),
            }
            for fault in injector.injected
        ],
        "drop_left": dict(injector._drop_left),
        "dropped": set(injector._dropped),
        "dup_fired": set(injector._dup_fired),
        "abort_count": dict(injector._abort_count),
        "abort_fired": set(injector._abort_fired),
        "corrupt_fired": set(injector._corrupt_fired),
        "stall_fired": set(injector._stall_fired),
    }


def capture_snapshot(
    sm,
    controller: PreemptionController | None = None,
    *,
    loop: dict | None = None,
    label: str = "",
    memory: dict | None = None,
) -> dict:
    """Serialize the whole device into a payload tree.

    *loop* carries the experiment driver's state across the boundary
    (``resumed``/``resume_at``/``signal_dyn``/``resume_gap``); *memory*
    lets the speculative checkpointer substitute its pre-assembled
    base+patch image for the stop-the-world one.
    """
    _flush_fast(sm)
    prepared = controller.prepared if controller is not None else None
    sample = sm.warps[0].state if sm.warps else None
    payload = {
        "meta": {
            "version": SNAP_VERSION,
            "label": label,
            "kernel": prepared.kernel.name if prepared is not None else "",
            "mechanism": prepared.mechanism if prepared is not None else "",
            "program_len": (
                len(prepared.kernel.program.instructions)
                if prepared is not None
                else None
            ),
            "warp_size": sample.warp_size if sample is not None else None,
            "num_vregs": sample.num_vregs if sample is not None else None,
            "num_sregs": sample.num_sregs if sample is not None else None,
            "warp_count": len(sm.warps),
        },
        "sm": {
            "cycle": sm.cycle,
            "rr": sm._rr,
            "stats": {
                "cycles": sm.stats.cycles,
                "issued": sm.stats.issued,
                "issued_by_mode": dict(sm.stats.issued_by_mode),
                "pc_counts": list(sm.stats.pc_counts),
            },
            "pipeline": {
                "port_free": sm.pipeline._port_free,
                "total_bytes": sm.pipeline.total_bytes,
                "total_requests": sm.pipeline.total_requests,
                "stats_by_kind": dict(sm.pipeline.stats_by_kind),
            },
        },
        "memory": memory if memory is not None else memory_payload(sm.memory),
        "warps": [_warp_payload(w) for w in sm.warps],
        "controller": (
            _controller_payload(controller) if controller is not None else None
        ),
        "injector": (
            _injector_payload(controller.faults)
            if controller is not None and controller.faults is not None
            else None
        ),
        "loop": dict(loop) if loop is not None else None,
    }
    return payload


# -- restore ---------------------------------------------------------------------


def _restore_ckpt(payload) -> CkptSnapshot | None:
    if payload is None:
        return None
    return CkptSnapshot(
        regs=(
            payload["vregs"],
            payload["sregs"],
            payload["exec_mask"].astype(bool),
            payload["scc"],
            payload["pc"],
        ),
        lds=payload["lds"],
        dyn_count=payload["dyn_count"],
        probe_counts=dict(payload["probe_counts"]),
        nbytes=payload["nbytes"],
        pc_after_probe=payload["pc_after_probe"],
    )


def restore_memory(payload: dict, memory) -> None:
    words = memory._words
    idx = np.asarray(payload["idx"], dtype=np.int64)
    if "base_idx" in payload:
        # speculative image: base as of the begin point, patched with the
        # words dirtied while execution ran ahead (see snap.speculative)
        base_idx = np.asarray(payload["base_idx"], dtype=np.int64)
        all_idx = np.concatenate([base_idx, idx]) if len(idx) else base_idx
    else:
        all_idx = idx
    if len(all_idx) and int(all_idx.max()) >= len(words):
        raise SnapshotError(
            f"snapshot memory image ({payload['size_bytes']} bytes) does not "
            f"fit the target device memory ({memory.size_bytes} bytes)"
        )
    words[:] = 0
    if "base_idx" in payload:
        words[np.asarray(payload["base_idx"], dtype=np.int64)] = payload[
            "base_val"
        ]
    if len(idx):
        words[idx] = payload["val"]
    if isinstance(memory, TrackedMemory):
        dirty = payload.get("dirty")
        memory._dirty = set(dirty) if dirty is not None else set(
            int(w) for w in np.flatnonzero(words)
        )


def _restore_warp(warp: SimWarp, payload: dict, prepared) -> None:
    state = warp.state
    meta_shape = (state.num_vregs, state.warp_size)
    if payload["vregs"].shape != meta_shape:
        raise SnapshotError(
            f"warp {warp.warp_id}: snapshot register shape "
            f"{payload['vregs'].shape} does not match target {meta_shape}"
        )
    warp.mode = WarpMode(payload["mode"])
    plan_pos = payload["active_plan"]
    warp.active_plan = (
        prepared.plans[plan_pos] if plan_pos is not None else None
    )
    ref = payload["program"]
    if ref["where"] == "main":
        warp.program = warp.main_program
    else:
        plan = prepared.plans[ref["plan"]]
        warp.program = (
            plan.preempt_routine if ref["where"] == "preempt"
            else plan.resume_routine
        )
    # in-place writes: the fast core's shared register backing (and any
    # adopted views) must keep pointing at the same arrays
    state.vregs[...] = payload["vregs"]
    state.sregs[...] = payload["sregs"]
    state.exec_mask[...] = payload["exec_mask"].astype(bool)
    state.exec_all = bool(state.exec_mask.all())
    state.scc = payload["scc"]
    state.pc = payload["pc"]
    state.ctx_buffer = {
        slot: (value.copy() if isinstance(value, np.ndarray) else value)
        for slot, value in payload["ctx_buffer"].items()
    }
    if payload["lds"] is not None:
        if warp.lds is None:
            raise SnapshotError(
                f"warp {warp.warp_id}: snapshot has LDS but the target "
                f"launch allocated none"
            )
        warp.lds.words[...] = payload["lds"]
    warp.pending = {
        reg_id(Reg(RegKind(kind), index)): completion
        for kind, index, completion in payload["pending"]
    }
    warp.pending_max = payload["pending_max"]
    warp.next_free = payload["next_free"]
    warp.dyn_count = payload["dyn_count"]
    warp.dyn_break = payload["dyn_break"]
    warp.preempt_flag = payload["preempt_flag"]
    warp.active_strategy = payload["active_strategy"]
    warp.signal_cycle = payload["signal_cycle"]
    warp.preempt_done_cycle = payload["preempt_done_cycle"]
    warp.resume_start_cycle = payload["resume_start_cycle"]
    warp.resume_done_cycle = payload["resume_done_cycle"]
    warp.routine_last_mem_completion = payload["routine_last_mem_completion"]
    warp.resume_watch_dyn = payload["resume_watch_dyn"]
    warp.probe_counts = dict(payload["probe_counts"])
    warp.last_checkpoint = _restore_ckpt(payload["last_checkpoint"])
    warp.ctx_checksum = payload["ctx_checksum"]
    warp.arch_image = _restore_ckpt(payload["arch_image"])
    warp.degraded_save = payload["degraded_save"]
    # program identity changed: drop every per-program cache
    warp._tables = None
    warp._fast_rt = None
    warp._lat_list = None
    warp._lat_tables = None


def _restore_measurement(payload: dict) -> WarpMeasurement:
    return WarpMeasurement(**payload)


def _restore_controller(controller: PreemptionController, payload: dict) -> None:
    if controller.signal_dyn != payload["signal_dyn"]:
        raise SnapshotError(
            f"snapshot signal_dyn {payload['signal_dyn']} does not match "
            f"the restored experiment's {controller.signal_dyn}"
        )
    controller.armed = payload["armed"]
    controller.delivered = set(payload["delivered"])
    controller._draining = set(payload["draining"])
    controller.measurements = {
        wid: _restore_measurement(m)
        for wid, m in payload["measurements"].items()
    }
    controller.history = [
        _restore_measurement(m) for m in payload["history"]
    ]


def _restore_injector(injector: FaultInjector, payload: dict) -> None:
    if injector.plan.seed != payload["seed"]:
        raise SnapshotError(
            f"snapshot fault seed {payload['seed']} does not match the "
            f"restored plan's seed {injector.plan.seed}"
        )
    injector.rng.setstate(payload["rng"])
    for name, value in payload["stats"].items():
        setattr(injector.stats, name, value)
    injector.injected = [
        InjectedFault(
            FaultKind(f["kind"]), f["warp_id"], f["cycle"], dict(f["detail"])
        )
        for f in payload["injected"]
    ]
    injector._drop_left = dict(payload["drop_left"])
    injector._dropped = set(payload["dropped"])
    injector._dup_fired = set(payload["dup_fired"])
    injector._abort_count = dict(payload["abort_count"])
    injector._abort_fired = set(payload["abort_fired"])
    injector._corrupt_fired = set(payload["corrupt_fired"])
    injector._stall_fired = set(payload["stall_fired"])


def restore_snapshot(
    payload: dict,
    sm,
    controller: PreemptionController | None = None,
) -> None:
    """Rebuild the captured device state onto *sm* (freshly launched).

    The target may run a different configuration (timing parameters,
    execution core, scheduler knobs); the *functional* shape — warp
    count, register geometry, program length — must match the snapshot
    and is checked before anything is touched.
    """
    meta = payload["meta"]
    if meta["warp_count"] != len(sm.warps):
        raise SnapshotError(
            f"snapshot holds {meta['warp_count']} warps, target launched "
            f"{len(sm.warps)}"
        )
    if sm.warps:
        sample = sm.warps[0].state
        for field, actual in (
            ("warp_size", sample.warp_size),
            ("num_vregs", sample.num_vregs),
            ("num_sregs", sample.num_sregs),
        ):
            if meta[field] != actual:
                raise SnapshotError(
                    f"snapshot {field}={meta[field]} does not match the "
                    f"target launch's {actual}"
                )
    prepared = controller.prepared if controller is not None else None
    if prepared is not None and meta["mechanism"] != prepared.mechanism:
        raise SnapshotError(
            f"snapshot was taken under mechanism {meta['mechanism']!r}, "
            f"target prepared {prepared.mechanism!r}"
        )
    _flush_fast(sm)
    restore_memory(payload["memory"], sm.memory)
    by_id = {w.warp_id: w for w in sm.warps}
    for warp_payload in payload["warps"]:
        warp = by_id.get(warp_payload["warp_id"])
        if warp is None:
            raise SnapshotError(
                f"snapshot warp {warp_payload['warp_id']} missing from the "
                f"target launch"
            )
        _restore_warp(warp, warp_payload, prepared)
    sm.cycle = payload["sm"]["cycle"]
    sm._rr = payload["sm"]["rr"]
    stats = payload["sm"]["stats"]
    sm.stats.cycles = stats["cycles"]
    sm.stats.issued = stats["issued"]
    sm.stats.issued_by_mode = dict(stats["issued_by_mode"])
    sm.stats.pc_counts = list(stats["pc_counts"])
    pipe = payload["sm"]["pipeline"]
    sm.pipeline._port_free = pipe["port_free"]
    sm.pipeline.total_bytes = pipe["total_bytes"]
    sm.pipeline.total_requests = pipe["total_requests"]
    sm.pipeline.stats_by_kind = dict(pipe["stats_by_kind"])
    if controller is not None and payload["controller"] is not None:
        _restore_controller(controller, payload["controller"])
    if payload["injector"] is not None:
        injector = controller.faults if controller is not None else None
        if injector is None:
            raise SnapshotError(
                "snapshot carries armed fault state; restore_experiment "
                "needs the same fault plan to rebuild the injector"
            )
        _restore_injector(injector, payload["injector"])
    sm.refresh_issuable()


# -- experiment-level save/restore ------------------------------------------------


def run_snapshot_experiment(
    spec: LaunchSpec,
    prepared,
    config,
    signal_dyn: int,
    *,
    resume_gap: int = 2000,
    snap_cycle: int | None = None,
    snap_on_evicted: bool = False,
    faults=None,
    label: str = "",
) -> tuple[dict | None, ExperimentResult]:
    """Run a preemption experiment, capturing one snapshot mid-flight.

    The capture point is either the first loop iteration at or past
    *snap_cycle*, or (with *snap_on_evicted*) the iteration where every
    target warp has released the SM — a point both cores reach in the
    same simulated state, which the migration cost model relies on.
    Returns ``(payload, result)``; *payload* is ``None`` if the trigger
    never fired (e.g. *snap_cycle* past the end of the run).
    """
    from ..sim.gpu import run_preemption_experiment

    captured: list[dict] = []

    def hook(sm, controller, target_warps, state) -> None:
        if captured:
            return
        if snap_on_evicted:
            # the pre-resume observation (see drive_experiment_loop): all
            # contexts saved and sm.cycle warped to the resume deadline —
            # the one point both cores reach in the same simulated state
            if (
                state["resumed"]
                or state["resume_at"] is None
                or sm.cycle < state["resume_at"]
                or not controller.all_evicted()
            ):
                return
        elif snap_cycle is None or sm.cycle < snap_cycle:
            return
        captured.append(
            capture_snapshot(sm, controller, loop=state, label=label)
        )

    result = run_preemption_experiment(
        spec,
        prepared,
        config,
        signal_dyn,
        resume_gap=resume_gap,
        verify=False,
        faults=faults,
        loop_hook=hook,
    )
    return (captured[0] if captured else None), result


@dataclass
class RestoredExperiment:
    """A restored mid-flight experiment, ready for :func:`complete_experiment`."""

    sm: object
    controller: PreemptionController
    target_warps: list
    memory: object
    config: object
    injector: FaultInjector | None
    loop: dict


def restore_experiment(
    payload: dict,
    spec: LaunchSpec,
    prepared,
    config,
    *,
    faults=None,
) -> RestoredExperiment:
    """Build a fresh launch under *config* and restore *payload* onto it.

    *config* may differ from the snapshotting configuration in timing,
    scheduler knobs, and execution core; *spec*/*prepared* must describe
    the same kernel and mechanism.  *faults* must be the same fault plan
    the snapshotting run used (when it used one).
    """
    loop = payload.get("loop")
    if loop is None:
        raise SnapshotError(
            "snapshot has no experiment-loop state; it was not captured "
            "by run_snapshot_experiment"
        )
    sm, target_warps, memory = build_launch(
        spec, config, kernel_override=prepared.kernel
    )
    sm.tracer = make_tracer(config, prepared.mechanism)
    controller = PreemptionController(
        sm=sm,
        prepared=prepared,
        target_warp_ids={w.warp_id for w in target_warps},
        signal_dyn=loop["signal_dyn"],
    )
    prepared.warp_initializer = _initializer_for(spec)
    injector = None
    if faults is not None:
        injector = faults.build() if hasattr(faults, "build") else faults
        injector.attach(sm, controller)
    elif payload.get("injector") is not None:
        raise SnapshotError(
            "snapshot carries armed fault state; pass the same fault plan "
            "to restore_experiment(faults=...)"
        )
    restore_snapshot(payload, sm, controller)
    return RestoredExperiment(
        sm=sm,
        controller=controller,
        target_warps=target_warps,
        memory=memory,
        config=config,
        injector=injector,
        loop=dict(loop),
    )


def complete_experiment(
    restored: RestoredExperiment,
    *,
    ref_memory=None,
) -> ExperimentResult:
    """Drive a restored experiment to completion.

    With *ref_memory* (a clean run's final :class:`DeviceMemory`), the
    result's ``verified`` reflects bit-identity against it — the same
    ground truth :func:`run_preemption_experiment` checks.
    """
    loop = restored.loop
    sm = restored.sm
    controller = restored.controller
    target_warps = restored.target_warps
    drive_experiment_loop(
        sm,
        controller,
        target_warps,
        restored.config,
        signal_dyn=loop["signal_dyn"],
        resume_gap=loop["resume_gap"],
        injector=restored.injector,
        resumed=loop["resumed"],
        resume_at=loop["resume_at"],
    )
    finalize_measurements(sm, controller, target_warps)
    verified = (
        restored.memory == ref_memory if ref_memory is not None else False
    )
    measurements = [
        controller.measurements[w.warp_id]
        for w in target_warps
        if w.warp_id in controller.measurements
    ]
    return ExperimentResult(
        mechanism=controller.prepared.mechanism,
        measurements=measurements,
        total_cycles=sm.cycle,
        verified=verified,
        reference_cycles=None,
        memory=restored.memory,
        trace=sm.tracer,
        faults=restored.injector,
        sm=sm,
    )


# -- file helpers -----------------------------------------------------------------


def save_snapshot(path: str | Path, payload: dict) -> int:
    """Encode and atomically write *payload*; returns the byte size."""
    data = encode_snapshot(payload)
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(target)
    return len(data)


def load_snapshot(path: str | Path) -> dict:
    return decode_snapshot(Path(path).read_bytes())


def describe_snapshot(payload: dict) -> dict:
    """JSON-able summary of a decoded snapshot (the CLI ``verify`` view)."""
    meta = payload["meta"]
    modes: dict[str, int] = {}
    for warp in payload["warps"]:
        modes[warp["mode"]] = modes.get(warp["mode"], 0) + 1
    loop = payload.get("loop") or {}
    return {
        "version": meta["version"],
        "label": meta["label"],
        "kernel": meta["kernel"],
        "mechanism": meta["mechanism"],
        "warp_count": meta["warp_count"],
        "warp_size": meta["warp_size"],
        "cycle": payload["sm"]["cycle"],
        "warp_modes": modes,
        "memory_words": len(payload["memory"]["idx"]),
        "has_fault_state": payload["injector"] is not None,
        "resumed": loop.get("resumed"),
        "resume_at": loop.get("resume_at"),
    }
