"""Cacheable snapshot round-trip units for the experiment engine.

One :class:`SnapUnit` runs a preemption experiment, captures a snapshot
at the **eviction point** — the first loop iteration where every target
warp has released the SM, a point both execution cores reach in the same
simulated state — restores it onto a freshly-built (optionally
differently-configured) GPU, drives both copies to completion, and
verifies equivalence with the architectural-digest oracle.  The verdict
plus the snapshot's size/digest land in the content-addressed artifact
cache, where the serve layer's migration cost model
(:mod:`repro.serve.migration`) reads the per-mechanism snapshot bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import GPUConfig
from ..sim.digest import arch_digest
from .capture import (
    complete_experiment,
    restore_experiment,
    run_snapshot_experiment,
)
from .format import decode_snapshot, encode_snapshot, snapshot_sha256

__all__ = [
    "SNAP_PROFILE_VERSION",
    "SnapUnit",
    "run_snap_roundtrip",
    "snap_profile_for",
]

#: bump when the round-trip verdict's *logic* changes (verdicts are
#: cached by input content, so a stricter check must invalidate old ones)
SNAP_PROFILE_VERSION = 1


def run_snap_roundtrip(
    key: str,
    mechanism: str,
    *,
    config: GPUConfig | None = None,
    restore_config: GPUConfig | None = None,
    iterations: int | None = None,
    signal_dyn: int | None = None,
    resume_gap: int = 2000,
) -> dict:
    """Run one snapshot round-trip and return its verdict as a plain dict.

    *restore_config* (``None`` — the capture config) may differ in timing
    parameters and execution core; memory and architectural state must
    still converge bit-identically.  Completion *cycles* are only
    required to match when the configurations match — restoring onto a
    slower device legitimately finishes at a different cycle.
    """
    from ..analysis.engine import _launch, prepared_for

    config = config if config is not None else GPUConfig.radeon_vii()
    target_config = restore_config if restore_config is not None else config
    launch = _launch(key, config, iterations)
    prepared = prepared_for(key, mechanism, config, iterations)
    if signal_dyn is None:
        signal_dyn = 3 * len(launch.kernel.program.instructions) + 7

    payload, straight = run_snapshot_experiment(
        launch.spec(), prepared, config, signal_dyn,
        resume_gap=resume_gap, snap_on_evicted=True,
    )
    if payload is None:
        return {
            "kernel": key,
            "mechanism": mechanism,
            "ok": False,
            "captured": False,
            "reason": "eviction point never reached",
        }
    data = encode_snapshot(payload)
    # byte-determinism: the same payload must encode identically (the
    # serve migration model and the CI gate compare raw digests)
    deterministic = encode_snapshot(decode_snapshot(data)) == data

    restored = restore_experiment(
        decode_snapshot(data), launch.spec(), prepared, target_config,
    )
    finished = complete_experiment(restored)

    warp_ids = {m.warp_id for m in straight.measurements}
    memory_ok = finished.memory == straight.memory
    registers_ok = arch_digest(finished.sm, warp_ids) == arch_digest(
        straight.sm, warp_ids
    )
    same_config = target_config == config
    cycles_match = finished.total_cycles == straight.total_cycles
    ok = (
        deterministic
        and memory_ok
        and registers_ok
        and (cycles_match or not same_config)
    )
    return {
        "kernel": key,
        "mechanism": mechanism,
        "ok": ok,
        "captured": True,
        "deterministic": deterministic,
        "memory_ok": memory_ok,
        "registers_ok": registers_ok,
        "same_config": same_config,
        "cycles_match": cycles_match,
        "capture_cycle": payload["sm"]["cycle"],
        "snapshot_bytes": len(data),
        "sha256": snapshot_sha256(data),
        "total_cycles": straight.total_cycles,
        "restored_cycles": finished.total_cycles,
    }


def snap_profile_for(
    key: str,
    mechanism: str,
    config: GPUConfig,
    restore_config: GPUConfig | None = None,
    iterations: int | None = None,
    signal_dyn: int | None = None,
    resume_gap: int = 2000,
) -> dict:
    """Cached snapshot round-trip verdict (see :func:`run_snap_roundtrip`)."""
    from ..analysis.cache import canonical, get_cache
    from ..analysis.engine import _base_parts, _mechanism_parts
    from .format import SNAP_VERSION

    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, None))
    parts.update(
        {
            "snap_version": SNAP_VERSION,
            "snap_profile": SNAP_PROFILE_VERSION,
            "restore_config": (
                canonical(restore_config) if restore_config is not None else None
            ),
            "signal_dyn": signal_dyn,
            "resume_gap": resume_gap,
        }
    )

    def run() -> dict:
        return run_snap_roundtrip(
            key,
            mechanism,
            config=config,
            restore_config=restore_config,
            iterations=iterations,
            signal_dyn=signal_dyn,
            resume_gap=resume_gap,
        )

    return get_cache().get_or_create("snap", parts, run)


@dataclass(frozen=True)
class SnapUnit:
    """One snapshot round-trip: (kernel, mechanism, capture/restore configs)."""

    key: str
    mechanism: str
    config: GPUConfig | None = None
    restore_config: GPUConfig | None = None
    iterations: int | None = None
    signal_dyn: int | None = None
    resume_gap: int = 2000

    def run(self) -> dict:
        config = self.config if self.config is not None else GPUConfig.radeon_vii()
        return snap_profile_for(
            self.key,
            self.mechanism,
            config,
            self.restore_config,
            self.iterations,
            self.signal_dyn,
            self.resume_gap,
        )
