"""Per-warp preemption-latency breakdowns from the event stream.

Splits every warp's measured ``latency_cycles`` / ``resume_cycles`` into
the phases the paper's §IV-B runtime flow implies, per preemption strategy:

``switch`` (routine-pair mechanisms — BASELINE, LIVE, CS-Defer, CTXBack…)
    preemption = ``store`` (dedicated-routine execution from the signal to
    its last issued instruction) + ``drain`` (outstanding context stores +
    the metadata write reaching memory);
    resume = ``reload`` (dedicated resuming routine) + ``drain``.

``drop`` (CKPT)
    preemption = ``meta_store`` (only per-warp metadata is written; the
    context already lives in the last checkpoint);
    resume = ``reload`` (checkpoint load) + ``reexec`` (re-executing from
    the checkpoint until the signalled dynamic instruction is re-reached).

``drain`` (SM-draining)
    preemption = ``drain_exec`` (the warp runs to completion); resume is
    empty — there is nothing to restore.

The invariant the tests and the CI job assert: phase sums equal the
measured totals *exactly* — ``sum(phases) == latency_cycles`` and
``sum(resume_phases) == resume_cycles`` for every warp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EventKind, Tracer

#: canonical phase order for rendering (per strategy)
PREEMPT_PHASES = {
    "switch": ("store", "drain"),
    "drop": ("meta_store",),
    "drain": ("drain_exec",),
}
RESUME_PHASES = {
    "switch": ("reload", "drain"),
    "drop": ("reload", "reexec"),
    "drain": (),
}


@dataclass
class PhaseBreakdown:
    """One warp's latency decomposition (cycles per phase)."""

    warp_id: int
    strategy: str
    phases: dict[str, int] = field(default_factory=dict)
    resume_phases: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.phases.values())

    @property
    def resume_total(self) -> int:
        return sum(self.resume_phases.values())

    def as_dict(self) -> dict:
        return {
            "warp": self.warp_id,
            "strategy": self.strategy,
            "phases": dict(self.phases),
            "resume_phases": dict(self.resume_phases),
        }


def _first(events, kind: EventKind, **match):
    for event in events:
        if event.kind is kind and all(
            event.data.get(k) == v for k, v in match.items()
        ):
            return event
    return None


def build_breakdowns(trace: Tracer, measurements) -> dict[int, PhaseBreakdown]:
    """Decompose each warp's measured latency using its event sub-stream.

    *measurements* is the controller's :class:`WarpMeasurement` list; the
    totals come from there (they are the simulator's ground truth), the
    split points from the trace.  Warps whose life-cycle events are
    incomplete (e.g. a run aborted mid-routine) are skipped.
    """
    by_warp: dict[int, list] = {}
    for event in trace.sorted_events():
        by_warp.setdefault(event.warp_id, []).append(event)

    breakdowns: dict[int, PhaseBreakdown] = {}
    for m in measurements:
        events = by_warp.get(m.warp_id, [])
        signal = _first(events, EventKind.SIGNAL)
        if signal is None:
            continue
        strategy = signal.data.get("strategy", "switch")
        breakdown = PhaseBreakdown(warp_id=m.warp_id, strategy=strategy)

        if strategy == "drain":
            done = _first(events, EventKind.DRAIN_DONE)
            if done is None:
                continue
            breakdown.phases["drain_exec"] = done.cycle - signal.cycle
        elif strategy == "drop":
            evict = _first(events, EventKind.EVICT)
            if evict is None:
                continue
            breakdown.phases["meta_store"] = evict.cycle - signal.cycle
        else:  # switch: dedicated routine + memory drain
            routine_end = _first(events, EventKind.ROUTINE_END, routine="preempt")
            evict = _first(events, EventKind.EVICT)
            if routine_end is None or evict is None:
                continue
            breakdown.phases["store"] = routine_end.cycle - signal.cycle
            breakdown.phases["drain"] = evict.cycle - routine_end.cycle

        resume_start = _first(events, EventKind.RESUME_START)
        if resume_start is not None and m.resume_cycles is not None:
            if strategy == "drop":
                reload_event = _first(events, EventKind.CTX_RELOAD)
                reload_cycles = (
                    reload_event.data.get("dur", 0) if reload_event else 0
                )
                breakdown.resume_phases["reload"] = reload_cycles
                breakdown.resume_phases["reexec"] = m.resume_cycles - reload_cycles
            elif strategy == "switch":
                routine_end = _first(
                    events, EventKind.ROUTINE_END, routine="resume"
                )
                resume_end = _first(events, EventKind.RESUME_END)
                if routine_end is not None and resume_end is not None:
                    breakdown.resume_phases["reload"] = (
                        routine_end.cycle - resume_start.cycle
                    )
                    breakdown.resume_phases["drain"] = (
                        resume_end.cycle - routine_end.cycle
                    )
            # strategy == "drain": nothing to resume (resume_cycles == 0)
        breakdowns[m.warp_id] = breakdown
    return breakdowns


def aggregate_breakdowns(breakdowns: dict[int, PhaseBreakdown]) -> dict:
    """Cross-warp aggregate for reports (``BENCH_engine.json``, profiles):
    total cycles per phase plus warp count, preempt/resume separated."""
    preempt: dict[str, int] = {}
    resume: dict[str, int] = {}
    for breakdown in breakdowns.values():
        for phase, cycles in breakdown.phases.items():
            preempt[phase] = preempt.get(phase, 0) + cycles
        for phase, cycles in breakdown.resume_phases.items():
            resume[phase] = resume.get(phase, 0) + cycles
    return {
        "warps": len(breakdowns),
        "preempt_phase_cycles": dict(sorted(preempt.items())),
        "resume_phase_cycles": dict(sorted(resume.items())),
    }
