"""Structured event tracing for the SM simulator.

The paper's argument is a latency story — where the cycles go between the
preemption signal, the dedicated routine, eviction and resume — so the
simulator's observability layer records *typed events* with cycle
timestamps and warp/mechanism attribution instead of only end-to-end
aggregates.  The design constraints, in order:

1. **Zero observer effect.**  Recording must never change a simulated
   cycle: the tracer only appends to a list; nothing reads it during the
   run.  The CI trace job asserts traced and untraced ``total_cycles``
   are identical.
2. **Near-zero disabled cost.**  ``SM.tracer`` is ``None`` by default and
   every emission site is guarded by a single attribute-load + ``None``
   check, so the hot issue loop pays one predictable branch.
3. **Determinism.**  Events are appended in simulation order and carry a
   monotonic sequence number; two identical runs produce byte-identical
   event streams (the exporters sort by ``(cycle, seq)``, a total order).

Enablement: set :attr:`~repro.sim.config.GPUConfig.trace_events` on the
config, or export ``REPRO_TRACE=1`` (``REPRO_TRACE=issue`` additionally
records one event per issued instruction — the Chrome-trace "full" view).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum

TRACE_ENV = "REPRO_TRACE"

#: ``REPRO_TRACE`` values that enable tracing at routine granularity
_ENV_ON = ("1", "on", "true", "yes", "routine")
#: ``REPRO_TRACE`` values that additionally record per-issue events
_ENV_FULL = ("issue", "full", "2")


class EventKind(Enum):
    """Typed simulator events (the value is the wire/JSON name)."""

    #: preemption signal processed for a warp (data: pc, strategy,
    #: flashback, context_bytes)
    SIGNAL = "signal"
    #: warp entered a dedicated routine (data: routine = preempt|resume)
    ROUTINE_START = "routine_start"
    #: routine's last instruction issued (data: routine)
    ROUTINE_END = "routine_end"
    #: end-of-routine memory drain window (data: routine, dur)
    MEM_DRAIN = "mem_drain"
    #: warp's on-chip resources released (context saved)
    EVICT = "evict"
    #: resume requested for an evicted warp
    RESUME_START = "resume_start"
    #: context-buffer reload issued on a checkpoint resume (data: nbytes, dur)
    CTX_RELOAD = "ctx_reload"
    #: resume complete (data: strategy)
    RESUME_END = "resume_end"
    #: SM-draining warp ran to completion after the signal
    DRAIN_DONE = "drain_done"
    #: CKPT probe took a checkpoint (data: probe, nbytes)
    CKPT_STORE = "ckpt_store"
    #: no warp could issue; the scheduler jumped forward (data: dur)
    ISSUE_STALL = "issue_stall"
    #: one instruction issued (detail="issue" only; data: pc, mode, mnemonic)
    ISSUE = "issue"
    #: a seeded fault fired (:mod:`repro.faults`; data: kind + per-kind detail)
    FAULT_INJECT = "fault_inject"
    #: a saved context failed checksum verification at resume (data:
    #: expected, actual, retries)
    INTEGRITY_FAIL = "integrity_fail"
    #: a warp fell back to the conservative path (data: fallback, reason)
    DEGRADE = "degrade"
    #: a recovery action completed (data: action + per-action detail)
    RECOVER = "recover"
    #: one access to a saved-context buffer (emitted by the model checker's
    #: transition driver; data: owner = warp whose buffer was touched,
    #: slot, write).  The happens-before race detector (:mod:`repro.mc.hb`)
    #: assigns vector clocks over the event stream — SIGNAL / EVICT /
    #: RESUME_START are its synchronisation edges — and flags unordered
    #: conflicting CTX_ACCESS pairs on the same (owner, slot)
    CTX_ACCESS = "ctx_access"
    # -- request-level events (:mod:`repro.serve`; "cycle" carries the
    # -- serving clock in integer nanoseconds, not simulated GPU cycles)
    #: a request entered the fleet (data: tenant, gpu)
    REQ_ARRIVE = "req_arrive"
    #: a request began service on its GPU (data: tenant, gpu, wait_us)
    REQ_START = "req_start"
    #: a request completed (data: tenant, gpu, latency_us)
    REQ_DONE = "req_done"
    #: the batch job was evicted to admit requests (data: gpu, cost_us)
    BATCH_PREEMPT = "batch_preempt"
    #: the batch job took the GPU back after a drain (data: gpu, cost_us)
    BATCH_RESUME = "batch_resume"
    #: the batch job's snapshot left this GPU (live migration; data: gpu,
    #: cost_us = stop-the-world snapshot pause)
    MIGRATE_OUT = "migrate_out"
    #: a migrated batch job restored onto this GPU (data: gpu, cost_us =
    #: restore pause after the link transfer)
    MIGRATE_IN = "migrate_in"
    # -- fleet fault-tolerance events (:mod:`repro.serve.resilience`)
    #: a GPU died; everything it held is orphaned (data: gpu)
    GPU_CRASH = "gpu_crash"
    #: the health watchdog marked a GPU degraded (data: gpu, factor)
    GPU_DEGRADE = "gpu_degrade"
    #: a crashed GPU's batch job restored from its last snapshot onto
    #: this GPU (data: gpu, src, cost_us, recovery_us)
    FAILOVER_IN = "failover_in"
    #: a request was refused by admission control or dropped and its
    #: retry budget is spent (data: tenant, gpu, attempts)
    REQ_SHED = "req_shed"
    #: a refused/dropped request re-enters after its deterministic
    #: backoff (data: tenant, gpu, attempt, delay_us)
    REQ_RETRY = "req_retry"
    #: the hosted batch job took a cadence checkpoint (data: gpu,
    #: cost_us; cost 0 when the job sat evicted — its context is saved)
    BATCH_CKPT = "batch_ckpt"


#: pseudo warp id for SM-wide events (scheduler stalls)
SM_WIDE = -1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: ``seq`` breaks same-cycle ties deterministically."""

    seq: int
    cycle: int
    kind: EventKind
    warp_id: int
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready flat form (the JSONL stream's line format)."""
        return {
            "seq": self.seq,
            "cycle": self.cycle,
            "kind": self.kind.value,
            "warp": self.warp_id,
            **{k: v for k, v in sorted(self.data.items())},
        }


class Tracer:
    """Append-only event recorder attached to one :class:`~repro.sim.sm.SM`.

    ``detail="routine"`` records the coarse preemption life-cycle events;
    ``detail="issue"`` additionally records one event per issued
    instruction (large, but it is what makes the Chrome trace show the
    save/reload/revert steps of each dedicated routine).
    """

    __slots__ = ("events", "mechanism", "detail", "_seq")

    def __init__(self, mechanism: str = "", detail: str = "routine") -> None:
        self.events: list[TraceEvent] = []
        self.mechanism = mechanism
        self.detail = detail
        self._seq = 0

    @property
    def full(self) -> bool:
        """Per-issue events requested?"""
        return self.detail == "issue"

    def emit(self, cycle: int, kind: EventKind, warp_id: int, **data) -> None:
        seq = self._seq
        self._seq = seq + 1
        self.events.append(TraceEvent(seq, cycle, kind, warp_id, data))

    def sorted_events(self) -> list[TraceEvent]:
        """Events in ``(cycle, seq)`` order — a deterministic total order
        (some events are emitted with a future semantic cycle, e.g. the
        drained-eviction timestamp, so raw order is not cycle order)."""
        return sorted(self.events, key=lambda e: (e.cycle, e.seq))

    def events_for(self, warp_id: int) -> list[TraceEvent]:
        return [e for e in self.sorted_events() if e.warp_id == warp_id]

    def __len__(self) -> int:
        return len(self.events)


# -- enablement ------------------------------------------------------------------


def env_trace_value() -> str:
    return os.environ.get(TRACE_ENV, "").strip().lower()


def tracing_enabled(config) -> bool:
    """Tracing requested via the config or the ``REPRO_TRACE`` environment."""
    if getattr(config, "trace_events", False):
        return True
    return env_trace_value() in _ENV_ON + _ENV_FULL


def resolved_detail(config) -> str:
    """Effective detail level: the environment can only *raise* detail."""
    if env_trace_value() in _ENV_FULL:
        return "issue"
    return getattr(config, "trace_detail", "routine")


def make_tracer(config, mechanism: str = "") -> Tracer | None:
    """The single factory the launch harness uses: ``None`` when disabled."""
    if not tracing_enabled(config):
        return None
    return Tracer(mechanism=mechanism, detail=resolved_detail(config))
