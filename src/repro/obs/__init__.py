"""Deterministic observability for the SM simulator (``repro.obs``).

Structured event tracing (:mod:`~repro.obs.events`), per-warp
preemption-latency breakdowns (:mod:`~repro.obs.breakdown`), and exporters
(:mod:`~repro.obs.export`): Chrome ``trace_event`` JSON for Perfetto, a
JSONL stream, and a deterministic text timeline.  Off by default; enable
via ``GPUConfig(trace_events=True)`` or ``REPRO_TRACE=1``, and drive it
from the CLI with ``python -m repro trace``.
"""

from .breakdown import (
    PREEMPT_PHASES,
    RESUME_PHASES,
    PhaseBreakdown,
    aggregate_breakdowns,
    build_breakdowns,
)
from .events import (
    SM_WIDE,
    TRACE_ENV,
    EventKind,
    TraceEvent,
    Tracer,
    make_tracer,
    resolved_detail,
    tracing_enabled,
)
from .export import render_trace_text, to_chrome, to_jsonl

__all__ = [
    "EventKind",
    "PREEMPT_PHASES",
    "PhaseBreakdown",
    "RESUME_PHASES",
    "SM_WIDE",
    "TRACE_ENV",
    "TraceEvent",
    "Tracer",
    "aggregate_breakdowns",
    "build_breakdowns",
    "make_tracer",
    "render_trace_text",
    "resolved_detail",
    "to_chrome",
    "to_jsonl",
    "tracing_enabled",
]
