"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, text timeline.

Three views of the same event stream (all deterministic — events are
ordered by ``(cycle, seq)``, a total order two identical runs reproduce
byte-for-byte):

* :func:`to_chrome` — the Chrome ``trace_event`` object format (a
  ``traceEvents`` array of ``B/E/X/i/M`` records), loadable by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Warps are threads
  of one "SM" process; routine executions and drain windows are complete
  (``X``) slices, signals/evictions instant (``i``) markers.
* :func:`to_jsonl` — one JSON object per line, the machine-diffable
  stream form (``jq``-friendly; what the regression tests compare).
* :func:`render_trace_text` — the upgraded deterministic text timeline:
  one line per event plus the per-warp latency breakdown table.
"""

from __future__ import annotations

import json

from .breakdown import PhaseBreakdown, build_breakdowns
from .events import SM_WIDE, EventKind, TraceEvent, Tracer

#: Chrome tid for SM-wide scheduler events (no real warp id is negative)
SCHEDULER_TID = 1_000_000

#: event kinds rendered as instant markers in the Chrome view
_INSTANT_KINDS = (
    EventKind.SIGNAL,
    EventKind.EVICT,
    EventKind.RESUME_START,
    EventKind.RESUME_END,
    EventKind.DRAIN_DONE,
    EventKind.CKPT_STORE,
    EventKind.FAULT_INJECT,
    EventKind.INTEGRITY_FAIL,
    EventKind.DEGRADE,
    EventKind.RECOVER,
)


def _routine_step(mechanism: str, routine: str, mnemonic: str) -> str:
    from ..mechanisms.base import classify_routine_step

    return classify_routine_step(routine, mnemonic)


def to_chrome(trace: Tracer, config, result=None) -> dict:
    """Chrome ``trace_event`` JSON object; timestamps in µs at the
    configured clock.  Load the emitted file in Perfetto or
    ``chrome://tracing`` as-is."""
    us = config.cycles_to_us
    events: list[dict] = []
    pid = 0
    label = f"SM0 · {trace.mechanism}" if trace.mechanism else "SM0"
    events.append(
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": label}}
    )
    seen_warps: list[int] = []
    open_routines: dict[tuple[int, str], TraceEvent] = {}
    body: list[dict] = []
    for event in trace.sorted_events():
        tid = SCHEDULER_TID if event.warp_id == SM_WIDE else event.warp_id
        if event.warp_id != SM_WIDE and event.warp_id not in seen_warps:
            seen_warps.append(event.warp_id)
        kind = event.kind
        if kind is EventKind.ROUTINE_START:
            open_routines[(event.warp_id, event.data["routine"])] = event
            continue
        if kind is EventKind.ROUTINE_END:
            routine = event.data["routine"]
            start = open_routines.pop((event.warp_id, routine), None)
            if start is None:
                continue
            body.append(
                {"ph": "X", "name": f"{routine} routine", "cat": "routine",
                 "pid": pid, "tid": tid, "ts": us(start.cycle),
                 "dur": us(event.cycle - start.cycle),
                 "args": dict(start.data)}
            )
            continue
        if kind in (EventKind.MEM_DRAIN, EventKind.CTX_RELOAD,
                    EventKind.ISSUE_STALL):
            body.append(
                {"ph": "X",
                 "name": kind.value.replace("_", " "),
                 "cat": "memory" if kind is not EventKind.ISSUE_STALL
                 else "scheduler",
                 "pid": pid, "tid": tid, "ts": us(event.cycle),
                 "dur": us(event.data.get("dur", 0)),
                 "args": {k: v for k, v in event.data.items() if k != "dur"}}
            )
            continue
        if kind is EventKind.ISSUE:
            mnemonic = event.data.get("mnemonic", "issue")
            mode = event.data.get("mode", "")
            args = dict(event.data)
            if mode in ("preempt", "resume"):
                args["step"] = _routine_step(trace.mechanism, mode, mnemonic)
            body.append(
                {"ph": "X", "name": mnemonic, "cat": f"issue.{mode}",
                 "pid": pid, "tid": tid, "ts": us(event.cycle),
                 "dur": us(1), "args": args}
            )
            continue
        if kind in _INSTANT_KINDS:
            body.append(
                {"ph": "i", "s": "t", "name": kind.value, "cat": "lifecycle",
                 "pid": pid, "tid": tid, "ts": us(event.cycle),
                 "args": dict(event.data)}
            )
    for warp_id in seen_warps:
        events.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": warp_id,
             "args": {"name": f"warp {warp_id}"}}
        )
    events.append(
        {"ph": "M", "name": "thread_name", "pid": pid, "tid": SCHEDULER_TID,
         "args": {"name": "scheduler"}}
    )
    events.extend(body)
    other = {"mechanism": trace.mechanism, "clock_ghz": config.clock_ghz,
             "events": len(trace.events)}
    if result is not None:
        other["total_cycles"] = result.total_cycles
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def to_jsonl(trace: Tracer) -> str:
    """One compact JSON object per event, in ``(cycle, seq)`` order."""
    return "\n".join(
        json.dumps(event.as_dict(), sort_keys=False, separators=(",", ":"))
        for event in trace.sorted_events()
    )


def _format_data(data: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(data.items()))


def render_trace_text(
    trace: Tracer,
    config,
    result=None,
    breakdowns: dict[int, PhaseBreakdown] | None = None,
) -> str:
    """Deterministic event-by-event timeline plus the breakdown table.

    Unlike the measurement-level summary of
    :func:`repro.analysis.trace.render_timeline`, this renders the raw
    event stream — same-cycle events tie-break on their sequence number,
    so the output is identical across runs.
    """
    lines = []
    header = f"trace: mechanism {trace.mechanism or '?'}, " \
             f"{len(trace.events)} events"
    if result is not None:
        header += (
            f", total {result.total_cycles} cycles "
            f"({config.cycles_to_us(result.total_cycles):.1f} µs)"
        )
    lines.append(header)
    for event in trace.sorted_events():
        who = "SM  " if event.warp_id == SM_WIDE else f"w{event.warp_id:<3d}"
        data = _format_data(event.data)
        lines.append(
            f"  @{event.cycle:>8d}  {who} {event.kind.value:<13s} {data}".rstrip()
        )
    if breakdowns is None and result is not None and result.measurements:
        breakdowns = build_breakdowns(trace, result.measurements)
    if breakdowns:
        lines.append("latency breakdown (cycles):")
        for warp_id in sorted(breakdowns):
            b = breakdowns[warp_id]
            preempt = " + ".join(
                f"{phase} {cycles}" for phase, cycles in b.phases.items()
            )
            line = (f"  warp {warp_id} [{b.strategy}]: "
                    f"preempt {b.total} = {preempt}")
            if b.resume_phases:
                resume = " + ".join(
                    f"{phase} {cycles}"
                    for phase, cycles in b.resume_phases.items()
                )
                line += f"; resume {b.resume_total} = {resume}"
            lines.append(line)
    return "\n".join(lines)
