"""Chaos harness: fault scenarios × mechanisms under the recovery oracle.

One chaos run executes the same preemption experiment twice — once clean,
once with a named fault scenario armed — and asserts the **recovery
correctness oracle**:

* *memory*: the faulted run verifies against its own uninterrupted
  reference **and** its final :class:`~repro.sim.memory.DeviceMemory`
  image is bit-identical to the clean preempted run's;
* *registers*: every non-degraded target warp's final architectural state
  (vector and scalar register files, exec mask, SCC, LDS) matches the
  clean run bit-for-bit; degraded warps are held to LDS equality — a
  full-image resume restores *every* register from the signal-time image,
  while the flashback path only reloads registers live at the signal, so
  architecturally **dead** registers legitimately differ at program end
  (persistent state — memory and LDS — is the ground truth, exactly as in
  :func:`~repro.sim.gpu.run_preemption_experiment`'s verification);
* *events*: every injected fault appears in the trace as a
  :attr:`~repro.obs.events.EventKind.FAULT_INJECT` event, every detected
  integrity failure carries a matching DEGRADE, and every degradation a
  matching RECOVER — faults are never silently absorbed.

A degraded run is *allowed* to be slower (that is the point of graceful
degradation); it is never allowed to be wrong.

:func:`chaos_profile_for` caches one run's verdict in the
content-addressed artifact cache; :class:`ChaosUnit` makes sweeps
engine-schedulable (parallel, retried, cacheable) alongside the other
work units of :mod:`repro.analysis.engine`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..obs.events import EventKind
from ..sim.config import GPUConfig
from ..sim.digest import arch_digest
from ..sim.gpu import run_preemption_experiment
from .plan import scenario, scenario_names

__all__ = [
    "ChaosUnit",
    "chaos_profile_for",
    "run_chaos_scenario",
    "render_chaos",
]

#: bump when the oracle's *logic* changes: verdicts are cached by input
#: content, so a stricter/looser check must invalidate old verdicts.
#: 3: the register check compares canonical architectural digests
#: (:func:`repro.sim.digest.arch_digest`) instead of ad-hoc array tuples
ORACLE_VERSION = 3


def _events_consistent(result) -> tuple[bool, str]:
    """Every injection traced; every detection degraded; every degradation
    recovered.  Returns (ok, reason-when-not)."""
    injector = result.faults
    trace = result.trace
    if injector is None or trace is None:
        return False, "no injector/trace on result"
    by_kind: dict[EventKind, list] = {}
    for event in trace.events:
        by_kind.setdefault(event.kind, []).append(event)
    injected_events = by_kind.get(EventKind.FAULT_INJECT, [])
    if len(injected_events) != len(injector.injected):
        return False, (
            f"{len(injector.injected)} faults injected but "
            f"{len(injected_events)} FAULT_INJECT events traced"
        )
    degrade_warps = {e.warp_id for e in by_kind.get(EventKind.DEGRADE, [])}
    recover_warps = {e.warp_id for e in by_kind.get(EventKind.RECOVER, [])}
    for event in by_kind.get(EventKind.INTEGRITY_FAIL, []):
        if event.warp_id not in degrade_warps:
            return False, f"warp {event.warp_id}: integrity failure never degraded"
    missing = degrade_warps - recover_warps
    if missing:
        return False, f"degraded warps {sorted(missing)} never recovered"
    return True, ""


def run_chaos_scenario(
    key: str,
    mechanism: str,
    scenario_name: str,
    *,
    seed: int = 0,
    config: GPUConfig | None = None,
    iterations: int | None = None,
    signal_dyn: int | None = None,
    resume_gap: int = 2000,
) -> dict:
    """Run one (kernel, mechanism, scenario) chaos experiment and return
    its oracle verdict as a plain JSON-able dict.

    Both runs are traced (the events check needs the stream) and both
    verify against the uninterrupted reference; *signal_dyn* defaults to
    the CLI's ``3 * static_len + 7`` convention.
    """
    from ..analysis.engine import _launch, prepared_for

    config = config if config is not None else GPUConfig.radeon_vii()
    run_config = dataclasses.replace(config, trace_events=True)
    launch = _launch(key, config, iterations)
    # prepare under the *base* config: instrumentation must not key on the
    # tracing flag (matches experiment_profile_for)
    prepared = prepared_for(key, mechanism, config, iterations)
    if signal_dyn is None:
        signal_dyn = 3 * len(launch.kernel.program.instructions) + 7

    clean = run_preemption_experiment(
        launch.spec(), prepared, run_config,
        signal_dyn=signal_dyn, resume_gap=resume_gap, verify=True,
    )
    plan = scenario(scenario_name, seed=seed)
    faulted = run_preemption_experiment(
        launch.spec(), prepared, run_config,
        signal_dyn=signal_dyn, resume_gap=resume_gap, verify=True,
        faults=plan,
    )

    warp_ids = {m.warp_id for m in clean.measurements}
    degraded_ids = frozenset(
        m.warp_id for m in faulted.measurements if m.degraded
    )
    memory_ok = bool(faulted.verified) and faulted.memory == clean.memory
    # degraded warps are held to LDS-only equality (lds_only): a full-image
    # resume restores dead registers the flashback path legitimately skips
    registers_ok = arch_digest(
        faulted.sm, warp_ids, lds_only=degraded_ids
    ) == arch_digest(clean.sm, warp_ids, lds_only=degraded_ids)
    events_ok, events_reason = _events_consistent(faulted)
    checks = {
        "memory": memory_ok,
        "registers": registers_ok,
        "events": events_ok,
    }
    injector = faulted.faults
    degraded = [m.warp_id for m in faulted.measurements if m.degraded]
    return {
        "kernel": key,
        "mechanism": mechanism,
        "scenario": scenario_name,
        "seed": seed,
        "ok": all(checks.values()),
        "checks": checks,
        "events_reason": events_reason,
        "injected": len(injector.injected) if injector is not None else 0,
        "degraded_warps": degraded,
        "recovery": injector.stats.as_dict() if injector is not None else {},
        "latency": faulted.mean_latency,
        "clean_latency": clean.mean_latency,
        "recovery_cycles": sum(
            m.recovery_cycles
            for m in faulted.measurements
            if m.recovery_cycles is not None
        ),
    }


def chaos_profile_for(
    key: str,
    mechanism: str,
    scenario_name: str,
    seed: int,
    config: GPUConfig,
    iterations: int | None = None,
    signal_dyn: int | None = None,
    resume_gap: int = 2000,
) -> dict:
    """Cached chaos verdict (see :func:`run_chaos_scenario`).

    Keyed on full kernel + config content plus the scenario's resolved
    :class:`~repro.faults.plan.FaultPlan` — editing a scenario definition
    invalidates its cached verdicts.
    """
    from ..analysis.cache import canonical, get_cache
    from ..analysis.engine import _base_parts, _mechanism_parts

    parts = _base_parts(key, config, iterations)
    parts.update(_mechanism_parts(mechanism, None))
    parts.update(
        {
            "chaos_plan": canonical(scenario(scenario_name, seed=seed)),
            "signal_dyn": signal_dyn,
            "resume_gap": resume_gap,
            "oracle": ORACLE_VERSION,
        }
    )

    def run() -> dict:
        return run_chaos_scenario(
            key,
            mechanism,
            scenario_name,
            seed=seed,
            config=config,
            iterations=iterations,
            signal_dyn=signal_dyn,
            resume_gap=resume_gap,
        )

    return get_cache().get_or_create("chaos", parts, run)


@dataclass(frozen=True)
class ChaosUnit:
    """One chaos experiment: (kernel, mechanism, fault scenario, seed)."""

    key: str
    mechanism: str
    scenario: str
    seed: int = 0
    config: GPUConfig | None = None
    iterations: int | None = None
    signal_dyn: int | None = None
    resume_gap: int = 2000

    def run(self) -> dict:
        config = self.config if self.config is not None else GPUConfig.radeon_vii()
        return chaos_profile_for(
            self.key,
            self.mechanism,
            self.scenario,
            self.seed,
            config,
            self.iterations,
            self.signal_dyn,
            self.resume_gap,
        )


def render_chaos(results: list[dict]) -> str:
    """Text table of chaos verdicts (one row per result dict)."""
    header = (
        f"{'kernel':<8} {'mechanism':<10} {'scenario':<14} {'oracle':<7} "
        f"{'inj':>4} {'deg':>4} {'rec':>4} {'latency':>9} {'clean':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in results:
        if not isinstance(row, dict):  # UnitFailure from a COLLECT run
            lines.append(f"{'?':<8} {'?':<10} {'?':<14} FAILED  {row!r}")
            continue
        recovery = row.get("recovery", {})
        verdict = "PASS" if row["ok"] else "FAIL"
        lines.append(
            f"{row['kernel']:<8} {row['mechanism']:<10} {row['scenario']:<14} "
            f"{verdict:<7} {row['injected']:>4} {len(row['degraded_warps']):>4} "
            f"{recovery.get('recovered', 0):>4} {row['latency']:>9.1f} "
            f"{row['clean_latency']:>9.1f}"
        )
        if not row["ok"]:
            failed = [name for name, ok in row["checks"].items() if not ok]
            reason = row.get("events_reason") or ""
            lines.append(f"    failed checks: {', '.join(failed)} {reason}".rstrip())
    return "\n".join(lines)


def default_scenarios() -> list[str]:
    return scenario_names()
