"""Context checksums: CRC32 over a warp's saved architectural image.

The checksum is *functional only* — it is computed at save time and
verified at restore time, never consuming simulated cycles, so guarding
every eviction cannot change a single measured number.  CRC32 detects
every single-bit flip (and all burst errors up to 32 bits), which is
exactly the corruption model :mod:`repro.faults.plan` injects.
"""

from __future__ import annotations

import zlib

import numpy as np

_U64 = (1 << 64) - 1


def _crc_value(crc: int, value) -> int:
    if isinstance(value, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(value).tobytes(), crc)
    return zlib.crc32((int(value) & _U64).to_bytes(8, "little"), crc)


def context_checksum(ctx_buffer: dict) -> int:
    """Checksum of a saved context buffer (``WarpState.ctx_buffer``).

    Keys are visited in sorted order so the value depends only on the
    buffer's *content*, not the routine's store order.
    """
    crc = 0
    for key in sorted(ctx_buffer, key=str):
        crc = zlib.crc32(str(key).encode("utf-8"), crc)
        crc = _crc_value(crc, ctx_buffer[key])
    return crc


def snapshot_checksum(snapshot) -> int:
    """Checksum of a functional register/LDS snapshot.

    Covers everything a restore rebuilds from a
    :class:`~repro.sim.warp.CkptSnapshot`: the register tuple (vregs,
    sregs, exec mask, scc, pc), the dynamic progress counters, and LDS.
    """
    vregs, sregs, exec_mask, scc, pc = snapshot.regs
    crc = _crc_value(0, vregs)
    crc = _crc_value(crc, sregs)
    crc = _crc_value(crc, np.asarray(exec_mask, dtype=np.uint8))
    for scalar in (scc, pc, snapshot.dyn_count):
        crc = _crc_value(crc, scalar)
    for probe in sorted(snapshot.probe_counts):
        crc = _crc_value(crc, probe)
        crc = _crc_value(crc, snapshot.probe_counts[probe])
    if snapshot.lds is not None:
        crc = _crc_value(crc, snapshot.lds)
    return crc
