"""Runtime fault injection driven by a seeded :class:`FaultPlan`.

The injector attaches to one ``(SM, PreemptionController)`` pair and is
consulted at four points:

* ``drop_signal`` — inside :meth:`PreemptionController.poll`, before a
  delivery lands: returning True loses that delivery in flight (the
  controller's scan naturally retries on later polls);
* ``on_poll`` — duplicate-signal injection: re-raises the preempt flag
  on warps whose preemption was already served (the controller's
  duplicate guard must absorb it);
* ``on_evicted`` — context corruption: flips words in the warp's saved
  context buffer (or its CKPT snapshot) while it sits evicted;
* ``on_issue`` — mid-routine aborts (re-signal during
  ``PREEMPT_ROUTINE``) and memory-pipeline stall bursts.

Every injection is recorded (and emitted as an
:attr:`~repro.obs.events.EventKind.FAULT_INJECT` event when tracing),
so the chaos oracle can assert that each fault produced a matching
recovery.  All randomness flows through one ``random.Random(seed)``:
identical plans inject identical faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..obs.events import SM_WIDE, EventKind
from ..sim.warp import SimWarp, WarpMode
from .plan import FaultKind, FaultPlan, FaultSpec
from .recovery import RecoveryPolicy, RecoveryStats

if TYPE_CHECKING:  # import cycle: sim imports faults.errors at module load
    from ..sim.preemption import PreemptionController
    from ..sim.sm import SM


@dataclass
class InjectedFault:
    """One fault that actually fired (the oracle's audit record)."""

    kind: FaultKind
    warp_id: int
    cycle: int
    detail: dict = field(default_factory=dict)


class FaultInjector:
    """Interprets one plan against one simulation, once."""

    def __init__(self, plan: FaultPlan, policy: RecoveryPolicy | None = None) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.rng = random.Random(plan.seed)
        self.stats = RecoveryStats()
        self.injected: list[InjectedFault] = []
        self.sm: "SM | None" = None
        self.controller: "PreemptionController | None" = None
        by_kind: dict[FaultKind, list[tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.specs):
            by_kind.setdefault(spec.kind, []).append((index, spec))
        self._by_kind = by_kind
        # per-(spec, warp) one-shot / budget state
        self._drop_left: dict[tuple[int, int], int] = {}
        self._dropped: set[tuple[int, int]] = set()
        self._dup_fired: set[tuple[int, int]] = set()
        self._abort_count: dict[tuple[int, int], int] = {}
        self._abort_fired: set[tuple[int, int]] = set()
        self._corrupt_fired: set[tuple[int, int]] = set()
        self._stall_fired: set[int] = set()

    def attach(self, sm: "SM", controller: "PreemptionController") -> "FaultInjector":
        self.sm = sm
        self.controller = controller
        sm.faults = self
        controller.faults = self
        return self

    # -- bookkeeping -----------------------------------------------------------

    def _specs(self, kind: FaultKind):
        return self._by_kind.get(kind, ())

    @staticmethod
    def _matches(spec: FaultSpec, warp_id: int) -> bool:
        return spec.warp_id is None or spec.warp_id == warp_id

    def _record(self, kind: FaultKind, warp_id: int, cycle: int, **detail) -> None:
        self.injected.append(InjectedFault(kind, warp_id, cycle, dict(detail)))
        self.stats.injected += 1
        tracer = self.sm.tracer if self.sm is not None else None
        if tracer is not None:
            tracer.emit(
                cycle, EventKind.FAULT_INJECT, warp_id, fault=kind.value, **detail
            )

    def _recover(self, warp_id: int, cycle: int, action: str, **detail) -> None:
        tracer = self.sm.tracer if self.sm is not None else None
        if tracer is not None:
            tracer.emit(cycle, EventKind.RECOVER, warp_id, action=action, **detail)

    # -- signal-path faults ----------------------------------------------------

    def drop_signal(self, warp: SimWarp, cycle: int) -> bool:
        """True: this delivery is lost in flight; the controller's poll
        scan re-attempts it on later cycles until it lands."""
        for index, spec in self._specs(FaultKind.SIGNAL_DROP):
            if not self._matches(spec, warp.warp_id):
                continue
            key = (index, warp.warp_id)
            left = self._drop_left.get(key, spec.drops)
            if left > 0:
                self._drop_left[key] = left - 1
                self._dropped.add(key)
                self._record(
                    FaultKind.SIGNAL_DROP, warp.warp_id, cycle, dyn=warp.dyn_count
                )
                return True
            if key in self._dropped:
                self._dropped.discard(key)
                self.stats.redelivered += 1
                self._recover(warp.warp_id, cycle, "redelivered", dyn=warp.dyn_count)
        return False

    def on_poll(self, controller: "PreemptionController", cycle: int) -> None:
        """Duplicate-signal injection: re-raise the flag on served warps."""
        dup_specs = self._specs(FaultKind.SIGNAL_DUP)
        if not dup_specs:
            return
        for index, spec in dup_specs:
            for warp in controller.sm.warps:
                wid = warp.warp_id
                if wid not in controller.target_warp_ids:
                    continue
                if not self._matches(spec, wid):
                    continue
                key = (index, wid)
                if key in self._dup_fired:
                    continue
                if (
                    wid in controller.measurements
                    and warp.mode is WarpMode.RUNNING
                    and not warp.preempt_flag
                ):
                    self._dup_fired.add(key)
                    warp.preempt_flag = True
                    self._record(FaultKind.SIGNAL_DUP, wid, cycle)

    # -- context corruption ----------------------------------------------------

    def on_evicted(self, warp: SimWarp, cycle: int) -> None:
        """Corrupt the saved context while the warp sits evicted."""
        for index, spec in self._specs(FaultKind.CTX_CORRUPT):
            if not self._matches(spec, warp.warp_id):
                continue
            key = (index, warp.warp_id)
            if key in self._corrupt_fired:
                continue
            flipped = self._corrupt(warp, spec.flips)
            if flipped:
                self._corrupt_fired.add(key)
                self._record(
                    FaultKind.CTX_CORRUPT, warp.warp_id, cycle, words=flipped
                )

    def _corrupt(self, warp: SimWarp, flips: int) -> int:
        if warp.active_strategy == "drop":
            snapshot = warp.last_checkpoint
            if snapshot is None:
                return 0  # never checkpointed: nothing at rest to corrupt
            vregs = snapshot.regs[0]
            if getattr(vregs, "size", 0) == 0:
                return 0
            flat = vregs.reshape(-1)
            for _ in range(flips):
                index = self.rng.randrange(flat.size)
                flat[index] ^= np.uint32(1 << self.rng.randrange(32))
            return flips
        buffer = warp.state.ctx_buffer
        keys = list(buffer)  # insertion order: deterministic per routine
        if not keys:
            return 0
        count = 0
        for _ in range(flips):
            key = self.rng.choice(keys)
            mask = 1 << self.rng.randrange(32)
            value = buffer[key]
            if isinstance(value, np.ndarray):
                flat = value.reshape(-1)
                flat[self.rng.randrange(flat.size)] ^= np.uint32(mask)
            else:
                buffer[key] = int(value) ^ mask
            count += 1
        return count

    # -- issue-path faults -----------------------------------------------------

    def on_issue(self, sm: "SM", warp: SimWarp, cycle: int) -> None:
        for index, spec in self._specs(FaultKind.MEM_STALL):
            if index in self._stall_fired or cycle < spec.at_cycle:
                continue
            self._stall_fired.add(index)
            sm.pipeline.inject_stall(cycle, spec.stall_cycles)
            self.stats.stalls += 1
            self._record(
                FaultKind.MEM_STALL, SM_WIDE, cycle, dur=spec.stall_cycles
            )
        if warp.mode is not WarpMode.PREEMPT_ROUTINE or self.controller is None:
            return
        for index, spec in self._specs(FaultKind.ROUTINE_ABORT):
            if not self._matches(spec, warp.warp_id):
                continue
            key = (index, warp.warp_id)
            if key in self._abort_fired:
                continue
            issued = self._abort_count.get(key, 0) + 1
            self._abort_count[key] = issued
            if issued >= spec.after_ops:
                self._abort_fired.add(key)
                self._record(
                    FaultKind.ROUTINE_ABORT, warp.warp_id, cycle, after_ops=issued
                )
                self.controller.degrade_save(warp, cycle, reason="routine_abort")
                return  # the warp left its routine; nothing more to count
