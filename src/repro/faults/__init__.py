"""Deterministic fault injection and recovery for the simulator.

Layers (PhoenixOS's lesson — speculative checkpoint/restore is only
deployable with validation plus a conservative fallback):

* :mod:`~repro.faults.plan` — seeded, reproducible fault scenarios
  (:class:`FaultPlan` / :class:`FaultSpec`), pure data that travels
  through the artifact cache and the process pool;
* :mod:`~repro.faults.injector` — the runtime :class:`FaultInjector`
  threading those scenarios through the SM and preemption controller;
* :mod:`~repro.faults.integrity` — functional context checksums,
  computed at every eviction and verified at every resume (always on;
  they cannot change simulated cycles);
* :mod:`~repro.faults.recovery` — the :class:`RecoveryPolicy` deciding
  between degradation to the full-save path and a typed
  :class:`ContextIntegrityError`;
* :mod:`~repro.faults.chaos` — the ``python -m repro chaos`` sweep and
  its recovery-correctness oracle (post-recovery architectural state
  must be bit-identical to the fault-free run).

Only the dependency-free pieces (errors, integrity) import eagerly;
everything that reaches back into :mod:`repro.sim` or
:mod:`repro.analysis` loads lazily so ``sim`` modules can import this
package at module load without a cycle.
"""

from .errors import ContextIntegrityError, FaultToleranceError, SimulationHangError
from .integrity import context_checksum, snapshot_checksum

_LAZY = {
    "FaultKind": "plan",
    "FaultPlan": "plan",
    "FaultSpec": "plan",
    "FLEET_KINDS": "plan",
    "scenario": "plan",
    "scenario_names": "plan",
    "fleet_scenario": "plan",
    "fleet_scenario_names": "plan",
    "FaultInjector": "injector",
    "InjectedFault": "injector",
    "RecoveryPolicy": "recovery",
    "RecoveryStats": "recovery",
    "ChaosUnit": "chaos",
    "run_chaos_scenario": "chaos",
    "chaos_profile_for": "chaos",
    "render_chaos": "chaos",
}

__all__ = [
    "ContextIntegrityError",
    "FaultToleranceError",
    "SimulationHangError",
    "context_checksum",
    "snapshot_checksum",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
