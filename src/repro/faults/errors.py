"""Typed errors raised at the fault-tolerance boundary.

These are the *detected* failure modes: a context image that fails its
checksum at restore time, and a simulation that stops making forward
progress.  Both subclass :class:`RuntimeError` so pre-existing callers
that catch the generic error keep working.
"""

from __future__ import annotations


class FaultToleranceError(RuntimeError):
    """Base class for the fault-tolerance subsystem's typed errors."""


class ContextIntegrityError(FaultToleranceError):
    """A saved context failed checksum verification at restore time.

    Raised instead of silently resuming corrupt architectural state when
    no recovery policy allows degradation (or no fallback image exists).
    """

    def __init__(
        self,
        message: str,
        *,
        warp_id: int | None = None,
        expected: int | None = None,
        actual: int | None = None,
    ) -> None:
        super().__init__(message)
        self.warp_id = warp_id
        self.expected = expected
        self.actual = actual


class SimulationHangError(FaultToleranceError):
    """The simulation exceeded its forward-progress cycle cap.

    Carries a per-warp diagnostic dump (mode, pc, dynamic progress,
    scoreboard depth) so a livelock is debuggable from the exception
    alone instead of timing out the surrounding job.  When the hang is
    detected inside a serving shard, *fleet* carries the fleet context —
    GPU id, tenant, request id, queue depth — so the diagnostic names the
    stuck request, not just warp state the serving layer does not have.
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: int | None = None,
        warp_dump: list[dict] | tuple[dict, ...] = (),
        fleet: dict | None = None,
    ) -> None:
        if fleet:
            context = " ".join(
                f"{key}={fleet[key]}" for key in sorted(fleet)
            )
            message = f"{message}\nfleet context: {context}"
        if warp_dump:
            lines = "\n".join(
                "  warp {warp} mode={mode} pc={pc} dyn={dyn} "
                "next_free={next_free} pending={pending}".format(**entry)
                for entry in warp_dump
            )
            message = f"{message}\nwarp states at cycle {cycle}:\n{lines}"
        super().__init__(message)
        self.cycle = cycle
        self.warp_dump = list(warp_dump)
        self.fleet = dict(fleet) if fleet else {}
