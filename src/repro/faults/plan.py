"""Seeded, reproducible fault scenarios.

A :class:`FaultPlan` is pure data — an RNG seed plus a tuple of
:class:`FaultSpec` records — so scenarios travel through the
content-addressed artifact cache and the process pool exactly like every
other experiment input.  The :class:`~repro.faults.injector.FaultInjector`
interprets the plan at run time; two runs of the same plan against the
same simulation inject byte-identical faults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """The injectable failure modes (the value is the wire/JSON name)."""

    #: flip words in a warp's saved context while it sits evicted
    CTX_CORRUPT = "ctx_corrupt"
    #: lose preemption-signal deliveries in flight (the controller retries)
    SIGNAL_DROP = "signal_drop"
    #: re-deliver a preemption signal to an already-served warp
    SIGNAL_DUP = "signal_dup"
    #: re-signal mid preemption routine, aborting the flashback save
    ROUTINE_ABORT = "routine_abort"
    #: hold the memory-service port busy for a burst of cycles
    MEM_STALL = "mem_stall"


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject; unused knobs are ignored per kind."""

    kind: FaultKind
    #: target warp id; ``None`` targets every preempted warp
    warp_id: int | None = None
    #: CTX_CORRUPT: words flipped per affected warp
    flips: int = 1
    #: SIGNAL_DROP: consecutive deliveries suppressed per warp
    drops: int = 1
    #: ROUTINE_ABORT: routine instructions issued before the abort
    after_ops: int = 2
    #: MEM_STALL: earliest cycle the burst may trigger
    at_cycle: int = 0
    #: MEM_STALL: burst length in cycles
    stall_cycles: int = 400


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault specs."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    name: str = ""

    def build(self, policy=None):
        """Instantiate the runtime injector for one simulation."""
        from .injector import FaultInjector

        return FaultInjector(self, policy=policy)

    @staticmethod
    def single(kind: FaultKind, seed: int = 0, name: str = "", **params) -> "FaultPlan":
        return FaultPlan(
            seed=seed,
            specs=(FaultSpec(kind=kind, **params),),
            name=name or kind.value,
        )


#: the named chaos scenarios the ``python -m repro chaos`` sweep exercises
_SCENARIOS: dict[str, tuple[FaultSpec, ...]] = {
    "ctx-bitflip": (FaultSpec(FaultKind.CTX_CORRUPT),),
    "ctx-burst": (FaultSpec(FaultKind.CTX_CORRUPT, flips=8),),
    "signal-drop": (FaultSpec(FaultKind.SIGNAL_DROP, drops=2),),
    "signal-dup": (FaultSpec(FaultKind.SIGNAL_DUP),),
    "routine-abort": (FaultSpec(FaultKind.ROUTINE_ABORT, after_ops=2),),
    "stall-burst": (FaultSpec(FaultKind.MEM_STALL, stall_cycles=2500),),
    "compound": (
        FaultSpec(FaultKind.CTX_CORRUPT),
        FaultSpec(FaultKind.SIGNAL_DROP),
        FaultSpec(FaultKind.MEM_STALL, stall_cycles=800),
    ),
}


def scenario(name: str, seed: int = 0) -> FaultPlan:
    """A named scenario as a plan (see :func:`scenario_names`)."""
    try:
        specs = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"known: {', '.join(scenario_names())}"
        ) from None
    return FaultPlan(seed=seed, specs=specs, name=name)


def scenario_names() -> list[str]:
    return list(_SCENARIOS)
