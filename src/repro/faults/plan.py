"""Seeded, reproducible fault scenarios.

A :class:`FaultPlan` is pure data — an RNG seed plus a tuple of
:class:`FaultSpec` records — so scenarios travel through the
content-addressed artifact cache and the process pool exactly like every
other experiment input.  The :class:`~repro.faults.injector.FaultInjector`
interprets the plan at run time; two runs of the same plan against the
same simulation inject byte-identical faults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """The injectable failure modes (the value is the wire/JSON name)."""

    #: flip words in a warp's saved context while it sits evicted
    CTX_CORRUPT = "ctx_corrupt"
    #: lose preemption-signal deliveries in flight (the controller retries)
    SIGNAL_DROP = "signal_drop"
    #: re-deliver a preemption signal to an already-served warp
    SIGNAL_DUP = "signal_dup"
    #: re-signal mid preemption routine, aborting the flashback save
    ROUTINE_ABORT = "routine_abort"
    #: hold the memory-service port busy for a burst of cycles
    MEM_STALL = "mem_stall"
    # -- fleet-scoped kinds (:mod:`repro.serve.resilience`; the serving
    # -- fault model, not the per-warp cycle-level injector)
    #: a whole GPU dies; its batch job fails over from its last snapshot
    GPU_CRASH = "gpu_crash"
    #: clock/SM loss: the GPU serves slower until the watchdog reacts
    GPU_DEGRADE = "gpu_degrade"
    #: the GPU's serving shard freezes for a window (driver stall)
    SHARD_STALL = "shard_stall"
    #: queued requests are dropped at the ingress (buffer overflow)
    QUEUE_DROP = "queue_drop"


#: the fleet-scoped kinds — interpreted by the serving resilience layer
#: (:mod:`repro.serve.resilience`), never by the cycle-level injector
FLEET_KINDS = frozenset(
    {
        FaultKind.GPU_CRASH,
        FaultKind.GPU_DEGRADE,
        FaultKind.SHARD_STALL,
        FaultKind.QUEUE_DROP,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject; unused knobs are ignored per kind."""

    kind: FaultKind
    #: target warp id; ``None`` targets every preempted warp
    warp_id: int | None = None
    #: CTX_CORRUPT: words flipped per affected warp
    flips: int = 1
    #: SIGNAL_DROP: consecutive deliveries suppressed per warp
    drops: int = 1
    #: ROUTINE_ABORT: routine instructions issued before the abort
    after_ops: int = 2
    #: MEM_STALL: earliest cycle the burst may trigger
    at_cycle: int = 0
    #: MEM_STALL: burst length in cycles
    stall_cycles: int = 400
    # -- fleet-scoped knobs (ignored by the cycle-level injector) --
    #: target GPU index; ``None`` picks one from the plan's seeded RNG
    gpu: int | None = None
    #: earliest serving-clock time the fault may fire (µs); the exact
    #: firing time is drawn from the plan's seeded RNG past this point
    at_us: float = 0.0
    #: GPU_DEGRADE / SHARD_STALL: window length (µs); 0 on a degrade
    #: means "until the health watchdog migrates the batch job away"
    duration_us: float = 4000.0
    #: GPU_DEGRADE: service/preempt/resume slowdown multiplier
    clock_factor: float = 2.0
    #: QUEUE_DROP: queued requests dropped (lowest priority first)
    drop_count: int = 4


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault specs."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    name: str = ""

    def build(self, policy=None):
        """Instantiate the runtime injector for one simulation."""
        from .injector import FaultInjector

        fleet = [s.kind.value for s in self.specs if s.kind in FLEET_KINDS]
        if fleet:
            # fleet kinds would be silently inert inside the cycle-level
            # injector; refusing here keeps a misrouted plan loud
            raise ValueError(
                f"fleet-scoped fault kinds {fleet} cannot run in the "
                f"cycle-level injector; use repro.serve.resilience"
            )
        return FaultInjector(self, policy=policy)

    @staticmethod
    def single(kind: FaultKind, seed: int = 0, name: str = "", **params) -> "FaultPlan":
        return FaultPlan(
            seed=seed,
            specs=(FaultSpec(kind=kind, **params),),
            name=name or kind.value,
        )


#: the named chaos scenarios the ``python -m repro chaos`` sweep exercises
_SCENARIOS: dict[str, tuple[FaultSpec, ...]] = {
    "ctx-bitflip": (FaultSpec(FaultKind.CTX_CORRUPT),),
    "ctx-burst": (FaultSpec(FaultKind.CTX_CORRUPT, flips=8),),
    "signal-drop": (FaultSpec(FaultKind.SIGNAL_DROP, drops=2),),
    "signal-dup": (FaultSpec(FaultKind.SIGNAL_DUP),),
    "routine-abort": (FaultSpec(FaultKind.ROUTINE_ABORT, after_ops=2),),
    "stall-burst": (FaultSpec(FaultKind.MEM_STALL, stall_cycles=2500),),
    "compound": (
        FaultSpec(FaultKind.CTX_CORRUPT),
        FaultSpec(FaultKind.SIGNAL_DROP),
        FaultSpec(FaultKind.MEM_STALL, stall_cycles=800),
    ),
}


def scenario(name: str, seed: int = 0) -> FaultPlan:
    """A named scenario as a plan (see :func:`scenario_names`)."""
    try:
        specs = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"known: {', '.join(scenario_names())}"
        ) from None
    return FaultPlan(seed=seed, specs=specs, name=name)


def scenario_names() -> list[str]:
    return list(_SCENARIOS)


#: the named fleet chaos scenarios ``python -m repro serve --chaos`` runs;
#: firing times/targets are drawn from the plan's seeded RNG at schedule
#: time (:func:`repro.serve.resilience.build_fleet_schedule`), so the same
#: seed always yields the byte-identical fleet fault schedule
_FLEET_SCENARIOS: dict[str, tuple[FaultSpec, ...]] = {
    "crash": (FaultSpec(FaultKind.GPU_CRASH),),
    "crash-storm": (
        FaultSpec(FaultKind.GPU_CRASH),
        FaultSpec(FaultKind.GPU_CRASH, at_us=20_000.0),
    ),
    "degrade": (
        FaultSpec(FaultKind.GPU_DEGRADE, duration_us=0.0, clock_factor=2.5),
    ),
    "stall": (FaultSpec(FaultKind.SHARD_STALL, duration_us=2_000.0),),
    "drop": (FaultSpec(FaultKind.QUEUE_DROP, drop_count=8),),
    "mixed": (
        FaultSpec(FaultKind.GPU_CRASH),
        FaultSpec(FaultKind.GPU_DEGRADE, at_us=10_000.0, duration_us=0.0),
        FaultSpec(FaultKind.QUEUE_DROP, at_us=5_000.0, drop_count=8),
    ),
}


def fleet_scenario(name: str, seed: int = 0) -> FaultPlan:
    """A named fleet chaos scenario as a plan (``serve --chaos``)."""
    try:
        specs = _FLEET_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet chaos scenario {name!r}; "
            f"known: {', '.join(fleet_scenario_names())}"
        ) from None
    return FaultPlan(seed=seed, specs=specs, name=name)


def fleet_scenario_names() -> list[str]:
    return list(_FLEET_SCENARIOS)
