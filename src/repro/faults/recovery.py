"""Recovery policy and bookkeeping for detected faults.

The policy decides what the save/restore boundary does when a context
fails verification: retry the (deterministically failing) re-read a
bounded number of times, then either degrade to the conservative path —
a full register save/restore (regsave semantics) for switch-strategy
warps, a checkpoint discard + restart for CKPT — or raise the typed
:class:`~repro.faults.errors.ContextIntegrityError`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Per-warp recovery decisions at the save/restore boundary."""

    #: re-verification attempts before a corrupt context is declared lost
    #: (corruption at rest is persistent, so every retry fails; the knob
    #: bounds how long the runtime insists before giving up)
    max_retries: int = 1
    #: fall back to the conservative path instead of raising
    allow_degrade: bool = True


@dataclass
class RecoveryStats:
    """Counters of injected faults and the recoveries they triggered."""

    injected: int = 0
    integrity_failures: int = 0
    #: evictions that fell back to the full-register-save path
    degraded_saves: int = 0
    #: resumes that fell back to a full-image reload
    degraded_resumes: int = 0
    #: CKPT warps restarted after discarding a corrupt checkpoint
    restarts: int = 0
    duplicates_ignored: int = 0
    #: dropped signals that were successfully re-delivered
    redelivered: int = 0
    stalls: int = 0

    @property
    def degraded(self) -> int:
        return self.degraded_saves + self.degraded_resumes + self.restarts

    @property
    def recovered(self) -> int:
        return self.degraded + self.duplicates_ignored + self.redelivered

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "integrity_failures": self.integrity_failures,
            "degraded_saves": self.degraded_saves,
            "degraded_resumes": self.degraded_resumes,
            "restarts": self.restarts,
            "duplicates_ignored": self.duplicates_ignored,
            "redelivered": self.redelivered,
            "stalls": self.stalls,
            # derived totals, included so cached/aggregated profiles keep them
            "degraded": self.degraded,
            "recovered": self.recovered,
        }
