"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze``  — run the CTXBack pass on an assembly file and print the
  selected flashback point + dedicated routines for one position (or a
  per-position summary table);
* ``validate`` — kind-check an assembly file (the assembler's type linter);
* ``suite``    — list the benchmark kernels and their Table I budgets;
* ``preempt``  — run one preemption experiment on a benchmark kernel;
* ``trace``    — run one preemption experiment under the structured event
  tracer and export the stream as a text timeline, JSONL, or Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``);
* ``table1`` / ``fig7`` / ``fig8`` / ``fig9`` / ``fig10`` / ``headline`` /
  ``ablation`` — regenerate the paper's tables and figures (all take
  ``--jobs N`` to fan work units out over a process pool; default from the
  ``REPRO_JOBS`` environment variable);
* ``chaos``    — sweep fault-injection scenarios × mechanisms and assert the
  recovery-correctness oracle (post-recovery architectural state must be
  bit-identical to the fault-free run);
* ``serve``    — serve a multi-tenant request trace over the simulated fleet
  (``--migrate`` adds snapshot-driven live migration of the batch jobs);
* ``snap``     — device-state snapshots: ``save`` / ``restore`` / ``verify``
  round-trips plus the ``migrate`` cost model (the ``repro.snap`` package);
* ``cache``    — inspect or clear the on-disk artifact cache
  (``REPRO_CACHE_DIR``) the experiment commands share;
* ``lint``     — symbolically verify every (kernel × mechanism) plan and run
  the dataflow/structural lints; ``--strict`` promotes warnings to failures,
  ``--diff-baseline`` turns it into a ratchet.
"""

from __future__ import annotations

import argparse
import sys


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="assembly file (textual ISA)")
    parser.add_argument("--vgprs", type=int, default=None,
                        help="declared vector registers (default: max used + 1)")
    parser.add_argument("--sgprs", type=int, default=None,
                        help="declared scalar registers (default: max used + 1)")
    parser.add_argument("--lds-bytes", type=int, default=0)
    parser.add_argument("--warp-size", type=int, default=64)
    parser.add_argument("--may-alias", action="store_true",
                        help="assume global loads/stores may alias "
                             "(default: disjoint in/out buffers)")


def _load_kernel(args):
    from .isa import Kernel, RegKind, parse

    with open(args.file) as handle:
        program = parse(handle.read())
    vgprs = args.vgprs or program.max_reg_index(RegKind.VECTOR) + 1
    sgprs = args.sgprs or max(program.max_reg_index(RegKind.SCALAR) + 1, 1)
    return Kernel(
        name=args.file,
        program=program,
        vgprs_used=max(vgprs, 1),
        sgprs_used=sgprs,
        lds_bytes=args.lds_bytes,
        noalias=not args.may_alias,
    )


def cmd_analyze(args) -> int:
    from .ctxback import (
        CtxBackConfig,
        FlashbackAnalyzer,
        baseline_context_bytes,
        live_context_bytes_at,
    )
    from .isa import RegisterFileSpec, serialize

    kernel = _load_kernel(args)
    spec = RegisterFileSpec(warp_size=args.warp_size)
    analyzer = FlashbackAnalyzer(kernel, CtxBackConfig(rf_spec=spec))
    baseline = baseline_context_bytes(kernel, spec)
    if args.position is not None:
        plan = analyzer.plan_at(args.position)
        live = live_context_bytes_at(kernel, args.position, spec)
        print(f"signal at {args.position}: flashback to {plan.flashback_pos}")
        print(f"  context {plan.context_bytes} B "
              f"(LIVE {live} B, BASELINE {baseline} B)")
        print(f"  re-executed instructions: {plan.reexec_count}")
        print("\npreemption routine:")
        print(serialize(plan.preempt_routine))
        print("resuming routine:")
        print(serialize(plan.resume_routine))
        return 0
    print(f"{'pos':>4s}  {'instruction':32s} {'live':>7s} {'ctxback':>8s} {'fb@':>5s}")
    for position, instruction in enumerate(kernel.program.instructions):
        plan = analyzer.plan_at(position)
        live = live_context_bytes_at(kernel, position, spec)
        print(
            f"{position:>4d}  {str(instruction):32s} {live:>6d}B "
            f"{plan.context_bytes:>7d}B {plan.flashback_pos:>5d}"
        )
    return 0


def cmd_validate(args) -> int:
    from .isa import validate_kernel

    kernel = _load_kernel(args)
    problems = validate_kernel(kernel)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"{args.file}: OK ({len(kernel.program.instructions)} instructions)")
    return 0


def cmd_suite(_args) -> int:
    from .kernels import SUITE

    print(f"{'key':6s} {'abbrev':7s} {'name':24s} {'vregs':>6s} {'lds':>7s} {'warps':>6s}")
    for key in sorted(SUITE):
        bench = SUITE[key]
        kernel = bench.build(64)
        print(
            f"{key:6s} {bench.table1.abbrev:7s} {bench.table1.name:24s} "
            f"{kernel.vgprs_used:>6d} {kernel.lds_bytes:>6d}B "
            f"{kernel.warps_per_block:>6d}"
        )
    return 0


def cmd_preempt(args) -> int:
    import dataclasses

    from .kernels import SUITE
    from .mechanisms import Chimera, expected_dyn_for, make_mechanism
    from .sim import GPUConfig, run_preemption_experiment

    config = (
        GPUConfig.radeon_vii_contended() if args.contended else GPUConfig.radeon_vii()
    )
    if args.core:
        config = dataclasses.replace(config, core=args.core)
    bench = SUITE[args.kernel]
    iterations = args.iterations or bench.default_iterations
    launch = bench.launch(warp_size=config.warp_size, iterations=iterations)
    if args.mechanism == "chimera":
        mechanism = Chimera(expected_dyn=expected_dyn_for(launch.kernel, iterations))
    else:
        mechanism = make_mechanism(args.mechanism)
    prepared = mechanism.prepare(launch.kernel, config)
    n = len(launch.kernel.program.instructions)
    signal = args.signal if args.signal is not None else 3 * n + 7
    result = run_preemption_experiment(
        launch.spec(), prepared, config, signal_dyn=signal,
        resume_gap=args.resume_gap, verify=not args.no_verify,
    )
    print(f"kernel {args.kernel}, mechanism {args.mechanism}, signal dyn {signal}")
    print(f"  preemption latency: {config.cycles_to_us(result.mean_latency):9.1f} µs")
    if result.mean_resume is None:
        print("  resuming time:            n/a (no resume data)")
    else:
        print(
            f"  resuming time:      "
            f"{config.cycles_to_us(result.mean_resume):9.1f} µs"
        )
    print(f"  context per warp:   {result.mean_context_bytes / 1024:9.2f} KB")
    if not args.no_verify:
        print(f"  memory verified:    {result.verified}")
        return 0 if result.verified else 1
    return 0


def cmd_trace(args) -> int:
    import dataclasses
    import json

    from .kernels import SUITE
    from .mechanisms import Chimera, expected_dyn_for, make_mechanism
    from .obs import render_trace_text, to_chrome, to_jsonl
    from .sim import GPUConfig, run_preemption_experiment

    base = (
        GPUConfig.radeon_vii_contended() if args.contended else GPUConfig.radeon_vii()
    )
    if args.core:
        base = dataclasses.replace(base, core=args.core)
    config = dataclasses.replace(
        base, trace_events=True, trace_detail=args.detail
    )
    bench = SUITE[args.kernel]
    iterations = args.iterations or bench.default_iterations
    launch = bench.launch(warp_size=config.warp_size, iterations=iterations)
    if args.mechanism == "chimera":
        mechanism = Chimera(expected_dyn=expected_dyn_for(launch.kernel, iterations))
    else:
        mechanism = make_mechanism(args.mechanism)
    prepared = mechanism.prepare(launch.kernel, config)
    n = len(launch.kernel.program.instructions)
    signal = args.signal if args.signal is not None else 3 * n + 7
    result = run_preemption_experiment(
        launch.spec(), prepared, config, signal_dyn=signal,
        resume_gap=args.resume_gap, verify=not args.no_verify,
    )
    trace = result.trace
    assert trace is not None  # trace_events=True guarantees a tracer
    if args.format == "chrome":
        rendered = json.dumps(to_chrome(trace, config, result), indent=1)
    elif args.format == "json":
        rendered = to_jsonl(trace)
    else:
        rendered = render_trace_text(
            trace, config, result, breakdowns=result.breakdowns
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            f"wrote {len(trace.events)} events ({args.format}) to {args.output}",
            file=sys.stderr,
        )
    else:
        print(rendered)
    if not args.no_verify and not result.verified:
        print("ERROR: memory verification failed", file=sys.stderr)
        return 1
    return 0


def _experiment_command(name):
    def run(args) -> int:
        from . import analysis
        from .analysis import EngineOptions

        keys = args.keys.split(",") if args.keys else None
        options = EngineOptions.from_env(
            unit_timeout=args.unit_timeout,
            retries=args.retries,
            failure_policy=args.failure_policy,
        )
        engine = analysis.ExperimentEngine(args.jobs, options=options)
        if name == "table1":
            print(analysis.render_table1(
                analysis.table1_experiment(keys=keys, iterations=args.iterations,
                                           engine=engine)
            ))
        elif name == "fig7":
            print(analysis.render_fig7_summary(
                analysis.fig7_context_size(keys=keys, iterations=args.iterations,
                                           engine=engine)
            ))
        elif name in ("fig8", "fig9"):
            fig8, fig9 = analysis.preemption_timing(
                keys=keys, samples=args.samples, iterations=args.iterations,
                engine=engine,
            )
            print(analysis.render_figure(fig8 if name == "fig8" else fig9))
        elif name == "fig10":
            print(analysis.render_figure(
                analysis.fig10_runtime_overhead(keys=keys, iterations=args.iterations,
                                                engine=engine),
                percent=True,
            ))
        elif name == "headline":
            print(analysis.render_headline(
                analysis.headline(keys=keys, samples=args.samples,
                                  iterations=args.iterations, engine=engine)
            ))
        elif name == "ablation":
            print(analysis.render_figure(
                analysis.ablation_techniques(keys=keys, iterations=args.iterations,
                                             engine=engine)
            ))
        if args.timing:
            report = engine.report
            cache = report.cache
            print(
                f"[engine] jobs={report.jobs} units={report.units} "
                f"waves={report.waves} wall={report.wall_s:.2f}s "
                f"cache_hit_rate={cache.get('hit_rate', 0.0):.0%} "
                f"retries={report.retries} timeouts={report.timeouts} "
                f"crashes={report.crashes} fallbacks={report.fallbacks} "
                f"failures={report.failures}",
                file=sys.stderr,
            )
        return 0 if not engine.report.failures else 1

    return run


def cmd_chaos(args) -> int:
    from .analysis import EngineOptions, ExperimentEngine
    from .faults import scenario_names
    from .faults.chaos import ChaosUnit, render_chaos
    from .sim import GPUConfig

    keys = args.keys.split(",") if args.keys else ["mm", "km"]
    mechanisms = (
        args.mechanisms.split(",")
        if args.mechanisms
        else ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]
    )
    scenarios = args.scenarios.split(",") if args.scenarios else scenario_names()
    unknown = [s for s in scenarios if s not in scenario_names()]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)} "
              f"(known: {', '.join(scenario_names())})", file=sys.stderr)
        return 2
    config = GPUConfig.small(4) if args.small else GPUConfig.radeon_vii()
    units = [
        ChaosUnit(
            key=key, mechanism=mechanism, scenario=name, seed=args.seed,
            config=config, iterations=args.iterations,
        )
        for key in keys
        for mechanism in mechanisms
        for name in scenarios
    ]
    options = EngineOptions.from_env(
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        failure_policy=args.failure_policy,
    )
    engine = ExperimentEngine(args.jobs, options=options)
    results = engine.map(units, checkpoint=args.checkpoint)
    print(render_chaos(results))
    verdicts = [r for r in results if isinstance(r, dict)]
    failed_oracle = [r for r in verdicts if not r["ok"]]
    print(
        f"\n{len(verdicts)} chaos runs, "
        f"{sum(r['injected'] for r in verdicts)} faults injected, "
        f"{sum(len(r['degraded_warps']) for r in verdicts)} warps degraded, "
        f"oracle failures: {len(failed_oracle)}"
    )
    if args.timing:
        report = engine.report
        print(
            f"[engine] jobs={report.jobs} units={report.units} "
            f"wall={report.wall_s:.2f}s "
            f"cache_hit_rate={report.cache.get('hit_rate', 0.0):.0%} "
            f"recovery={report.recovery}",
            file=sys.stderr,
        )
    return 1 if failed_oracle or engine.report.failures else 0


def cmd_serve(args) -> int:
    from .analysis import EngineOptions, ExperimentEngine
    from .serve import (
        SERVE_MECHANISMS,
        TraceSpec,
        render_serve_json,
        render_serve_text,
        run_serve,
    )
    from .sim import GPUConfig

    mechanisms = tuple(
        args.mechanisms.split(",") if args.mechanisms else SERVE_MECHANISMS
    )
    try:
        loads = tuple(float(part) for part in args.load.split(","))
    except ValueError:
        print(f"bad --load value: {args.load!r}", file=sys.stderr)
        return 2
    spec = TraceSpec(
        kind=args.trace,
        seed=args.seed,
        burst_factor=args.burst_factor,
        burst_fraction=args.burst_fraction,
    )
    config = GPUConfig.small(4) if args.small else GPUConfig.radeon_vii()
    options = EngineOptions.from_env(
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        failure_policy=args.failure_policy,
    )
    engine = ExperimentEngine(args.jobs, options=options)
    chaos = args.chaos if args.chaos != "none" else None
    oracle_failed = False
    if chaos is not None:
        # the fleet fault model: seeded failure injection + snapshot
        # failover + admission control (repro.serve.resilience)
        from .faults import fleet_scenario_names
        from .serve import (
            ResilienceKnobs,
            render_chaos_text,
            run_serve_chaos,
        )

        if chaos not in fleet_scenario_names():
            print(
                f"unknown chaos scenario {chaos!r} "
                f"(available: {', '.join(fleet_scenario_names())}, none)",
                file=sys.stderr,
            )
            return 2
        report = run_serve_chaos(
            mechanisms,
            scenario=chaos,
            trace=spec,
            loads=loads,
            requests=args.requests,
            gpus=args.gpus,
            key=args.batch,
            config=config,
            iterations=args.iterations,
            samples=args.samples,
            engine=engine,
            knobs=ResilienceKnobs(
                detect_us=args.detect_us,
                watchdog_us=args.watchdog_us,
                ckpt_cadence_us=args.ckpt_cadence_us,
            ),
            link_bytes_per_us=args.link_bytes_per_us,
        )
        oracle_failed = not report["oracle"]["ok"]
    else:
        # --chaos none (or omitted): the untouched clean path — byte-
        # identical reports, zero resilience overhead
        report = run_serve(
            mechanisms,
            trace=spec,
            loads=loads,
            requests=args.requests,
            gpus=args.gpus,
            key=args.batch,
            config=config,
            iterations=args.iterations,
            samples=args.samples,
            engine=engine,
            migrate=args.migrate,
            migrate_epoch_us=args.migrate_epoch_us,
            migrate_factor=args.migrate_factor,
            link_bytes_per_us=args.link_bytes_per_us,
        )
    # write the file before stdout: a closed pipe must not lose the report
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(render_serve_json(report) + "\n")
    if args.format == "json":
        rendered = render_serve_json(report)
    elif chaos is not None:
        rendered = render_chaos_text(report)
    else:
        rendered = render_serve_text(report)
    print(rendered)
    if oracle_failed:
        print("chaos-serve oracle FAILED", file=sys.stderr)
    if args.timing:
        engine_report = engine.report
        print(
            f"[engine] jobs={engine_report.jobs} units={engine_report.units} "
            f"waves={engine_report.waves} wall={engine_report.wall_s:.2f}s "
            f"cache_hit_rate={engine_report.cache.get('hit_rate', 0.0):.0%} "
            f"failures={engine_report.failures}",
            file=sys.stderr,
        )
    return 1 if (engine.report.failures or oracle_failed) else 0


def cmd_cache(args) -> int:
    from .analysis import get_cache

    cache = get_cache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    cap = f", cap: {cache.max_bytes / 1024:.0f} KB" if cache.max_bytes else ""
    print(f"cache root: {cache.root} (enabled: {cache.enabled}{cap})")
    inventory = cache.entries()
    if not inventory:
        print("  (empty)")
    for kind, info in inventory.items():
        print(f"  {kind:12s} {info['entries']:>6d} entries  "
              f"{info['bytes'] / 1024:>10.1f} KB")
    totals = cache.persisted_stats()
    lookups = totals["hits"] + totals["misses"]
    rate = totals["hits"] / lookups if lookups else 0.0
    print(
        f"lifetime: {totals['hits']} hits / {totals['misses']} misses "
        f"({rate:.0%} hit rate), {totals['stores']} stores, "
        f"{totals['invalidations']} invalidations, "
        f"{totals.get('evictions', 0)} evictions"
    )
    return 0


def cmd_lint(args) -> int:
    from .verify import (
        LintOptions,
        describe_codes,
        diff_against_baseline,
        load_baseline_keys,
        render_json,
        render_text,
        run_lint,
    )

    if args.codes:
        print(describe_codes())
        return 0
    options = LintOptions(
        keys=tuple(args.keys.split(",")) if args.keys else (),
        mechanisms=tuple(args.mechanisms.split(",")) if args.mechanisms else (),
        warp_size=args.warp_size,
        strict=args.strict,
    )
    report = run_lint(options)
    rendered_json = render_json(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered_json + "\n")
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(rendered_json + "\n")
        print(f"baseline written: {args.write_baseline} "
              f"({len(report.findings)} finding(s))", file=sys.stderr)
    blocking = report.failing
    if args.diff_baseline:
        baseline = load_baseline_keys(args.diff_baseline)
        blocking = diff_against_baseline(blocking, baseline)
        known = len(report.failing) - len(blocking)
        if known:
            print(f"[ratchet] {known} pre-existing finding(s) accepted from "
                  f"{args.diff_baseline}", file=sys.stderr)
    if args.format == "json":
        print(rendered_json)
    else:
        print(render_text(report))
        if args.diff_baseline and report.failing and not blocking:
            print("OK against baseline (no new findings)")
    return 1 if blocking else 0


def cmd_mc(args) -> int:
    import json

    from .analysis import EngineOptions, ExperimentEngine
    from .mc import (
        McOptions,
        McUnit,
        render_mc_json,
        render_mc_text,
        verdict_findings,
    )
    from .sim import GPUConfig
    from .verify import describe_codes, diff_against_baseline, load_baseline_keys
    from .verify.findings import failing

    if args.codes:
        print(describe_codes())
        return 0
    keys = args.keys.split(",") if args.keys else ["va", "mm", "km"]
    mechanisms = (
        args.mechanisms.split(",")
        if args.mechanisms
        else ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]
    )
    try:
        options = McOptions(
            warps=args.warps,
            rounds=args.signals,
            window_gap=args.gap,
            window_width=args.window,
            max_choice_points=args.depth,
            max_states=args.max_states,
            bug=args.bug or None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = GPUConfig.small(4) if args.small else GPUConfig.radeon_vii()
    units = [
        McUnit(
            key=key, mechanism=mechanism, config=config,
            options=options, iterations=args.iterations,
        )
        for key in keys
        for mechanism in mechanisms
    ]
    engine_options = EngineOptions.from_env(
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        failure_policy=args.failure_policy,
    )
    engine = ExperimentEngine(args.jobs, options=engine_options)
    results = engine.map(units)
    verdicts = [r for r in results if isinstance(r, dict)]
    rendered_json = json.dumps(render_mc_json(verdicts), indent=2, sort_keys=True)
    # write the files before stdout: a closed pipe must not lose the report
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered_json + "\n")
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(rendered_json + "\n")
        print(f"baseline written: {args.write_baseline}", file=sys.stderr)
    findings = verdict_findings(verdicts)
    blocking = failing(findings)
    if args.diff_baseline:
        baseline = load_baseline_keys(args.diff_baseline)
        new_blocking = diff_against_baseline(blocking, baseline)
        known = len(blocking) - len(new_blocking)
        if known:
            print(f"[ratchet] {known} pre-existing finding(s) accepted from "
                  f"{args.diff_baseline}", file=sys.stderr)
        blocking = new_blocking
    if args.format == "json":
        print(rendered_json)
    else:
        print(render_mc_text(verdicts))
        if args.diff_baseline and findings and not blocking:
            print("OK against baseline (no new findings)")
    if args.timing:
        report = engine.report
        print(
            f"[engine] jobs={report.jobs} units={report.units} "
            f"wall={report.wall_s:.2f}s "
            f"cache_hit_rate={report.cache.get('hit_rate', 0.0):.0%} "
            f"mc={report.mc}",
            file=sys.stderr,
        )
    return 1 if blocking or engine.report.failures else 0


def _snap_config(args):
    import dataclasses

    from .sim import GPUConfig

    config = GPUConfig.small(4) if args.small else GPUConfig.radeon_vii()
    if getattr(args, "core", None):
        config = dataclasses.replace(config, core=args.core)
    return config


def cmd_snap_save(args) -> int:
    from .kernels import SUITE
    from .mechanisms import make_mechanism
    from .snap import describe_snapshot, run_snapshot_experiment, save_snapshot

    if args.kernel not in SUITE:
        print(f"unknown kernel {args.kernel!r} (see `repro suite`)",
              file=sys.stderr)
        return 2
    config = _snap_config(args)
    bench = SUITE[args.kernel]
    iterations = args.iterations or bench.default_iterations
    launch = bench.launch(warp_size=config.warp_size, iterations=iterations)
    prepared = make_mechanism(args.mechanism).prepare(launch.kernel, config)
    n = len(launch.kernel.program.instructions)
    signal = args.signal if args.signal is not None else 3 * n + 7
    payload, result = run_snapshot_experiment(
        launch.spec(), prepared, config, signal,
        resume_gap=args.resume_gap,
        snap_cycle=args.cycle,
        snap_on_evicted=args.cycle is None,
        label=args.kernel,
    )
    if payload is None:
        print("snapshot trigger never fired (signal past the end of the "
              "run?)", file=sys.stderr)
        return 1
    size = save_snapshot(args.output, payload)
    info = describe_snapshot(payload)
    print(f"saved {args.output}: {size} B, kernel {args.kernel} "
          f"({args.mechanism}), captured at cycle {info['cycle']}, "
          f"run completed at {result.total_cycles}")
    return 0


def cmd_snap_restore(args) -> int:
    from .kernels import SUITE
    from .mechanisms import make_mechanism
    from .sim import run_preemption_experiment
    from .snap import (
        SnapshotError,
        complete_experiment,
        load_snapshot,
        restore_experiment,
    )

    try:
        payload = load_snapshot(args.file)
    except (OSError, SnapshotError) as exc:
        print(f"cannot load {args.file}: {exc}", file=sys.stderr)
        return 1
    meta = payload["meta"]
    key = args.kernel or meta["label"]
    if key not in SUITE:
        print(f"snapshot label {key!r} is not a benchmark key; pass "
              f"--kernel (see `repro suite`)", file=sys.stderr)
        return 2
    config = _snap_config(args)
    bench = SUITE[key]
    iterations = args.iterations or bench.default_iterations
    launch = bench.launch(warp_size=config.warp_size, iterations=iterations)
    try:
        prepared = make_mechanism(meta["mechanism"]).prepare(
            launch.kernel, config
        )
        restored = restore_experiment(payload, launch.spec(), prepared, config)
    except (KeyError, ValueError, SnapshotError) as exc:
        print(f"restore failed: {exc}", file=sys.stderr)
        return 1
    ref_memory = None
    if args.verify:
        loop = payload["loop"]
        reference = run_preemption_experiment(
            launch.spec(),
            make_mechanism(meta["mechanism"]).prepare(launch.kernel, config),
            config,
            loop["signal_dyn"],
            resume_gap=loop["resume_gap"],
            verify=False,
        )
        ref_memory = reference.memory
    result = complete_experiment(restored, ref_memory=ref_memory)
    print(f"restored {key} ({meta['mechanism']}) from cycle "
          f"{payload['sm']['cycle']}, completed at {result.total_cycles}")
    if args.verify:
        print(f"memory identical to a straight run: {result.verified}")
        return 0 if result.verified else 1
    return 0


def cmd_snap_verify(args) -> int:
    import dataclasses
    import json

    from .analysis import EngineOptions, ExperimentEngine
    from .snap import SnapUnit

    keys = args.keys.split(",") if args.keys else ["dc", "mm"]
    mechanisms = (
        args.mechanisms.split(",")
        if args.mechanisms
        else ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]
    )
    config = _snap_config(args)
    restore_config = None
    if args.cross:
        # restore onto a differently-configured GPU: other execution core,
        # halved context bandwidth (legitimately different cycle counts)
        ctx = config.ctx_bytes_per_cycle
        restore_config = dataclasses.replace(
            config,
            core="reference" if config.core == "fast" else "fast",
            ctx_bytes_per_cycle=ctx / 2 if ctx else ctx,
        )
    units = [
        SnapUnit(
            key=key, mechanism=mechanism, config=config,
            restore_config=restore_config, iterations=args.iterations,
        )
        for key in keys
        for mechanism in mechanisms
    ]
    options = EngineOptions.from_env(
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        failure_policy=args.failure_policy,
    )
    engine = ExperimentEngine(args.jobs, options=options)
    results = engine.map(units, checkpoint=args.checkpoint)
    verdicts = [r for r in results if isinstance(r, dict)]
    if args.format == "json":
        rendered = json.dumps(verdicts, indent=2, sort_keys=True)
    else:
        lines = [
            f"{'kernel':6s} {'mechanism':10s} {'ok':>3s} {'det':>4s} "
            f"{'mem':>4s} {'regs':>5s} {'cycles':>7s} {'bytes':>7s}  sha256"
        ]
        for v in verdicts:
            cycles = "match" if v["cycles_match"] else (
                "diff" if not v["same_config"] else "MISMATCH"
            )
            lines.append(
                f"{v['kernel']:6s} {v['mechanism']:10s} "
                f"{'yes' if v['ok'] else 'NO':>3s} "
                f"{'yes' if v['deterministic'] else 'NO':>4s} "
                f"{'yes' if v['memory_ok'] else 'NO':>4s} "
                f"{'yes' if v['registers_ok'] else 'NO':>5s} "
                f"{cycles:>7s} {v['snapshot_bytes']:>7d}  "
                f"{v['sha256'][:16]}"
            )
        rendered = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(verdicts, indent=2, sort_keys=True) + "\n")
    print(rendered)
    bad = [v for v in verdicts if not v["ok"]]
    if bad:
        print(f"\n{len(bad)} of {len(verdicts)} round-trips FAILED",
              file=sys.stderr)
    if args.timing:
        report = engine.report
        print(
            f"[engine] jobs={report.jobs} units={report.units} "
            f"wall={report.wall_s:.2f}s "
            f"cache_hit_rate={report.cache.get('hit_rate', 0.0):.0%} "
            f"checkpoint_hits={report.checkpoint_hits}",
            file=sys.stderr,
        )
    return 1 if bad or engine.report.failures else 0


def cmd_snap_migrate(args) -> int:
    from .serve.migration import migration_costs_for
    from .snap import snap_profile_for

    config = _snap_config(args)
    mechanisms = (
        args.mechanisms.split(",")
        if args.mechanisms
        else ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]
    )
    print(f"migration cost model — kernel {args.kernel}, link "
          f"{args.link_bytes_per_us:g} B/µs")
    print(f"{'mechanism':10s} {'bytes':>7s} {'snapshot µs':>12s} "
          f"{'transfer µs':>12s} {'restore µs':>11s}")
    failed = 0
    for mechanism in mechanisms:
        profile = snap_profile_for(
            args.kernel, mechanism, config, iterations=args.iterations
        )
        if not profile.get("ok"):
            print(f"{mechanism:10s} round-trip FAILED")
            failed += 1
            continue
        costs = migration_costs_for(
            profile["snapshot_bytes"], config,
            link_bytes_per_us=args.link_bytes_per_us,
        )
        print(f"{mechanism:10s} {profile['snapshot_bytes']:>7d} "
              f"{costs.snapshot_us:>12.3f} {costs.transfer_us:>12.3f} "
              f"{costs.restore_us:>11.3f}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CTXBack reproduction (IPDPS'21): analysis, simulation, "
                    "and the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run the CTXBack pass on assembly")
    _add_kernel_args(analyze)
    analyze.add_argument("--position", type=int, default=None,
                         help="signal position (default: summary of all)")
    analyze.set_defaults(func=cmd_analyze)

    validate = sub.add_parser("validate", help="kind-check an assembly file")
    _add_kernel_args(validate)
    validate.set_defaults(func=cmd_validate)

    suite = sub.add_parser("suite", help="list the benchmark kernels")
    suite.set_defaults(func=cmd_suite)

    preempt = sub.add_parser("preempt", help="run one preemption experiment")
    preempt.add_argument("kernel", help="benchmark key (see `repro suite`)")
    preempt.add_argument("--mechanism", default="ctxback",
                         help="baseline|live|ckpt|csdefer|ctxback|combined|"
                              "flush|drain|chimera")
    preempt.add_argument("--signal", type=int, default=None,
                         help="dynamic-instruction trigger (default: mid-loop)")
    preempt.add_argument("--iterations", type=int, default=None)
    preempt.add_argument("--resume-gap", type=int, default=2000)
    preempt.add_argument("--contended", action="store_true",
                         help="use the fully-occupied-SM configuration")
    preempt.add_argument("--no-verify", action="store_true")
    preempt.add_argument("--core", default=None,
                         choices=["fast", "reference"],
                         help="execution core (default: GPUConfig.core, "
                              "overridable via REPRO_CORE)")
    preempt.set_defaults(func=cmd_preempt)

    trace = sub.add_parser(
        "trace",
        help="run one preemption experiment under the structured tracer "
             "and export the event stream",
    )
    trace.add_argument("kernel", help="benchmark key (see `repro suite`)")
    trace.add_argument("--mechanism", default="ctxback",
                       help="baseline|live|ckpt|csdefer|ctxback|combined|"
                            "flush|drain|chimera")
    trace.add_argument("--signal", type=int, default=None,
                       help="dynamic-instruction trigger (default: mid-loop)")
    trace.add_argument("--iterations", type=int, default=None)
    trace.add_argument("--resume-gap", type=int, default=2000)
    trace.add_argument("--contended", action="store_true",
                       help="use the fully-occupied-SM configuration")
    trace.add_argument("--detail", default="routine",
                       choices=["routine", "issue"],
                       help="event granularity: lifecycle/routine events, or "
                            "additionally every instruction issue")
    trace.add_argument("--format", default="text",
                       choices=["text", "json", "chrome"],
                       help="text timeline, JSONL stream, or Chrome "
                            "trace_event JSON (load in ui.perfetto.dev)")
    trace.add_argument("--output", default=None, metavar="FILE",
                       help="write the trace to FILE instead of stdout")
    trace.add_argument("--no-verify", action="store_true",
                       help="skip the reference run / memory comparison")
    trace.add_argument("--core", default=None,
                       choices=["fast", "reference"],
                       help="execution core (default: GPUConfig.core, "
                            "overridable via REPRO_CORE)")
    trace.set_defaults(func=cmd_trace)

    for name, help_text in (
        ("table1", "Table I: resources + BASELINE times"),
        ("fig7", "Fig. 7: normalized context size"),
        ("fig8", "Fig. 8: preemption-routine time"),
        ("fig9", "Fig. 9: resuming-routine time"),
        ("fig10", "Fig. 10: runtime overhead"),
        ("headline", "the abstract's headline numbers"),
        ("ablation", "technique-set ablation"),
    ):
        experiment = sub.add_parser(name, help=help_text)
        experiment.add_argument("--keys", default="",
                                help="comma-separated kernel subset")
        experiment.add_argument("--samples", type=int, default=2)
        experiment.add_argument("--iterations", type=int, default=None)
        experiment.add_argument("--jobs", type=int, default=None,
                                help="worker processes for the experiment "
                                     "engine (default: $REPRO_JOBS or 1)")
        experiment.add_argument("--unit-timeout", type=float, default=None,
                                metavar="SECONDS",
                                help="per-unit timeout before a retry "
                                     "(default: $REPRO_UNIT_TIMEOUT or none)")
        experiment.add_argument("--retries", type=int, default=None,
                                help="pool re-attempts per failed unit before "
                                     "the serial in-process fallback "
                                     "(default: $REPRO_UNIT_RETRIES or 2)")
        experiment.add_argument("--failure-policy", default=None,
                                choices=["fail-fast", "collect"],
                                help="abort on the first permanently-failed "
                                     "unit, or keep going and render FAILED "
                                     "cells (default: $REPRO_FAILURE_POLICY "
                                     "or fail-fast)")
        experiment.add_argument("--timing", action="store_true",
                                help="print engine wall time, cache stats and "
                                     "failure counters to stderr")
        experiment.set_defaults(func=_experiment_command(name))

    chaos = sub.add_parser(
        "chaos",
        help="sweep fault scenarios × mechanisms under the recovery oracle "
             "(post-recovery state must be bit-identical to the clean run)",
    )
    chaos.add_argument("--keys", default="",
                       help="comma-separated kernel subset (default: mm,km)")
    chaos.add_argument("--mechanisms", default="",
                       help="comma-separated mechanism subset "
                            "(default: the six evaluated mechanisms)")
    chaos.add_argument("--scenarios", default="",
                       help="comma-separated fault scenarios "
                            "(default: all; see repro.faults.scenario_names)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan RNG seed (same seed: same faults)")
    chaos.add_argument("--iterations", type=int, default=None)
    chaos.add_argument("--small", action="store_true",
                       help="use the small 4-lane configuration (CI smoke)")
    chaos.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the experiment engine "
                            "(default: $REPRO_JOBS or 1)")
    chaos.add_argument("--unit-timeout", type=float, default=None,
                       metavar="SECONDS")
    chaos.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="persist finished units to FILE after every "
                            "chunk; re-running resumes the sweep, skipping "
                            "completed units")
    chaos.add_argument("--retries", type=int, default=None)
    chaos.add_argument("--failure-policy", default=None,
                       choices=["fail-fast", "collect"])
    chaos.add_argument("--timing", action="store_true",
                       help="print engine wall time, cache stats and folded "
                            "recovery counters to stderr")
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="serve a multi-tenant request trace over the simulated fleet, "
             "preempting the batch job via each mechanism's calibrated costs",
    )
    serve.add_argument("--trace", default="poisson",
                       choices=["poisson", "bursty"],
                       help="arrival process (default: poisson)")
    serve.add_argument("--load", default="0.8",
                       help="comma-separated load levels as a fraction of "
                            "fleet capacity (default: 0.8)")
    serve.add_argument("--requests", type=int, default=100_000,
                       help="requests per (mechanism, load) cell "
                            "(default: 100000)")
    serve.add_argument("--gpus", type=int, default=4,
                       help="GPUs in the fleet (default: 4)")
    serve.add_argument("--mechanisms", default="",
                       help="comma-separated mechanism subset "
                            "(default: the six evaluated mechanisms)")
    serve.add_argument("--batch", default="dc",
                       help="batch kernel occupying the fleet (default: dc)")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace RNG seed (same seed: same trace)")
    serve.add_argument("--burst-factor", type=float, default=8.0,
                       help="bursty only: ON-state rate multiplier "
                            "(default: 8)")
    serve.add_argument("--burst-fraction", type=float, default=0.1,
                       help="bursty only: long-run ON-state time fraction "
                            "(default: 0.1)")
    serve.add_argument("--iterations", type=int, default=None,
                       help="batch-kernel iterations for calibration "
                            "(default: suite)")
    serve.add_argument("--samples", type=int, default=2,
                       help="calibration signal points per mechanism "
                            "(default: 2)")
    serve.add_argument("--small", action="store_true",
                       help="use the small 4-lane configuration (CI smoke)")
    serve.add_argument("--migrate", action="store_true",
                       help="live-migrate batch jobs across the fleet via "
                            "repro.snap snapshots (adds a migration section "
                            "and per-cell counts to the report)")
    serve.add_argument("--migrate-epoch-us", type=float, default=2000.0,
                       help="imbalance-check epoch for the migration planner "
                            "(default: 2000)")
    serve.add_argument("--migrate-factor", type=float, default=1.5,
                       help="migrate when the busiest hosting GPU's demand "
                            "reaches this multiple of the least-busy GPU's "
                            "(default: 1.5)")
    serve.add_argument("--link-bytes-per-us", type=float,
                       default=64.0,
                       help="inter-GPU link bandwidth for snapshot transfer "
                            "(default: 64)")
    serve.add_argument("--format", default="text", choices=["text", "json"],
                       help="stdout reporter (default: text)")
    serve.add_argument("--output", default=None, metavar="FILE",
                       help="also write the JSON report to FILE")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the experiment engine "
                            "(default: $REPRO_JOBS or 1)")
    serve.add_argument("--unit-timeout", type=float, default=None,
                       metavar="SECONDS")
    serve.add_argument("--retries", type=int, default=None)
    serve.add_argument("--failure-policy", default=None,
                       choices=["fail-fast", "collect"])
    serve.add_argument("--timing", action="store_true",
                       help="print engine wall time and cache stats to stderr")
    serve.add_argument("--chaos", default="none", metavar="SCENARIO",
                       help="fleet fault scenario "
                            "(crash|crash-storm|degrade|stall|drop|mixed; "
                            "'none' keeps the clean serving path untouched)")
    serve.add_argument("--detect-us", type=float, default=500.0,
                       help="crash detection delay before failover begins")
    serve.add_argument("--watchdog-us", type=float, default=1000.0,
                       help="health-watchdog sampling period for degrade "
                            "detection")
    serve.add_argument("--ckpt-cadence-us", type=float, default=5000.0,
                       help="batch-job checkpoint cadence; smaller = less "
                            "lost progress on a crash, more steady-state "
                            "overhead (0 disables)")
    serve.set_defaults(func=cmd_serve)

    snap = sub.add_parser(
        "snap",
        help="device-state snapshots: save/restore/verify round-trips and "
             "the live-migration cost model",
    )
    snap_sub = snap.add_subparsers(dest="snap_command", required=True)

    snap_save = snap_sub.add_parser(
        "save",
        help="run a preemption experiment and snapshot the evicted device",
    )
    snap_save.add_argument("kernel", help="benchmark key (see `repro suite`)")
    snap_save.add_argument("--output", required=True, metavar="FILE",
                           help="snapshot file to write (RSNP format)")
    snap_save.add_argument("--mechanism", default="ctxback",
                           help="baseline|live|ckpt|csdefer|ctxback|combined")
    snap_save.add_argument("--signal", type=int, default=None,
                           help="dynamic-instruction trigger "
                                "(default: mid-loop)")
    snap_save.add_argument("--cycle", type=int, default=None,
                           help="capture at this cycle instead of the "
                                "eviction point")
    snap_save.add_argument("--iterations", type=int, default=None)
    snap_save.add_argument("--resume-gap", type=int, default=2000)
    snap_save.add_argument("--small", action="store_true",
                           help="use the small 4-lane configuration")
    snap_save.add_argument("--core", default=None,
                           choices=["fast", "reference"])
    snap_save.set_defaults(func=cmd_snap_save)

    snap_restore = snap_sub.add_parser(
        "restore",
        help="restore a snapshot onto a (possibly differently-configured) "
             "GPU and run it to completion",
    )
    snap_restore.add_argument("file", help="snapshot file (RSNP format)")
    snap_restore.add_argument("--kernel", default=None,
                              help="benchmark key (default: the snapshot's "
                                   "label)")
    snap_restore.add_argument("--iterations", type=int, default=None)
    snap_restore.add_argument("--small", action="store_true")
    snap_restore.add_argument("--core", default=None,
                              choices=["fast", "reference"],
                              help="execution core to restore onto")
    snap_restore.add_argument("--verify", action="store_true",
                              help="compare final memory against a straight "
                                   "(non-snapshotted) run")
    snap_restore.set_defaults(func=cmd_snap_restore)

    snap_verify = snap_sub.add_parser(
        "verify",
        help="snapshot round-trip oracle: capture, encode/decode "
             "determinism, restore, arch-digest equivalence",
    )
    snap_verify.add_argument("--keys", default="",
                             help="comma-separated kernel subset "
                                  "(default: dc,mm)")
    snap_verify.add_argument("--mechanisms", default="",
                             help="comma-separated mechanism subset "
                                  "(default: the six evaluated mechanisms)")
    snap_verify.add_argument("--cross", action="store_true",
                             help="restore onto a differently-configured "
                                  "GPU (other core, halved context "
                                  "bandwidth)")
    snap_verify.add_argument("--iterations", type=int, default=None)
    snap_verify.add_argument("--small", action="store_true",
                             help="use the small 4-lane configuration "
                                  "(CI smoke)")
    snap_verify.add_argument("--core", default=None,
                             choices=["fast", "reference"],
                             help="capture-side execution core")
    snap_verify.add_argument("--format", default="text",
                             choices=["text", "json"])
    snap_verify.add_argument("--output", default=None, metavar="FILE",
                             help="also write the JSON verdicts to FILE")
    snap_verify.add_argument("--jobs", type=int, default=None,
                             help="worker processes for the experiment "
                                  "engine (default: $REPRO_JOBS or 1)")
    snap_verify.add_argument("--unit-timeout", type=float, default=None,
                             metavar="SECONDS")
    snap_verify.add_argument("--checkpoint", default=None, metavar="FILE",
                             help="persist finished units to FILE after "
                                  "every chunk; re-running resumes the "
                                  "sweep, skipping completed units")
    snap_verify.add_argument("--retries", type=int, default=None)
    snap_verify.add_argument("--failure-policy", default=None,
                             choices=["fail-fast", "collect"])
    snap_verify.add_argument("--timing", action="store_true")
    snap_verify.set_defaults(func=cmd_snap_verify)

    snap_migrate = snap_sub.add_parser(
        "migrate",
        help="per-mechanism migration cost model (snapshot bytes through "
             "the context-traffic rates and the inter-GPU link)",
    )
    snap_migrate.add_argument("--kernel", default="dc",
                              help="batch kernel to profile (default: dc)")
    snap_migrate.add_argument("--mechanisms", default="",
                              help="comma-separated mechanism subset "
                                   "(default: the six evaluated mechanisms)")
    snap_migrate.add_argument("--iterations", type=int, default=None)
    snap_migrate.add_argument("--small", action="store_true")
    snap_migrate.add_argument("--link-bytes-per-us", type=float, default=64.0)
    snap_migrate.set_defaults(func=cmd_snap_migrate)

    cache = sub.add_parser("cache", help="inspect the artifact cache")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached artifact")
    cache.set_defaults(func=cmd_cache)

    lint = sub.add_parser(
        "lint", help="verify and lint every (kernel × mechanism) plan")
    lint.add_argument("--keys", default="",
                      help="comma-separated kernel subset (default: suite)")
    lint.add_argument("--mechanisms", default="",
                      help="comma-separated mechanism subset "
                           "(default: the six evaluated mechanisms)")
    lint.add_argument("--warp-size", type=int, default=64)
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      help="stdout reporter (default: text)")
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="also write the JSON report to FILE "
                           "(written even when the run fails)")
    lint.add_argument("--strict", action="store_true",
                      help="warnings fail the run too")
    lint.add_argument("--diff-baseline", default=None, metavar="FILE",
                      help="ratchet: only findings absent from this previous "
                           "JSON report fail the run")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="write the JSON report as a new ratchet baseline")
    lint.add_argument("--codes", action="store_true",
                      help="list the finding codes and exit")
    lint.set_defaults(func=cmd_lint)

    mc = sub.add_parser(
        "mc",
        help="exhaust the bounded interleaving space of the preemption "
             "protocol (signal/resume/schedule nondeterminism) under the "
             "MC3xx invariants and the happens-before race detector",
    )
    mc.add_argument("--keys", default="",
                    help="comma-separated kernel subset (default: va,mm,km)")
    mc.add_argument("--mechanisms", default="",
                    help="comma-separated mechanism subset "
                         "(default: the six evaluated mechanisms)")
    mc.add_argument("--warps", type=int, default=2,
                    help="warps in the explored launch (default: 2)")
    mc.add_argument("--signals", type=int, default=2,
                    help="preemption rounds per warp (default: 2)")
    mc.add_argument("--gap", type=int, default=2,
                    help="dynamic instructions from (re)arm to the signal "
                         "window (default: 2)")
    mc.add_argument("--window", type=int, default=2,
                    help="signal-window width in dynamic instructions; "
                         "delivery branches over every point (default: 2)")
    mc.add_argument("--depth", type=int, default=2000,
                    help="choice points per run before truncation "
                         "(default: 2000)")
    mc.add_argument("--max-states", type=int, default=20000,
                    help="distinct recorded states before truncation "
                         "(default: 20000)")
    mc.add_argument("--bug", default="",
                    help="arm one seeded protocol bug "
                         "(see repro.mc.SEEDED_BUGS; checker self-test)")
    mc.add_argument("--iterations", type=int, default=None,
                    help="kernel loop iterations (default: suite)")
    mc.add_argument("--small", action="store_true",
                    help="use the small 4-lane configuration (CI smoke)")
    mc.add_argument("--format", default="text", choices=["text", "json"],
                    help="stdout reporter (default: text)")
    mc.add_argument("--output", default=None, metavar="FILE",
                    help="also write the JSON report to FILE "
                         "(written even when the run fails)")
    mc.add_argument("--diff-baseline", default=None, metavar="FILE",
                    help="ratchet: only findings absent from this previous "
                         "JSON report fail the run")
    mc.add_argument("--write-baseline", default=None, metavar="FILE",
                    help="write the JSON report as a new ratchet baseline")
    mc.add_argument("--codes", action="store_true",
                    help="list the finding codes and exit")
    mc.add_argument("--jobs", type=int, default=None,
                    help="worker processes for the experiment engine "
                         "(default: $REPRO_JOBS or 1)")
    mc.add_argument("--unit-timeout", type=float, default=None,
                    metavar="SECONDS")
    mc.add_argument("--retries", type=int, default=None)
    mc.add_argument("--failure-policy", default=None,
                    choices=["fail-fast", "collect"])
    mc.add_argument("--timing", action="store_true",
                    help="print engine wall time, cache stats and folded "
                         "exploration counters to stderr")
    mc.set_defaults(func=cmd_mc)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head/less and closed early
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
