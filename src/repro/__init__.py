"""CTXBack reproduction: low-latency GPU context switching via context
flashback (Ji & Wang, IPDPS 2021).

Public API layout:

* :mod:`repro.isa` — synthetic GCN-flavoured SIMT ISA (registers, opcodes,
  programs, textual assembly);
* :mod:`repro.compiler` — CFG, liveness, value numbering, idempotence;
* :mod:`repro.ctxback` — the paper's contribution: flashback-point analysis,
  instruction reverting, OSRB, routine generation;
* :mod:`repro.mechanisms` — the six evaluated preemption techniques behind a
  uniform interface;
* :mod:`repro.sim` — cycle-level single-SM simulator (functional + timing);
* :mod:`repro.kernels` — the Table I benchmark suite (synthetic analogs);
* :mod:`repro.analysis` — experiment drivers regenerating every table and
  figure of §V.

Quickstart::

    from repro.isa import parse, Kernel
    from repro.ctxback import FlashbackAnalyzer

    kernel = Kernel("k", parse(asm_text), vgprs_used=16, sgprs_used=16)
    plan = FlashbackAnalyzer(kernel).plan_at(position)
    print(plan.context_bytes, plan.flashback_pos)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "compiler",
    "ctxback",
    "isa",
    "kernels",
    "mechanisms",
    "sim",
]
