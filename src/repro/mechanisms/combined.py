"""CTXBack+CS-Defer: per-instruction choice by estimated preemption latency
(paper §IV-C).

CS-Defer is analysed over the *same* OSRB-instrumented program so positions
align.  The choice uses the compile-time estimates; since CS-Defer's
estimate ignores dependency stalls (§V-B), the combination occasionally
picks a sub-optimal side — exactly the effect the paper reports in Fig. 8.
"""

from __future__ import annotations

from ..ctxback.flashback import CtxBackConfig
from ..isa.instruction import Kernel
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel
from .csdefer import CSDefer
from .ctxback import CtxBack


class Combined(Mechanism):
    """Per-instruction pick between CTXBack and CS-Defer by estimated latency."""

    name = "combined"

    def __init__(self, analysis_config: CtxBackConfig | None = None) -> None:
        self.analysis_config = analysis_config

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        ctx = CtxBack(self.analysis_config).prepare(kernel, config)
        defer = CSDefer().prepare(ctx.kernel, config)
        plans = {}
        for n, ctx_plan in ctx.plans.items():
            defer_plan = defer.plans[n]
            plans[n] = (
                ctx_plan
                if ctx_plan.est_preempt_cycles <= defer_plan.est_preempt_cycles
                else defer_plan
            )
        return PreparedKernel(kernel=ctx.kernel, mechanism=self.name, plans=plans)
