"""BASELINE: the Linux-driver context-switch routine (paper §II-A, §V).

Swaps *every occupied on-chip resource* of the preempted warp — the full
aligned register allocation including padding and dead registers, the exec
mask and condition code, and the thread block's LDS — regardless of
liveness.  This is the normalisation reference for every figure.
"""

from __future__ import annotations

from ..ctxback.context import lds_share_bytes
from ..isa.instruction import Kernel
from ..isa.registers import EXEC, SCC, sreg, vreg
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel
from .regsave import regsave_plan


class Baseline(Mechanism):
    """Swap the full aligned allocation, liveness-blind (Linux driver)."""

    name = "baseline"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        spec = config.rf_spec
        regs = (
            [vreg(i) for i in range(spec.allocated_vgprs(kernel.vgprs_used))]
            + [sreg(i) for i in range(spec.allocated_sgprs(kernel.sgprs_used))]
            + [EXEC, SCC]
        )
        lds = lds_share_bytes(kernel)
        plans = {}
        template = None
        for n in range(len(kernel.program.instructions)):
            plan = regsave_plan(n, self.name, regs, lds, spec)
            if template is None:
                template = (plan.preempt_routine, plan.resume_routine)
            else:
                # identical routines for every position; share the programs
                plan.preempt_routine, plan.resume_routine = template
            plans[n] = plan
        return PreparedKernel(kernel=kernel, mechanism=self.name, plans=plans)
