"""LIVE: swap only the live registers (Lin et al. [4], paper §V).

Uses liveness information to exclude dead registers and alignment padding
from the context; otherwise identical to BASELINE.  The paper measures a
37.8 % average context reduction from this alone.
"""

from __future__ import annotations

from ..compiler.liveness import analyze_liveness
from ..ctxback.context import lds_share_bytes
from ..isa.instruction import Kernel
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel
from .regsave import regsave_plan


class Live(Mechanism):
    """Swap only the live registers (liveness-filtered BASELINE)."""

    name = "live"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        liveness = analyze_liveness(kernel.program)
        lds = lds_share_bytes(kernel)
        plans = {
            n: regsave_plan(
                n, self.name, liveness.live_in[n], lds, config.rf_spec
            )
            for n in range(len(kernel.program.instructions))
        }
        return PreparedKernel(kernel=kernel, mechanism=self.name, plans=plans)
