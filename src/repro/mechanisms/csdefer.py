"""CS-Defer: defer the context switch to a small-context instruction ahead
(Lin et al. [4], paper §II-B, §IV-C).

On a signal at ``n`` the warp keeps executing until it reaches the deferral
target ``j`` — the instruction within the remainder of the basic block whose
estimated preemption latency (execution of ``[n, j)`` plus saving ``j``'s
live context) is smallest — then swaps ``j``'s live registers.  Resume is a
plain reload with no re-execution, which is why CS-Defer has the best
resuming time but a longer, *undetermined* preemption latency: the deferred
window may contain device-memory accesses.

The latency estimate deliberately sums issue latencies only: the compiler
cannot see dependency stalls caused by preceding instructions (paper §V-B),
which is what makes CTXBack+CS-Defer occasionally pick the wrong side.
"""

from __future__ import annotations

from ..compiler.cfg import build_cfg
from ..compiler.liveness import analyze_liveness
from ..ctxback.context import META_BYTES, lds_share_bytes, regs_bytes
from ..ctxback.costs import est_exec_window_cycles, est_preempt_latency
from ..isa.instruction import Kernel, Program
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel
from .regsave import regsave_plan


class CSDefer(Mechanism):
    """Defer the switch to a small-context instruction ahead (Lin et al.)."""

    name = "csdefer"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        program = kernel.program
        cfg = build_cfg(program)
        liveness = analyze_liveness(program, cfg)
        spec = config.rf_spec
        lds = lds_share_bytes(kernel)
        live_bytes = [
            regs_bytes(liveness.live_in[n], spec) + lds + META_BYTES
            for n in range(len(program.instructions))
        ]
        plans = {}
        for n in range(len(program.instructions)):
            block = cfg.block_at(n)
            # deferral may not cross the block terminator: the dedicated
            # routine embeds the deferred instructions, and control flow
            # inside a routine is not statically determinable.
            last = block.end - 1
            window_end = last if program.instructions[last].spec.is_branch else last + 1
            best_j, best_est = n, est_preempt_latency(live_bytes[n])
            for j in range(n + 1, min(window_end, len(live_bytes) - 1) + 1):
                estimate = est_preempt_latency(
                    live_bytes[j],
                    est_exec_window_cycles(program.instructions[n:j]),
                )
                if estimate < best_est:
                    best_j, best_est = j, estimate
            prefix = Program(list(program.instructions[n:best_j]))
            plans[n] = regsave_plan(
                n,
                self.name,
                liveness.live_in[best_j] if best_j < len(live_bytes) else (),
                lds,
                spec,
                resume_pc=best_j,
                prefix=prefix,
                prefix_est_cycles=est_exec_window_cycles(
                    program.instructions[n:best_j]
                ),
                deferred_to=best_j,
            )
        return PreparedKernel(kernel=kernel, mechanism=self.name, plans=plans)
