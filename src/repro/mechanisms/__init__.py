"""The six preemption techniques evaluated in paper §V.

============  =====================================================
BASELINE      Linux-driver routine: swap everything occupied
LIVE          swap live registers only (Lin et al. [4])
CKPT          checkpoint-based fault tolerance adapted (iGPU/Penny)
CS-Defer      defer forward to a small-context instruction
CTXBack       context flashback (this paper)
Combined      CTXBack+CS-Defer per-instruction selection
============  =====================================================
"""

from .base import CkptSite, Mechanism, PreparedKernel
from .baseline import Baseline
from .chimera import Chimera, ChimeraPolicy, expected_dyn_for
from .ckpt import Ckpt
from .combined import Combined
from .csdefer import CSDefer
from .ctxback import CtxBack
from .drain import SMDrain
from .flush import FlushNotIdempotent, SMFlush
from .live import Live

#: the six techniques of the paper's evaluation (§V)
ALL_MECHANISMS = {
    "baseline": Baseline,
    "live": Live,
    "ckpt": Ckpt,
    "csdefer": CSDefer,
    "ctxback": CtxBack,
    "combined": Combined,
}

#: §II-B / §VI extensions: coarse-grained techniques + Chimera integration
#: (Chimera needs an expected_dyn estimate, so it is constructed directly)
EXTENSION_MECHANISMS = {
    "flush": SMFlush,
    "drain": SMDrain,
}


def make_mechanism(name: str) -> Mechanism:
    """Instantiate a mechanism by its paper name."""
    registry = {**ALL_MECHANISMS, **EXTENSION_MECHANISMS}
    try:
        return registry[name]()
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; choose from {sorted(registry)}"
        ) from None


__all__ = [
    "ALL_MECHANISMS",
    "Baseline",
    "Chimera",
    "ChimeraPolicy",
    "EXTENSION_MECHANISMS",
    "FlushNotIdempotent",
    "SMDrain",
    "SMFlush",
    "expected_dyn_for",
    "Ckpt",
    "CkptSite",
    "Combined",
    "CSDefer",
    "CtxBack",
    "Live",
    "Mechanism",
    "PreparedKernel",
    "make_mechanism",
]
