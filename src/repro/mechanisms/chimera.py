"""Chimera-style collaborative preemption (Park et al. [11], paper §VI).

Chimera picks the preemption technique per thread block *at signal time*
based on its execution progress: flush blocks that have barely started
(little work wasted), drain blocks that are nearly done (little waiting
added), and context-switch everything in between.  The paper positions
CTXBack as a drop-in replacement for the context-switching leg — "It can be
integrated into Chimera to replace the traditional context switching
mechanism" — which is exactly what this mechanism does.

Progress is the warp's dynamic instruction count against ``expected_dyn``,
an estimate of the warp's total work (the launch harness knows the
iteration count; real systems use the driver's dispatch bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ctxback.flashback import CtxBackConfig
from ..isa.instruction import Kernel
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel
from .ctxback import CtxBack
from .flush import check_restartable


@dataclass(frozen=True)
class ChimeraPolicy:
    """Progress thresholds for the three-way choice."""

    #: below this fraction of expected work: flush (restart costs little)
    flush_below: float = 0.15
    #: above this fraction: drain (finishing costs little)
    drain_above: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.flush_below <= self.drain_above <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= flush <= drain <= 1")

    def choose(self, progress: float) -> str:
        if progress < self.flush_below:
            return "drop"  # flush: drop now, restart from the beginning
        if progress > self.drain_above:
            return "drain"
        return "switch"


class Chimera(Mechanism):
    """CTXBack-backed Chimera: flush / CTXBack-switch / drain by progress."""

    name = "chimera"

    def __init__(
        self,
        expected_dyn: int,
        policy: ChimeraPolicy | None = None,
        analysis_config: CtxBackConfig | None = None,
    ) -> None:
        if expected_dyn <= 0:
            raise ValueError("expected_dyn must be positive")
        self.expected_dyn = expected_dyn
        self.policy = policy or ChimeraPolicy()
        self.analysis_config = analysis_config

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        check_restartable(kernel)  # the flush leg restarts from zero
        inner = CtxBack(self.analysis_config).prepare(kernel, config)
        expected = self.expected_dyn
        policy = self.policy

        def runtime_policy(warp) -> str:
            progress = min(1.0, warp.dyn_count / expected)
            return policy.choose(progress)

        return PreparedKernel(
            kernel=inner.kernel,
            mechanism=self.name,
            plans=inner.plans,
            runtime_policy=runtime_policy,
        )


def expected_dyn_for(kernel: Kernel, iterations: int) -> int:
    """Estimate a warp's total dynamic instructions for *iterations* loops.

    Preamble + epilogue instructions execute once; the loop body executes
    per iteration.  Good enough for progress-fraction policies.
    """
    from ..compiler.cfg import build_cfg

    cfg = build_cfg(kernel.program)
    loop_header = kernel.program.labels.get("LOOP")
    if loop_header is None:
        return len(kernel.program.instructions)
    loop = cfg.block_at(loop_header)
    once = len(kernel.program.instructions) - len(loop)
    return once + len(loop) * iterations
