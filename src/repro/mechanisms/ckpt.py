"""CKPT: checkpoint-based fault-tolerance mechanisms adapted for context
switching (iGPU [5] / Penny [6], paper §II-B, §V).

One probe per basic block, placed at the block's least-live instruction —
"CKPT can always save the context of the instructions with the least live
registers (minimum possible size)" — firing every ``ckpt_interval``-th
execution of that block (the paper evaluates interval 16).  A preemption
simply drops the warp (near-zero latency); resume replays from the last
checkpoint, re-executing up to ``interval - 1`` block iterations, which is
where CKPT's 318 %-of-baseline resuming time comes from.
"""

from __future__ import annotations

from dataclasses import replace

from ..compiler.cfg import build_cfg
from ..compiler.liveness import analyze_liveness
from ..compiler.transform import insert_instructions
from ..ctxback.context import META_BYTES, lds_share_bytes, regs_bytes
from ..isa.instruction import Kernel, inst
from ..sim.config import GPUConfig
from .base import CkptSite, Mechanism, PreparedKernel


class Ckpt(Mechanism):
    """Checkpoint every Nth block execution; drop on signal, replay on resume."""

    name = "ckpt"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        program = kernel.program
        cfg = build_cfg(program)
        liveness = analyze_liveness(program, cfg)
        spec = config.rf_spec
        lds = lds_share_bytes(kernel)

        insertions = []
        site_info = []
        for block in cfg.blocks:
            if len(block) == 0:
                continue
            best = min(
                block.positions(),
                key=lambda pos: regs_bytes(liveness.live_in[pos], spec),
            )
            probe_id = block.index
            insertions.append((best, inst("ckpt_probe", probe_id)))
            site_info.append((probe_id, best, liveness.live_in[best]))

        new_program, new_positions = insert_instructions(program, insertions)
        sites = {}
        for (probe_id, _old_pos, live_regs), new_pos in zip(site_info, new_positions):
            nbytes = regs_bytes(live_regs, spec) + lds + META_BYTES
            sites[probe_id] = CkptSite(
                probe_id=probe_id,
                position=new_pos,
                live_regs=live_regs,
                nbytes=nbytes,
                store_ops=len(live_regs) + (1 if lds else 0),
            )
        new_kernel = replace(kernel, program=new_program)
        return PreparedKernel(
            kernel=new_kernel,
            mechanism=self.name,
            ckpt_sites=sites,
            is_checkpoint_based=True,
        )
