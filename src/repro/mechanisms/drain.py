"""SM-draining (Tanasic et al. [10], paper §II-B): run to completion.

On a signal nothing is saved and nothing is dropped: the warps simply keep
executing until they finish, then their resources free up.  Zero preemption
*overhead* (no context traffic, no wasted work) at the price of a long,
input-dependent preemption *latency* — the remaining execution time of the
running thread block, unbounded for persistent-thread batch kernels.

The controller treats a drain-flagged prepared kernel specially: the signal
only starts the latency clock; eviction happens when the warp reaches
``s_endpgm``; there is nothing to resume.
"""

from __future__ import annotations

from ..isa.instruction import Kernel
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel


class SMDrain(Mechanism):
    """Run signalled warps to completion; zero overhead, unbounded latency."""

    name = "drain"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        return PreparedKernel(
            kernel=kernel,
            mechanism=self.name,
            is_drain=True,
        )
