"""Common interface of the six evaluated preemption mechanisms.

Each mechanism's compiler side turns a kernel into a :class:`PreparedKernel`:
a (possibly instrumented) program plus one :class:`~repro.ctxback.plan.InstrPlan`
per instruction position.  The simulator's preemption controller consumes
prepared kernels uniformly; only CKPT is flagged checkpoint-based because its
preempt/resume flow (drop + replay from snapshot) does not fit the
routine-pair model.
"""

from __future__ import annotations

import statistics
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from ..ctxback.plan import InstrPlan
from ..isa.instruction import Kernel
from ..isa.opcodes import MemKind, opspec
from ..isa.registers import Reg
from ..sim.config import GPUConfig


def classify_routine_step(where: str, mnemonic: str) -> str:
    """Attribute one dedicated-routine instruction to its §III technique.

    *where* is ``"preempt"`` or ``"resume"`` (the warp mode during the
    routine).  Context-buffer stores are ``save`` steps, context-buffer
    loads ``reload`` steps; everything else a preemption routine executes
    is a ``revert`` step (inverse operations rebuilding the flashback
    state, §III-C) and everything else a resuming routine executes is a
    ``rebuild`` step (re-computing values — including OSRB-backed scalar
    restores — on the way back to the resume PC, §III-B/D).  Used by the
    trace exporters to label per-issue events; never on the sim hot path.
    """
    try:
        mem = opspec(mnemonic).mem
    except KeyError:
        mem = None
    if mem is MemKind.CTX_STORE:
        return "save"
    if mem is MemKind.CTX_LOAD:
        return "reload"
    return "revert" if where == "preempt" else "rebuild"


@dataclass(frozen=True)
class CkptSite:
    """One CKPT probe: where it sits and what a checkpoint there costs."""

    probe_id: int
    position: int  # probe position in the *instrumented* program
    live_regs: frozenset[Reg]
    nbytes: int
    store_ops: int


@dataclass
class PreparedKernel:
    """A kernel ready for preemptible execution under one mechanism."""

    kernel: Kernel
    mechanism: str
    plans: dict[int, InstrPlan] = field(default_factory=dict)
    ckpt_sites: dict[int, CkptSite] = field(default_factory=dict)
    is_checkpoint_based: bool = False
    #: SM-draining: the signal only starts the clock; warps run to completion
    is_drain: bool = False
    #: Chimera-style runtime selection: warp -> "switch" | "drop" | "drain";
    #: None means the mechanism's static flags decide
    runtime_policy: Callable | None = None
    #: set by the launch harness; used by CKPT when a warp is dropped before
    #: its first checkpoint and must restart the kernel from the beginning
    warp_initializer: Callable | None = None

    def strategy_for(self, warp) -> str:
        """How to preempt *warp* right now: "switch" (run the dedicated
        routine), "drop" (checkpoint-based eviction), or "drain"."""
        if self.runtime_policy is not None:
            return self.runtime_policy(warp)
        if self.is_drain:
            return "drain"
        if self.is_checkpoint_based:
            return "drop"
        return "switch"

    def reinit_warp(self, warp) -> None:
        if self.warp_initializer is None:
            raise RuntimeError("no warp initializer attached")
        self.warp_initializer(warp)

    def iter_routines(self, unique: bool = True):
        """Yield ``(position, where, routine)`` for every plan routine.

        ``where`` is ``"preempt"`` or ``"resume"``.  Plans may share routine
        ``Program`` objects (BASELINE's template, CTXBack after
        ``share_routines``); with ``unique`` each shared object is yielded
        once, at its lowest position — what auditing passes want.
        """
        seen: set[int] = set()
        for position in sorted(self.plans):
            plan = self.plans[position]
            for where, routine in (
                ("preempt", plan.preempt_routine),
                ("resume", plan.resume_routine),
            ):
                if unique:
                    if id(routine) in seen:
                        continue
                    seen.add(id(routine))
                yield position, where, routine

    # -- static context statistics (Fig. 7) ------------------------------------

    def context_bytes_by_position(self) -> list[int]:
        if self.is_checkpoint_based:
            # every position restores from the (single per-block) checkpoint
            if not self.ckpt_sites:
                return []
            by_block = {site.nbytes for site in self.ckpt_sites.values()}
            size = statistics.mean(by_block)
            return [int(size)] * len(self.kernel.program.instructions)
        return [
            self.plans[n].context_bytes
            for n in sorted(self.plans)
        ]

    def mean_context_bytes(self) -> float:
        sizes = self.context_bytes_by_position()
        return statistics.mean(sizes) if sizes else 0.0


class Mechanism(ABC):
    """Compiler side of one preemption technique."""

    name: str

    @abstractmethod
    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        """Analyze/instrument *kernel* and emit per-position plans."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Mechanism {self.name}>"
