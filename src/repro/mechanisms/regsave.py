"""Shared helper: plans that save/restore an explicit register set.

BASELINE, LIVE and the tail end of CS-Defer all swap a plain register set;
this builds the store/load routine pair and the plan around it.
"""

from __future__ import annotations

from ..ctxback.context import META_BYTES
from ..ctxback.costs import EST_STORE_BYTES_PER_CYCLE, est_preempt_latency
from ..ctxback.plan import InstrPlan, ctx_load_for, ctx_store_for
from ..isa.instruction import Kernel, Program, inst
from ..isa.registers import Reg, RegisterFileSpec


def regsave_routines(
    regs: list[Reg],
    lds_bytes: int,
    rf_spec: RegisterFileSpec,
    prefix: Program | None = None,
) -> tuple[Program, Program, int]:
    """(preempt_routine, resume_routine, saved_bytes) for a register set.

    ``prefix`` instructions (CS-Defer's deferred window) run before the
    stores in the preemption routine.
    """
    preempt = prefix.copy() if prefix is not None else Program()
    resume = Program()
    offset = 0
    if lds_bytes:
        resume.append(inst("ctx_load_lds", lds_bytes))
    for reg in regs:
        preempt.append(ctx_store_for(reg, offset))
        resume.append(ctx_load_for(reg, offset))
        offset += reg.context_bytes(rf_spec.warp_size)
    if lds_bytes:
        preempt.append(inst("ctx_store_lds", lds_bytes))
    return preempt, resume, offset


def regsave_plan(
    position: int,
    mechanism: str,
    regs,
    lds_bytes: int,
    rf_spec: RegisterFileSpec,
    resume_pc: int | None = None,
    prefix: Program | None = None,
    prefix_est_cycles: float = 0.0,
    deferred_to: int | None = None,
) -> InstrPlan:
    ordered = sorted(regs, key=str)
    preempt, resume, saved_bytes = regsave_routines(
        ordered, lds_bytes, rf_spec, prefix
    )
    context_bytes = saved_bytes + lds_bytes + META_BYTES
    return InstrPlan(
        position=position,
        mechanism=mechanism,
        preempt_routine=preempt,
        resume_routine=resume,
        resume_pc=position if resume_pc is None else resume_pc,
        context_bytes=context_bytes,
        est_preempt_cycles=est_preempt_latency(context_bytes, prefix_est_cycles),
        est_resume_cycles=context_bytes / EST_STORE_BYTES_PER_CYCLE,
        deferred_to=deferred_to,
    )
