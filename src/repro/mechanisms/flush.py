"""SM-flushing (Park et al. [11], paper §II-B): drop and restart.

On a signal the running warps are dropped immediately — near-zero
preemption latency and no context traffic — and restarted *from the
beginning of the kernel* when resumed, provided the (relaxed) idempotence
condition holds: re-running the kernel from scratch must produce the same
result, which is true for the deterministic disjoint-buffer benchmark
kernels.  All execution progress is wasted, which is why the paper calls it
"too coarse-grained ... for batch jobs" whose thread blocks run long.

Implementation detail: this is CKPT with an empty checkpoint set — the
controller's no-snapshot path already restarts warps from zero — so the
mechanism only has to validate the idempotence requirement and flag itself.
"""

from __future__ import annotations

from ..compiler.idempotence import AliasModel
from ..isa.instruction import Kernel
from ..isa.opcodes import MemKind
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel


class FlushNotIdempotent(ValueError):
    """The kernel cannot be safely restarted from the beginning."""


def check_restartable(kernel: Kernel) -> None:
    """Validate the relaxed idempotence condition for whole-kernel restart.

    Sufficient condition for our ISA: the kernel's global loads never read
    locations its stores write (``noalias``), so a restarted run reads the
    same inputs and rewrites the same outputs.
    """
    if kernel.noalias:
        return
    has_load = any(
        i.spec.mem is MemKind.GLOBAL_LOAD for i in kernel.program.instructions
    )
    has_store = any(
        i.spec.mem is MemKind.GLOBAL_STORE for i in kernel.program.instructions
    )
    if has_load and has_store:
        raise FlushNotIdempotent(
            f"{kernel.name}: loads may alias stores; flushing would replay "
            f"against clobbered inputs (annotate noalias=True if they are "
            f"disjoint)"
        )


class SMFlush(Mechanism):
    """Drop signalled warps instantly and restart them from the beginning."""

    name = "flush"

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        check_restartable(kernel)
        return PreparedKernel(
            kernel=kernel,
            mechanism=self.name,
            is_checkpoint_based=True,  # drop now, replay later
            ckpt_sites={},  # ...from the very beginning
        )
