"""CTXBack as a preemption mechanism: OSRB instrumentation + flashback plans."""

from __future__ import annotations

from dataclasses import replace

from ..ctxback.flashback import CtxBackConfig, FlashbackAnalyzer
from ..ctxback.osrb import apply_osrb
from ..ctxback.sharing import share_routines
from ..isa.instruction import Kernel
from ..sim.config import GPUConfig
from .base import Mechanism, PreparedKernel


class CtxBack(Mechanism):
    """Context flashback: OSRB instrumentation + per-instruction plans."""

    name = "ctxback"

    def __init__(self, analysis_config: CtxBackConfig | None = None) -> None:
        self.analysis_config = analysis_config or CtxBackConfig()

    def prepare(self, kernel: Kernel, config: GPUConfig) -> PreparedKernel:
        analysis = replace(self.analysis_config, rf_spec=config.rf_spec)
        if analysis.enable_osrb:
            kernel, _report = apply_osrb(
                kernel, config.rf_spec, analysis.reversibility
            )
        analyzer = FlashbackAnalyzer(kernel, analysis)
        plans = analyzer.plan_all()
        # §IV-A: instructions sharing a flashback point share one stored
        # preemption routine; dedup keeps transfer/storage small
        share_routines(plans)
        return PreparedKernel(
            kernel=kernel, mechanism=self.name, plans=plans
        )
