"""Flashback-point search and per-instruction plan construction.

For every signal position ``n``, CTXBack enumerates flashback candidates
within the basic block ∩ idempotent region, ranks them by estimated
preemption latency — dominated by context bytes, so the screen uses live-in
context sizes, matching the paper's observation that selected
flashback-points sit at local context-size minima (§IV-A) — exactly builds
the top-K plans, and keeps the cheapest one that generates valid routines.

``p = n`` is always a candidate and always schedulable (save the live
context of ``n`` directly), so CTXBack "decays to LIVE when dealing with
kernels without a significant variety of live registers" (§V-C) by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.cfg import CFG, BasicBlock, build_cfg
from ..compiler.execmask import partial_exec_positions
from ..compiler.idempotence import AliasModel, idempotent_region_start
from ..compiler.liveness import LivenessInfo, analyze_liveness
from ..compiler.usedef import RegionValues, Value, number_region
from ..isa.instruction import Kernel, Program
from ..isa.opcodes import ReversibilityModel
from ..isa.registers import Reg, RegisterFileSpec
from .context import META_BYTES, lds_share_bytes, regs_bytes
from .costs import EST_STORE_BYTES_PER_CYCLE, est_issue_cycles, est_preempt_latency
from .plan import InstrPlan
from .routines import GeneratedRoutines, GenerationFailure, generate_routines
from .valueflow import Node, Resolver, SignalSite


@dataclass(frozen=True)
class CtxBackConfig:
    """Tunables of the CTXBack compiler pass.

    The three technique toggles exist for the ablation study (DESIGN.md §5):
    with all three off, the pass degrades to choosing among strictly-available
    preceding contexts, i.e. the paper's unrelaxed Fig. 1 condition.
    """

    rf_spec: RegisterFileSpec = field(default_factory=RegisterFileSpec)
    reversibility: ReversibilityModel = ReversibilityModel.PAPER
    #: number of screened candidates built exactly per signal position
    candidates_k: int = 4
    #: retry budget when routine generation pins values to direct-save
    max_degrade_retries: int = 8
    #: technique toggles (paper §III-B/C/D)
    enable_relaxed: bool = True
    enable_reverting: bool = True
    enable_osrb: bool = True


@dataclass
class BlockState:
    """Value numbering of one basic block plus the per-position register map.

    Shared between the flashback analyzer and the symbolic plan verifier
    (:mod:`repro.verify`), which re-derives the signal-time register file
    from the same numbering the plans were built from.
    """

    block: BasicBlock
    region: RegionValues
    #: state_at[i] = register file contents before executing block.start + i
    state_at: list[dict[Reg, Value]]


def build_block_state(
    program: Program, block: BasicBlock, liveness, partial_exec: frozenset[int]
) -> BlockState:
    entry_regs = liveness.live_in[block.start] if len(block) else ()
    region = number_region(
        program, block.start, block.end, entry_regs=entry_regs,
        partial_exec=partial_exec,
    )
    states: list[dict[Reg, Value]] = []
    state = dict(region.entry)
    for pos in block.positions():
        states.append(dict(state))
        instruction = program.instructions[pos]
        for reg, value in zip(instruction.defs(), region.def_values_at(pos)):
            state[reg] = value
    states.append(dict(state))
    return BlockState(block, region, states)


# backwards-compatible aliases (pre-public names)
_BlockState = BlockState
_build_block_state = build_block_state


class FlashbackAnalyzer:
    """Builds CTXBack :class:`InstrPlan`\\ s for every position of a kernel."""

    def __init__(self, kernel: Kernel, config: CtxBackConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config or CtxBackConfig()
        self.program = kernel.program
        self.cfg: CFG = build_cfg(self.program)
        self.partial_exec = partial_exec_positions(self.program, self.cfg)
        self.liveness: LivenessInfo = analyze_liveness(
            self.program, self.cfg, self.partial_exec
        )
        self.alias_model = (
            AliasModel.NO_ALIAS if kernel.noalias else AliasModel.MAY_ALIAS
        )
        self._block_states: dict[int, BlockState] = {}
        self._lds_share = lds_share_bytes(kernel)
        spec = self.config.rf_spec
        self._live_bytes = [
            regs_bytes(self.liveness.live_in[pos], spec)
            for pos in range(len(self.program.instructions))
        ]
        if not self.config.enable_reverting:
            self._model = ReversibilityModel.EXACT  # placeholder, see _site
        self._reverting_enabled = self.config.enable_reverting

    # -- helpers ---------------------------------------------------------------

    def _block_state(self, block: BasicBlock) -> BlockState:
        state = self._block_states.get(block.index)
        if state is None:
            state = build_block_state(
                self.program, block, self.liveness, self.partial_exec
            )
            self._block_states[block.index] = state
        return state

    def _site(self, n: int) -> SignalSite:
        block = self.cfg.block_at(n)
        bstate = self._block_state(block)
        return SignalSite(
            program=self.program,
            region=bstate.region,
            n=n,
            end_state=bstate.state_at[n - block.start],
            rf_spec=self.config.rf_spec,
            model=(
                self.config.reversibility
                if self._reverting_enabled
                else _NO_REVERTS
            ),
        )

    def candidate_positions(self, n: int) -> list[int]:
        """Screened flashback candidates for a signal at *n*, best first."""
        block = self.cfg.block_at(n)
        region_start = idempotent_region_start(
            self.program, block.start, n, self.alias_model
        )
        if not self.config.enable_relaxed:
            # Without the relaxed condition (§III-B) a preceding instruction
            # qualifies only if *none* of its live-in registers have been
            # overwritten (Fig. 1); restrict candidates accordingly.
            region_start = self._strict_region_start(n, region_start)
        candidates = sorted(
            range(region_start, n + 1),
            key=lambda q: (self._live_bytes[q] if q < n else self._live_bytes[n], -q),
        )
        top = candidates[: self.config.candidates_k]
        if n not in top:
            top.append(n)
        return top

    def _strict_region_start(self, n: int, region_start: int) -> int:
        """Earliest p whose whole live-in context is still unoverwritten."""
        block = self.cfg.block_at(n)
        bstate = self._block_state(block)
        end_state = bstate.state_at[n - block.start]
        current = {value.vid for value in end_state.values()}
        for p in range(n, region_start - 1, -1):
            state = bstate.state_at[p - block.start]
            live = self.liveness.live_in[p] if p < n else self.liveness.live_in[n]
            ok = all(
                reg in state and state[reg].vid in current for reg in live
            )
            if not ok:
                return p + 1
        return region_start

    # -- plan construction -------------------------------------------------------

    def build_plan_at(self, n: int, p: int) -> InstrPlan | None:
        """Exactly build the plan for flashback point *p*; None if infeasible."""
        site = self._site(n)
        live = self.liveness.live_in[n]
        forced: frozenset[int] = frozenset()
        for _attempt in range(self.config.max_degrade_retries + 1):
            resolver = Resolver(site, p, forced)
            roots: dict[Reg, Node] = {}
            feasible = True
            for reg in sorted(live, key=str):
                target = site.end_state.get(reg)
                if target is None:
                    feasible = False
                    break
                node = resolver.resolve(target)
                if node is None:
                    feasible = False
                    break
                roots[reg] = node
            if not feasible:
                return None
            try:
                generated = generate_routines(site, p, roots, live, self._lds_share)
            except GenerationFailure as failure:
                if failure.value.vid in forced or failure.value.vid < 0:
                    return None
                forced = forced | {failure.value.vid}
                continue
            return self._plan_from(n, p, generated)
        return None

    def _plan_from(self, n: int, p: int, generated: GeneratedRoutines) -> InstrPlan:
        context_bytes = generated.saved_bytes + self._lds_share + META_BYTES
        preempt_alu = sum(
            est_issue_cycles(instruction)
            for instruction in generated.preempt.instructions
            if not instruction.spec.touches_global_memory
        )
        est_resume = (
            context_bytes / EST_STORE_BYTES_PER_CYCLE
            + sum(
                est_issue_cycles(instruction)
                for instruction in generated.resume.instructions
                if not instruction.spec.touches_global_memory
            )
        )
        return InstrPlan(
            position=n,
            mechanism="ctxback",
            preempt_routine=generated.preempt,
            resume_routine=generated.resume,
            resume_pc=n,
            context_bytes=context_bytes,
            est_preempt_cycles=est_preempt_latency(context_bytes, preempt_alu),
            est_resume_cycles=est_resume,
            saved=generated.saved,
            flashback_pos=p,
            reexec_count=len(generated.reexec_positions),
        )

    def plan_at(self, n: int) -> InstrPlan:
        """Best CTXBack plan for a signal arriving at position *n*."""
        best: InstrPlan | None = None
        for p in self.candidate_positions(n):
            plan = self.build_plan_at(n, p)
            if plan is None:
                continue
            if best is None or (plan.context_bytes, plan.est_resume_cycles) < (
                best.context_bytes,
                best.est_resume_cycles,
            ):
                best = plan
        if best is None:  # pragma: no cover - p = n always succeeds
            raise RuntimeError(f"no feasible plan at position {n}")
        return best

    def plan_all(self) -> dict[int, InstrPlan]:
        """Plans for every instruction position of the kernel."""
        return {
            n: self.plan_at(n) for n in range(len(self.program.instructions))
        }


class _NoReverts:
    """Reversibility model admitting nothing (for the ablation toggle)."""

    def allows(self, spec) -> bool:
        return False


_NO_REVERTS = _NoReverts()
