"""Instruction reverting (paper §III-C, Algorithm 2).

Instructions of the form ``r' = op(r, {R})`` overwrite one of their own
operands.  When ``op`` has an inverse, the previous value of ``r`` can be
recovered as ``r = op⁻¹(r', {R})`` — e.g. the paper's running examples
``ADD r0, r0, r2`` reverted by ``SUB r0, r0, r2``.

This module answers two questions:

* *where can reverting apply?* — :func:`revert_opportunities` lists the
  source-operand positions of an instruction whose overwritten value is
  recoverable under a given :class:`~repro.isa.opcodes.ReversibilityModel`;
* *what code performs the revert?* — :func:`build_revert_instruction`
  constructs the inverse instruction, with the caller choosing which physical
  registers currently hold the post-value and the surviving operands (during
  resume they may live in different registers than they did originally).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Imm, Instruction, Operand
from ..isa.opcodes import ReversibilityModel, RevertSpec, opspec
from ..isa.registers import Reg


@dataclass(frozen=True)
class RevertOpportunity:
    """One revertible overwrite: ``instruction.srcs[src_pos]`` is also the
    destination, and *spec* tells how to undo it."""

    src_pos: int
    spec: RevertSpec


def revert_opportunities(
    instruction: Instruction,
    model: ReversibilityModel = ReversibilityModel.EXACT,
) -> list[RevertOpportunity]:
    """Source positions of *instruction* whose old value can be recovered.

    A position qualifies when (a) the opcode has an inverse for it,
    (b) the model admits that inverse, and (c) the destination register
    actually aliases that source operand (the ``r_share`` form).  Positions
    whose *other* operand is the shared register too (e.g. ``ADD r, r, r``)
    are rejected: recovering would need the recovered value itself.
    """
    spec = instruction.spec
    if not spec.revert or spec.n_dst != 1:
        return []
    dst = instruction.dsts[0]
    opportunities = []
    for src_pos, revert_spec in spec.revert.items():
        if not model.allows(revert_spec):
            continue
        if instruction.srcs[src_pos] != dst:
            continue
        other_positions = [
            i
            for i, src in enumerate(instruction.srcs)
            if i != src_pos and isinstance(src, Reg)
        ]
        if any(instruction.srcs[i] == dst for i in other_positions):
            continue
        opportunities.append(RevertOpportunity(src_pos, revert_spec))
    return opportunities


def other_src_positions(instruction: Instruction, src_pos: int) -> list[int]:
    """Register source positions a revert of *src_pos* needs as inputs."""
    return [
        i
        for i, src in enumerate(instruction.srcs)
        if i != src_pos and isinstance(src, Reg)
    ]


def build_revert_instruction(
    instruction: Instruction,
    opportunity: RevertOpportunity,
    dst_reg: Reg,
    new_reg: Reg,
    other_regs: dict[int, Reg],
) -> Instruction:
    """Construct ``dst_reg = op⁻¹(...)`` undoing *instruction*.

    ``new_reg`` is wherever the post-execution result value currently lives;
    ``other_regs`` maps the surviving source positions to the registers
    currently holding their (original, at-execution-time) values.  Immediate
    operands are carried over verbatim.
    """
    spec = opportunity.spec
    inv = opspec(spec.inv_mnemonic)
    others: list[Operand] = []
    for i, src in enumerate(instruction.srcs):
        if i == opportunity.src_pos:
            continue
        if isinstance(src, Imm):
            others.append(src)
        elif isinstance(src, Reg):
            others.append(other_regs[i])
    srcs: list[Operand] = []
    other_iter = iter(others)
    for token in spec.pattern:
        if token == "new":
            srcs.append(new_reg)
        elif token == "other":
            srcs.append(next(other_iter))
        else:  # pragma: no cover - table integrity
            raise ValueError(f"bad revert pattern token {token!r}")
    remaining = list(other_iter)
    if remaining:  # pragma: no cover - table integrity
        raise ValueError(f"revert pattern for {instruction.mnemonic} too short")
    if len(srcs) != inv.n_src:  # pragma: no cover - table integrity
        raise ValueError(
            f"inverse {inv.mnemonic} expects {inv.n_src} srcs, got {len(srcs)}"
        )
    return Instruction(inv.mnemonic, (dst_reg,), tuple(srcs))
