"""Value-availability resolution: the core of CTXBack's three techniques.

Given a preemption signal arriving at position ``n`` and a flashback
candidate ``p`` (the region ``[p, n)`` will be re-entered during resume),
every value the resume needs must be *derivable* from the physical register
file as it stands at preemption time.  Four derivation rules exist, matching
the paper:

* **direct save** — the value is still in some register at preemption time
  (Algorithm 1's backward pass: the result has not been overwritten) and is
  stored into the context buffer, then reloaded at resume ("save/reload");
* **re-execution** — the defining instruction lies in ``[p, n)`` and all of
  its operand values are themselves derivable (Algorithm 1's forward pass);
* **revert at resume** — an overwriting instruction in ``[p, n)`` is
  reversible and its inputs (the post-value plus surviving operands) are
  derivable; the inverse instruction runs during resume (Algorithm 2 with
  ``revert_pos = at_resume``);
* **revert at preemption** — like the above, but every input is *directly*
  present in the register file (possibly via other preemption-time reverts),
  so the inverse runs in the preemption routine and the recovered value is
  saved (Algorithm 2's ``MIN_COST(at_resume, at_preempt)`` decision falls out
  of the cost comparison).

The paper's §III-E hash-map fixpoint keyed by *registers* is generalised
here to *values* (one per definition, see :mod:`repro.compiler.usedef`),
which natively handles the chained example of Fig. 6 and makes on-chip
scalar register backup (§III-D) emerge from copy propagation: after the
inserted ``s_mov s_backup, s_x``, the old value of ``s_x`` simply *is* the
end-state content of ``s_backup`` and becomes directly saveable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..compiler.usedef import RegionValues, Value
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import OpClass, ReversibilityModel
from ..isa.registers import Reg, RegisterFileSpec
from .costs import SAVE_RELOAD_EST_CYCLES, Cost, ZERO_COST, est_issue_cycles
from .reverting import RevertOpportunity, other_src_positions, revert_opportunities


class DerivationKind(enum.Enum):
    """How a value is restored: the four rules of the module docstring."""

    DIRECT_SAVE = "direct_save"
    REEXEC = "reexec"
    REVERT_RESUME = "revert_resume"
    REVERT_PREEMPT = "revert_preempt"


@dataclass
class Node:
    """One resolved value with its chosen derivation."""

    value: Value
    kind: DerivationKind
    cost: Cost
    #: DIRECT_SAVE / REVERT_PREEMPT: register the value is saved from.  For a
    #: preemption-time revert this is the register the inverse writes.
    source_reg: Reg | None = None
    #: REEXEC: defining position.  REVERT_*: the overwriting (kill) position.
    pos: int | None = None
    #: REVERT_*: which source-operand position is recovered.
    src_pos: int | None = None
    inputs: tuple["Node", ...] = ()

    def walk(self):
        """Yield this node and (recursively) its inputs, deduplicated."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.value.vid in seen:
                continue
            seen.add(node.value.vid)
            yield node
            stack.extend(node.inputs)


@dataclass
class SignalSite:
    """Immutable context shared by all resolutions at one signal position."""

    program: Program
    region: RegionValues
    n: int
    #: register-file contents at the moment the signal is processed
    end_state: dict[Reg, Value]
    rf_spec: RegisterFileSpec
    model: ReversibilityModel
    #: value -> cheapest register currently holding it
    holders: dict[int, Reg] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for reg, value in self.end_state.items():
            current = self.holders.get(value.vid)
            if current is None or _reg_save_bytes(reg, self.rf_spec) < _reg_save_bytes(
                current, self.rf_spec
            ):
                self.holders[value.vid] = reg

    def instruction(self, pos: int) -> Instruction:
        return self.program.instructions[pos]


def _reg_save_bytes(reg: Reg, spec: RegisterFileSpec) -> int:
    return reg.context_bytes(spec.warp_size)


def _revert_cycles(instruction: Instruction) -> float:
    inv_class = instruction.spec.opclass
    return 4.0 if inv_class is OpClass.VALU else 1.0


class Resolver:
    """Derivation search for one (signal position ``n``, candidate ``p``).

    ``forced_direct`` pins values to the direct-save derivation; the plan
    builder uses it to degrade gracefully when routine generation discovers a
    scheduling conflict (the ultimate fallback — everything direct-saved —
    is the LIVE mechanism, which is always schedulable).
    """

    def __init__(
        self,
        site: SignalSite,
        p: int,
        forced_direct: frozenset[int] = frozenset(),
    ) -> None:
        self.site = site
        self.p = p
        self.forced_direct = forced_direct
        self._memo: dict[int, Node | None] = {}
        self._preempt_memo: dict[int, Node | None] = {}
        self._in_progress: set[int] = set()
        self._preempt_in_progress: set[int] = set()
        self._cycle_depth_hit = False
        self._tainted: set[int] = set()

    # -- general resolution ---------------------------------------------------

    def resolve(self, value: Value) -> Node | None:
        """Best derivation of *value*, or None if unrestorable from ``p``."""
        vid = value.vid
        if vid in self._memo:
            # A result computed while a cycle guard was active may be
            # suboptimal (e.g. Fig. 3's revert input degraded to a direct
            # save); recompute it when asked again outside any cycle.
            if vid not in self._tainted or self._in_progress:
                return self._memo[vid]
            del self._memo[vid]
            self._tainted.discard(vid)
        if vid in self._in_progress:
            # Cycle: this path cannot ground out.  Record that the enclosing
            # resolutions were cut short so their failures are not cached —
            # resolved in a different order (outside the cycle) they may
            # succeed (e.g. Fig. 4: the post-value is directly saveable once
            # it is no longer being resolved through its own re-execution).
            self._cycle_depth_hit = True
            return None
        self._in_progress.add(vid)
        outer_hit = self._cycle_depth_hit
        self._cycle_depth_hit = False
        try:
            node = self._resolve_uncached(value)
        finally:
            self._in_progress.discard(vid)
        tainted = self._cycle_depth_hit
        self._cycle_depth_hit = outer_hit or tainted
        if node is not None or not tainted:
            self._memo[vid] = node
            if tainted:
                self._tainted.add(vid)
        return node

    #: Derivation preference, most preferred first.  Matches the paper:
    #: re-execution beats everything (§III-B: saving/reloading costs two
    #: device-memory accesses); the two revert placements share a rank and
    #: are tie-broken by cost — Algorithm 2's ``MIN_COST(at_resume,
    #: at_preempt)`` — which reverts Fig. 3 at preemption (the resume-side
    #: inputs would all need saving) but Fig. 4 at resume (its input is
    #: re-executed for free); save/reload is the last resort.  Summed costs
    #: only break ties — inputs are usually shared with other roots, so
    #: preference order is a better proxy for *marginal* context bytes than
    #: the double-counting sum.
    _PREFERENCE = {
        DerivationKind.REEXEC: 0,
        DerivationKind.REVERT_RESUME: 1,
        DerivationKind.REVERT_PREEMPT: 1,
        DerivationKind.DIRECT_SAVE: 2,
    }

    def _resolve_uncached(self, value: Value) -> Node | None:
        direct = self._direct_node(value)
        if value.vid in self.forced_direct:
            return direct
        candidates: list[Node] = []
        if direct is not None:
            candidates.append(direct)
        reexec = self._reexec_node(value)
        if reexec is not None:
            candidates.append(reexec)
        candidates.extend(self._revert_nodes(value))
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda node: (self._PREFERENCE[node.kind], node.cost),
        )

    def _direct_node(self, value: Value) -> Node | None:
        holder = self.site.holders.get(value.vid)
        if holder is None:
            return None
        return Node(
            value=value,
            kind=DerivationKind.DIRECT_SAVE,
            cost=Cost(_reg_save_bytes(holder, self.site.rf_spec), SAVE_RELOAD_EST_CYCLES),
            source_reg=holder,
        )

    def _reexec_node(self, value: Value) -> Node | None:
        pos = value.def_pos
        if pos < self.p or pos >= self.site.n:
            return None
        instruction = self.site.instruction(pos)
        if instruction.spec.is_store or instruction.spec.is_branch:
            return None
        inputs = []
        cost = Cost(0, est_issue_cycles(instruction))
        for operand_value in self.site.region.use_values_at(pos):
            node = self.resolve(operand_value)
            if node is None:
                return None
            inputs.append(node)
            cost = cost + node.cost
        return Node(
            value=value,
            kind=DerivationKind.REEXEC,
            cost=cost,
            pos=pos,
            inputs=tuple(inputs),
        )

    def _revert_nodes(self, value: Value) -> list[Node]:
        nodes: list[Node] = []
        for kill in self.site.region.kills_of.get(value, ()):
            if not self.p <= kill.pos < self.site.n:
                continue
            instruction = self.site.instruction(kill.pos)
            killed_reg = instruction.defs()[kill.slot]
            for opportunity in revert_opportunities(instruction, self.site.model):
                if instruction.srcs[opportunity.src_pos] != killed_reg:
                    continue
                resume = self._revert_resume_node(
                    value, kill.pos, kill.slot, instruction, opportunity
                )
                if resume is not None:
                    nodes.append(resume)
                preempt = self._revert_preempt_node(
                    value, kill.pos, kill.slot, instruction, opportunity, killed_reg
                )
                if preempt is not None:
                    nodes.append(preempt)
        return nodes

    def _revert_inputs(self, pos: int, slot: int, instruction: Instruction, opportunity):
        """Values a revert of *pos* consumes: post-value + surviving operands
        + the implicit architectural reads of the inverse instruction."""
        region = self.site.region
        new_value = region.def_values_at(pos)[slot]
        use_values = region.use_values_at(pos)
        uses = instruction.uses()
        inputs: list[tuple[str, int | None, Value]] = [("new", None, new_value)]
        wanted_positions = set(other_src_positions(instruction, opportunity.src_pos))
        reg_src_index = -1
        for i, src in enumerate(instruction.srcs):
            if isinstance(src, Reg):
                reg_src_index += 1
                if i in wanted_positions:
                    inputs.append(("other", i, use_values[reg_src_index]))
        # implicit reads (exec for vector ALU) of the *inverse* op: same class
        # as the original, so reuse the original's implicit operand values.
        # Slice by the instruction's real use count so any RMW pre-values
        # appended past it (partial-exec positions) are not misread here.
        n_src_regs = len(instruction.src_regs)
        n_uses = len(instruction.uses())
        for implicit_value in use_values[n_src_regs:n_uses]:
            inputs.append(("implicit", None, implicit_value))
        return inputs

    def _revert_resume_node(self, value, pos, slot, instruction, opportunity):
        inputs = self._revert_inputs(pos, slot, instruction, opportunity)
        nodes = []
        cost = Cost(0, _revert_cycles(instruction))
        for _role, _src_pos, input_value in inputs:
            node = self.resolve(input_value)
            if node is None:
                return None
            nodes.append(node)
            cost = cost + node.cost
        return Node(
            value=value,
            kind=DerivationKind.REVERT_RESUME,
            cost=cost,
            pos=pos,
            src_pos=opportunity.src_pos,
            inputs=tuple(nodes),
        )

    def _revert_preempt_node(self, value, pos, slot, instruction, opportunity, killed_reg):
        inputs = self._revert_inputs(pos, slot, instruction, opportunity)
        nodes = []
        cycles = _revert_cycles(instruction)
        for _role, _src_pos, input_value in inputs:
            node = self.resolve_at_preempt(input_value)
            if node is None:
                return None
            nodes.append(node)
            cycles += node.cost.cycles
        return Node(
            value=value,
            kind=DerivationKind.REVERT_PREEMPT,
            cost=Cost(
                _reg_save_bytes(killed_reg, self.site.rf_spec),
                cycles + SAVE_RELOAD_EST_CYCLES,
            ),
            source_reg=killed_reg,
            pos=pos,
            src_pos=opportunity.src_pos,
            inputs=tuple(nodes),
        )

    # -- preemption-time materialisation ---------------------------------------

    def resolve_at_preempt(self, value: Value) -> Node | None:
        """Can *value* be produced in a register during the preemption routine?

        Only register-file contents and chains of preemption-time reverts
        qualify — no loads, no re-execution (the warp is being evicted).
        Nodes returned here carry zero byte cost: reading a register during
        the preemption routine saves nothing by itself.
        """
        vid = value.vid
        if vid in self._preempt_memo:
            return self._preempt_memo[vid]
        if vid in self._preempt_in_progress:
            return None
        self._preempt_in_progress.add(vid)
        try:
            node = self._resolve_at_preempt_uncached(value)
        finally:
            self._preempt_in_progress.discard(vid)
        self._preempt_memo[vid] = node
        return node

    def _resolve_at_preempt_uncached(self, value: Value) -> Node | None:
        holder = self.site.holders.get(value.vid)
        if holder is not None:
            return Node(
                value=value,
                kind=DerivationKind.DIRECT_SAVE,
                cost=ZERO_COST,
                source_reg=holder,
            )
        for kill in self.site.region.kills_of.get(value, ()):
            if not self.p <= kill.pos < self.site.n:
                continue
            instruction = self.site.instruction(kill.pos)
            killed_reg = instruction.defs()[kill.slot]
            for opportunity in revert_opportunities(instruction, self.site.model):
                if instruction.srcs[opportunity.src_pos] != killed_reg:
                    continue
                inputs = self._revert_inputs(kill.pos, kill.slot, instruction, opportunity)
                nodes = []
                cycles = _revert_cycles(instruction)
                ok = True
                for _role, _src_pos, input_value in inputs:
                    node = self.resolve_at_preempt(input_value)
                    if node is None:
                        ok = False
                        break
                    nodes.append(node)
                    cycles += node.cost.cycles
                if ok:
                    return Node(
                        value=value,
                        kind=DerivationKind.REVERT_PREEMPT,
                        cost=Cost(0, cycles),
                        source_reg=killed_reg,
                        pos=kill.pos,
                        src_pos=opportunity.src_pos,
                        inputs=tuple(nodes),
                    )
        return None
