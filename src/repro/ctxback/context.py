"""Register-context size accounting.

The *context* of an instruction is its live-in register set (paper §III-A);
its byte size is what a context switch at that instruction must move through
device memory.  This module turns register sets into bytes under the Radeon
VII geometry and provides the per-kernel accountings every mechanism shares:

* ``baseline_context_bytes`` — the full aligned allocation the Linux-driver
  routine swaps (dead registers and alignment padding included);
* ``live_context_bytes_at`` — the LIVE mechanism's context at one position;
* ``min_live_context`` — the "minimum possible size" the paper uses as the
  CKPT reference line in Fig. 7.

Every saved context additionally carries ``META_BYTES`` of per-warp
bookkeeping (program counter, launch ids, scheduler state) — the "setup" the
general preemption routine performs in paper §IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.liveness import LivenessInfo, analyze_liveness
from ..isa.instruction import Kernel
from ..isa.registers import Reg, RegisterFileSpec

#: Per-warp metadata saved with any context: pc, workgroup/wave ids, scheduler
#: state.  Constant across mechanisms, so it never changes a comparison.
META_BYTES = 16


def reg_bytes(reg: Reg, spec: RegisterFileSpec) -> int:
    """Context bytes of a single register for one warp."""
    return reg.context_bytes(spec.warp_size)


def regs_bytes(regs, spec: RegisterFileSpec) -> int:
    """Total context bytes of a register collection for one warp."""
    return sum(reg_bytes(reg, spec) for reg in regs)


def lds_share_bytes(kernel: Kernel) -> int:
    """Per-warp LDS bytes a context switch must move.

    ``Kernel.lds_bytes`` follows Table I's semantics: shared-memory usage
    *per warp* (HS: 12 KB per warp, which is why LDS dominates its context,
    §V-A).  Each warp swaps its own share when preempted.
    """
    return kernel.lds_bytes


#: architectural state swapped alongside the register files: the 64-bit exec
#: mask and the scalar condition code.
_ARCH_STATE_BYTES = 8 + 4


def baseline_context_bytes(kernel: Kernel, spec: RegisterFileSpec) -> int:
    """Per-warp bytes the BASELINE mechanism swaps: the full aligned
    allocation plus the architectural state (exec mask, scc) and metadata."""
    return (
        spec.warp_context_bytes(
            kernel.vgprs_used, kernel.sgprs_used, lds_share_bytes(kernel)
        )
        + _ARCH_STATE_BYTES
        + META_BYTES
    )


def live_context_bytes_at(
    kernel: Kernel,
    position: int,
    spec: RegisterFileSpec,
    liveness: LivenessInfo | None = None,
) -> int:
    """Per-warp bytes the LIVE mechanism swaps at *position*."""
    liveness = liveness or analyze_liveness(kernel.program)
    regs = liveness.live_in[position]
    return regs_bytes(regs, spec) + lds_share_bytes(kernel) + META_BYTES


@dataclass(frozen=True)
class ContextProfile:
    """Context sizes of a kernel at every instruction, plus summaries."""

    kernel_name: str
    baseline_bytes: int
    live_bytes: tuple[int, ...]  # per instruction position

    @property
    def mean_live_bytes(self) -> float:
        return sum(self.live_bytes) / len(self.live_bytes)

    @property
    def min_live_bytes(self) -> int:
        return min(self.live_bytes)

    @property
    def max_live_bytes(self) -> int:
        return max(self.live_bytes)


def profile_kernel_contexts(
    kernel: Kernel,
    spec: RegisterFileSpec,
    liveness: LivenessInfo | None = None,
) -> ContextProfile:
    """Per-instruction live-context profile for one kernel."""
    liveness = liveness or analyze_liveness(kernel.program)
    lds = lds_share_bytes(kernel)
    live = tuple(
        regs_bytes(liveness.live_in[pos], spec) + lds + META_BYTES
        for pos in range(len(kernel.program.instructions))
    )
    return ContextProfile(
        kernel_name=kernel.name,
        baseline_bytes=baseline_context_bytes(kernel, spec),
        live_bytes=live,
    )


def min_live_context(
    kernel: Kernel,
    spec: RegisterFileSpec,
    liveness: LivenessInfo | None = None,
) -> tuple[int, int]:
    """(position, bytes) of the smallest live context in the kernel.

    This is the paper's "minimum possible size": the context CKPT saves when
    the checkpoint sits at the least-live instruction (Fig. 7 dash lines).
    """
    profile = profile_kernel_contexts(kernel, spec, liveness)
    best_pos = min(
        range(len(profile.live_bytes)), key=profile.live_bytes.__getitem__
    )
    return best_pos, profile.live_bytes[best_pos]
