"""Dedicated routine generation with symbolic-state validation.

Given the derivation DAG chosen by the :class:`~repro.ctxback.valueflow.Resolver`
for one (signal position ``n``, flashback point ``p``), this module emits the
two executable programs of paper §IV-A:

* the **preemption routine** — ``ctx_store`` of every directly-saved value,
  then preemption-time reverts (inverse instructions) followed by stores of
  the recovered values, then the LDS swap;
* the **resuming routine** — an interleaving of ``ctx_load``s, copies of the
  re-executed in-between instructions, register-to-register moves, and
  resume-time reverts, ending with control transferred back to ``n``.

Generation tracks a *symbolic register state* (register -> value) and only
emits an instruction when its operands verifiably hold the required values.
A conflict (e.g. a clobbered one-holder value) raises
:class:`GenerationFailure` naming the culprit value; the plan builder then
pins that value to direct-save and retries, degrading in the limit to the
LIVE mechanism, which is always schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.usedef import Value
from ..isa.instruction import Instruction, Program, inst
from ..isa.registers import Reg, RegKind
from .plan import SavedValue, ctx_load_for, ctx_store_for
from .reverting import RevertOpportunity, build_revert_instruction, other_src_positions
from .valueflow import DerivationKind, Node, SignalSite


class GenerationFailure(Exception):
    """A value could not be materialised where/when the plan needed it."""

    def __init__(self, value: Value, reason: str) -> None:
        super().__init__(f"{value!r}: {reason}")
        self.value = value
        self.reason = reason


@dataclass
class GeneratedRoutines:
    preempt: Program
    resume: Program
    saved: list[SavedValue]
    saved_bytes: int
    reexec_positions: list[int]
    preempt_revert_count: int
    resume_extra_ops: int


def _mov_for(dst: Reg, src: Reg) -> Instruction:
    if dst.kind is RegKind.VECTOR:
        return inst("v_mov", dst, src)
    if src.kind is RegKind.VECTOR:
        raise ValueError("cannot move a vector register into a scalar register")
    return inst("s_mov", dst, src)


class _SymbolicState:
    """Register -> value map with a reverse index."""

    def __init__(self, initial: dict[Reg, Value] | None = None) -> None:
        self.regs: dict[Reg, Value] = {}
        self.holders: dict[int, set[Reg]] = {}
        for reg, value in (initial or {}).items():
            self.set(reg, value)

    def set(self, reg: Reg, value: Value) -> None:
        old = self.regs.get(reg)
        if old is not None:
            held = self.holders.get(old.vid)
            if held is not None:
                held.discard(reg)
        self.regs[reg] = value
        self.holders.setdefault(value.vid, set()).add(reg)

    def holds(self, reg: Reg, value: Value) -> bool:
        current = self.regs.get(reg)
        return current is not None and current.vid == value.vid

    def holder_of(self, value: Value) -> Reg | None:
        held = self.holders.get(value.vid)
        if not held:
            return None
        # prefer the cheapest register class, then the lowest index for
        # deterministic output.
        return min(held, key=lambda r: (r.kind is RegKind.VECTOR, str(r)))


def _collect(roots: list[Node]):
    """Split the derivation DAG into resume-side and preempt-side node sets."""
    resume_nodes: dict[int, Node] = {}
    preempt_exec: dict[int, Node] = {}

    def collect_preempt(node: Node) -> None:
        if node.kind is DerivationKind.REVERT_PREEMPT:
            if node.value.vid in preempt_exec:
                return
            preempt_exec[node.value.vid] = node
            for child in node.inputs:
                collect_preempt(child)
        # DIRECT_SAVE inputs of a preempt revert are plain register reads at
        # preemption time; nothing to emit for them.

    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.value.vid in resume_nodes:
            continue
        resume_nodes[node.value.vid] = node
        if node.kind is DerivationKind.REVERT_PREEMPT:
            collect_preempt(node)
        else:
            stack.extend(node.inputs)
    return resume_nodes, preempt_exec


def _kill_slot(site: SignalSite, value: Value, pos: int) -> int:
    for kill in site.region.kills_of.get(value, ()):
        if kill.pos == pos:
            return kill.slot
    raise GenerationFailure(value, f"no kill record at {pos}")


def _revert_parts(site: SignalSite, node: Node):
    """(instruction, opportunity, new_value, other_values, implicit_pairs)."""
    instruction = site.instruction(node.pos)
    slot = _kill_slot(site, node.value, node.pos)
    opportunity = None
    for candidate_spec_pos, revert_spec in instruction.spec.revert.items():
        if candidate_spec_pos == node.src_pos:
            opportunity = RevertOpportunity(node.src_pos, revert_spec)
            break
    if opportunity is None:
        raise GenerationFailure(node.value, "revert spec vanished")
    region = site.region
    new_value = region.def_values_at(node.pos)[slot]
    use_values = region.use_values_at(node.pos)
    uses = instruction.uses()
    other_values: dict[int, Value] = {}
    reg_src_index = -1
    wanted = set(other_src_positions(instruction, node.src_pos))
    for i, src in enumerate(instruction.srcs):
        if isinstance(src, Reg):
            reg_src_index += 1
            if i in wanted:
                other_values[i] = use_values[reg_src_index]
    n_src_regs = len(instruction.src_regs)
    n_uses = len(uses)  # excludes any RMW extras appended past the real uses
    implicit_pairs = list(
        zip(uses[n_src_regs:n_uses], use_values[n_src_regs:n_uses])
    )
    return instruction, opportunity, new_value, other_values, implicit_pairs


def generate_routines(
    site: SignalSite,
    p: int,
    roots: dict[Reg, Node],
    live_regs_at_n,
    lds_bytes: int,
) -> GeneratedRoutines:
    """Emit preemption and resuming routines for flashback point *p*.

    ``roots`` maps each live register at ``n`` to the derivation of the value
    it must hold when execution resumes at ``n``.
    """
    resume_nodes, preempt_exec = _collect(list(roots.values()))

    # ---------------- preemption routine ----------------
    preempt = Program()
    saved: list[SavedValue] = []
    slot_of: dict[int, SavedValue] = {}
    offset = 0

    def emit_save(value: Value, reg: Reg) -> None:
        nonlocal offset
        if value.vid in slot_of:
            return
        nbytes = reg.context_bytes(site.rf_spec.warp_size)
        preempt.append(ctx_store_for(reg, offset))
        record = SavedValue(value, reg, offset, nbytes)
        saved.append(record)
        slot_of[value.vid] = record
        offset += nbytes

    for node in resume_nodes.values():
        if node.kind is DerivationKind.DIRECT_SAVE:
            emit_save(node.value, node.source_reg)

    # Preemption-time reverts, greedily ordered by input readiness.
    state = _SymbolicState(site.end_state)
    pending = list(preempt_exec.values())
    while pending:
        progressed = False
        still_pending = []
        for node in pending:
            instruction, opportunity, new_value, other_values, implicit_pairs = (
                _revert_parts(site, node)
            )
            new_holder = state.holder_of(new_value)
            other_holders = {
                i: state.holder_of(v) for i, v in other_values.items()
            }
            implicit_ok = all(state.holds(reg, v) for reg, v in implicit_pairs)
            if (
                new_holder is None
                or any(h is None for h in other_holders.values())
                or not implicit_ok
            ):
                still_pending.append(node)
                continue
            dst = node.source_reg
            preempt.append(
                build_revert_instruction(
                    instruction, opportunity, dst, new_holder, other_holders
                )
            )
            state.set(dst, node.value)
            progressed = True
        if still_pending and not progressed:
            raise GenerationFailure(
                still_pending[0].value, "preemption-time revert inputs clobbered"
            )
        pending = still_pending

    for node in resume_nodes.values():
        if node.kind is DerivationKind.REVERT_PREEMPT:
            holder = state.holder_of(node.value)
            if holder is None:
                raise GenerationFailure(node.value, "revert did not materialise")
            emit_save(node.value, holder)

    if lds_bytes:
        preempt.append(inst("ctx_store_lds", lds_bytes))

    # ---------------- resuming routine ----------------
    resume = Program()
    rstate = _SymbolicState()
    emitting: set[int] = set()

    if lds_bytes:
        resume.append(inst("ctx_load_lds", lds_bytes))

    emitted_positions: set[int] = set()

    def materialize_any(value: Value) -> Reg:
        holder = rstate.holder_of(value)
        if holder is not None:
            return holder
        ensure(value.home, value)
        return value.home

    def ensure(reg: Reg, value: Value) -> None:
        """Make *reg* hold *value*, emitting whatever the derivation needs.

        Re-executions are emitted on demand in *dependency* order — the
        paper's Fig. 6 resume runs I1 before I0 because reverting I2 needs
        I1's result — rather than program order.
        """
        if rstate.holds(reg, value):
            return
        if value.vid in emitting:
            raise GenerationFailure(value, "circular materialisation")
        emitting.add(value.vid)
        try:
            holder = rstate.holder_of(value)
            if holder is not None:
                resume.append(_mov_for(reg, holder))
                rstate.set(reg, value)
                return
            record = slot_of.get(value.vid)
            if record is not None:
                resume.append(ctx_load_for(reg, record.slot))
                rstate.set(reg, value)
                return
            node = resume_nodes.get(value.vid)
            if node is not None and node.kind is DerivationKind.REVERT_RESUME:
                emit_resume_revert(node, reg)
                return
            if node is not None and node.kind is DerivationKind.REEXEC:
                # A displaced re-executed value is simply re-executed again:
                # the region is idempotent, so repeating the instruction is
                # safe by construction (§III-E).
                emit_reexec(node)
                holder = rstate.holder_of(value)
                if holder is None:  # pragma: no cover - reexec defines it
                    raise GenerationFailure(value, "re-execution lost result")
                if holder != reg:
                    resume.append(_mov_for(reg, holder))
                    rstate.set(reg, value)
                return
            raise GenerationFailure(
                value, f"needed in {reg} but not loadable or derivable here"
            )
        finally:
            emitting.discard(value.vid)

    def _ensure_all(pairs) -> None:
        """Ensure several (reg, value) pairs hold simultaneously.

        Materialising one operand can displace another (shared registers);
        one repair round fixes the common case, a second failure aborts.
        """
        for _round in range(2):
            for reg, value in pairs:
                ensure(reg, value)
            if all(rstate.holds(reg, value) for reg, value in pairs):
                return
        for reg, value in pairs:
            if not rstate.holds(reg, value):
                raise GenerationFailure(value, f"operand displaced from {reg}")

    def emit_reexec(node: Node) -> None:
        original = site.instruction(node.pos)
        # effective uses include, at partial-exec positions, the destination
        # registers themselves: a masked write merges with the old lanes
        _ensure_all(
            list(
                zip(
                    site.region.effective_uses_at(node.pos),
                    site.region.use_values_at(node.pos),
                )
            )
        )
        resume.append(original)
        emitted_positions.add(node.pos)
        for reg, value in zip(original.defs(), site.region.def_values_at(node.pos)):
            rstate.set(reg, value)

    def emit_resume_revert(node: Node, dst: Reg) -> None:
        instruction, opportunity, new_value, other_values, implicit_pairs = (
            _revert_parts(site, node)
        )
        new_holder = materialize_any(new_value)
        other_holders = {i: materialize_any(v) for i, v in other_values.items()}
        for implicit_reg, implicit_value in implicit_pairs:
            ensure(implicit_reg, implicit_value)
        # Re-check: materialising one input may have displaced another.
        if not rstate.holds(new_holder, new_value):
            raise GenerationFailure(new_value, "revert input displaced")
        for i, holder in other_holders.items():
            if not rstate.holds(holder, other_values[i]):
                raise GenerationFailure(other_values[i], "revert input displaced")
        resume.append(
            build_revert_instruction(
                instruction, opportunity, dst, new_holder, other_holders
            )
        )
        rstate.set(dst, node.value)

    # Materialise every live register's value, re-executing in-between
    # instructions on demand; then verify nothing got displaced.
    final_pairs = []
    for reg in sorted(live_regs_at_n, key=str):
        target = site.end_state.get(reg)
        if target is None:
            raise GenerationFailure(
                Value(-1, reg, -1), "live register missing from end state"
            )
        final_pairs.append((reg, target))
    _ensure_all(final_pairs)
    reexec_positions = sorted(emitted_positions)

    resume_extra_ops = len(resume.instructions) - len(reexec_positions)
    return GeneratedRoutines(
        preempt=preempt,
        resume=resume,
        saved=saved,
        saved_bytes=offset,
        reexec_positions=reexec_positions,
        preempt_revert_count=len(preempt_exec),
        resume_extra_ops=resume_extra_ops,
    )
