"""Dedicated-routine sharing (paper §IV-A).

All dedicated preemption routines ship to device memory with the kernel code
(the host cannot know the preempted PC without a costly query), so their
storage footprint matters.  The paper observes that "the selected
flashback-points of many instructions are the same preceding instruction,
whose context size is local minima", letting instructions share one routine:
"only several preemption routines need to be transferred and stored".

Our generated routines make this concrete: signals anywhere in a load phase
flash back to the same loop-top context and produce byte-identical
preemption routines.  :func:`share_routines` deduplicates them in place
(plans point at one shared :class:`~repro.isa.instruction.Program`) and
reports the storage the sharing saves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Program
from .plan import InstrPlan

#: rough encoded size of one instruction, bytes (8-byte fixed encoding, as
#: on GCN for most VALU/SALU/FLAT forms)
INSTRUCTION_BYTES = 8


@dataclass(frozen=True)
class RoutineStorageStats:
    """Storage accounting before/after sharing."""

    positions: int
    unique_preempt: int
    unique_resume: int
    naive_bytes: int
    shared_bytes: int

    @property
    def sharing_factor(self) -> float:
        """How many instructions share each stored preemption routine."""
        if self.unique_preempt == 0:
            return 1.0
        return self.positions / self.unique_preempt

    @property
    def saved_fraction(self) -> float:
        if self.naive_bytes == 0:
            return 0.0
        return 1.0 - self.shared_bytes / self.naive_bytes


def _routine_key(program: Program) -> tuple:
    return tuple(program.instructions)


def share_routines(plans: dict[int, InstrPlan]) -> RoutineStorageStats:
    """Deduplicate identical routines across *plans* (mutating them) and
    return the storage statistics.

    Only the preemption routines count toward the transfer/storage cost:
    "all dedicated preemption routines are transferred to the device memory
    with the kernel code, while only the necessary dedicated resuming
    routines are transferred on-demand during resuming" (§IV-A).  Resume
    routines are still deduplicated for host-memory hygiene.
    """
    unique_preempt: dict[tuple, Program] = {}
    unique_resume: dict[tuple, Program] = {}
    naive_instructions = 0
    for position in sorted(plans):
        plan = plans[position]
        naive_instructions += len(plan.preempt_routine.instructions)
        key = _routine_key(plan.preempt_routine)
        if key in unique_preempt:
            plan.preempt_routine = unique_preempt[key]
        else:
            unique_preempt[key] = plan.preempt_routine
        rkey = _routine_key(plan.resume_routine)
        if rkey in unique_resume:
            plan.resume_routine = unique_resume[rkey]
        else:
            unique_resume[rkey] = plan.resume_routine

    shared_instructions = sum(len(k) for k in unique_preempt)
    return RoutineStorageStats(
        positions=len(plans),
        unique_preempt=len(unique_preempt),
        unique_resume=len(unique_resume),
        naive_bytes=naive_instructions * INSTRUCTION_BYTES,
        shared_bytes=shared_instructions * INSTRUCTION_BYTES,
    )
