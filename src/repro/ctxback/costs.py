"""Compile-time cost estimates used to rank flashback candidates.

CTXBack ranks flashback-points by *estimated preemption latency*
(paper §IV-A, §V) and prefers re-execution over saving/reloading because the
latter costs two device-memory accesses (§III-B).  These estimates are the
compiler's view; the simulator charges real latencies, which is exactly how
the paper's CS-Defer underestimation effect arises (§V-B: the estimate cannot
see dependency stalls caused by *preceding* instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass

#: Issue-latency estimate per pipeline class, in cycles.  Deliberately the
#: *optimistic* issue view (no dependency stalls): see §V-B.
EST_ISSUE_CYCLES: dict[OpClass, float] = {
    OpClass.SALU: 1.0,
    OpClass.VALU: 4.0,
    OpClass.LDS: 8.0,
    OpClass.VMEM: 16.0,
    OpClass.SMEM: 8.0,
    OpClass.BRANCH: 1.0,
    OpClass.MISC: 1.0,
}

#: Estimated cycles for one save+reload pair of a value (two device-memory
#: accesses), used only for tie-breaking between derivations.
SAVE_RELOAD_EST_CYCLES = 32.0

#: Estimated device-memory store throughput during a preemption routine,
#: bytes per cycle per warp.  Used to turn context bytes into an estimated
#: preemption latency for candidate ranking.
EST_STORE_BYTES_PER_CYCLE = 4.0


def est_issue_cycles(instruction: Instruction) -> float:
    """Optimistic issue-cycle estimate for one instruction."""
    return EST_ISSUE_CYCLES[instruction.spec.opclass]


def est_exec_window_cycles(instructions) -> float:
    """Estimated time to execute a run of instructions (CS-Defer deferral).

    Sums issue estimates only — the deliberate underestimation the paper
    describes: latency induced by unresolved dependencies from preceding
    instructions is invisible to the compiler.
    """
    return sum(est_issue_cycles(instruction) for instruction in instructions)


def est_preempt_latency(context_bytes: int, extra_cycles: float = 0.0) -> float:
    """Estimated preemption latency for a context of *context_bytes*."""
    return context_bytes / EST_STORE_BYTES_PER_CYCLE + extra_cycles


@dataclass(frozen=True, order=True)
class Cost:
    """(bytes, cycles) lexicographic cost of restoring a value.

    Context bytes dominate: they determine preemption latency, which is the
    ranking criterion in the paper's experiments.  Cycles break ties in
    favour of cheaper resume work.
    """

    bytes: int
    cycles: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.bytes + other.bytes, self.cycles + other.cycles)


ZERO_COST = Cost(0, 0.0)
