"""CTXBack: the paper's contribution — context flashback for GPU preemption.

Layering:

* :mod:`.context` — register-context (live-in) byte accounting;
* :mod:`.costs` — compile-time latency estimates for candidate ranking;
* :mod:`.reverting` — instruction reverting (Algorithm 2);
* :mod:`.valueflow` — the value-availability resolver unifying Algorithm 1's
  relaxed condition, reverting, and the §III-E fixpoint;
* :mod:`.routines` — dedicated preemption/resume routine generation;
* :mod:`.flashback` — flashback-point search per signal position;
* :mod:`.osrb` — on-chip scalar register backup (§III-D);
* :mod:`.csdefer` — the CS-Defer comparator and the combined mode.
"""

from .context import (
    META_BYTES,
    ContextProfile,
    baseline_context_bytes,
    lds_share_bytes,
    live_context_bytes_at,
    min_live_context,
    profile_kernel_contexts,
    reg_bytes,
    regs_bytes,
)
from .costs import Cost, est_issue_cycles, est_preempt_latency
from .flashback import CtxBackConfig, FlashbackAnalyzer
from .plan import InstrPlan, SavedValue, ctx_load_for, ctx_store_for
from .reverting import (
    RevertOpportunity,
    build_revert_instruction,
    revert_opportunities,
)
from .routines import GeneratedRoutines, GenerationFailure, generate_routines
from .sharing import RoutineStorageStats, share_routines
from .valueflow import DerivationKind, Node, Resolver, SignalSite

__all__ = [
    "META_BYTES",
    "ContextProfile",
    "Cost",
    "CtxBackConfig",
    "DerivationKind",
    "FlashbackAnalyzer",
    "GeneratedRoutines",
    "GenerationFailure",
    "InstrPlan",
    "Node",
    "Resolver",
    "RevertOpportunity",
    "SavedValue",
    "SignalSite",
    "baseline_context_bytes",
    "build_revert_instruction",
    "ctx_load_for",
    "ctx_store_for",
    "est_issue_cycles",
    "est_preempt_latency",
    "generate_routines",
    "lds_share_bytes",
    "live_context_bytes_at",
    "min_live_context",
    "profile_kernel_contexts",
    "reg_bytes",
    "regs_bytes",
    "revert_opportunities",
    "RoutineStorageStats",
    "share_routines",
]
