"""On-chip scalar register backup (OSRB, paper §III-D).

A scalar register costs 4 bytes per warp, but an overwritten scalar operand
(typically the loop induction variable) can make whole chains of
vector-result instructions non-re-executable, forcing 4·warp-size-byte
vector save/reloads.  OSRB proactively copies such scalars into *unused*
scalar registers — the alignment padding of the 16-register allocation
granularity — at block entry, one 1-cycle ``s_mov`` per block execution.

The copy is all the mechanism needs: copy propagation in the value numbering
(:mod:`repro.compiler.usedef`) then discovers that the overwritten value
still lives in the backup register, making it directly saveable, and the
generated preemption routine stores it from there.

Selection heuristic (paper: "mainly the iteration induction variable and
the execution mask"): back up a scalar whose block-entry value is (a) used
by an instruction with a vector result, (b) overwritten within the block,
and (c) not recoverable by instruction reverting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..compiler.cfg import build_cfg
from ..compiler.liveness import analyze_liveness
from ..compiler.transform import insert_instructions
from ..compiler.usedef import number_region
from ..isa.instruction import Kernel, inst
from ..isa.opcodes import ReversibilityModel
from ..isa.registers import RegisterFileSpec, RegKind, sreg
from .reverting import revert_opportunities


@dataclass(frozen=True)
class OsrbBackup:
    """One inserted backup: copy *source* into *backup* at *block_start*."""

    block_index: int
    block_start: int
    source_index: int
    backup_index: int
    benefit: int  # vector-result instructions whose re-execution it unblocks


@dataclass
class OsrbReport:
    backups: list[OsrbBackup]
    free_sgprs: int

    @property
    def count(self) -> int:
        return len(self.backups)


def select_backups(
    kernel: Kernel,
    rf_spec: RegisterFileSpec,
    model: ReversibilityModel = ReversibilityModel.PAPER,
) -> list[OsrbBackup]:
    """Choose scalar registers worth backing up, best benefit first."""
    program = kernel.program
    cfg = build_cfg(program)
    liveness = analyze_liveness(program, cfg)
    free = rf_spec.allocated_sgprs(kernel.sgprs_used) - kernel.sgprs_used
    if free <= 0:
        return []

    candidates: list[OsrbBackup] = []
    for block in cfg.blocks:
        if len(block) == 0:
            continue
        region = number_region(
            program, block.start, block.end, entry_regs=liveness.live_in[block.start]
        )
        for reg, entry_value in region.entry.items():
            if reg.kind is not RegKind.SCALAR:
                continue
            kills = region.kills_of.get(entry_value, [])
            if not kills:
                continue
            if all(
                any(
                    program.instructions[kill.pos].srcs[op.src_pos]
                    == program.instructions[kill.pos].defs()[kill.slot]
                    for op in revert_opportunities(
                        program.instructions[kill.pos], model
                    )
                )
                for kill in kills
            ):
                continue  # reverting already recovers it
            benefit = 0
            for pos in block.positions():
                if entry_value not in region.use_values_at(pos):
                    continue
                if any(
                    d.kind is RegKind.VECTOR
                    for d in program.instructions[pos].defs()
                ):
                    benefit += 1
            if benefit > 0:
                candidates.append(
                    OsrbBackup(
                        block_index=block.index,
                        block_start=block.start,
                        source_index=reg.index,
                        backup_index=-1,  # assigned below
                        benefit=benefit,
                    )
                )

    candidates.sort(key=lambda c: (-c.benefit, c.block_index, c.source_index))
    # Backup registers live in the alignment padding; blocks reuse the same
    # padding registers because each block re-copies at entry.
    chosen: list[OsrbBackup] = []
    used_per_block: dict[int, int] = {}
    for candidate in candidates:
        slot = used_per_block.get(candidate.block_index, 0)
        if slot >= free:
            continue
        used_per_block[candidate.block_index] = slot + 1
        chosen.append(
            replace(candidate, backup_index=kernel.sgprs_used + slot)
        )
    return chosen


def apply_osrb(
    kernel: Kernel,
    rf_spec: RegisterFileSpec,
    model: ReversibilityModel = ReversibilityModel.PAPER,
) -> tuple[Kernel, OsrbReport]:
    """Insert backup copies; returns the instrumented kernel and a report.

    The instrumented kernel's scalar-register *allocation* is unchanged —
    backups fit in the alignment padding by construction — so BASELINE's
    context size is identical before and after.
    """
    backups = select_backups(kernel, rf_spec, model)
    free = rf_spec.allocated_sgprs(kernel.sgprs_used) - kernel.sgprs_used
    if not backups:
        return kernel, OsrbReport([], free)
    insertions = [
        (b.block_start, inst("s_mov", sreg(b.backup_index), sreg(b.source_index)))
        for b in backups
    ]
    new_program, _ = insert_instructions(kernel.program, insertions)
    new_sgprs = max(b.backup_index for b in backups) + 1
    assert rf_spec.allocated_sgprs(new_sgprs) == rf_spec.allocated_sgprs(
        kernel.sgprs_used
    ), "backups must fit in the alignment padding"
    new_kernel = replace(kernel, program=new_program, sgprs_used=new_sgprs)
    return new_kernel, OsrbReport(backups, free)
