"""Per-instruction preemption plans — the common currency of all mechanisms.

The compiler side of every evaluated technique (BASELINE, LIVE, CKPT,
CS-Defer, CTXBack, CTXBack+CS-Defer) produces one :class:`InstrPlan` per
instruction position: the dedicated preemption routine, the dedicated
resuming routine, and the static cost estimates used for ranking and for the
Fig. 7 context-size analysis.  The simulator executes these routines
verbatim (paper §IV-B: warps jump to the dedicated routine selected by their
program counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.usedef import Value
from ..isa.instruction import Instruction, Program
from ..isa.registers import Reg, RegKind


@dataclass(frozen=True)
class SavedValue:
    """One context-buffer slot: *value* saved from *source_reg* at offset
    *slot* occupying *nbytes*."""

    value: Value
    source_reg: Reg
    slot: int
    nbytes: int


@dataclass
class InstrPlan:
    """Dedicated preemption/resume routines for one signal position."""

    position: int
    mechanism: str
    preempt_routine: Program
    resume_routine: Program
    resume_pc: int
    context_bytes: int
    est_preempt_cycles: float
    est_resume_cycles: float
    saved: list[SavedValue] = field(default_factory=list)
    flashback_pos: int | None = None
    deferred_to: int | None = None
    reexec_count: int = 0

    @property
    def waste_instructions(self) -> int:
        """In-between instructions whose work is re-done on resume."""
        if self.flashback_pos is None:
            return 0
        return self.position - self.flashback_pos


def ctx_store_for(reg: Reg, slot: int) -> Instruction:
    """Context-buffer store of one register (the paper's ``GST r, ctx[..]``)."""
    from ..isa.instruction import inst

    if reg.kind is RegKind.VECTOR:
        return inst("ctx_store_v", reg, slot)
    return inst("ctx_store_s", reg, slot)


def ctx_load_for(reg: Reg, slot: int) -> Instruction:
    """Context-buffer load into one register (``GLD r, ctx[..]``)."""
    from ..isa.instruction import inst

    if reg.kind is RegKind.VECTOR:
        return inst("ctx_load_v", reg, slot)
    return inst("ctx_load_s", reg, slot)
