"""CFG construction: leaders, successors, block lookup."""

from repro.compiler import build_cfg
from repro.isa import parse


def blocks_of(src):
    program = parse(src)
    return build_cfg(program)


class TestBlockSplitting:
    def test_straight_line_is_one_block(self):
        cfg = blocks_of("v_mov v1, 1\nv_mov v2, 2\ns_endpgm")
        assert len(cfg.blocks) == 1
        assert (cfg.blocks[0].start, cfg.blocks[0].end) == (0, 3)

    def test_loop_creates_three_blocks(self):
        cfg = blocks_of(
            """
            v_mov v1, 0
        LOOP:
            v_add v1, v1, 1
            s_cmp_lt s1, s2
            s_cbranch_scc1 LOOP
            s_endpgm
            """
        )
        spans = [(b.start, b.end) for b in cfg.blocks]
        assert spans == [(0, 1), (1, 4), (4, 5)]

    def test_branch_target_is_leader(self):
        cfg = blocks_of(
            """
            s_branch SKIP
            v_mov v1, 1
        SKIP:
            s_endpgm
            """
        )
        assert [b.start for b in cfg.blocks] == [0, 1, 2]

    def test_instruction_after_terminator_is_leader(self):
        cfg = blocks_of("s_branch END\nEND:\ns_endpgm")
        assert len(cfg.blocks) == 2


class TestEdges:
    def test_conditional_branch_two_successors(self):
        cfg = blocks_of(
            """
        LOOP:
            s_cmp_lt s1, s2
            s_cbranch_scc1 LOOP
            s_endpgm
            """
        )
        loop = cfg.blocks[0]
        assert set(loop.successors) == {0, 1}
        assert 0 in cfg.blocks[0].predecessors

    def test_unconditional_branch_single_successor(self):
        cfg = blocks_of("s_branch END\nv_mov v1, 1\nEND:\ns_endpgm")
        assert cfg.blocks[0].successors == [2]

    def test_endpgm_no_successors(self):
        cfg = blocks_of("s_endpgm")
        assert cfg.blocks[0].successors == []

    def test_fallthrough_edge(self):
        cfg = blocks_of(
            """
            s_cmp_lt s1, s2
            s_cbranch_scc1 OUT
            v_mov v1, 1
        OUT:
            s_endpgm
            """
        )
        assert set(cfg.blocks[0].successors) == {1, 2}


class TestLookup:
    def test_block_at_position(self):
        cfg = blocks_of(
            """
            v_mov v1, 0
        LOOP:
            v_add v1, v1, 1
            s_cmp_lt s1, s2
            s_cbranch_scc1 LOOP
            s_endpgm
            """
        )
        assert cfg.block_at(0).index == 0
        assert cfg.block_at(2).index == 1
        assert cfg.block_at(4).index == 2

    def test_contains_and_positions(self):
        cfg = blocks_of("v_mov v1, 0\nv_mov v2, 0\ns_endpgm")
        block = cfg.blocks[0]
        assert 1 in block
        assert 3 not in block
        assert list(block.positions()) == [0, 1, 2]

    def test_entry(self):
        cfg = blocks_of("s_endpgm")
        assert cfg.entry().index == 0

    def test_empty_program(self):
        from repro.isa.instruction import Program

        cfg = build_cfg(Program())
        assert len(cfg.blocks) == 1 and len(cfg.blocks[0]) == 0
