"""Binary encoding: layout, errors, and full round-trip properties."""

import pytest
from hypothesis import given, settings

from repro.isa import inst, parse, sreg, vreg
from repro.isa.encoder import (
    EncodingError,
    INSTRUCTION_WORD_BYTES,
    decode_program,
    encode_program,
    encoded_size,
)
from repro.isa.instruction import Program

from tests.test_isa_assembler import alu_instructions
from hypothesis import strategies as st


class TestLayout:
    def test_size_scales_with_instructions(self):
        one = Program([inst("s_nop")])
        two = Program([inst("s_nop"), inst("s_nop")])
        assert encoded_size(two) - encoded_size(one) == INSTRUCTION_WORD_BYTES

    def test_immediates_cost_pool_words(self):
        reg_only = Program([inst("v_add", vreg(1), vreg(2), vreg(3))])
        with_imm = Program([inst("v_add", vreg(1), vreg(2), 7)])
        assert encoded_size(with_imm) == encoded_size(reg_only) + 4

    def test_labels_in_table(self):
        program = parse("LOOP:\n s_cbranch_scc1 LOOP\n s_endpgm")
        decoded = decode_program(encode_program(program))
        assert decoded.labels == program.labels

    def test_register_index_limit(self):
        with pytest.raises(EncodingError):
            encode_program(Program([inst("v_mov", vreg(64), 0)]))


class TestRoundTrip:
    def test_paper_example(self, fig3_kernel):
        program = fig3_kernel.program
        assert decode_program(encode_program(program)).instructions == (
            program.instructions
        )

    def test_all_benchmark_kernels(self):
        from repro.kernels import SUITE

        for bench in SUITE.values():
            program = bench.build(16).program
            decoded = decode_program(encode_program(program))
            assert decoded.instructions == program.instructions
            assert decoded.labels == program.labels

    def test_generated_routines(self, loop_kernel, small_config):
        from repro.mechanisms import make_mechanism

        prepared = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        for plan in prepared.plans.values():
            for routine in (plan.preempt_routine, plan.resume_routine):
                decoded = decode_program(encode_program(routine))
                assert decoded.instructions == routine.instructions


@settings(max_examples=150, deadline=None)
@given(st.lists(alu_instructions(), min_size=0, max_size=25))
def test_roundtrip_property(instructions):
    program = Program(list(instructions))
    decoded = decode_program(encode_program(program))
    assert decoded.instructions == program.instructions


class TestStorageAccounting:
    def test_sharing_stats_reflect_real_bytes(self, loop_kernel, small_config):
        """The §IV-A storage estimate is the right order of magnitude against
        the actual binary encoding."""
        from repro.ctxback import share_routines
        from repro.mechanisms import make_mechanism

        prepared = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        stats = share_routines(prepared.plans)
        unique = {
            id(plan.preempt_routine): plan.preempt_routine
            for plan in prepared.plans.values()
        }
        real_bytes = sum(encoded_size(p) for p in unique.values())
        assert 0.3 * stats.shared_bytes <= real_bytes <= 3 * stats.shared_bytes
