"""The ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest

DEMO = """
    v_xor v1, v0, v2
    v_mul v3, v1, v2
    v_add v0, v0, v3
    v_mov v1, 0xF
    global_store v4, v0, 0
    global_store v4, v1, 4
    global_store v4, v2, 8
    global_store v4, v3, 12
    s_endpgm
"""


def run_cli(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


class TestValidate:
    def test_clean_file_ok(self, demo_file):
        result = run_cli("validate", demo_file)
        assert result.returncode == 0
        assert "OK" in result.stdout

    def test_bad_file_fails_with_details(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("s_add s1, v2, 3\ns_endpgm\n")
        result = run_cli("validate", str(path))
        assert result.returncode == 1
        assert "scalar" in result.stderr


class TestAnalyze:
    def test_single_position_shows_routines(self, demo_file):
        result = run_cli(
            "analyze", demo_file, "--position", "4", "--warp-size", "8"
        )
        assert result.returncode == 0
        assert "flashback to" in result.stdout
        assert "ctx_store" in result.stdout

    def test_summary_table(self, demo_file):
        result = run_cli("analyze", demo_file, "--warp-size", "8")
        assert result.returncode == 0
        assert result.stdout.count("\n") >= 9  # header + one row per position


class TestSuiteAndPreempt:
    def test_suite_lists_twelve(self):
        result = run_cli("suite")
        assert result.returncode == 0
        assert result.stdout.count("\n") == 13  # header + 12 rows

    def test_preempt_runs_and_verifies(self):
        result = run_cli(
            "preempt", "va", "--mechanism", "live", "--iterations", "8"
        )
        assert result.returncode == 0
        assert "memory verified:    True" in result.stdout

    def test_unknown_kernel_errors(self):
        result = run_cli("preempt", "nope", "--no-verify")
        assert result.returncode != 0


class TestExperiments:
    def test_fig7_subset(self):
        result = run_cli("fig7", "--keys", "va", "--iterations", "6")
        assert result.returncode == 0
        assert "VA" in result.stdout
        assert "paper 61.0%" in result.stdout

    def test_table1_subset(self):
        result = run_cli("table1", "--keys", "lrn", "--iterations", "6")
        assert result.returncode == 0
        assert "LRN" in result.stdout


class TestServe:
    def test_small_fleet_text_and_json(self, tmp_path):
        out = tmp_path / "report.json"
        result = run_cli(
            "serve", "--trace", "bursty", "--load", "0.6", "--requests",
            "200", "--gpus", "2", "--mechanisms", "baseline,ctxback",
            "--small", "--iterations", "6", "--samples", "1",
            "--output", str(out),
        )
        assert result.returncode == 0
        assert "p99 us" in result.stdout and "ctxback" in result.stdout
        report = json.loads(out.read_text())
        assert report["requests_per_cell"] == 200
        assert len(report["results"]) == 2

    def test_bad_load_rejected(self):
        result = run_cli("serve", "--load", "high")
        assert result.returncode == 2
        assert "bad --load" in result.stderr


class TestLint:
    def test_clean_subset_text(self):
        result = run_cli("lint", "--keys", "va", "--warp-size", "8", "--strict")
        assert result.returncode == 0
        assert "no findings" in result.stdout
        assert result.stdout.strip().endswith("OK")

    def test_json_format_and_output_file(self, tmp_path):
        import json

        out = tmp_path / "findings.json"
        result = run_cli(
            "lint", "--keys", "va", "--warp-size", "8",
            "--format", "json", "--output", str(out),
        )
        assert result.returncode == 0
        report = json.loads(result.stdout)
        assert report["summary"]["ok"] is True
        assert report["summary"]["kernels"] == ["va"]
        assert json.loads(out.read_text()) == report

    def test_codes_catalogue(self):
        result = run_cli("lint", "--codes")
        assert result.returncode == 0
        assert "VER101" in result.stdout
        assert "LNT206" in result.stdout

    def test_ratchet_accepts_baseline_and_blocks_regressions(
        self, tmp_path, monkeypatch
    ):
        """In-process: seeded findings fail, then a baseline absorbs them,
        then a *new* finding still fails against that baseline."""
        import repro.verify as verify_mod
        from repro.cli import main
        from repro.verify import Finding, LintOptions, LintReport

        def fake_run_lint(options, findings=[]):
            return LintReport(
                options=options, findings=list(findings),
                kernels=["va"], mechanisms=["ctxback"],
            )

        seeded = [Finding(code="VER101", message="seeded", kernel="va",
                          mechanism="ctxback", position=3, where="resume")]
        monkeypatch.setattr(
            verify_mod, "run_lint", lambda o: fake_run_lint(o, seeded)
        )
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", str(baseline)]) == 1
        assert main(["lint", "--diff-baseline", str(baseline)]) == 0

        regression = seeded + [
            Finding(code="VER103", message="new", kernel="va",
                    mechanism="ctxback", position=7, where="resume")
        ]
        monkeypatch.setattr(
            verify_mod, "run_lint", lambda o: fake_run_lint(o, regression)
        )
        assert main(["lint", "--diff-baseline", str(baseline)]) == 1
