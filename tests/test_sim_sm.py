"""SM scheduling: scoreboard stalls, latency, round-robin, run loop."""

import numpy as np
import pytest

from repro.isa import Kernel, parse
from repro.sim import (
    SM,
    DeviceMemory,
    GPUConfig,
    LaunchSpec,
    SimWarp,
    WarpState,
    build_launch,
    run_reference,
)


def single_warp_sm(src, config, init=None):
    program = parse(src)
    memory = DeviceMemory(1 << 16)
    sm = SM(config, memory)
    state = WarpState(num_vregs=16, num_sregs=16, warp_size=config.warp_size)
    if init:
        init(state, memory)
    warp = SimWarp(warp_id=0, state=state, main_program=program)
    sm.add_warp(warp)
    return sm, warp, memory


class TestScoreboard:
    def test_dependent_alu_waits_for_result_latency(self, small_config):
        sm, warp, _ = single_warp_sm(
            "v_mov v1, 1\nv_add v2, v1, v1\ns_endpgm", small_config
        )
        sm.step()  # mov issues at cycle 0
        first_issue = sm.cycle - 1
        sm.step()  # add must wait valu_latency
        assert sm.cycle - 1 >= first_issue + small_config.valu_latency

    def test_independent_alu_back_to_back(self, small_config):
        sm, warp, _ = single_warp_sm(
            "v_mov v1, 1\nv_mov v2, 2\ns_endpgm", small_config
        )
        sm.step()
        c1 = sm.cycle - 1
        sm.step()
        assert sm.cycle - 1 == c1 + 1

    def test_load_consumer_waits_for_memory(self, small_config):
        def init(state, memory):
            state.vregs[1, :] = 0x100

        sm, warp, _ = single_warp_sm(
            "global_load v2, v1, 0\nv_add v3, v2, v2\ns_endpgm",
            small_config,
            init,
        )
        sm.step()
        sm.step()
        # consumer issued no earlier than the memory completion
        assert sm.cycle - 1 >= small_config.mem_latency

    def test_store_does_not_block_next_instruction(self, small_config):
        def init(state, memory):
            state.vregs[1, :] = 0x100

        sm, warp, _ = single_warp_sm(
            "global_store v1, v1, 0\nv_mov v2, 1\ns_endpgm", small_config, init
        )
        sm.step()
        c1 = sm.cycle - 1
        sm.step()
        assert sm.cycle - 1 == c1 + 1  # fire-and-forget store


class TestSchedulerFairness:
    def test_round_robin_alternates(self, small_config, loop_launch):
        sm, warps, _ = build_launch(loop_launch, small_config)
        order = []
        original_issue = sm._issue

        def spy(warp):
            order.append(warp.warp_id)
            original_issue(warp)

        sm._issue = spy
        for _ in range(8):
            sm.step()
        # both warps get issue slots early on
        assert set(order[:4]) == {0, 1}


class TestRunLoop:
    def test_run_returns_final_cycle(self, small_config, loop_launch):
        result = run_reference(loop_launch, small_config)
        assert result.cycles == result.sm.cycle
        assert result.cycles > 0

    def test_all_warps_done(self, small_config, loop_launch):
        from repro.sim import WarpMode

        result = run_reference(loop_launch, small_config)
        assert all(w.mode is WarpMode.DONE for w in result.sm.warps)

    def test_deterministic(self, small_config, loop_launch):
        a = run_reference(loop_launch, small_config)
        b = run_reference(loop_launch, small_config)
        assert a.cycles == b.cycles
        assert a.memory == b.memory

    def test_livelock_guard(self, small_config):
        sm, warp, _ = single_warp_sm("LOOP:\ns_branch LOOP", small_config)
        with pytest.raises(RuntimeError, match="cycles"):
            sm.run(max_cycles=1000)

    def test_pc_histogram_counts_loop_body(self, small_config, loop_launch):
        result = run_reference(loop_launch, small_config)
        hist = result.sm.stats.pc_hist
        # loop body instructions executed once per iteration per warp
        from tests.conftest import LOOP_ITERATIONS

        assert hist[4] == LOOP_ITERATIONS * 2  # first loop instruction
        assert hist[0] == 2  # preamble once per warp

    def test_functional_result_correct(self, small_config, loop_launch):
        result = run_reference(loop_launch, small_config)
        # out[i] = in[i]*3 + 7 for the first warp's first element
        first_in = result.memory.load_word(0x1000)
        assert result.memory.load_word(0x8000) == (first_in * 3 + 7) & 0xFFFFFFFF
