"""The example scripts: importable, documented, and (the fast one) runnable."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_four_examples_exist():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_main_and_docstring(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module.__self__  # loader exists
    source = path.read_text()
    assert source.lstrip().startswith(("#!", '"""')), path.name
    assert "def main(" in source, path.name
    assert '__name__ == "__main__"' in source, path.name


def test_quickstart_runs_and_shows_the_revert():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "v_sub" in result.stdout  # the constructed inverse instruction
    assert "CTXBack context" in result.stdout


def test_custom_kernel_verifies_everywhere():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_kernel.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "memory identical: True" in result.stdout
    assert "False" not in result.stdout
