"""Repo-level quality gates: docs, determinism across configurations,
analyzer scalability."""

import importlib
import inspect
import pkgutil
import time

import pytest

import repro


def _public_members(module):
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


def test_every_public_api_item_is_documented():
    """Every name a package exports carries a docstring."""
    undocumented = []
    for package_name in ("isa", "compiler", "ctxback", "mechanisms", "sim",
                         "kernels", "analysis"):
        module = importlib.import_module(f"repro.{package_name}")
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"repro.{package_name}.{name}")
    assert not undocumented, undocumented


def test_every_module_has_a_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, missing


class TestWarpSizeInvariance:
    """Normalized context conclusions should not hinge on the lane count."""

    def test_fig7_ordering_stable_across_warp_sizes(self):
        from repro.analysis import fig7_context_size
        from repro.sim import GPUConfig

        small = fig7_context_size(
            config=GPUConfig.small(8), keys=("mm", "va"), iterations=6
        )
        large = fig7_context_size(keys=("mm", "va"), iterations=6)
        for small_row, large_row in zip(small.rows, large.rows):
            for mechanism in ("live", "ctxback"):
                assert small_row.normalized[mechanism] < 1.0
                assert large_row.normalized[mechanism] < 1.0
            # ordering preserved at both scales
            assert (
                small_row.normalized["ctxback"]
                <= small_row.normalized["live"] + 1e-9
            )
            assert (
                large_row.normalized["ctxback"]
                <= large_row.normalized["live"] + 1e-9
            )


class TestAnalyzerScalability:
    def test_plan_all_on_largest_kernel_is_fast(self):
        """The O(K·N²)-ish candidate search stays interactive on the
        biggest benchmark kernel."""
        from repro.ctxback import CtxBackConfig, FlashbackAnalyzer
        from repro.kernels import SUITE
        from repro.isa import RegisterFileSpec

        kernel = max(
            (bench.build(64) for bench in SUITE.values()),
            key=lambda k: len(k.program.instructions),
        )
        start = time.perf_counter()
        analyzer = FlashbackAnalyzer(
            kernel, CtxBackConfig(rf_spec=RegisterFileSpec(warp_size=64))
        )
        plans = analyzer.plan_all()
        elapsed = time.perf_counter() - start
        assert len(plans) == len(kernel.program.instructions)
        assert elapsed < 30.0, f"analysis took {elapsed:.1f}s"


class TestDeterminism:
    def test_prepare_is_deterministic(self, loop_kernel, small_config):
        from repro.isa import encode_program
        from repro.mechanisms import make_mechanism

        a = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        b = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        for n in a.plans:
            assert encode_program(a.plans[n].preempt_routine) == encode_program(
                b.plans[n].preempt_routine
            )
            assert encode_program(a.plans[n].resume_routine) == encode_program(
                b.plans[n].resume_routine
            )
