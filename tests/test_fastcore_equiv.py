"""Differential twins: the fast core must be bit-identical to the reference.

``GPUConfig.core`` selects between the batched/compiled fast core
(:mod:`repro.sim.fastcore`) and the single-step reference interpreter
(:mod:`repro.sim.sm`).  Every observable — cycle counts, issue counts,
per-pc histograms, device memory, ``WarpMeasurement`` fields, figure
rows, trace event streams, Chrome exports, chaos-oracle verdicts — must
match exactly; no tolerance, no normalization.

The matrix covers every kernel × every mechanism with a seeded-random
preemption point, and rotates the trace and verify dimensions across
the matrix so each is exercised against multiple kernels without
running the full 12 × 6 × 2 × 2 cross product on every CI run.  Fault
injection is twinned separately through the chaos oracle (the fast core
falls back to reference stepping while faults are armed — the verdicts
must still be identical).

Also here: the compiled-block cache-key meta-test (the PR 1
warp-size-aliasing regression class) — flipping *any* ``GPUConfig``
field must produce a different ``blocks`` cache key.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.isa.registers import RegisterFileSpec
from repro.kernels import SUITE
from repro.mechanisms import ALL_MECHANISMS, make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment
from repro.sim.gpu import run_reference

CFG_FAST = GPUConfig.radeon_vii()
CFG_REF = dataclasses.replace(CFG_FAST, core="reference")


def _measurement_key(m):
    return (
        m.warp_id, m.signal_pc, m.signal_cycle, m.latency_cycles,
        m.resume_cycles, m.context_bytes, m.flashback_pos, m.degraded,
        m.recovery_cycles,
    )


def _events_key(trace):
    return [
        (e.cycle, e.kind, e.warp_id, tuple(sorted(e.data.items())))
        for e in trace.sorted_events()
    ]


# -- bare kernel runs ------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(SUITE))
def test_kernel_run_twin(key):
    fast = run_reference(SUITE[key].launch().spec(), CFG_FAST)
    ref = run_reference(SUITE[key].launch().spec(), CFG_REF)
    assert fast.cycles == ref.cycles
    assert fast.sm.stats.issued == ref.sm.stats.issued
    assert fast.sm.stats.pc_counts == ref.sm.stats.pc_counts
    assert fast.memory == ref.memory


# -- every kernel x every mechanism, random preemption point ---------------------

_MATRIX = [
    (key, mechanism)
    for key in sorted(SUITE)
    for mechanism in ALL_MECHANISMS
]


@pytest.mark.parametrize("key,mechanism", _MATRIX)
def test_preempt_twin(key, mechanism):
    index = _MATRIX.index((key, mechanism))
    signal_dyn = random.Random(1000 + index).randrange(20, 400)
    # rotate the extra dimensions across the matrix: every third combo
    # runs under the issue-level tracer, every fourth also memory-verifies
    trace = index % 3 == 0
    verify = index % 4 == 0
    iterations = max(3, SUITE[key].default_iterations // 3)

    results = {}
    for label, base in (("fast", CFG_FAST), ("ref", CFG_REF)):
        config = dataclasses.replace(
            base, trace_events=trace, trace_detail="issue"
        )
        launch = SUITE[key].launch(iterations=iterations)
        prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
        results[label] = run_preemption_experiment(
            launch.spec(), prepared, config,
            signal_dyn=signal_dyn, resume_gap=300, verify=verify,
        )

    fast, ref = results["fast"], results["ref"]
    assert fast.total_cycles == ref.total_cycles
    assert [_measurement_key(m) for m in fast.measurements] == [
        _measurement_key(m) for m in ref.measurements
    ]
    assert fast.memory == ref.memory
    if verify:
        assert fast.verified and ref.verified
    if trace:
        assert _events_key(fast.trace) == _events_key(ref.trace)


# -- traces: event stream and Chrome export --------------------------------------


def test_trace_export_twin():
    from repro.obs import to_chrome, to_jsonl

    exports = {}
    for base in (CFG_FAST, CFG_REF):
        config = dataclasses.replace(
            base, trace_events=True, trace_detail="issue"
        )
        launch = SUITE["mm"].launch()
        prepared = make_mechanism("ctxback").prepare(launch.kernel, config)
        result = run_preemption_experiment(
            launch.spec(), prepared, config,
            signal_dyn=101, resume_gap=500, verify=True,
        )
        exports[base.core] = (
            to_jsonl(result.trace),
            json.dumps(to_chrome(result.trace, config, result), sort_keys=True),
            result.breakdowns,
        )
    assert exports["fast"] == exports["reference"]


# -- figures ---------------------------------------------------------------------


def test_figure_rows_twin():
    """Figure data built through the experiment engine matches per-core."""
    from repro.analysis import preemption_timing

    rows = {}
    for base in (CFG_FAST, CFG_REF):
        config = dataclasses.replace(
            GPUConfig.radeon_vii_contended(), core=base.core
        )
        fig8, fig9 = preemption_timing(
            config=config, keys=["mm"], samples=1, jobs=1
        )
        rows[base.core] = (fig8, fig9)
    assert rows["fast"] == rows["reference"]


# -- faults: chaos-oracle verdicts -----------------------------------------------


@pytest.mark.parametrize("scenario_name", [
    "ctx-bitflip", "ctx-burst", "signal-drop", "signal-dup",
    "routine-abort", "stall-burst", "compound",
])
def test_chaos_verdict_twin(scenario_name):
    from repro.faults.chaos import run_chaos_scenario

    verdicts = {}
    for base in (CFG_FAST, CFG_REF):
        config = dataclasses.replace(GPUConfig.small(4), core=base.core)
        verdicts[base.core] = run_chaos_scenario(
            "mm", "ctxback", scenario_name, seed=7, config=config,
            resume_gap=300,
        )
    fast, ref = verdicts["fast"], verdicts["reference"]
    assert fast == ref
    assert fast["ok"], fast


# -- compiled-block cache keys ---------------------------------------------------

#: a distinct, still-valid replacement value for every GPUConfig field;
#: the meta-test fails when GPUConfig grows a field without a variant here
_FIELD_VARIANTS = {
    "rf_spec": RegisterFileSpec(warp_size=32),
    "clock_ghz": 2.5,
    "issue_width": 2,
    "valu_latency": 5,
    "salu_latency": 2,
    "lds_latency": 25,
    "smem_latency": 101,
    "mem_latency": 301,
    "mem_bytes_per_cycle": 16.0,
    "ctx_bytes_per_cycle": 0.186,
    "ctx_load_speedup": 2.1,
    "ctx_request_overhead": 17.0,
    "ckpt_interval": 8,
    "scoreboard_prune_threshold": 65,
    "max_cycles": 30_000_001,
    "trace_events": True,
    "trace_detail": "issue",
    "core": "reference",
}


def test_block_cache_key_covers_every_config_field():
    """Flipping any GPUConfig field must miss in the ``blocks`` cache.

    Regression class of the PR 1 warp-size aliasing bug: a cache key
    that omits a semantic field silently serves one configuration's
    compiled blocks to another.  The key is built from the *full*
    canonical config, so every field — including ones the block compiler
    does not read today — separates; a field added to GPUConfig without
    a variant here fails the coverage assertion below.
    """
    from repro.analysis.cache import get_cache
    from repro.sim.blocks import ir_cache_parts

    config_fields = {f.name for f in dataclasses.fields(GPUConfig)}
    assert config_fields == set(_FIELD_VARIANTS), (
        "GPUConfig changed: update _FIELD_VARIANTS with a distinct value "
        f"for {sorted(config_fields ^ set(_FIELD_VARIANTS))}"
    )

    cache = get_cache()
    program = SUITE["mm"].launch().kernel.program
    base = GPUConfig.radeon_vii()
    base_key = cache.key_for("blocks", ir_cache_parts(program, base))

    # determinism: the same config must rebuild the same key
    assert base_key == cache.key_for("blocks", ir_cache_parts(program, base))

    for name, variant in _FIELD_VARIANTS.items():
        flipped = dataclasses.replace(base, **{name: variant})
        assert getattr(flipped, name) != getattr(base, name), name
        flipped_key = cache.key_for("blocks", ir_cache_parts(program, flipped))
        assert flipped_key != base_key, (
            f"flipping GPUConfig.{name} did not change the blocks cache key"
        )


def test_block_cache_misses_per_config(tmp_path):
    """End-to-end: a flipped config misses and recompiles; a repeat hits."""
    from repro.analysis.cache import ArtifactCache
    from repro.sim.blocks import build_ir, ir_cache_parts

    cache = ArtifactCache(root=tmp_path, enabled=True)
    program = SUITE["mm"].launch().kernel.program
    base = GPUConfig.radeon_vii()

    def lookup(config):
        return cache.get_or_create(
            "blocks", ir_cache_parts(program, config),
            lambda: build_ir(program, config),
        )

    lookup(base)
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    lookup(base)
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)
    lookup(dataclasses.replace(base, rf_spec=RegisterFileSpec(warp_size=32)))
    assert (cache.stats.hits, cache.stats.misses) == (1, 2)
    lookup(dataclasses.replace(base, mem_latency=299))
    assert (cache.stats.hits, cache.stats.misses) == (1, 3)
