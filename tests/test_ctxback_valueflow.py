"""Value-availability resolution on the paper's worked examples."""

import pytest

from repro.compiler import analyze_liveness, build_cfg, number_region
from repro.ctxback import DerivationKind, Resolver, SignalSite
from repro.isa import Kernel, RegisterFileSpec, ReversibilityModel, parse, vreg

SPEC = RegisterFileSpec(warp_size=4)


def make_site(kernel, n, model=ReversibilityModel.PAPER):
    program = kernel.program
    cfg = build_cfg(program)
    liveness = analyze_liveness(program, cfg)
    block = cfg.block_at(n)
    region = number_region(
        program, block.start, block.end, entry_regs=liveness.live_in[block.start]
    )
    state = dict(region.entry)
    for pos in range(block.start, n):
        for reg, value in zip(
            program.instructions[pos].defs(), region.def_values_at(pos)
        ):
            state[reg] = value
    return SignalSite(
        program=program,
        region=region,
        n=n,
        end_state=state,
        rf_spec=SPEC,
        model=model,
    ), region


class TestFig2SaveReload:
    """Fig. 2: the self-destroying instruction's result is save/reloaded."""

    SRC = """
        v_xor  v3, v4, 0xF
        v_mul  v1, v3, 0x7
        v_mul  v0, v0, v0
        v_add  v2, v0, v4
        global_store v5, v0, 0
        global_store v5, v1, 4
        global_store v5, v2, 8
        global_store v5, v3, 12
        s_endpgm
    """

    @pytest.fixture()
    def resolver(self):
        kernel = Kernel("fig2", parse(self.SRC), 8, 16, noalias=True)
        site, region = make_site(kernel, 4)
        return Resolver(site, p=0), region

    def test_self_square_result_is_direct_saved(self, resolver):
        resolver, region = resolver
        v0_new = region.def_values_at(2)[0]
        node = resolver.resolve(v0_new)
        assert node.kind is DerivationKind.DIRECT_SAVE

    def test_dependents_reexecute(self, resolver):
        resolver, region = resolver
        v3 = region.def_values_at(0)[0]
        v1 = region.def_values_at(1)[0]
        v2 = region.def_values_at(3)[0]
        assert resolver.resolve(v3).kind is DerivationKind.REEXEC
        assert resolver.resolve(v1).kind is DerivationKind.REEXEC
        # v2 = v0_new + v4 consumes the reloaded value: still re-executable
        assert resolver.resolve(v2).kind is DerivationKind.REEXEC

    def test_old_self_square_operand_unresolvable(self, resolver):
        resolver, region = resolver
        v0_old = region.entry[vreg(0)]
        assert resolver.resolve(v0_old) is None


class TestFig3RevertAtPreempt:
    """Fig. 3: ADD reverted at preemption recovers the XOR operand."""

    def _resolver(self, fig3_kernel, p=0):
        site, region = make_site(fig3_kernel, 4)
        return Resolver(site, p=p), region

    def test_old_value_recovered_by_preempt_revert(self, fig3_kernel):
        resolver, region = self._resolver(fig3_kernel)
        v0_old = region.entry[vreg(0)]
        node = resolver.resolve(v0_old)
        assert node.kind is DerivationKind.REVERT_PREEMPT
        assert node.pos == 2  # the v_add that killed it

    def test_chain_re_executes(self, fig3_kernel):
        resolver, region = self._resolver(fig3_kernel)
        assert resolver.resolve(region.def_values_at(0)[0]).kind is DerivationKind.REEXEC
        assert resolver.resolve(region.def_values_at(1)[0]).kind is DerivationKind.REEXEC

    def test_revert_out_of_region_not_used(self, fig3_kernel):
        # p = 3 excludes the killing v_add from the region: no revert allowed
        resolver, region = self._resolver(fig3_kernel, p=3)
        v0_old = region.entry[vreg(0)]
        assert resolver.resolve(v0_old) is None


class TestFig4RevertAtResume:
    """Fig. 4: reverting needs a re-executed operand -> resume placement."""

    def test_revert_scheduled_at_resume(self, fig4_kernel):
        site, region = make_site(fig4_kernel, 4)
        resolver = Resolver(site, p=0)
        # resolve the XOR result first (the natural consumer of the old v0)
        v3 = region.def_values_at(1)[0]
        node = resolver.resolve(v3)
        assert node.kind is DerivationKind.REEXEC
        v0_old = region.entry[vreg(0)]
        old_node = resolver.resolve(v0_old)
        assert old_node.kind is DerivationKind.REVERT_RESUME

    def test_cycle_taint_does_not_poison(self, fig4_kernel):
        # resolving v0_new first drives v0_old through a cycle; a later
        # resolution must still find the revert (memo-poisoning regression)
        site, region = make_site(fig4_kernel, 4)
        resolver = Resolver(site, p=0)
        v0_new = region.def_values_at(2)[0]
        assert resolver.resolve(v0_new) is not None
        v0_old = region.entry[vreg(0)]
        assert resolver.resolve(v0_old) is not None


class TestPreferences:
    def test_reexec_preferred_over_direct_save(self):
        kernel = Kernel(
            "pref",
            parse(
                """
                v_add v1, v2, v3
                global_store v4, v1, 0
                global_store v4, v2, 4
                global_store v4, v3, 8
                s_endpgm
                """
            ),
            8,
            16,
            noalias=True,
        )
        site, region = make_site(kernel, 1)
        resolver = Resolver(site, p=0)
        node = resolver.resolve(region.def_values_at(0)[0])
        assert node.kind is DerivationKind.REEXEC

    def test_forced_direct_pins_derivation(self):
        kernel = Kernel(
            "pin",
            parse("v_add v1, v2, v3\nglobal_store v4, v1, 0\ns_endpgm"),
            8,
            16,
            noalias=True,
        )
        site, region = make_site(kernel, 1)
        value = region.def_values_at(0)[0]
        resolver = Resolver(site, p=0, forced_direct=frozenset({value.vid}))
        assert resolver.resolve(value).kind is DerivationKind.DIRECT_SAVE

    def test_exact_model_blocks_lshl_revert(self):
        kernel = Kernel(
            "shift",
            parse(
                """
                v_add v1, v0, v2
                v_lshl v0, v0, 0x2
                global_store v4, v0, 0
                global_store v4, v1, 4
                s_endpgm
                """
            ),
            8,
            16,
            noalias=True,
        )
        site, region = make_site(kernel, 2, model=ReversibilityModel.EXACT)
        resolver = Resolver(site, p=0)
        v0_old = region.entry[vreg(0)]
        assert resolver.resolve(v0_old) is None
        site, region = make_site(kernel, 2, model=ReversibilityModel.PAPER)
        resolver = Resolver(site, p=0)
        assert resolver.resolve(region.entry[vreg(0)]) is not None


class TestOsrbViaCopyPropagation:
    def test_backed_up_scalar_value_directly_saveable(self):
        kernel = Kernel(
            "osrb",
            parse(
                """
                s_mov s9, s4
                v_mul v1, v2, s4
                s_mul s4, s4, 5
                global_store v4, v1, 0
                s_endpgm
                """
            ),
            8,
            16,
            noalias=True,
        )
        site, region = make_site(kernel, 3)
        resolver = Resolver(site, p=0)
        from repro.isa import sreg

        old_s4 = region.entry[sreg(4)]
        node = resolver.resolve(old_s4)
        assert node.kind is DerivationKind.DIRECT_SAVE
        assert node.source_reg == sreg(9)  # read from the backup register
