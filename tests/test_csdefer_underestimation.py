"""The paper's §V-B effect: CS-Defer's latency estimate is optimistic.

"Estimating the potential latency induced by the preceding instructions is
hard without timestamps. Thus ... the potential latency induced by the
preceding instructions is not considered. CS-Defer's preemption latency may
be underestimated, which may lead CTXBack+CS-Defer to choose the sub-optimal
preemption mechanism for some instructions."
"""

import statistics

import pytest

from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment

CONFIG = GPUConfig.radeon_vii_contended()


@pytest.fixture(scope="module")
def mm_defer():
    bench = SUITE["mm"]
    launch = bench.launch(warp_size=64, iterations=10)
    prepared = make_mechanism("csdefer").prepare(launch.kernel, CONFIG)
    return launch, prepared


def test_deferral_windows_cross_memory_ops(mm_defer):
    """The estimate-ranked deferral happily crosses loads (they look cheap)."""
    _, prepared = mm_defer
    crossing = 0
    for n, plan in prepared.plans.items():
        window = prepared.kernel.program.instructions[n : plan.resume_pc]
        if any(i.spec.touches_global_memory for i in window):
            crossing += 1
    assert crossing > 0


def test_actual_latency_exceeds_estimate_under_contention(mm_defer):
    """Simulated deferral latency beats the issue-only estimate by a wide
    margin when the deferred window stalls on contended memory."""
    launch, prepared = mm_defer
    n_static = len(prepared.kernel.program.instructions)
    ratios = []
    for dyn in (3 * n_static + 4, 3 * n_static + 11, 3 * n_static + 19):
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=dyn,
            resume_gap=1000, verify=False,
        )
        for measurement in result.measurements:
            plan = prepared.plans[measurement.signal_pc]
            if plan.deferred_to == measurement.signal_pc:
                continue  # no deferral at this site
            ratios.append(
                measurement.latency_cycles / plan.est_preempt_cycles
            )
    assert ratios, "no deferring signal sites sampled"
    assert statistics.mean(ratios) > 1.0


def test_combined_occasionally_inherits_the_underestimate(mm_defer):
    """CTXBack+CS-Defer picks by estimate; where it picks CS-Defer, the pick
    was made with the optimistic number (the paper's sub-optimality source)."""
    launch, _ = mm_defer
    combined = make_mechanism("combined").prepare(launch.kernel, CONFIG)
    picked_defer = [
        plan for plan in combined.plans.values() if plan.mechanism == "csdefer"
    ]
    # the combination uses CS-Defer somewhere (else there is nothing to inherit)
    assert picked_defer
    for plan in picked_defer:
        assert plan.deferred_to is not None
